"""Extension example — a synthetic-population load test of the sharded ingest.

The service shell (``examples/chaos_run.py``) proves the guards hold
under faults; this example measures what the sharded topology *sustains*.
A deterministic :class:`~repro.service.sharding.LoadGenerator` replays a
synthetic user population's GPS records tick by tick on a manual clock —
steady traffic round-robined across the keyspace plus a burst aimed at
one hot cell — through the real :class:`ShardedIngestGuard` and
:class:`ShardSupervisor`.  Every record is accounted for: the run ends
with the exact reconciliation ``offered == accepted + quarantined +
lost`` and per-shard throughput and p50/p95/p99 ingest latency.  When the
hot shard saturates, its queue sheds oldest-first instead of crashing —
overload is a measured, bounded outcome, never an exception.

The population here is CI-sized so the example finishes in seconds; the
full-size configuration (``LoadgenConfig()``: 300k users x 4 records per
simulated hour = 1.2M records per simulated hour) is what
``python -m repro loadgen`` runs by default.

Run:  python examples/loadgen_run.py
"""

from __future__ import annotations

from repro.service.sharding import LoadgenConfig, LoadGenerator, format_loadgen_report

SEED = 0


def main() -> None:
    config = LoadgenConfig(
        num_users=20_000,
        records_per_user_hour=4.0,
        sim_hours=0.5,
        num_shards=4,
        cells_x=8,
        cells_y=8,
        shard_max_queue=2_000,
        burst_multiplier=6.0,
        burst_start_tick=2,
        seed=SEED,
    )
    total = int(config.num_users * config.records_per_user_hour * config.sim_hours)
    print(
        f"Replaying ~{total:,} steady GPS records (plus a hot-cell burst) from "
        f"{config.num_users:,} synthetic users across {config.num_shards} shards..."
    )
    generator = LoadGenerator(config)
    payload = generator.run(progress=print)

    print()
    print(format_loadgen_report(payload))
    totals = payload["totals"]
    print(
        f"\nreconciliation: offered={totals['offered']:,} = "
        f"accepted={totals['accepted']:,} + quarantined={totals['quarantined']:,} "
        f"+ lost={totals['lost']:,} -> "
        f"{'EXACT' if payload['reconciliation_ok'] else 'BROKEN'}"
    )
    rate = payload["throughput"]["records_per_sim_hour"]
    print(f"sustained: {rate:,.0f} records per simulated hour")


if __name__ == "__main__":
    main()

"""Quickstart: train MobiRescue on one hurricane, deploy it on another.

Builds scaled-down synthetic datasets for Hurricanes Michael (training) and
Florence (evaluation), trains the SVM request predictor and the RL
dispatcher, and simulates the paper's evaluation day (Sep 16) end to end.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MobiRescueSystem
from repro.data import build_florence_dataset, build_michael_dataset
from repro.sim import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.requests import remap_to_operable, requests_from_rescues
from repro.weather.storms import SECONDS_PER_DAY, day_index

POPULATION = 800  # paper: 8,590 people; scaled down for a quick run


def main() -> None:
    print("Building the Hurricane Michael training dataset...")
    train_scenario, train_bundle = build_michael_dataset(population_size=POPULATION)
    print(f"  {len(train_bundle.trace):,} GPS fixes, "
          f"{len(train_bundle.rescues)} ground-truth rescues")

    print("Building the Hurricane Florence evaluation dataset...")
    eval_scenario, eval_bundle = build_florence_dataset(population_size=POPULATION)
    print(f"  {len(eval_bundle.trace):,} GPS fixes, "
          f"{len(eval_bundle.rescues)} ground-truth rescues")

    print("Training MobiRescue (SVM predictor + DQN dispatcher)...")
    system = MobiRescueSystem.train(train_scenario, train_bundle, episodes=4)
    rates = system.trained.episode_service_rates
    print(f"  {system.trained.episodes_run} episodes, "
          f"service rates {['%.2f' % r for r in rates]}")

    print("Deploying on Florence, simulating Sep 16 (24 h)...")
    dispatcher = system.deploy(eval_scenario, eval_bundle)
    day = day_index(eval_scenario.timeline, "Sep 16")
    t0, t1 = day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY
    requests = remap_to_operable(
        requests_from_rescues(eval_bundle.rescues, t0, t1),
        eval_scenario.network,
        eval_scenario.flood,
    )
    num_teams = max(10, len(requests))
    sim = RescueSimulator(
        eval_scenario,
        requests,
        dispatcher,
        SimulationConfig(t0_s=t0, t1_s=t1, num_teams=num_teams, seed=0),
    )
    result = sim.run()
    metrics = SimulationMetrics(result)

    delays = metrics.driving_delays()
    timeliness = metrics.timeliness_values()
    serving = [n for _, n in result.serving_samples]
    print()
    print(f"requests:          {len(requests)}")
    print(f"served:            {result.num_served} "
          f"({100.0 * metrics.service_rate:.0f}%)")
    print(f"timely (<=30min):  {metrics.total_timely_served}")
    if len(delays):
        print(f"driving delay:     median {np.median(delays) / 60:.1f} min")
        print(f"timeliness:        median {np.median(timeliness) / 60:.1f} min")
    print(f"serving teams:     avg {np.mean(serving):.1f} of {num_teams}")
    print(f"delivered:         {metrics.delivered_count()}")


if __name__ == "__main__":
    main()

"""Method comparison — the paper's Section V on synthetic data.

Runs MobiRescue against the two comparison methods ("Rescue" and
"Schedule") plus a greedy-nearest sanity baseline over the Sep 16
evaluation day, printing the quantities behind Figs. 9-14.

Run:  python examples/method_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.data import build_florence_dataset, build_michael_dataset
from repro.eval.harness import ExperimentHarness, HarnessConfig
from repro.eval.tables import format_table

POPULATION = 800
METHODS = ("MobiRescue", "Rescue", "Schedule", "Nearest")


def main() -> None:
    print("Building datasets...")
    florence = build_florence_dataset(population_size=POPULATION)
    michael = build_michael_dataset(population_size=POPULATION)
    harness = ExperimentHarness(
        florence, michael, HarnessConfig(mobirescue_episodes=4)
    )
    print(f"Evaluation day: {harness.config.eval_day_label}, "
          f"{len(harness.eval_requests())} requests, "
          f"{harness.num_teams()} rescue teams "
          f"(the paper's max-daily-requests fleet rule)")

    rows = []
    for name in METHODS:
        print(f"Running {name}...")
        run = harness.run_method(name)
        m = run.metrics
        delays = m.driving_delays()
        tl = m.timeliness_values()
        serving = [n for _, n in run.result.serving_samples]
        rows.append([
            name,
            run.result.num_served,
            m.total_timely_served,
            f"{np.median(delays) / 60:.1f}" if len(delays) else "-",
            f"{np.mean(tl) / 60:.1f}" if len(tl) else "-",
            f"{np.mean(serving):.0f}",
        ])

    print()
    print(format_table(
        [
            "method",
            "served",
            "timely(<=30m)",
            "median delay (min)",
            "mean timeliness (min)",
            "avg serving teams",
        ],
        rows,
        title="Dispatching comparison (paper: MobiRescue best on every column)",
    ))
    print("\nPaper shape: served MR>Rescue>Schedule; delay MR lowest;")
    print("timeliness MR<<IP baselines; serving teams MR adaptive, baselines pinned.")


if __name__ == "__main__":
    main()

"""Extension example — self-healing training under injected faults.

Numeric disasters (a NaN gradient, a corrupted replay row, a reward
spike) silently poison a training run within a handful of updates.  This
example walks docs/TRAINING_HEALTH.md end to end on a small Michael
scenario:

1. a fault-free sentinel run, verified **bit-identical** to the plain
   ``train_mobirescue`` loop — the sentinel only reads;
2. a ``train-mild`` chaos run: transient faults are detected at the step
   they fire, the ladder rolls back to the last healthy checkpoint, and
   the recovered weights still match the golden run exactly;
3. a ``train-blackout`` run: every attempt is poisoned, so the loop
   climbs the ladder and **aborts** with a manifest-complete forensics
   bundle instead of committing a poisoned checkpoint.

Run:  python examples/self_healing_training.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.core import MobiRescueConfig, train_mobirescue
from repro.data import build_michael_dataset
from repro.faults import TrainingFaultInjector, get_train_profile
from repro.training import LadderConfig, sentinel_training

POPULATION = 400
EPISODES = 2
NUM_TEAMS = 12
CFG = MobiRescueConfig(seed=0)


def states_equal(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


def main() -> None:
    print(f"Building the Michael dataset (population {POPULATION})...")
    scenario, bundle = build_michael_dataset(population_size=POPULATION)

    print(f"\n[1] Golden run: plain train_mobirescue, {EPISODES} episodes")
    golden = train_mobirescue(
        scenario, bundle, CFG, episodes=EPISODES, num_teams=NUM_TEAMS,
        team_capacity=5,
    )
    print(f"    service rates: {[round(r, 4) for r in golden.episode_service_rates]}")

    with tempfile.TemporaryDirectory() as tmp:
        print("\n[2] Fault-free sentinel run (must be bit-identical)")
        clean = sentinel_training(
            scenario, bundle, CFG, episodes=EPISODES, num_teams=NUM_TEAMS,
            team_capacity=5, checkpoint_dir=Path(tmp) / "clean",
        )
        assert clean.trained is not None
        assert states_equal(
            golden.agent.get_state(), clean.trained.agent.get_state()
        )
        assert clean.anomalies == [], "fault-free run must raise no anomalies"
        print("    bit-identical to the golden run, zero anomalies")

        print("\n[3] train-mild chaos: transient faults, rollback recovery")
        injector = TrainingFaultInjector(get_train_profile("train-mild"), seed=0)
        mild = sentinel_training(
            scenario, bundle, CFG, episodes=EPISODES, num_teams=NUM_TEAMS,
            team_capacity=5, checkpoint_dir=Path(tmp) / "mild",
            injector=injector,
            progress=lambda msg: print(f"    {msg}"),
        )
        assert mild.trained is not None and not mild.aborted
        assert mild.anomalies, "injected faults must be detected"
        assert mild.recoveries, "detection must trigger rollback"
        kinds = sorted({a["kind"] for a in mild.anomalies})
        print(f"    detected: {kinds}")
        print(f"    recoveries: {len(mild.recoveries)} (all rung-0 rollbacks)")
        assert states_equal(
            golden.agent.get_state(), mild.trained.agent.get_state()
        )
        print("    recovered run is STILL bit-identical to the golden run")

        print("\n[4] train-blackout: persistent faults, abort with forensics")
        blackout = sentinel_training(
            scenario, bundle, CFG, episodes=EPISODES, num_teams=NUM_TEAMS,
            team_capacity=5, checkpoint_dir=Path(tmp) / "blackout",
            injector=TrainingFaultInjector(
                get_train_profile("train-blackout"), seed=0
            ),
            ladder=LadderConfig(abort_level=2),
            progress=lambda msg: print(f"    {msg}"),
        )
        assert blackout.aborted and blackout.trained is None
        assert blackout.forensics_path is not None
        with open(blackout.forensics_path / "incidents.json") as fh:
            incidents = json.load(fh)
        print(f"    aborted at ladder level {incidents['level']}")
        print(f"    forensics bundle: {blackout.forensics_path.name} "
              f"({len(incidents['anomalies'])} anomalies, poisoned weights "
              f"in agent_state.npz)")

    print("\nDone.  See docs/TRAINING_HEALTH.md and "
          "`python -m repro chaos --profile train-severe --quick`.")


if __name__ == "__main__":
    main()

"""Dataset measurement study — the paper's Section III on synthetic data.

Reproduces the analysis that motivates MobiRescue: regional heterogeneity
of disaster impact (Figs. 2-3, Table I), the relationship between impact
and rescue requests (Figs. 4-6), and the full stage-1 pipeline (cleaning,
map matching, flow-rate derivation, hospital-delivery detection).

Run:  python examples/dataset_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro.data import build_florence_dataset
from repro.eval.experiments import MeasurementSuite
from repro.eval.tables import format_series, format_table
from repro.mobility import clean_trace
from repro.weather.storms import day_label

POPULATION = 800


def main() -> None:
    print("Building the Florence dataset...")
    scenario, bundle = build_florence_dataset(population_size=POPULATION)
    suite = MeasurementSuite(scenario, bundle)

    _, report = clean_trace(
        bundle.trace, scenario.partition.width_m, scenario.partition.height_m
    )
    print(f"\n--- Stage-1 pipeline ---")
    print(f"raw fixes:        {report.input_fixes:,}")
    print(f"out of range:     {report.dropped_out_of_range:,}")
    print(f"duplicates:       {report.dropped_duplicates:,}")
    print(f"speed gate:       {report.dropped_speed_gate:,}")
    print(f"clean fixes:      {report.output_fixes:,}")

    print("\n--- Fig 2: R1/R2 flow, before vs after (vehicles/hour) ---")
    for name, series in suite.fig2_flow_before_after().items():
        print(format_series(name, series))

    print("\n--- Fig 3: per-segment |before-after| flow difference ---")
    diffs = suite.fig3_flow_diff()
    print(f"median {np.median(diffs):.3f}, p90 {np.percentile(diffs, 90):.3f}, "
          f"nonzero on {(diffs > 0).mean() * 100:.0f}% of segments")

    print("\n--- Table I: factor/flow correlations ---")
    corr = suite.table1_correlations()
    print(format_table(
        ["factor", "measured", "paper"],
        [
            ["precipitation", corr["precipitation"], -0.897],
            ["wind speed", corr["wind"], -0.781],
            ["altitude", corr["altitude"], 0.739],
        ],
    ))

    print("\n--- Fig 4: rescued people per region ---")
    counts = suite.fig4_rescued_by_region()
    print(format_table(
        ["region", "rescued"], [[f"R{r}", n] for r, n in sorted(counts.items())]
    ))

    print("\n--- Fig 5: region flow by phase (vehicles/hour) ---")
    phases = suite.fig5_flow_phases()
    print(format_table(
        ["region", "before", "during", "after"],
        [
            [f"R{r}", row["before"], row["during"], row["after"]]
            for r, row in sorted(phases.items())
        ],
    ))

    print("\n--- Fig 6: hospital deliveries per day ---")
    data = suite.fig6_deliveries_per_day()
    for d in range(scenario.timeline.total_days):
        bar = "#" * int(data["total"][d])
        print(f"{day_label(scenario.timeline, d):>7}: {bar} "
              f"({int(data['total'][d])}, rescued {int(data['rescued'][d])})")


if __name__ == "__main__":
    main()

"""Extension example — dispatching with degraded GPS (Section IV-C5).

"Under severe situations, the GPS locations of some people may not be
readily available" — dead phones, downed cell towers.  This example deploys
the same trained MobiRescue system twice on Florence's Sep 16:

1. with the plain last-fix position feed;
2. with :class:`HistoricalFallbackFeed`, which places stale devices at
   their pre-disaster hour-of-day habitual position.

Run:  python examples/gps_fallback.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MobiRescueSystem
from repro.data import build_florence_dataset, build_michael_dataset
from repro.sim import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.requests import remap_to_operable, requests_from_rescues
from repro.weather.storms import SECONDS_PER_DAY, day_index

POPULATION = 600


def run_once(system, scenario, bundle, gps_fallback: bool):
    dispatcher = system.deploy(scenario, bundle, gps_fallback=gps_fallback)
    day = day_index(scenario.timeline, "Sep 16")
    t0, t1 = day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY
    requests = remap_to_operable(
        requests_from_rescues(bundle.rescues, t0, t1),
        scenario.network,
        scenario.flood,
    )
    sim = RescueSimulator(
        scenario,
        requests,
        dispatcher,
        SimulationConfig(t0_s=t0, t1_s=t1, num_teams=max(10, len(requests)), seed=0),
    )
    result = sim.run()
    metrics = SimulationMetrics(result)
    fallback_uses = getattr(dispatcher.positions_fn, "fallback_uses", 0)
    return result, metrics, fallback_uses


def main() -> None:
    print("Building datasets and training...")
    train = build_michael_dataset(population_size=POPULATION)
    scenario, bundle = build_florence_dataset(population_size=POPULATION)
    system = MobiRescueSystem.train(*train, episodes=3)

    print("Deploying with the plain last-fix feed...")
    r_plain, m_plain, _ = run_once(system, scenario, bundle, gps_fallback=False)
    print("Deploying with the historical-fallback feed...")
    r_fb, m_fb, uses = run_once(system, scenario, bundle, gps_fallback=True)

    print()
    print(f"{'feed':<22} {'served':>6} {'timely':>6} {'median timeliness':>18}")
    for name, (r, m) in (
        ("last fix", (r_plain, m_plain)),
        ("historical fallback", (r_fb, m_fb)),
    ):
        tl = m.timeliness_values()
        med = f"{np.median(tl) / 60:.1f} min" if len(tl) else "-"
        print(f"{name:<22} {r.num_served:>6} {m.total_timely_served:>6} {med:>18}")
    print(f"\nfallback position estimates used: {uses}")
    print("With a healthy trace both feeds agree; the fallback matters when")
    print("fix gaps exceed the staleness bound (e.g. powered-off phones).")


if __name__ == "__main__":
    main()

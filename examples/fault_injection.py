"""Extension example — dispatching under disaster-grade fault injection.

A real dispatch center degrades with the disaster it is responding to:
GPS fixes go stale, radio commands are delayed or lost, teams break down
mid-leg, roads close beyond the flood map, and the dispatcher itself can
crash or blow its compute budget.  ``repro.faults`` injects all five
deterministically; this example runs the same Schedule baseline on
Florence's Sep 16 under the ``none``, ``mild`` and ``severe`` profiles
and prints how service degrades and which degradation events fired.

Run:  python examples/fault_injection.py
"""

from __future__ import annotations

from repro.data import build_florence_dataset
from repro.dispatch import ScheduleDispatcher
from repro.faults import get_profile, make_injector
from repro.sim import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.requests import remap_to_operable, requests_from_rescues
from repro.weather.storms import SECONDS_PER_DAY, day_index

POPULATION = 600
SEED = 0


def run_profile(profile_name: str, scenario, bundle, requests, t0: float, t1: float):
    injector = make_injector(profile_name, t0, t1, seed=SEED)
    dispatcher = ScheduleDispatcher()
    sim = RescueSimulator(
        scenario,
        requests,
        dispatcher,
        SimulationConfig(
            t0_s=t0, t1_s=t1, num_teams=max(10, len(requests)), seed=SEED,
            dispatch_budget_s=None,
        ),
        faults=injector,
    )
    result = sim.run()
    return result, SimulationMetrics(result)


def main() -> None:
    print(f"Building the Florence dataset (population {POPULATION})...")
    scenario, bundle = build_florence_dataset(population_size=POPULATION)
    day = day_index(scenario.timeline, "Sep 16")
    t0, t1 = day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY
    requests = remap_to_operable(
        requests_from_rescues(bundle.rescues, t0, t1),
        scenario.network,
        scenario.flood,
    )
    print(f"Sep 16: {len(requests)} rescue requests\n")

    header = (f"{'profile':>8}  {'served':>6}  {'timely':>6}  "
              f"{'fallbacks':>9}  {'dropped':>7}  {'breakdowns':>10}  {'reroutes':>8}")
    print(header)
    print("-" * len(header))
    for name in ("none", "mild", "severe"):
        result, metrics = run_profile(name, scenario, bundle, requests, t0, t1)
        print(f"{name:>8}  {result.num_served:>6}  {metrics.total_timely_served:>6}  "
              f"{metrics.fallback_activations:>9}  {metrics.dropped_commands:>7}  "
              f"{metrics.breakdowns:>10}  {metrics.reroutes:>8}")

    # The profile objects themselves are plain data — inspect or tweak them:
    severe = get_profile("severe")
    print(f"\nsevere profile: {severe.gps.p_affected:.0%} of devices lose GPS, "
          f"{severe.comm.p_affected:.0%} of teams lose comms "
          f"(+{severe.comm.extra_latency_s:.0f}s command latency), "
          f"{severe.breakdown.p_affected:.0%} of teams break down, "
          f"{severe.closure.p_affected:.0%} of segments close, "
          f"{severe.dispatcher.p_fail_per_cycle:.0%} dispatcher crash rate/cycle.")


if __name__ == "__main__":
    main()

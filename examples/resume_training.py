"""Extension example — crash-safe checkpointed training and resume.

Training checkpoints after every episode through the durable artifact
layer (atomic renames, SHA-256 manifests).  This example simulates a
crash: it trains two episodes with checkpointing, "forgets" the result,
then resumes from the checkpoint directory up to four episodes and
verifies the resumed run is **bit-identical** to a straight-through
four-episode run — same Q-network weights, same epsilon, same learn-step
count, same per-episode service rates.  It then damages the latest
checkpoint and lets the supervisor recover: the corrupt checkpoint is
quarantined and training resumes from the previous valid one.

Run:  python examples/resume_training.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    MobiRescueConfig,
    RetryPolicy,
    Supervisor,
    resume_training,
    supervised_training,
    train_mobirescue,
)
from repro.core.persistence import list_checkpoints
from repro.data import build_michael_dataset

POPULATION = 400
EPISODES = 4
INTERRUPT_AFTER = 2
NUM_TEAMS = 12
CFG = MobiRescueConfig(seed=0)


def weights_equal(a, b) -> bool:
    return all(
        np.array_equal(wa, wb) and np.array_equal(ba, bb)
        for (wa, ba), (wb, bb) in zip(a.get_weights(), b.get_weights())
    )


def main() -> None:
    print(f"Building the Michael dataset (population {POPULATION})...")
    scenario, bundle = build_michael_dataset(population_size=POPULATION)

    with tempfile.TemporaryDirectory() as tmp:
        straight_dir = Path(tmp) / "straight"
        crashed_dir = Path(tmp) / "crashed"

        print(f"\n[1] Straight-through run: {EPISODES} episodes")
        straight = train_mobirescue(
            scenario, bundle, CFG, episodes=EPISODES, num_teams=NUM_TEAMS,
            checkpoint_dir=straight_dir,
        )
        print(f"    service rates: "
              f"{' '.join(f'{r:.2f}' for r in straight.episode_service_rates)}")

        print(f"\n[2] 'Crashed' run: killed after episode {INTERRUPT_AFTER}")
        train_mobirescue(
            scenario, bundle, CFG, episodes=INTERRUPT_AFTER, num_teams=NUM_TEAMS,
            checkpoint_dir=crashed_dir,
        )
        names = [p.name for p in list_checkpoints(crashed_dir)]
        print(f"    checkpoints on disk: {', '.join(names)}")

        print(f"\n[3] Resume to {EPISODES} episodes from {crashed_dir.name}/")
        resumed = resume_training(
            crashed_dir, scenario, bundle, episodes=EPISODES, num_teams=NUM_TEAMS
        )
        identical = (
            weights_equal(straight.agent.q_net, resumed.agent.q_net)
            and weights_equal(straight.agent.target_net, resumed.agent.target_net)
            and straight.agent.epsilon == resumed.agent.epsilon
            and straight.agent.learn_steps == resumed.agent.learn_steps
            and straight.episode_service_rates == resumed.episode_service_rates
        )
        print(f"    bit-identical to the straight-through run: {identical}")
        assert identical

        print("\n[4] Corrupt the latest checkpoint, recover under supervision")
        latest = list_checkpoints(crashed_dir)[-1]
        state = latest / "state.npz"
        raw = bytearray(state.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        state.write_bytes(bytes(raw))
        supervisor = Supervisor(policy=RetryPolicy(max_attempts=2), name="example")
        recovered = supervised_training(
            scenario, bundle, checkpoint_dir=crashed_dir,
            episodes=EPISODES, num_teams=NUM_TEAMS, supervisor=supervisor,
        )
        for incident in supervisor.incidents:
            print(f"    incident [{incident.kind}] {incident.message}")
        print(f"    quarantined: "
              f"{[p.name for p in (crashed_dir / 'quarantine').iterdir()]}")
        print(f"    recovered run matches: "
              f"{weights_equal(straight.agent.q_net, recovered.agent.q_net)}")


if __name__ == "__main__":
    main()

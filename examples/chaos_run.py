"""Extension example — the resilient dispatch service under chaos.

The robustness layer (``examples/fault_injection.py``) degrades the
*world*; this example degrades the *software* as well and shows the
service shell absorbing both.  ``repro.service`` validates every GPS
record at ingest, puts circuit breakers with degraded fallbacks around
the SVM predictor and the RL policy, and holds each stage to a slice of
a per-tick deadline.  The chaos harness runs, per seed, a plain-engine
baseline, a clean guarded run (asserted bit-identical — the guards add
armour, never behavior), and a fault-composed chaos run, then checks the
invariants: no tick skipped, no exception escapes, served-under-chaos
within the degradation factor.

Run:  python examples/chaos_run.py
"""

from __future__ import annotations

from repro.service.chaos import ChaosConfig, ChaosHarness

PROFILE = "severe"
SEED = 0


def main() -> None:
    config = ChaosConfig(
        profile=PROFILE,
        seeds=(SEED,),
        population_size=500,
        num_teams=10,
        window_days=0.25,
    )
    print(f"Building Florence/Michael worlds (population {config.population_size})...")
    harness = ChaosHarness(config)
    print(f"Running the baseline/clean/chaos triple for seed {SEED} "
          f"under the {PROFILE!r} profile...\n")
    verdict = harness.run_seed(SEED)

    clean, chaos = verdict.clean_summary, verdict.chaos_summary
    print(f"{'':<28}{'clean':>10}{'chaos':>10}")
    rows = [
        ("served requests", verdict.clean_served, verdict.chaos_served),
        ("ticks completed/expected",
         f"{clean['ticks_completed']}/{clean['ticks_expected']}",
         f"{chaos['ticks_completed']}/{chaos['ticks_expected']}"),
        ("service incidents", clean["service_incidents"], chaos["service_incidents"]),
        ("records quarantined",
         clean["ingest"]["rejected_total"], chaos["ingest"]["rejected_total"]),
        ("predictor fallback serves",
         clean["predictor_fallback_serves"], chaos["predictor_fallback_serves"]),
        ("policy fallback cycles",
         clean["policy_fallback_cycles"], chaos["policy_fallback_cycles"]),
    ]
    for label, a, b in rows:
        print(f"{label:<28}{a!s:>10}{b!s:>10}")

    print("\nchaos quarantine reasons:")
    for reason, count in sorted(chaos["ingest"]["rejected_by_reason"].items()):
        print(f"  {reason:<26}{count:>6}")
    print("\nchaos service incident kinds:")
    for kind, count in sorted(chaos["service_incident_kinds"].items()):
        print(f"  {kind:<26}{count:>6}")

    print(f"\nclean run bit-identical to the plain engine: {verdict.equivalence_ok}")
    print(f"invariants: {'ALL HELD' if verdict.ok else 'VIOLATED'}")
    for violation in verdict.violations:
        print(f"  VIOLATION: {violation}")


if __name__ == "__main__":
    main()

"""Extension example — the event-driven simulation kernel.

The seed engine steps the clock on a fixed grid and pays the full tick
body every step; ``repro.sim.kernel.EventKernelSimulator`` schedules
work on an event heap (next arrival, next dispatch cycle, next request
activation, next breakdown/repair) over vectorized team state and skips
every tick it can prove is a no-op — while staying *bit-identical* to
the seed loop.

This example runs the same storm-onset workload through both engines at
a fine step, verifies the runs are identical event for event, and prints
the tick/event accounting and the wall-clock ratio.

Run:  python examples/event_kernel_run.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.charlotte import build_charlotte_scenario
from repro.dispatch.nearest import NearestDispatcher
from repro.perf.routing_cache import RoutingCache
from repro.sim import RescueSimulator, SimulationConfig
from repro.sim.kernel import EventKernelSimulator, build_simulator
from repro.sim.requests import RescueRequest
from repro.weather.storms import FLORENCE

NUM_TEAMS = 100
STEP_S = 0.25
HOURS = 2.0
NUM_REQUESTS = 60
SEED = 0


def make_workload(scenario):
    network = scenario.network
    rng = np.random.default_rng(SEED + 2)
    t0 = scenario.timeline.storm_start_s
    t1 = t0 + HOURS * 3_600.0
    requests = []
    for i, seg in enumerate(rng.choice(np.array(network.segment_ids()), size=NUM_REQUESTS)):
        segment = network.segment(int(seg))
        requests.append(
            RescueRequest(
                request_id=i,
                person_id=i,
                time_s=float(t0 + rng.uniform(0.0, (t1 - t0) * 0.8)),
                segment_id=int(seg),
                node_id=segment.u,
            )
        )
    return requests, t0, t1


def main() -> None:
    scenario = build_charlotte_scenario(FLORENCE)
    requests, t0, t1 = make_workload(scenario)
    config = SimulationConfig(
        t0_s=t0, t1_s=t1, num_teams=NUM_TEAMS, seed=SEED, step_s=STEP_S
    )

    start = time.perf_counter()
    seed_result = RescueSimulator(
        scenario, list(requests), NearestDispatcher(), config,
        router=RoutingCache(scenario.network),
    ).run()
    seed_s = time.perf_counter() - start

    # ``build_simulator`` is the production entry point; with the kernel
    # enabled (the default) it returns an EventKernelSimulator.
    kernel_sim = build_simulator(
        scenario, list(requests), NearestDispatcher(), config
    )
    assert isinstance(kernel_sim, EventKernelSimulator)
    start = time.perf_counter()
    kernel_result = kernel_sim.run()
    kernel_s = time.perf_counter() - start

    assert kernel_result.pickups == seed_result.pickups
    assert kernel_result.deliveries == seed_result.deliveries
    assert kernel_result.serving_samples == seed_result.serving_samples
    assert list(kernel_result.incidents) == list(seed_result.incidents)
    print("bit-identical: yes "
          f"({seed_result.num_served} pickups, "
          f"{len(seed_result.deliveries)} deliveries)")
    print(f"grid ticks          {kernel_sim.num_grid_ticks:6d}")
    print(f"ticks processed     {kernel_sim.ticks_processed:6d}")
    print(f"events processed    {kernel_sim.events_processed:6d}")
    print(f"fixed-step loop     {seed_s:6.2f} s")
    print(f"event kernel        {kernel_s:6.2f} s  ({seed_s / kernel_s:.1f}x)")


if __name__ == "__main__":
    main()

"""Extension example — MobiRescue on a custom disaster (Section IV-C5).

The paper notes that the disaster-related factors and the storm itself are
pluggable: "our designed method can be extended to other disasters".  This
example builds a *custom* storm — a slow-moving two-peak rain event over a
custom 5-region city — runs the full pipeline on it, and trains/evaluates
MobiRescue entirely within it (train on the first flooded days, evaluate on
the last).

Run:  python examples/custom_disaster.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MobiRescueSystem
from repro.data.charlotte import CharlotteScenario
from repro.geo.coords import CHARLOTTE_BBOX, LocalProjection
from repro.geo.flood import FloodModel
from repro.geo.regions import RegionPartition, RegionProfile
from repro.geo.terrain import TerrainField
from repro.hospitals.hospitals import place_hospitals
from repro.mobility.generator import MobilityTraceGenerator, TraceConfig
from repro.mobility.population import PopulationConfig, generate_population
from repro.roadnet.generator import RoadNetworkConfig, generate_road_network
from repro.sim import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.requests import remap_to_operable, requests_from_rescues
from repro.weather.fields import RegionWeatherField
from repro.weather.service import WeatherService
from repro.weather.storms import SECONDS_PER_DAY, StormTimeline

POPULATION = 600

#: A custom 5-region city: a riverside industrial core (most exposed),
#: two residential shelves, a hillside suburb and a plateau.
CUSTOM_PROFILES = (
    RegionProfile(1, "hillside", 90.0, 40.0, 245.0, (0.2, 0.8)),
    RegionProfile(2, "north shelf", 120.0, 55.0, 210.0, (0.65, 0.75)),
    RegionProfile(3, "riverside core", 150.0, 70.0, 178.0, (0.45, 0.4)),
    RegionProfile(4, "south shelf", 130.0, 60.0, 200.0, (0.75, 0.2)),
    RegionProfile(5, "plateau", 100.0, 45.0, 232.0, (0.15, 0.25)),
)

#: A slow 4-day rain event cresting late — think stalled frontal system.
CUSTOM_STORM = StormTimeline(
    name="StalledFront",
    day0_label="Oct 1",
    total_days=16,
    storm_start_day=4.0,
    storm_end_day=8.0,
    rise_tau_days=4.5,
    recede_tau_days=6.0,
    crest_lag_days=2.0,
    crest_gain=1.8,
)


def build_custom_scenario() -> CharlotteScenario:
    projection = LocalProjection(CHARLOTTE_BBOX)
    partition = RegionPartition(
        CUSTOM_PROFILES, projection.width_m, projection.height_m
    )
    terrain = TerrainField(partition)
    network = generate_road_network(
        partition, RoadNetworkConfig(grid_cols=16, grid_rows=16, seed=99)
    )
    hospitals = place_hospitals(network, partition)
    field = RegionWeatherField(partition, CUSTOM_STORM)
    flood = FloodModel(terrain, field.severity_fn())
    weather = WeatherService(field, terrain, flood)
    return CharlotteScenario(
        bbox=CHARLOTTE_BBOX,
        projection=projection,
        partition=partition,
        terrain=terrain,
        network=network,
        hospitals=hospitals,
        timeline=CUSTOM_STORM,
        weather_field=field,
        flood=flood,
        weather=weather,
    )


def main() -> None:
    print("Building a custom 5-region city under a stalled frontal system...")
    scenario = build_custom_scenario()
    persons = generate_population(
        scenario.network,
        scenario.partition,
        PopulationConfig(size=POPULATION, region_weights={3: 2.0}),
        excluded_nodes=frozenset(h.node_id for h in scenario.hospitals),
    )
    generator = MobilityTraceGenerator(
        scenario.network,
        scenario.partition,
        scenario.terrain,
        scenario.weather_field,
        scenario.flood,
        scenario.hospitals,
        TraceConfig(seed=5),
    )
    bundle = generator.generate(persons)
    per_day = {}
    for r in bundle.rescues:
        per_day.setdefault(int(r.request_time_s // SECONDS_PER_DAY), 0)
        per_day[int(r.request_time_s // SECONDS_PER_DAY)] += 1
    print(f"  {len(bundle.trace):,} fixes, {len(bundle.rescues)} rescues; "
          f"requests/day {dict(sorted(per_day.items()))}")

    print("Training MobiRescue on the custom disaster...")
    system = MobiRescueSystem.train(scenario, bundle, episodes=3, num_teams=20)

    # Evaluate on the crest day (the busiest).
    eval_day = max(per_day, key=per_day.get)
    t0, t1 = eval_day * SECONDS_PER_DAY, (eval_day + 1) * SECONDS_PER_DAY
    requests = remap_to_operable(
        requests_from_rescues(bundle.rescues, t0, t1),
        scenario.network,
        scenario.flood,
    )
    dispatcher = system.deploy(scenario, bundle)
    sim = RescueSimulator(
        scenario,
        requests,
        dispatcher,
        SimulationConfig(
            t0_s=t0, t1_s=t1, num_teams=max(10, len(requests)), seed=1
        ),
    )
    result = sim.run()
    metrics = SimulationMetrics(result)
    tl = metrics.timeliness_values()
    print(f"\nEvaluation day {eval_day}: {len(requests)} requests")
    print(f"served {result.num_served}, timely {metrics.total_timely_served}, "
          f"median timeliness "
          f"{np.median(tl) / 60:.1f} min" if len(tl) else "no pickups")
    print("\nThe same library components handled a different storm shape,")
    print("region layout and factor profile without modification.")


if __name__ == "__main__":
    main()

"""Extension example — parallel DQN experience collection with fault tolerance.

Serial online training threads one mutating agent through every episode,
so the parallelizable unit is the *collection episode*: each episode
restores a fresh agent from the same pristine post-pretrain state, runs
one exploration day of Hurricane Michael, and ships the transitions it
gathered.  This example fans those episodes across two supervised worker
processes, proves the merged campaign is **bit-identical** to the serial
reference (the executor's core guarantee — worker count, completion
order and worker deaths never change a byte), then feeds the merged
transitions into one shared replay buffer and takes a few learning steps
on it.

Along the way it prints the campaign report: worker deaths, quarantined
episodes, incidents — all zero on a healthy machine, but the same run
survives real worker kills (try `repro chaos --profile worker-kill`).

Run:  python examples/parallel_training.py
"""

from __future__ import annotations

import numpy as np

from repro.core import MobiRescueConfig
from repro.core.rl_dispatcher import make_agent
from repro.data import build_michael_dataset
from repro.rollouts import (
    EpisodeSpec,
    RolloutConfig,
    RolloutExecutor,
    build_training_collect_task,
    run_rollouts_serial,
)

POPULATION = 300
EPISODES = 4
NUM_WORKERS = 2
NUM_TEAMS = 12
SEED = 0


def main() -> None:
    print(f"Building the Michael dataset (population {POPULATION})...")
    scenario, bundle = build_michael_dataset(population_size=POPULATION)

    cfg = MobiRescueConfig(seed=SEED)
    print("Pretraining the agent once; every episode restores this state...")
    task = build_training_collect_task(
        scenario, bundle, cfg, num_teams=NUM_TEAMS
    )
    specs = [
        EpisodeSpec(episode_id=i, kind=task.kind, seed=SEED)
        for i in range(EPISODES)
    ]

    print(f"Collecting {EPISODES} episodes serially (the reference)...")
    serial = run_rollouts_serial(task, specs)

    print(f"Collecting the same campaign on {NUM_WORKERS} workers...")
    executor = RolloutExecutor(
        task,
        config=RolloutConfig(num_workers=NUM_WORKERS, beat_interval_s=0.05),
        seed=SEED,
    )
    report = executor.run(specs)

    print(f"\n  episodes merged:   {report.completed}/{report.total}")
    print(f"  worker deaths:     {report.worker_deaths}")
    print(f"  quarantined:       {list(report.quarantined_ids)}")
    print(f"  zero lost:         {report.zero_lost}")
    identical = report.merged.fingerprint() == serial.merged.fingerprint()
    print(f"  bit-identical to serial: {identical}")
    assert identical, "parallel collection diverged from the serial reference"

    agent = make_agent(cfg)
    agent.set_state(task.agent_state)
    pushed = report.merged.feed_replay(agent.buffer)
    print(f"\nFed {pushed} merged transitions into the shared replay buffer "
          f"({len(agent.buffer)} in the ring).")

    losses = [agent.learn() for _ in range(10)]
    losses = [x for x in losses if x is not None]
    if losses:
        print(f"{len(losses)} learning steps on the merged buffer: "
              f"mean loss {float(np.mean(losses)):.4f}")
    else:
        print("Buffer still below one batch; collect more episodes to learn.")
    print("\nDone: parallel collection matched the serial bytes exactly.")


if __name__ == "__main__":
    main()

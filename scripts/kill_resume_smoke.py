"""Kill-and-resume smoke test: SIGKILL training mid-run, resume, compare.

The strongest crash-safety claim in this repo is that checkpointed
training survives an uncontrolled kill with **bit-identical** results.
This script proves it with a real SIGKILL, not a simulated one:

1. train ``EPISODES`` episodes straight through (the reference run),
2. spawn a child process doing the identical run into a second
   checkpoint directory, wait until its second checkpoint is committed,
   then SIGKILL it mid-episode,
3. resume the killed run under the supervisor (which also exercises
   quarantine if the kill tore anything) and assert the final Q-network
   weights, target weights, epsilon, learn-step count and per-episode
   service rates all match the reference exactly.

A second phase applies the same treatment to the parallel rollout
coordinator: SIGKILL the whole coordinator (workers included) mid-
campaign, resume against the same result store, and assert the merged
fingerprint is bit-identical to an uninterrupted serial run.

A third phase targets the self-healing training loop: a victim runs
``sentinel_training`` with train-mild fault injection, the parent waits
for the journal to record the first rollback recovery, SIGKILLs the
victim, resumes — and asserts the resumed recovery is bit-identical to
an *uninterrupted* faulted run.  (train-mild keeps every recovery on
the ladder's rollback rung, which makes that equivalence hold for any
kill timing.)

Exit status 0 on success, 1 on any mismatch.  CI runs this on every
push.  Usage::

    python scripts/kill_resume_smoke.py                    # all phases
    python scripts/kill_resume_smoke.py child DIR          # internal: victim
    python scripts/kill_resume_smoke.py rollout-child DIR  # internal: victim
    python scripts/kill_resume_smoke.py sentinel-child DIR # internal: victim
"""

from __future__ import annotations

import json
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import MobiRescueConfig, train_mobirescue
from repro.core.persistence import CHECKPOINT_PREFIX, list_checkpoints

POPULATION = 300
EPISODES = 4
KILL_AFTER = 2  # SIGKILL once this many checkpoints are committed
NUM_TEAMS = 12
CFG = MobiRescueConfig(seed=0)
KILL_TIMEOUT_S = 600.0

# Rollout phase: episodes are stretched with busy-work so the SIGKILL
# reliably lands mid-campaign, and the kill fires once this many result
# cells are committed to the store.
ROLLOUT_EPISODES = 8
ROLLOUT_KILL_AFTER_CELLS = 3
ROLLOUT_SEED = 11
ROLLOUT_WORKERS = 2

# Sentinel phase: train-mild keeps every recovery on the rollback rung
# (all max_attempts=1, transient), so resumed recovery == uninterrupted
# recovery bit-for-bit no matter where the SIGKILL lands.
SENTINEL_EPISODES = 3
SENTINEL_PROFILE = "train-mild"
SENTINEL_SEED = 0  # train-mild @ seed 0 fires faults in episodes 0 and 1


def rollout_task_and_specs():
    from repro.rollouts import EpisodeSpec, SyntheticTask

    task = SyntheticTask(steps=6, state_dim=4, work_size=800)
    specs = [
        EpisodeSpec(episode_id=i, kind=task.kind, seed=ROLLOUT_SEED)
        for i in range(ROLLOUT_EPISODES)
    ]
    return task, specs


def build_dataset():
    from repro.data import build_michael_dataset

    return build_michael_dataset(population_size=POPULATION)


def run_child(checkpoint_dir: str) -> None:
    """The victim process: the full training run, checkpointing as it goes."""
    scenario, bundle = build_dataset()
    train_mobirescue(
        scenario, bundle, CFG, episodes=EPISODES, num_teams=NUM_TEAMS,
        checkpoint_dir=checkpoint_dir,
    )


def run_rollout_child(store_dir: str) -> None:
    """The rollout victim: a parallel campaign writing into the store."""
    from repro.rollouts import RolloutConfig, RolloutExecutor, RolloutStore

    task, specs = rollout_task_and_specs()
    executor = RolloutExecutor(
        task,
        config=RolloutConfig(num_workers=ROLLOUT_WORKERS, beat_interval_s=0.05),
        seed=ROLLOUT_SEED,
        store=RolloutStore(pathlib.Path(store_dir)),
    )
    executor.run(specs)


def wait_and_kill_rollout(proc: subprocess.Popen, store_dir: pathlib.Path) -> int:
    """SIGKILL the coordinator once enough result cells are committed."""
    deadline = time.monotonic() + KILL_TIMEOUT_S
    while time.monotonic() < deadline:
        cells = len(list(store_dir.glob("episode=*.json")))
        if cells >= ROLLOUT_KILL_AFTER_CELLS:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            return len(list(store_dir.glob("episode=*.json")))
        if proc.poll() is not None:
            print(f"warning: rollout child finished before the kill "
                  f"(rc={proc.returncode})")
            return len(list(store_dir.glob("episode=*.json")))
        time.sleep(0.02)
    proc.kill()
    proc.wait()
    raise SystemExit(
        f"rollout child committed fewer than {ROLLOUT_KILL_AFTER_CELLS} "
        f"cells within {KILL_TIMEOUT_S:.0f}s"
    )


def rollout_phase() -> dict[str, bool]:
    """SIGKILL the rollout coordinator mid-campaign, resume, compare."""
    from repro.rollouts import (
        RolloutConfig,
        RolloutExecutor,
        RolloutStore,
        run_rollouts_serial,
    )

    task, specs = rollout_task_and_specs()
    print(f"[smoke] rollout reference: {ROLLOUT_EPISODES} episodes serial")
    reference = run_rollouts_serial(task, specs)

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = pathlib.Path(tmp) / "rollout-store"
        store_dir.mkdir()
        print(f"[smoke] spawning rollout victim ({ROLLOUT_WORKERS} workers); "
              f"killing after {ROLLOUT_KILL_AFTER_CELLS} committed cells...")
        proc = subprocess.Popen(
            [sys.executable, __file__, "rollout-child", str(store_dir)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT,
        )
        n_cells = wait_and_kill_rollout(proc, store_dir)
        print(f"[smoke] SIGKILLed the coordinator; {n_cells} committed "
              f"result cell(s) on disk")

        print("[smoke] resuming the campaign against the same store...")
        executor = RolloutExecutor(
            task,
            config=RolloutConfig(
                num_workers=ROLLOUT_WORKERS, beat_interval_s=0.05
            ),
            seed=ROLLOUT_SEED,
            store=RolloutStore(store_dir),
        )
        resumed = executor.run(specs)
        print(f"[smoke] resumed: {resumed.completed}/{resumed.total} episodes "
              f"({resumed.from_store} from the store)")

    return {
        "rollout zero lost": resumed.zero_lost and not resumed.quarantined_ids,
        "rollout resumed from store": resumed.from_store >= 1,
        "rollout fingerprint": (
            resumed.merged.fingerprint() == reference.merged.fingerprint()
        ),
    }


def run_sentinel_victim(checkpoint_dir: str, scenario=None, bundle=None):
    """One self-healing training run with train-mild fault injection."""
    from repro.core.config import MobiRescueConfig
    from repro.faults import TrainingFaultInjector, get_train_profile
    from repro.training import sentinel_training

    if scenario is None:
        scenario, bundle = build_dataset()
    injector = TrainingFaultInjector(
        get_train_profile(SENTINEL_PROFILE), seed=SENTINEL_SEED
    )
    return sentinel_training(
        scenario,
        bundle,
        MobiRescueConfig(seed=SENTINEL_SEED),
        episodes=SENTINEL_EPISODES,
        num_teams=NUM_TEAMS,
        checkpoint_dir=checkpoint_dir,
        injector=injector,
    )


def wait_and_kill_sentinel(
    proc: subprocess.Popen, journal_path: pathlib.Path
) -> None:
    """SIGKILL the victim once its journal records the first recovery."""
    deadline = time.monotonic() + KILL_TIMEOUT_S
    while time.monotonic() < deadline:
        if journal_path.exists():
            try:
                journal = json.loads(journal_path.read_text())
            except json.JSONDecodeError:
                journal = {}  # unreachable with atomic writes, but harmless
            if journal.get("recoveries"):
                proc.send_signal(signal.SIGKILL)
                proc.wait()
                return
        if proc.poll() is not None:
            print(f"warning: sentinel child finished before the kill "
                  f"(rc={proc.returncode})")
            return
        time.sleep(0.02)
    proc.kill()
    proc.wait()
    raise SystemExit(
        f"sentinel child recorded no recovery within {KILL_TIMEOUT_S:.0f}s"
    )


def sentinel_phase(scenario, bundle) -> dict[str, bool]:
    """SIGKILL self-healing training mid-recovery, resume, compare."""
    print(f"[smoke] sentinel reference: {SENTINEL_EPISODES} episodes with "
          f"{SENTINEL_PROFILE} faults, uninterrupted")
    with tempfile.TemporaryDirectory() as tmp:
        ref_dir = pathlib.Path(tmp) / "sentinel-ref"
        killed_dir = pathlib.Path(tmp) / "sentinel-killed"
        killed_dir.mkdir()
        reference = run_sentinel_victim(str(ref_dir), scenario, bundle)

        print("[smoke] spawning sentinel victim; killing at the first "
              "journalled recovery...")
        proc = subprocess.Popen(
            [sys.executable, __file__, "sentinel-child", str(killed_dir)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT,
        )
        wait_and_kill_sentinel(proc, killed_dir / "sentinel-journal.json")

        print("[smoke] resuming the faulted run from journal + checkpoints...")
        resumed = run_sentinel_victim(str(killed_dir), scenario, bundle)

    ref_state = reference.trained.agent.get_state()
    res_state = resumed.trained.agent.get_state()
    return {
        "sentinel faults detected": bool(reference.anomalies),
        "sentinel recovery rolled back": bool(resumed.recoveries),
        "sentinel agent state": (
            set(ref_state) == set(res_state)
            and all(np.array_equal(ref_state[k], res_state[k]) for k in ref_state)
        ),
        "sentinel service rates": (
            reference.trained.episode_service_rates
            == resumed.trained.episode_service_rates
        ),
        "sentinel anomaly trail": (
            reference.journal["anomaly_count"] == resumed.journal["anomaly_count"]
        ),
    }


def wait_and_kill(proc: subprocess.Popen, checkpoint_dir: pathlib.Path) -> int:
    """SIGKILL ``proc`` once ``KILL_AFTER`` checkpoints are committed."""
    target = checkpoint_dir / f"{CHECKPOINT_PREFIX}{KILL_AFTER:06d}" / "manifest.json"
    deadline = time.monotonic() + KILL_TIMEOUT_S
    while time.monotonic() < deadline:
        if target.exists():
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            return len(list_checkpoints(checkpoint_dir))
        if proc.poll() is not None:
            # Finished before we could kill it — still a valid (if weaker)
            # resume test; flag it so the log shows what happened.
            print(f"warning: child finished before the kill (rc={proc.returncode})")
            return len(list_checkpoints(checkpoint_dir))
        time.sleep(0.05)
    proc.kill()
    proc.wait()
    raise SystemExit(f"child produced no {target.parent.name} within "
                     f"{KILL_TIMEOUT_S:.0f}s")


def weights_equal(a, b) -> bool:
    return all(
        np.array_equal(wa, wb) and np.array_equal(ba, bb)
        for (wa, ba), (wb, bb) in zip(a.get_weights(), b.get_weights())
    )


def main() -> int:
    from repro.core import Supervisor, supervised_training

    print(f"[smoke] building dataset (population {POPULATION})...")
    scenario, bundle = build_dataset()

    with tempfile.TemporaryDirectory() as tmp:
        straight_dir = pathlib.Path(tmp) / "straight"
        killed_dir = pathlib.Path(tmp) / "killed"
        killed_dir.mkdir()

        print(f"[smoke] reference run: {EPISODES} episodes straight through")
        straight = train_mobirescue(
            scenario, bundle, CFG, episodes=EPISODES, num_teams=NUM_TEAMS,
            checkpoint_dir=straight_dir,
        )

        print("[smoke] spawning victim and waiting for "
              f"checkpoint {KILL_AFTER} to commit...")
        proc = subprocess.Popen(
            [sys.executable, __file__, "child", str(killed_dir)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT,
        )
        n_committed = wait_and_kill(proc, killed_dir)
        print(f"[smoke] SIGKILLed the victim; {n_committed} committed "
              f"checkpoint(s) on disk")

        print(f"[smoke] resuming to {EPISODES} episodes under supervision...")
        supervisor = Supervisor(name="smoke")
        resumed = supervised_training(
            scenario, bundle, checkpoint_dir=killed_dir,
            episodes=EPISODES, num_teams=NUM_TEAMS, supervisor=supervisor,
        )
        for incident in supervisor.incidents:
            print(f"[smoke] incident [{incident.kind}] {incident.message}")

        checks = {
            "q-network weights": weights_equal(straight.agent.q_net, resumed.agent.q_net),
            "target weights": weights_equal(
                straight.agent.target_net, resumed.agent.target_net
            ),
            "epsilon": straight.agent.epsilon == resumed.agent.epsilon,
            "learn steps": straight.agent.learn_steps == resumed.agent.learn_steps,
            "service rates": (
                straight.episode_service_rates == resumed.episode_service_rates
            ),
        }
    checks.update(rollout_phase())
    checks.update(sentinel_phase(scenario, bundle))

    for name, ok in checks.items():
        print(f"[smoke] {name}: {'identical' if ok else 'MISMATCH'}")
    if all(checks.values()):
        print("[smoke] PASS: kill-and-resume is bit-identical")
        return 0
    print("[smoke] FAIL: resumed run diverged from the reference")
    return 1


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "child":
        run_child(sys.argv[2])
        sys.exit(0)
    if len(sys.argv) >= 3 and sys.argv[1] == "rollout-child":
        run_rollout_child(sys.argv[2])
        sys.exit(0)
    if len(sys.argv) >= 3 and sys.argv[1] == "sentinel-child":
        run_sentinel_victim(sys.argv[2])
        sys.exit(0)
    sys.exit(main())

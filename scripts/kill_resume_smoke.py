"""Kill-and-resume smoke test: SIGKILL training mid-run, resume, compare.

The strongest crash-safety claim in this repo is that checkpointed
training survives an uncontrolled kill with **bit-identical** results.
This script proves it with a real SIGKILL, not a simulated one:

1. train ``EPISODES`` episodes straight through (the reference run),
2. spawn a child process doing the identical run into a second
   checkpoint directory, wait until its second checkpoint is committed,
   then SIGKILL it mid-episode,
3. resume the killed run under the supervisor (which also exercises
   quarantine if the kill tore anything) and assert the final Q-network
   weights, target weights, epsilon, learn-step count and per-episode
   service rates all match the reference exactly.

Exit status 0 on success, 1 on any mismatch.  CI runs this on every
push.  Usage::

    python scripts/kill_resume_smoke.py           # the whole smoke test
    python scripts/kill_resume_smoke.py child DIR # internal: the victim
"""

from __future__ import annotations

import pathlib
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import MobiRescueConfig, train_mobirescue
from repro.core.persistence import CHECKPOINT_PREFIX, list_checkpoints

POPULATION = 300
EPISODES = 4
KILL_AFTER = 2  # SIGKILL once this many checkpoints are committed
NUM_TEAMS = 12
CFG = MobiRescueConfig(seed=0)
KILL_TIMEOUT_S = 600.0


def build_dataset():
    from repro.data import build_michael_dataset

    return build_michael_dataset(population_size=POPULATION)


def run_child(checkpoint_dir: str) -> None:
    """The victim process: the full training run, checkpointing as it goes."""
    scenario, bundle = build_dataset()
    train_mobirescue(
        scenario, bundle, CFG, episodes=EPISODES, num_teams=NUM_TEAMS,
        checkpoint_dir=checkpoint_dir,
    )


def wait_and_kill(proc: subprocess.Popen, checkpoint_dir: pathlib.Path) -> int:
    """SIGKILL ``proc`` once ``KILL_AFTER`` checkpoints are committed."""
    target = checkpoint_dir / f"{CHECKPOINT_PREFIX}{KILL_AFTER:06d}" / "manifest.json"
    deadline = time.monotonic() + KILL_TIMEOUT_S
    while time.monotonic() < deadline:
        if target.exists():
            proc.send_signal(signal.SIGKILL)
            proc.wait()
            return len(list_checkpoints(checkpoint_dir))
        if proc.poll() is not None:
            # Finished before we could kill it — still a valid (if weaker)
            # resume test; flag it so the log shows what happened.
            print(f"warning: child finished before the kill (rc={proc.returncode})")
            return len(list_checkpoints(checkpoint_dir))
        time.sleep(0.05)
    proc.kill()
    proc.wait()
    raise SystemExit(f"child produced no {target.parent.name} within "
                     f"{KILL_TIMEOUT_S:.0f}s")


def weights_equal(a, b) -> bool:
    return all(
        np.array_equal(wa, wb) and np.array_equal(ba, bb)
        for (wa, ba), (wb, bb) in zip(a.get_weights(), b.get_weights())
    )


def main() -> int:
    from repro.core import Supervisor, supervised_training

    print(f"[smoke] building dataset (population {POPULATION})...")
    scenario, bundle = build_dataset()

    with tempfile.TemporaryDirectory() as tmp:
        straight_dir = pathlib.Path(tmp) / "straight"
        killed_dir = pathlib.Path(tmp) / "killed"
        killed_dir.mkdir()

        print(f"[smoke] reference run: {EPISODES} episodes straight through")
        straight = train_mobirescue(
            scenario, bundle, CFG, episodes=EPISODES, num_teams=NUM_TEAMS,
            checkpoint_dir=straight_dir,
        )

        print("[smoke] spawning victim and waiting for "
              f"checkpoint {KILL_AFTER} to commit...")
        proc = subprocess.Popen(
            [sys.executable, __file__, "child", str(killed_dir)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.STDOUT,
        )
        n_committed = wait_and_kill(proc, killed_dir)
        print(f"[smoke] SIGKILLed the victim; {n_committed} committed "
              f"checkpoint(s) on disk")

        print(f"[smoke] resuming to {EPISODES} episodes under supervision...")
        supervisor = Supervisor(name="smoke")
        resumed = supervised_training(
            scenario, bundle, checkpoint_dir=killed_dir,
            episodes=EPISODES, num_teams=NUM_TEAMS, supervisor=supervisor,
        )
        for incident in supervisor.incidents:
            print(f"[smoke] incident [{incident.kind}] {incident.message}")

        checks = {
            "q-network weights": weights_equal(straight.agent.q_net, resumed.agent.q_net),
            "target weights": weights_equal(
                straight.agent.target_net, resumed.agent.target_net
            ),
            "epsilon": straight.agent.epsilon == resumed.agent.epsilon,
            "learn steps": straight.agent.learn_steps == resumed.agent.learn_steps,
            "service rates": (
                straight.episode_service_rates == resumed.episode_service_rates
            ),
        }
        for name, ok in checks.items():
            print(f"[smoke] {name}: {'identical' if ok else 'MISMATCH'}")
        if all(checks.values()):
            print("[smoke] PASS: kill-and-resume is bit-identical")
            return 0
        print("[smoke] FAIL: resumed run diverged from the reference")
        return 1


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "child":
        run_child(sys.argv[2])
        sys.exit(0)
    sys.exit(main())

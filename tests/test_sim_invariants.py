"""Property-style invariant tests for the simulator.

Random request sets and random (but valid) dispatchers must never violate
the request lifecycle: at-most-once pickup, delivery only after pickup,
capacity bounds, causality of timestamps.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.charlotte import build_charlotte_scenario
from repro.dispatch.base import Dispatcher, command_depot, command_segment
from repro.dispatch.nearest import NearestDispatcher
from repro.roadnet.generator import RoadNetworkConfig
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.requests import RescueRequest
from repro.weather.storms import FLORENCE

DAY = 86_400.0


@pytest.fixture(scope="module")
def scen():
    return build_charlotte_scenario(FLORENCE, RoadNetworkConfig(grid_cols=7, grid_rows=7))


class RandomDispatcher(Dispatcher):
    """Sends every assignable team to a uniformly random operable segment
    (or the depot) each cycle — a worst-case-chaotic but valid policy."""

    name = "Random"
    computation_delay_s = 30.0

    def __init__(self, seed: int):
        self.rng = np.random.default_rng(seed)

    def dispatch(self, obs):
        commands = {}
        operable = [s for s in obs.network.segment_ids() if s not in obs.closed]
        for tv in obs.assignable_teams():
            if self.rng.random() < 0.25 or not operable:
                commands[tv.team_id] = command_depot()
            else:
                commands[tv.team_id] = command_segment(
                    int(self.rng.choice(operable))
                )
        return commands


def random_requests(scen, rng, n: int, t0: float, span_s: float):
    nodes = scen.network.landmark_ids()
    out = []
    for i in range(n):
        node = int(rng.choice(nodes))
        seg = scen.network.out_segments(node)[0].segment_id
        out.append(RescueRequest(i, 1_000 + i, t0 + float(rng.uniform(0, span_s)), seg, node))
    return out


def check_invariants(result, requests, capacity: int):
    req_by_id = {r.request_id: r for r in requests}
    # Pickups reference real requests, at most once each.
    picked_ids = [p.request_id for p in result.pickups]
    assert len(picked_ids) == len(set(picked_ids))
    assert set(picked_ids) <= set(req_by_id)
    for p in result.pickups:
        assert p.t_s >= req_by_id[p.request_id].time_s - 1e-6
        assert p.driving_delay_s >= 0
        assert p.timeliness_s >= 0
        assert p.timeliness_s >= p.driving_delay_s - 1e-6 or p.driving_delay_s == 0
    # Deliveries only for picked requests, after their pickups, once each.
    pickup_t = {p.request_id: p.t_s for p in result.pickups}
    delivered_ids = [d.request_id for d in result.deliveries]
    assert len(delivered_ids) == len(set(delivered_ids))
    assert set(delivered_ids) <= set(pickup_t)
    for d in result.deliveries:
        assert d.t_s >= pickup_t[d.request_id] - 1e-6
    # A team can never hold more passengers than its capacity: pickups
    # between consecutive deliveries of one team are bounded.
    per_team_events = {}
    for p in result.pickups:
        per_team_events.setdefault(p.team_id, []).append((p.t_s, +1))
    for d in result.deliveries:
        per_team_events.setdefault(d.team_id, []).append((d.t_s, 0))
    for team_id, events in per_team_events.items():
        onboard = 0
        for _, kind in sorted(events, key=lambda e: (e[0], -e[1])):
            if kind == +1:
                onboard += 1
                assert onboard <= capacity
            else:
                onboard = 0  # deliveries drop everyone


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10_000))
def test_random_dispatcher_invariants(seed):
    scen = build_charlotte_scenario(FLORENCE, RoadNetworkConfig(grid_cols=7, grid_rows=7))
    rng = np.random.default_rng(seed)
    t0 = 2 * DAY
    requests = random_requests(scen, rng, n=12, t0=t0, span_s=6 * 3_600)
    capacity = int(rng.integers(1, 6))
    sim = RescueSimulator(
        scen,
        requests,
        RandomDispatcher(seed),
        SimulationConfig(
            t0_s=t0, t1_s=t0 + 12 * 3_600, num_teams=6,
            team_capacity=capacity, seed=seed,
        ),
    )
    result = sim.run()
    check_invariants(result, requests, capacity)


@settings(max_examples=4, deadline=None)
@given(st.integers(0, 10_000))
def test_nearest_dispatcher_invariants_during_flood(seed):
    """Invariants hold mid-disaster, with closures and re-anchoring live."""
    scen = build_charlotte_scenario(FLORENCE, RoadNetworkConfig(grid_cols=7, grid_rows=7))
    rng = np.random.default_rng(seed)
    t0 = 22 * DAY  # Sep 16, flood near crest
    requests = random_requests(scen, rng, n=10, t0=t0, span_s=8 * 3_600)
    sim = RescueSimulator(
        scen,
        requests,
        NearestDispatcher(),
        SimulationConfig(t0_s=t0, t1_s=t0 + 16 * 3_600, num_teams=5, seed=seed),
    )
    result = sim.run()
    check_invariants(result, requests, 5)


class TestDegenerateConditions:
    def test_everything_flooded_no_crash(self, scen):
        """A dispatcher targeting closed segments simply strands teams."""

        class StubbornDispatcher(Dispatcher):
            name = "Stubborn"

            def dispatch(self, obs):
                closed = sorted(obs.closed)
                if not closed:
                    return {}
                return {
                    tv.team_id: command_segment(closed[0])
                    for tv in obs.assignable_teams()
                }

        t0 = 22 * DAY
        sim = RescueSimulator(
            scen, [], StubbornDispatcher(),
            SimulationConfig(t0_s=t0, t1_s=t0 + 2 * 3_600, num_teams=3),
        )
        result = sim.run()
        assert result.num_served == 0

    def test_zero_requests(self, scen):
        sim = RescueSimulator(
            scen, [], NearestDispatcher(),
            SimulationConfig(t0_s=0.0, t1_s=3_600.0, num_teams=2),
        )
        result = sim.run()
        assert result.num_served == 0
        assert result.deliveries == []

    def test_request_flood_wave_reanchoring(self, scen):
        """A request whose anchor floods mid-run is still servable."""
        t0 = 21 * DAY  # flood rising through the day
        rng = np.random.default_rng(3)
        # Pick a node whose first out-segment closes at some point today.
        target = None
        for node in scen.network.landmark_ids():
            seg = scen.network.out_segments(node)[0]
            closed_early = seg.segment_id in scen.network.closed_segments(
                scen.flood, t0
            )
            closed_late = seg.segment_id in scen.network.closed_segments(
                scen.flood, t0 + 20 * 3_600
            )
            if not closed_early and closed_late:
                target = (node, seg.segment_id)
                break
        if target is None:
            pytest.skip("no segment floods during the window at this scale")
        node, seg_id = target
        req = RescueRequest(0, 1, t0 + 3_600.0, seg_id, node)
        sim = RescueSimulator(
            scen, [req], NearestDispatcher(),
            SimulationConfig(t0_s=t0, t1_s=t0 + 24 * 3_600, num_teams=4, seed=1),
        )
        result = sim.run()
        assert result.num_served == 1

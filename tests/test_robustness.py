"""Robustness sweep: degradation table over fault profiles × methods."""

import pytest

from repro.eval.harness import HarnessConfig
from repro.eval.robustness import (
    RobustnessCell,
    RobustnessConfig,
    RobustnessSweep,
    format_degradation_table,
)


@pytest.fixture(scope="module")
def sweep_cells(florence_small, michael_small):
    """One small sweep over cheap (non-learning) methods, reused below."""
    sweep = RobustnessSweep(
        florence_small,
        michael_small,
        RobustnessConfig(
            profiles=("none", "severe"),
            methods=("Nearest", "Schedule"),
            harness=HarnessConfig(seed=0),
        ),
    )
    return sweep.run()


class TestRobustnessConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RobustnessConfig(profiles=())
        with pytest.raises(ValueError):
            RobustnessConfig(methods=())


class TestRobustnessSweep:
    def test_cell_grid_complete(self, sweep_cells):
        assert len(sweep_cells) == 4
        assert {(c.profile, c.method) for c in sweep_cells} == {
            ("none", "Nearest"), ("none", "Schedule"),
            ("severe", "Nearest"), ("severe", "Schedule"),
        }

    def test_none_profile_records_no_fault_incidents(self, sweep_cells):
        for c in sweep_cells:
            if c.profile == "none":
                assert c.fallback_activations == 0
                assert c.dropped_commands == 0
                assert c.breakdowns == 0

    def test_severe_profile_completes_without_exception(self, sweep_cells):
        # The run() above not raising IS the property; sanity-check values.
        for c in sweep_cells:
            assert c.served >= 0
            assert 0.0 <= c.service_rate <= 1.0
            assert c.timely <= c.served

    def test_deterministic_across_sweeps(self, sweep_cells, florence_small, michael_small):
        again = RobustnessSweep(
            florence_small,
            michael_small,
            RobustnessConfig(
                profiles=("severe",),
                methods=("Nearest",),
                harness=HarnessConfig(seed=0),
            ),
        ).run()
        ref = next(
            c for c in sweep_cells if c.profile == "severe" and c.method == "Nearest"
        )
        assert again[0] == ref


class TestDegradationTable:
    def test_format(self, sweep_cells):
        table = format_degradation_table(sweep_cells)
        assert "Degradation under fault injection" in table
        assert "severe" in table
        assert "dropped cmds" in table
        assert "Nearest" in table

    def test_format_handles_empty_metrics(self):
        cell = RobustnessCell(
            profile="none", method="Idle", served=0, timely=0, service_rate=0.0,
            median_delay_s=float("nan"), mean_timeliness_s=float("nan"),
            fallback_activations=0, dropped_commands=0, breakdowns=0, reroutes=0,
        )
        table = format_degradation_table([cell])
        assert "-" in table

"""The fault-tolerant rollout executor: supervision, faults, resume.

These tests spawn *real* forked worker processes and inject *real*
process deaths (``os._exit`` mid-episode), stalls longer than the
heartbeat timeout, and checksum-breaking result corruption — then
assert the merged output is bit-identical to the serial reference and
that no episode is ever silently lost.  The supervisor state machine is
additionally unit-tested in isolation on a :class:`ManualClock`.
"""

from __future__ import annotations

import json

import pytest

from repro.core.runner import RetryPolicy
from repro.faults import (
    WorkerCorruptResultFault,
    WorkerCrashFault,
    WorkerFaultInjector,
    WorkerStallFault,
    get_worker_profile,
)
from repro.faults.models import NULL_WORKER_PLAN, WorkerFaultProfile
from repro.rollouts import (
    CorruptResultError,
    EpisodeSpec,
    RolloutConfig,
    RolloutExecutor,
    RolloutStore,
    RolloutSupervisor,
    SyntheticTask,
    episode_rng,
    run_rollouts_serial,
    unwrap_result,
    wrap_result,
)
from repro.service.deadline import ManualClock

TASK = SyntheticTask(steps=4, state_dim=3)


def make_specs(n, seed=5):
    return [
        EpisodeSpec(episode_id=i, kind=TASK.kind, seed=seed) for i in range(n)
    ]


def fast_config(**overrides):
    defaults = dict(
        num_workers=2,
        heartbeat_timeout_s=3.0,
        beat_interval_s=0.05,
        poll_interval_s=0.005,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.05),
    )
    defaults.update(overrides)
    return RolloutConfig(**defaults)


# -- spec / envelope contracts -------------------------------------------------


class TestSpecAndEnvelope:
    def test_spec_json_round_trip(self):
        spec = EpisodeSpec(
            episode_id=3, kind="eval", seed=7, options=(("day", "Sep 16"),)
        )
        assert EpisodeSpec.from_json(spec.as_json()) == spec

    def test_spec_rejects_negative_identity(self):
        with pytest.raises(ValueError):
            EpisodeSpec(episode_id=-1, kind="eval", seed=0)
        with pytest.raises(ValueError):
            EpisodeSpec(episode_id=0, kind="eval", seed=-1)

    def test_episode_rng_is_worker_agnostic(self):
        """Identical specs draw identical streams — the determinism root."""
        spec = EpisodeSpec(episode_id=9, kind="synthetic", seed=2)
        a = episode_rng(spec).random(8)
        b = episode_rng(spec).random(8)
        assert (a == b).all()

    def test_wrap_unwrap_round_trip(self):
        spec = EpisodeSpec(episode_id=1, kind="synthetic", seed=0)
        envelope = wrap_result(spec, {"total": 1.5})
        result = unwrap_result(envelope)
        assert result.episode_id == 1
        assert result.payload == {"total": 1.5}

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda env: env.update(format="nope"),
            lambda env: env.update(version=99),
            lambda env: env.update(payload="not-a-dict"),
            lambda env: env["payload"].update(total=9.9),
        ],
    )
    def test_unwrap_rejects_tampering(self, mutate):
        spec = EpisodeSpec(episode_id=1, kind="synthetic", seed=0)
        envelope = wrap_result(spec, {"total": 1.5})
        mutate(envelope)
        with pytest.raises(CorruptResultError):
            unwrap_result(envelope)

    def test_unwrap_rejects_non_dict(self):
        with pytest.raises(CorruptResultError):
            unwrap_result([1, 2, 3])


# -- config validation ---------------------------------------------------------


class TestRolloutConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_workers": 0},
            {"heartbeat_timeout_s": 0.0},
            {"beat_interval_s": 0.0},
            {"beat_interval_s": 31.0},  # above the heartbeat timeout
            {"kill_quarantine_threshold": 0},
            {"max_worker_restarts": -1},
            {"max_poison": 0},
            {"max_incidents": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RolloutConfig(**kwargs)


# -- the supervisor state machine (pure, on a manual clock) --------------------


class TestRolloutSupervisor:
    def test_overdue_detection(self):
        clock = ManualClock()
        sup = RolloutSupervisor(heartbeat_timeout_s=1.0, clock=clock)
        sup.on_spawn(0)
        sup.on_spawn(1)
        clock.advance(0.9)
        sup.on_beat(1)
        clock.advance(0.5)  # worker 0 last heard 1.4s ago, worker 1 0.5s ago
        assert sup.overdue() == [0]

    def test_assignment_counts_as_contact(self):
        clock = ManualClock()
        sup = RolloutSupervisor(heartbeat_timeout_s=1.0, clock=clock)
        sup.on_spawn(0)
        clock.advance(0.9)
        sup.on_assign(0, episode_id=4, attempt=0)
        clock.advance(0.9)
        assert sup.overdue() == []
        assert sup.inflight(0) == (4, 0)
        assert sup.idle_workers() == []

    def test_death_returns_inflight_and_records(self):
        clock = ManualClock()
        sup = RolloutSupervisor(heartbeat_timeout_s=1.0, clock=clock)
        sup.on_spawn(0)
        sup.on_assign(0, episode_id=7, attempt=2)
        assert sup.on_death(0, "killed in test") == (7, 2)
        assert sup.deaths == 1
        assert sup.live_workers() == []
        [incident] = sup.incidents
        assert incident.kind == "worker_death"
        assert incident.episode_id == 7
        assert incident.worker_id == 0

    def test_complete_frees_the_worker(self):
        clock = ManualClock()
        sup = RolloutSupervisor(heartbeat_timeout_s=1.0, clock=clock)
        sup.on_spawn(0)
        sup.on_assign(0, episode_id=1, attempt=0)
        sup.on_complete(0)
        assert sup.inflight(0) is None
        assert sup.idle_workers() == [0]

    def test_incident_ring_is_bounded(self):
        clock = ManualClock()
        sup = RolloutSupervisor(
            heartbeat_timeout_s=1.0, clock=clock, max_incidents=3
        )
        for i in range(5):
            sup.record("noise", f"event {i}")
        assert len(sup.incidents) == 3
        assert sup.incidents_dropped == 2
        assert sup.incidents[0].message == "event 2"


# -- the fault injector oracle -------------------------------------------------


class TestWorkerFaultInjector:
    def test_plan_is_pure_and_order_free(self):
        profile = get_worker_profile("worker-blackout")
        a = WorkerFaultInjector(profile, seed=3)
        b = WorkerFaultInjector(profile, seed=3)
        # Query b in scrambled order; fates must not shift.
        for eid in (7, 0, 12, 3):
            for attempt in (2, 0, 1):
                b.plan(eid, attempt)
        for eid in range(16):
            for attempt in range(4):
                assert a.plan(eid, attempt) == b.plan(eid, attempt)

    def test_disjoint_precedence_stall_crash_corrupt(self):
        profile = WorkerFaultProfile(
            name="all-on",
            crash=WorkerCrashFault(p_affected=1.0, max_crashes=1),
            stall=WorkerStallFault(p_affected=1.0, max_stalls=1, stall_s=2.0),
            corrupt=WorkerCorruptResultFault(p_affected=1.0, max_corruptions=1),
        )
        injector = WorkerFaultInjector(profile, seed=0)
        assert injector.plan(0, 0).stall_s == 2.0
        assert injector.plan(0, 1).crash_after_beats is not None
        assert injector.plan(0, 2).corrupt_result
        assert injector.plan(0, 3).is_null
        assert injector.faulted_attempts(0) == 3

    def test_poison_crashes_every_attempt(self):
        profile = WorkerFaultProfile(
            name="poison",
            crash=WorkerCrashFault(p_affected=0.0, p_poison=1.0),
        )
        injector = WorkerFaultInjector(profile, seed=1)
        for attempt in range(6):
            assert injector.plan(5, attempt).crash_after_beats is not None
        assert injector.poisoned(5)
        assert injector.faulted_attempts(5) == -1

    def test_null_profile_allocates_nothing(self):
        injector = WorkerFaultInjector(get_worker_profile("worker-none"))
        assert injector.is_null
        assert injector.plan(0, 0) is NULL_WORKER_PLAN

    def test_unknown_profile_is_loud(self):
        with pytest.raises(ValueError, match="worker-kill"):
            get_worker_profile("worker-typo")


# -- the executor against real processes ---------------------------------------


class TestRolloutExecutor:
    def test_parallel_is_bit_identical_to_serial(self):
        specs = make_specs(8)
        serial = run_rollouts_serial(TASK, specs)
        report = RolloutExecutor(
            TASK, config=fast_config(num_workers=3), seed=5
        ).run(specs)
        assert report.completed == 8
        assert report.zero_lost
        assert report.worker_deaths == 0
        assert report.merged.fingerprint() == serial.merged.fingerprint()

    def test_duplicate_episode_ids_rejected(self):
        specs = make_specs(2) + make_specs(1)
        with pytest.raises(ValueError, match="duplicate"):
            RolloutExecutor(TASK, config=fast_config()).run(specs)
        with pytest.raises(ValueError, match="duplicate"):
            run_rollouts_serial(TASK, specs)

    def test_crashes_retry_and_poison_quarantines(self):
        """Real process deaths: non-poison episodes survive, poison ones
        are quarantined with a full record, nothing is lost."""
        specs = make_specs(8)
        profile = WorkerFaultProfile(
            name="crashy",
            crash=WorkerCrashFault(
                p_affected=0.6, max_crashes=1, p_poison=0.25, crash_after_beats=2
            ),
        )
        injector = WorkerFaultInjector(profile, seed=4)
        expected_poison = sorted(
            s.episode_id for s in specs if injector.poisoned(s.episode_id)
        )
        assert expected_poison, "seed must include at least one poison episode"

        serial = run_rollouts_serial(TASK, specs)
        report = RolloutExecutor(
            TASK,
            config=fast_config(max_worker_restarts=64),
            seed=5,
            fault_injector=WorkerFaultInjector(profile, seed=4),
        ).run(specs)

        assert report.zero_lost
        assert list(report.quarantined_ids) == expected_poison
        assert report.worker_deaths >= len(expected_poison) * 2
        for poisoned in report.quarantined:
            assert poisoned.kills >= 2
            assert any("killed its worker" in r for r in poisoned.reasons)
        survivors = [
            s.episode_id for s in specs if s.episode_id not in expected_poison
        ]
        assert (
            report.merged.fingerprint()
            == serial.merged.restrict(survivors).fingerprint()
        )
        kinds = {i.kind for i in report.incidents}
        assert "worker_death" in kinds
        assert "quarantine" in kinds

    def test_stalled_worker_is_killed_and_episode_requeued(self):
        specs = make_specs(4)
        profile = WorkerFaultProfile(
            name="stally",
            stall=WorkerStallFault(p_affected=0.6, max_stalls=1, stall_s=2.0),
        )
        injector = WorkerFaultInjector(profile, seed=2)
        n_stalled = sum(
            1 for s in specs if injector.plan(s.episode_id, 0).stall_s > 0
        )
        assert n_stalled, "seed must stall at least one episode"

        serial = run_rollouts_serial(TASK, specs)
        report = RolloutExecutor(
            TASK,
            config=fast_config(heartbeat_timeout_s=0.6, max_worker_restarts=64),
            seed=5,
            fault_injector=WorkerFaultInjector(profile, seed=2),
        ).run(specs)

        assert report.completed == len(specs)
        assert report.worker_deaths >= n_stalled
        assert any(
            "heartbeat timeout" in i.message
            for i in report.incidents
            if i.kind == "worker_death"
        )
        assert report.merged.fingerprint() == serial.merged.fingerprint()

    def test_corrupt_results_are_rejected_and_rerun(self):
        specs = make_specs(6)
        profile = WorkerFaultProfile(
            name="flippy",
            corrupt=WorkerCorruptResultFault(p_affected=0.6, max_corruptions=1),
        )
        injector = WorkerFaultInjector(profile, seed=6)
        n_corrupt = sum(
            1
            for s in specs
            if injector.plan(s.episode_id, 0).corrupt_result
        )
        assert n_corrupt, "seed must corrupt at least one episode"

        serial = run_rollouts_serial(TASK, specs)
        report = RolloutExecutor(
            TASK,
            config=fast_config(),
            seed=5,
            fault_injector=WorkerFaultInjector(profile, seed=6),
        ).run(specs)

        assert report.completed == len(specs)
        corrupt_incidents = [
            i for i in report.incidents if i.kind == "corrupt_result"
        ]
        assert len(corrupt_incidents) >= n_corrupt
        assert report.merged.fingerprint() == serial.merged.fingerprint()

    def test_degrades_to_serial_when_restart_budget_spent(self):
        """All workers keep dying: the campaign must still finish, via
        the in-process serial fallback, bit-identically."""
        specs = make_specs(5)
        profile = WorkerFaultProfile(
            name="carnage",
            crash=WorkerCrashFault(p_affected=0.0, p_poison=1.0),
        )
        serial = run_rollouts_serial(TASK, specs)
        report = RolloutExecutor(
            TASK,
            config=fast_config(
                max_worker_restarts=2, kill_quarantine_threshold=99
            ),
            seed=5,
            fault_injector=WorkerFaultInjector(profile, seed=0),
        ).run(specs)
        assert report.degraded
        assert report.zero_lost
        assert not report.quarantined_ids
        assert report.merged.fingerprint() == serial.merged.fingerprint()
        assert any(i.kind == "degraded" for i in report.incidents)


# -- the store: checkpointed campaigns and paranoid resume ---------------------


class TestRolloutStore:
    def test_parallel_resume_is_bit_identical(self, tmp_path):
        specs = make_specs(6)
        serial = run_rollouts_serial(TASK, specs)
        first = RolloutExecutor(
            TASK,
            config=fast_config(),
            seed=5,
            store=RolloutStore(tmp_path),
        ).run(specs)
        second = RolloutExecutor(
            TASK,
            config=fast_config(),
            seed=5,
            store=RolloutStore(tmp_path),
        ).run(specs)
        assert second.from_store == len(specs)
        assert second.workers_spawned == 0
        for report in (first, second):
            assert report.merged.fingerprint() == serial.merged.fingerprint()

    def test_partial_store_reruns_only_missing_episodes(self, tmp_path):
        specs = make_specs(6)
        store = RolloutStore(tmp_path)
        run_rollouts_serial(TASK, specs[:3], store=store)
        resumed = run_rollouts_serial(TASK, specs, store=store)
        assert resumed.from_store == 3
        assert resumed.completed == 6
        reference = run_rollouts_serial(TASK, specs)
        assert resumed.merged.fingerprint() == reference.merged.fingerprint()

    def test_get_rejects_spec_mismatch(self, tmp_path):
        store = RolloutStore(tmp_path)
        spec = make_specs(1)[0]
        store.put(spec, wrap_result(spec, {"total": 1.0}))
        other = EpisodeSpec(episode_id=0, kind=spec.kind, seed=spec.seed + 1)
        assert store.get(other) is None
        assert store.get(spec) is not None

    def test_get_rejects_torn_write(self, tmp_path):
        store = RolloutStore(tmp_path)
        spec = make_specs(1)[0]
        store.put(spec, wrap_result(spec, {"total": 1.0}))
        path = tmp_path / "episode=000000.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.get(spec) is None

    def test_get_rejects_digest_mismatch(self, tmp_path):
        store = RolloutStore(tmp_path)
        spec = make_specs(1)[0]
        store.put(spec, wrap_result(spec, {"total": 1.0}))
        path = tmp_path / "episode=000000.json"
        cell = json.loads(path.read_text())
        cell["envelope"]["payload"]["total"] = 9.0
        path.write_text(json.dumps(cell))
        assert store.get(spec) is None

    def test_get_rejects_wrong_format(self, tmp_path):
        store = RolloutStore(tmp_path)
        spec = make_specs(1)[0]
        (tmp_path / "episode=000000.json").write_text('{"format": "other"}')
        assert store.get(spec) is None

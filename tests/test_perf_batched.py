"""Regression tests: batched inference must match per-person inference.

The batched SVM path exists purely for speed — these tests pin down that
it changes nothing observable: predicted labels are exactly equal row for
row across every kernel, blocked Gram evaluation is bitwise equal to the
unblocked call, and the vectorized request-distribution aggregation
reproduces the person-at-a-time reference including its edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import RequestPredictor, TrainingSet
from repro.ml.kernels import gram_blocked, resolve_kernel
from repro.ml.svm import SVC

KERNELS = ("linear", "rbf", "poly")


def _fitted(kernel: str) -> tuple[SVC, np.ndarray]:
    rng = np.random.default_rng(11)
    x = rng.normal(size=(200, 3))
    y = (x @ np.array([1.0, -2.0, 0.5]) + rng.normal(0, 0.25, 200) > 0).astype(int)
    clf = SVC(kernel=kernel, gamma=0.7, c=4.0).fit(x, y)
    population = rng.normal(size=(333, 3))
    return clf, population


class TestBatchedPrediction:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_labels_exactly_equal_per_person(self, kernel):
        clf, population = _fitted(kernel)
        per_person = np.concatenate([clf.predict(row) for row in population])
        batched = clf.predict(population)
        blocked = clf.predict(population, block_rows=64)
        assert np.array_equal(per_person, batched)
        assert np.array_equal(per_person, blocked)
        assert set(np.unique(batched)) <= {0, 1}

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_blocked_decision_scores_bitwise_equal(self, kernel):
        """Row-blocked Gram evaluation must be *bitwise* identical to the
        unblocked matrix call (same multi-row BLAS path per block)."""
        clf, population = _fitted(kernel)
        unblocked = clf.decision_function(population)
        for block_rows in (1_000_000, 64, 37, 1):
            blocked = clf.decision_function(population, block_rows=block_rows)
            assert blocked.tobytes() == unblocked.tobytes()

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_per_row_scores_match_tightly(self, kernel):
        # Single-row evaluation takes a different BLAS path (gemv vs gemm),
        # so scores agree to float tolerance, while *labels* stay exact
        # (asserted above) because thresholding at 0 is scale-robust here.
        clf, population = _fitted(kernel)
        batched = clf.decision_function(population)
        per_row = np.array([clf.decision_function(row) for row in population])
        np.testing.assert_allclose(per_row, batched, rtol=1e-12, atol=1e-12)

    def test_gram_blocked_matches_kernel(self):
        rng = np.random.default_rng(12)
        a = rng.normal(size=(101, 3))
        b = rng.normal(size=(17, 3))
        for name in KERNELS:
            kernel = resolve_kernel(name, gamma=0.4, degree=3)
            full = kernel(a, b)
            assert gram_blocked(kernel, a, b, block_rows=10).tobytes() == full.tobytes()
            assert gram_blocked(kernel, a, b, block_rows=500).tobytes() == full.tobytes()

    def test_gram_blocked_rejects_nonpositive_block(self):
        kernel = resolve_kernel("linear")
        with pytest.raises(ValueError):
            gram_blocked(kernel, np.zeros((2, 3)), np.zeros((2, 3)), block_rows=0)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            SVC().predict(np.zeros((2, 3)))


class TestRequestDistribution:
    @pytest.fixture(scope="class")
    def predictor(self, florence_scenario):
        rng = np.random.default_rng(13)
        x = rng.normal(size=(60, 3))
        y = (x.sum(axis=1) > 0).astype(int)
        pred = RequestPredictor(florence_scenario, flood_gated=False)
        pred.fit(TrainingSet(x=x, y=y))
        return pred

    def test_empty_population(self, predictor):
        assert predictor.predict_request_distribution({}, 0.0) == {}
        assert predictor.predict_node_labels([], 0.0).shape == (0,)

    def test_vectorized_matches_per_person_reference(self, predictor, florence_scenario):
        """Eq. 2 computed all-at-once equals the person-at-a-time loop."""
        net = florence_scenario.network
        rng = np.random.default_rng(14)
        nodes = net.landmark_ids()
        t_s = float(florence_scenario.timeline.storm_start_s + 3_600.0)
        person_nodes = {
            pid: int(rng.choice(nodes)) for pid in range(500)
        }
        vectorized = predictor.predict_request_distribution(person_nodes, t_s)

        reference: dict[int, int] = {}
        for node in person_nodes.values():
            label = int(predictor.predict_node_labels([node], t_s)[0])
            if label == 1:
                seg = int(predictor._node_segment[predictor._node_index[node]])
                reference[seg] = reference.get(seg, 0) + 1
        assert vectorized == reference
        assert vectorized, "workload must predict at least one request"

    def test_distribution_counts_people_not_nodes(self, predictor, florence_scenario):
        """Ten people on one landmark contribute ten, not one."""
        net = florence_scenario.network
        t_s = float(florence_scenario.timeline.storm_start_s + 3_600.0)
        nodes = net.landmark_ids()
        # Find a landmark classified positive at t_s.
        positive_node = None
        for node in nodes:
            if int(predictor.predict_node_labels([int(node)], t_s)[0]) == 1:
                positive_node = int(node)
                break
        assert positive_node is not None
        dist = predictor.predict_request_distribution(
            {pid: positive_node for pid in range(10)}, t_s
        )
        assert sum(dist.values()) == 10
        assert len(dist) == 1

"""Unified service-report tests: building, extracting from both
artifact shapes, rendering, and atomic persistence."""

from __future__ import annotations

import json

import pytest

from repro.service.report import (
    SERVICE_REPORT_FORMAT,
    build_service_report,
    extract_service_report,
    format_service_report,
    write_service_report,
)

INGEST = {
    "accepted": 900,
    "shed": 40,
    "rejected_total": 60,
    "lost": 5,
    "per_shard": [
        {
            "shard": 0,
            "alive": True,
            "rejected_by_reason": {"non_finite_value": 2},
            "quarantine_kept": 2,
            "quarantine_dropped": 0,
        },
        {
            "shard": 1,
            "alive": False,
            "rejected_by_reason": {},
            "quarantine_kept": 0,
            "quarantine_dropped": 0,
        },
    ],
}

BREAKERS = {
    "predictor": {"state": "open", "failures": 9, "trips": 2},
    "policy": {"state": "closed", "failures": 0, "trips": 0},
}


def loadgen_payload():
    return {
        "format": "repro-loadgen",
        "totals": {"accepted": 900, "shed": 40, "quarantined": 60, "lost": 5},
        "per_shard": INGEST["per_shard"],
        "supervisor": {
            "failovers": [{"from_shard": 1}],
            "rebalances": [],
            "max_uncovered_cycles": 1,
            "within_failover_budget": True,
        },
    }


def chaos_campaign():
    return {
        "profile": "shard-blackout",
        "runs": [
            {
                "chaos": {
                    "ingest": INGEST,
                    "predictor_breaker": BREAKERS["predictor"],
                    "policy_breaker": BREAKERS["policy"],
                    "service_incident_kinds": {"shard_failover": 3},
                    "supervisor": {"failovers": [], "rebalances": []},
                }
            }
        ],
    }


class TestBuild:
    def test_sections_and_format_fields(self):
        report = build_service_report(
            "unit", INGEST, breakers=BREAKERS, incident_kinds={"b": 1, "a": 2}
        )
        assert report["format"] == SERVICE_REPORT_FORMAT
        assert report["source"] == "unit"
        assert report["incident_kinds"] == {"a": 2, "b": 1}
        rows = report["quarantine_by_shard"]
        assert [row["shard"] for row in rows] == [0, 1]
        assert rows[1]["alive"] is False

    def test_unsharded_ingest_yields_no_shard_rows(self):
        report = build_service_report("unit", {"accepted": 5})
        assert report["quarantine_by_shard"] == []


class TestExtract:
    def test_from_loadgen_artifact(self):
        report = extract_service_report(loadgen_payload())
        assert report["source"] == "loadgen"
        assert report["ingest"]["accepted"] == 900
        assert report["ingest"]["rejected_total"] == 60
        assert len(report["quarantine_by_shard"]) == 2
        assert report["supervisor"]["within_failover_budget"] is True

    def test_from_chaos_campaign(self):
        report = extract_service_report(chaos_campaign())
        assert report["source"] == "chaos:shard-blackout"
        assert report["breakers"]["predictor"]["state"] == "open"
        assert report["incident_kinds"] == {"shard_failover": 3}

    def test_chaos_run_falls_back_to_clean_summary(self):
        campaign = chaos_campaign()
        run = campaign["runs"][0]
        run["clean"] = run.pop("chaos")
        report = extract_service_report(campaign)
        assert report["ingest"]["accepted"] == 900

    def test_unknown_shape_raises(self):
        with pytest.raises(ValueError):
            extract_service_report({"format": "something-else"})
        with pytest.raises(ValueError):
            extract_service_report({"runs": []})


class TestRenderAndPersist:
    def test_text_rendering_covers_every_section(self):
        report = extract_service_report(chaos_campaign())
        text = format_service_report(report)
        assert "breaker predictor: state=open failures=9 trips=2" in text
        assert "ingest: accepted=900" in text
        assert "shard 0 [up]: non_finite_value=2" in text
        assert "shard 1 [DOWN]: clean" in text
        assert "incidents: shard_failover=3" in text
        assert "supervisor: failovers=0" in text

    def test_write_service_report_is_loadable(self, tmp_path):
        report = build_service_report("unit", INGEST, breakers=BREAKERS)
        out = tmp_path / "health.json"
        write_service_report(report, str(out))
        assert json.loads(out.read_text()) == report

"""Tests for scenario/dataset assembly and memoization."""

import pytest

from repro.data.charlotte import build_charlotte_scenario
from repro.data.datasets import DatasetSpec, build_dataset, scenario_for
from repro.weather.storms import FLORENCE, MICHAEL


class TestDatasetSpec:
    def test_timeline_resolution(self):
        assert DatasetSpec(storm="florence").timeline() is FLORENCE
        assert DatasetSpec(storm="michael").timeline() is MICHAEL
        with pytest.raises(ValueError):
            DatasetSpec(storm="katrina").timeline()


class TestMemoization:
    def test_scenario_shared_per_storm(self):
        a = scenario_for(DatasetSpec(storm="florence", population_size=50))
        b = scenario_for(DatasetSpec(storm="florence", population_size=70))
        assert a is b  # population is not part of the scenario key

    def test_dataset_cached_by_spec(self):
        spec = DatasetSpec(storm="michael", population_size=40)
        _, bundle_a = build_dataset(spec)
        _, bundle_b = build_dataset(spec)
        assert bundle_a is bundle_b

    def test_different_specs_differ(self):
        _, a = build_dataset(DatasetSpec(storm="michael", population_size=40))
        _, b = build_dataset(DatasetSpec(storm="michael", population_size=45))
        assert a is not b
        assert len(a.persons) == 40
        assert len(b.persons) == 45


class TestScenarioConsistency:
    def test_scenario_components_wired(self):
        scen = build_charlotte_scenario(FLORENCE)
        assert scen.weather.partition is scen.partition
        assert scen.flood.terrain is scen.terrain
        assert scen.timeline is FLORENCE
        assert scen.total_hours == FLORENCE.total_days * 24
        hospital_nodes = {h.node_id for h in scen.hospitals}
        assert hospital_nodes <= set(scen.network.landmark_ids())

    def test_determinism_across_builds(self):
        a = build_charlotte_scenario(FLORENCE)
        b = build_charlotte_scenario(FLORENCE)
        assert a.network.num_landmarks == b.network.num_landmarks
        for n in a.network.landmark_ids()[:50]:
            assert a.network.landmark(n).xy == b.network.landmark(n).xy
        assert [h.node_id for h in a.hospitals] == [h.node_id for h in b.hospitals]

    def test_trace_determinism(self):
        spec_a = DatasetSpec(storm="michael", population_size=30, trace_seed=5)
        spec_b = DatasetSpec(storm="michael", population_size=30, trace_seed=5)
        _, a = build_dataset(spec_a)
        _, b = build_dataset(spec_b)
        assert a is b  # frozen dataclass spec: equal -> cached

    def test_seed_changes_trace(self):
        _, a = build_dataset(DatasetSpec(storm="michael", population_size=30, trace_seed=5))
        _, b = build_dataset(DatasetSpec(storm="michael", population_size=30, trace_seed=6))
        assert len(a.trace) != len(b.trace) or a.trace.t[:100].tolist() != b.trace.t[:100].tolist()

"""Tests for hospital placement, delivery detection and rescue labeling."""

import numpy as np
import pytest

from repro.hospitals.delivery import detect_deliveries, label_rescued
from repro.hospitals.hospitals import nearest_hospital, place_hospitals
from repro.mobility.cleaning import clean_trace
from repro.mobility.trace import GpsTrace
from repro.weather.storms import day_index


class TestPlacement:
    def test_one_per_region_plus_downtown(self, florence_scenario):
        scen = florence_scenario
        hospitals = scen.hospitals
        regions = [h.region_id for h in hospitals]
        for rid in scen.partition.region_ids:
            assert rid in regions
        assert regions.count(3) >= 2  # downtown extras

    def test_unique_nodes_and_ids(self, florence_scenario):
        hs = florence_scenario.hospitals
        assert len({h.node_id for h in hs}) == len(hs)
        assert len({h.hospital_id for h in hs}) == len(hs)

    def test_nearest_hospital(self, florence_scenario):
        scen = florence_scenario
        h, t = nearest_hospital(scen.network, scen.hospitals[0].node_id, scen.hospitals)
        assert h.hospital_id == scen.hospitals[0].hospital_id
        assert t == 0.0

    def test_nearest_hospital_unreachable(self, florence_scenario):
        scen = florence_scenario
        closed = frozenset(scen.network.segment_ids())  # everything closed
        src = scen.hospitals[0].node_id
        others = [h for h in scen.hospitals if h.node_id != src]
        h, t = nearest_hospital(scen.network, src, others, closed=closed)
        assert h is None and t == float("inf")

    def test_empty_hospital_list_rejected(self, florence_scenario):
        with pytest.raises(ValueError):
            nearest_hospital(florence_scenario.network, 0, [])


class TestDeliveryDetection:
    @pytest.fixture(scope="class")
    def labeled(self, florence_small):
        scenario, bundle = florence_small
        clean, _ = clean_trace(
            bundle.trace, scenario.partition.width_m, scenario.partition.height_m
        )
        events = detect_deliveries(clean, scenario.network, scenario.hospitals)
        return scenario, bundle, events, label_rescued(events, scenario.flood)

    def test_detects_deliveries(self, labeled):
        _, _, events, _ = labeled
        assert len(events) > 0
        for ev in events:
            assert ev.dwell_s >= 2 * 3_600.0

    def test_recall_of_ground_truth_rescues(self, labeled):
        """Most truly rescued persons are detected and labeled rescued."""
        _, bundle, _, lab = labeled
        truth = {r.person_id for r in bundle.rescues}
        detected = {ev.person_id for ev, rescued in lab if rescued}
        recall = len(truth & detected) / len(truth)
        assert recall > 0.6

    def test_rescue_label_precision(self, labeled):
        """People labeled rescued are mostly genuine ground-truth rescues."""
        _, bundle, _, lab = labeled
        truth = {r.person_id for r in bundle.rescues}
        detected = {ev.person_id for ev, rescued in lab if rescued}
        if detected:
            precision = len(truth & detected) / len(detected)
            assert precision > 0.6

    def test_rescued_deliveries_cluster_in_disaster_days(self, labeled):
        scenario, _, _, lab = labeled
        storm_start = scenario.timeline.storm_start_s
        rescued_times = [ev.arrival_time_s for ev, r in lab if r]
        if rescued_times:
            assert min(rescued_times) >= storm_start

    def test_deliveries_jump_during_disaster(self, labeled):
        """Fig. 6: deliveries per day jump after the hurricane impact."""
        scenario, _, events, _ = labeled
        per_day = np.zeros(scenario.timeline.total_days)
        for ev in events:
            per_day[int(ev.arrival_time_s // 86_400)] += 1
        before = per_day[: int(scenario.timeline.storm_start_day)].mean()
        sep16 = day_index(scenario.timeline, "Sep 16")
        disaster = per_day[sep16 - 2 : sep16 + 1].mean()
        assert disaster > 1.5 * before

    def test_short_dwell_not_detected(self, florence_scenario):
        scen = florence_scenario
        h = scen.hospitals[0]
        hx, hy = scen.network.landmark(h.node_id).xy
        # 30-minute visit: below the 2 h threshold.
        tr = GpsTrace(
            np.full(4, 7),
            np.array([0.0, 600.0, 1_200.0, 1_800.0]),
            np.full(4, hx),
            np.full(4, hy),
            np.zeros(4),
            np.zeros(4),
        )
        assert detect_deliveries(tr, scen.network, scen.hospitals) == []

    def test_long_dwell_detected_with_prev_position(self, florence_scenario):
        scen = florence_scenario
        h = scen.hospitals[0]
        hx, hy = scen.network.landmark(h.node_id).xy
        ts = np.array([0.0, 1_000.0, 2_000.0, 6_000.0, 10_000.0])
        xs = np.array([hx + 5_000.0, hx, hx, hx, hx])
        ys = np.full(5, hy)
        tr = GpsTrace(np.full(5, 7), ts, xs, ys, np.zeros(5), np.zeros(5))
        events = detect_deliveries(tr, scen.network, scen.hospitals)
        assert len(events) == 1
        ev = events[0]
        assert ev.person_id == 7
        assert ev.hospital_id == h.hospital_id
        assert ev.arrival_time_s == 1_000.0
        assert ev.prev_xy[0] == pytest.approx(hx + 5_000.0)

    def test_dwell_opening_trace_has_no_prev(self, florence_scenario):
        scen = florence_scenario
        h = scen.hospitals[0]
        hx, hy = scen.network.landmark(h.node_id).xy
        ts = np.array([0.0, 4_000.0, 8_000.0])
        tr = GpsTrace(np.full(3, 1), ts, np.full(3, hx), np.full(3, hy), np.zeros(3), np.zeros(3))
        events = detect_deliveries(tr, scen.network, scen.hospitals)
        assert len(events) == 1
        assert events[0].prev_xy is None
        # Unlabelable -> not rescued.
        assert label_rescued(events, scen.flood)[0][1] is False

    def test_moving_prev_fixes_skipped(self, florence_scenario):
        """The previous *staying* position skips in-motion fixes."""
        scen = florence_scenario
        h = scen.hospitals[0]
        hx, hy = scen.network.landmark(h.node_id).xy
        ts = np.array([0.0, 500.0, 1_000.0, 5_000.0, 9_000.0])
        xs = np.array([hx + 8_000.0, hx + 4_000.0, hx, hx, hx])
        speeds = np.array([0.1, 15.0, 0.0, 0.0, 0.0])  # second fix is driving
        tr = GpsTrace(np.full(5, 2), ts, xs, np.full(5, hy), np.zeros(5), speeds)
        events = detect_deliveries(tr, scen.network, scen.hospitals)
        assert len(events) == 1
        assert events[0].prev_xy[0] == pytest.approx(hx + 8_000.0)

    def test_empty_inputs(self, florence_scenario):
        scen = florence_scenario
        assert detect_deliveries(GpsTrace.empty(), scen.network, scen.hospitals) == []
        with pytest.raises(ValueError):
            detect_deliveries(GpsTrace.empty(), scen.network, [])

"""Tests for the durable artifact layer: atomic writes, integrity
manifests, typed corruption errors and versioned formats."""

import json

import numpy as np
import pytest

from repro.core.artifacts import (
    ArtifactVersionError,
    CorruptArtifactError,
    MissingManifestError,
    VersionedFormat,
    atomic_file,
    atomic_savez,
    atomic_write_bytes,
    atomic_write_json,
    read_manifest,
    sha256_file,
    verify_artifact_dir,
    write_manifest,
)


class TestAtomicWrites:
    def test_write_bytes_roundtrip(self, tmp_path):
        path = tmp_path / "payload.bin"
        atomic_write_bytes(path, b"hello")
        assert path.read_bytes() == b"hello"

    def test_overwrite_replaces(self, tmp_path):
        path = tmp_path / "payload.bin"
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_failure_leaves_old_content_and_no_temporaries(self, tmp_path):
        path = tmp_path / "payload.bin"
        atomic_write_bytes(path, b"old")
        with pytest.raises(RuntimeError):
            with atomic_file(path) as tmp:
                tmp.write_bytes(b"torn")
                raise RuntimeError("crash mid-write")
        assert path.read_bytes() == b"old"
        assert [p.name for p in tmp_path.iterdir()] == ["payload.bin"]

    def test_write_json(self, tmp_path):
        path = tmp_path / "meta.json"
        atomic_write_json(path, {"a": 1, "b": [1, 2]})
        assert json.loads(path.read_text()) == {"a": 1, "b": [1, 2]}

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "er" / "x.json"
        atomic_write_json(path, 1)
        assert path.exists()


class TestAtomicSavez:
    def test_lands_at_exact_path_without_npz_suffix(self, tmp_path):
        # np.savez(str_path) would write to model.bin.npz; the atomic
        # variant must honor the exact requested path.
        path = tmp_path / "model.bin"
        atomic_savez(path, x=np.arange(3))
        assert path.exists()
        assert not (tmp_path / "model.bin.npz").exists()
        with np.load(path) as data:
            np.testing.assert_array_equal(data["x"], np.arange(3))

    def test_npz_suffix_unchanged(self, tmp_path):
        path = tmp_path / "model.npz"
        atomic_savez(path, x=np.zeros(2))
        assert path.exists()
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]


class TestManifest:
    @pytest.fixture
    def artifact(self, tmp_path):
        (tmp_path / "a.bin").write_bytes(b"aaaa")
        (tmp_path / "b.bin").write_bytes(b"bb")
        write_manifest(tmp_path, version=1, meta={"note": "test"})
        return tmp_path

    def test_read_and_verify(self, artifact):
        manifest = verify_artifact_dir(artifact)
        assert manifest["version"] == 1
        assert manifest["meta"] == {"note": "test"}
        assert set(manifest["files"]) == {"a.bin", "b.bin"}
        assert manifest["files"]["a.bin"]["bytes"] == 4
        assert manifest["files"]["a.bin"]["sha256"] == sha256_file(artifact / "a.bin")

    def test_missing_manifest(self, artifact):
        (artifact / "manifest.json").unlink()
        with pytest.raises(MissingManifestError):
            read_manifest(artifact)
        with pytest.raises(MissingManifestError):
            verify_artifact_dir(artifact)

    def test_unparsable_manifest(self, artifact):
        (artifact / "manifest.json").write_text("{not json")
        with pytest.raises(CorruptArtifactError):
            read_manifest(artifact)

    def test_foreign_manifest_rejected(self, artifact):
        (artifact / "manifest.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(CorruptArtifactError):
            read_manifest(artifact)

    def test_flipped_byte_detected(self, artifact):
        raw = bytearray((artifact / "a.bin").read_bytes())
        raw[0] ^= 0xFF
        (artifact / "a.bin").write_bytes(bytes(raw))
        with pytest.raises(CorruptArtifactError, match="SHA-256 mismatch"):
            verify_artifact_dir(artifact)

    def test_truncation_detected(self, artifact):
        (artifact / "a.bin").write_bytes(b"aa")
        with pytest.raises(CorruptArtifactError, match="truncated"):
            verify_artifact_dir(artifact)

    def test_missing_payload_detected(self, artifact):
        (artifact / "b.bin").unlink()
        with pytest.raises(CorruptArtifactError, match="missing payload"):
            verify_artifact_dir(artifact)


class TestVersionedFormat:
    def make_format(self):
        fmt = VersionedFormat("test-format", 3)

        @fmt.migration(1)
        def v1_to_v2(payload):
            payload = dict(payload)
            payload["b"] = payload["a"] * 2
            return payload

        @fmt.migration(2)
        def v2_to_v3(payload):
            payload = dict(payload)
            payload["c"] = payload["b"] + 1
            return payload

        return fmt

    def test_migration_chain(self):
        fmt = self.make_format()
        assert fmt.upgrade({"a": 10}, 1) == {"a": 10, "b": 20, "c": 21}
        assert fmt.upgrade({"a": 1, "b": 5}, 2) == {"a": 1, "b": 5, "c": 6}

    def test_current_version_is_noop(self):
        fmt = self.make_format()
        payload = {"a": 1}
        assert fmt.upgrade(payload, 3) is payload

    def test_newer_version_rejected(self):
        with pytest.raises(ArtifactVersionError):
            self.make_format().upgrade({}, 4)

    def test_missing_migration_rejected(self):
        fmt = VersionedFormat("gappy", 3)

        @fmt.migration(2)
        def v2_to_v3(payload):
            return payload

        with pytest.raises(ArtifactVersionError):
            fmt.upgrade({}, 1)

    def test_duplicate_migration_rejected(self):
        fmt = self.make_format()
        with pytest.raises(ValueError):

            @fmt.migration(1)
            def again(payload):
                return payload

    def test_version_error_is_value_error(self):
        # The pre-durability loader raised ValueError on bad versions;
        # the typed error keeps that contract.
        assert issubclass(ArtifactVersionError, ValueError)

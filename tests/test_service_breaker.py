"""Circuit-breaker state machine and deadline-budget unit tests.

The breaker is the smallest load-bearing piece of the resilient service:
these tests pin the closed → open → half-open → closed lifecycle, the
deterministic sim-clock cooldowns (no wall time anywhere), and the
bounded transition log.
"""

from __future__ import annotations

import pytest

from repro.service.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.service.deadline import DeadlineBudget, ManualClock


def make_breaker(threshold: int = 3, cooldown_s: float = 600.0) -> CircuitBreaker:
    return CircuitBreaker(
        "test", BreakerConfig(failure_threshold=threshold, cooldown_s=cooldown_s)
    )


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        b = make_breaker()
        assert b.state == STATE_CLOSED
        assert b.allow(0.0)

    def test_failures_below_threshold_stay_closed(self):
        b = make_breaker(threshold=3)
        assert not b.record_failure(0.0, "one")
        assert not b.record_failure(1.0, "two")
        assert b.state == STATE_CLOSED
        assert b.allow(2.0)

    def test_threshold_trips_open(self):
        b = make_breaker(threshold=3, cooldown_s=600.0)
        for t in (0.0, 1.0):
            b.record_failure(t, "x")
        assert b.record_failure(2.0, "third strike")
        assert b.state == STATE_OPEN
        assert not b.allow(2.0)
        assert not b.allow(601.0)  # cooldown counts from the trip time

    def test_success_resets_consecutive_failures(self):
        b = make_breaker(threshold=3)
        b.record_failure(0.0, "x")
        b.record_failure(1.0, "x")
        b.record_success(2.0)
        # Two more failures do not reach the threshold again.
        b.record_failure(3.0, "x")
        b.record_failure(4.0, "x")
        assert b.state == STATE_CLOSED

    def test_cooldown_elapses_into_half_open_probe(self):
        b = make_breaker(threshold=1, cooldown_s=100.0)
        b.record_failure(10.0, "trip")
        assert b.state == STATE_OPEN
        assert not b.allow(109.0)
        assert b.allow(110.0)  # exactly at t_trip + cooldown
        assert b.state == STATE_HALF_OPEN

    def test_probe_success_closes(self):
        b = make_breaker(threshold=1, cooldown_s=100.0)
        b.record_failure(0.0, "trip")
        assert b.allow(100.0)
        b.record_success(100.0)
        assert b.state == STATE_CLOSED
        assert b.allow(101.0)

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        b = make_breaker(threshold=1, cooldown_s=100.0)
        b.record_failure(0.0, "trip")
        assert b.allow(100.0)  # half-open probe admitted
        b.record_failure(100.0, "probe failed")
        assert b.state == STATE_OPEN
        assert not b.allow(150.0)
        assert b.allow(200.0)  # new cooldown from the re-trip

    def test_deterministic_replay(self):
        """Identical event sequences produce identical snapshots — the
        breaker holds no hidden wall-clock or random state."""

        def drive() -> dict:
            b = make_breaker(threshold=2, cooldown_s=50.0)
            for t in (0.0, 5.0):
                b.record_failure(t, "boom")
            b.allow(60.0)
            b.record_success(60.0)
            b.record_failure(70.0, "late")
            return b.snapshot()

        assert drive() == drive()


class TestBookkeeping:
    def test_snapshot_counts(self):
        b = make_breaker(threshold=2)
        b.record_failure(0.0, "a")
        b.record_success(1.0)
        snap = b.snapshot()
        assert snap["failures"] == 1
        assert snap["successes"] == 1
        assert snap["trips"] == 0
        assert snap["state"] == STATE_CLOSED

    def test_transition_log_is_bounded(self):
        b = CircuitBreaker(
            "small",
            BreakerConfig(failure_threshold=1, cooldown_s=1.0, max_transitions=4),
        )
        for i in range(20):
            t = float(i * 10)
            b.allow(t)  # re-arm the half-open probe after each cooldown
            b.record_failure(t, f"trip {i}")
        snap = b.snapshot()
        assert len(snap["transitions"]) == 4
        assert snap["transitions_dropped"] > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerConfig(cooldown_s=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(max_transitions=0)


class TestDeadlineBudget:
    def test_slices_partition_the_tick(self):
        budget = DeadlineBudget(
            tick_budget_s=1.0, ingest_share=0.2, predict_share=0.3, dispatch_share=0.5
        )
        assert budget.ingest_slice_s == pytest.approx(0.2)
        assert budget.predict_slice_s == pytest.approx(0.3)
        assert budget.dispatch_slice_s == pytest.approx(0.5)

    def test_oversubscribed_shares_rejected(self):
        with pytest.raises(ValueError):
            DeadlineBudget(ingest_share=0.5, predict_share=0.4, dispatch_share=0.4)
        with pytest.raises(ValueError):
            DeadlineBudget(tick_budget_s=0.0)
        with pytest.raises(ValueError):
            DeadlineBudget(ingest_share=0.0)

    def test_manual_clock_only_advances(self):
        clock = ManualClock(start_s=5.0)
        assert clock() == 5.0
        clock.advance(2.5)
        assert clock() == 7.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)

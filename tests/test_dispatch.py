"""Tests for the dispatching baselines and the assignment solvers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.charlotte import build_charlotte_scenario
from repro.dispatch.assignment import (
    expand_demand_slots,
    solve_assignment,
    solve_assignment_milp,
)
from repro.dispatch.base import DispatchObservation, TeamView, command_depot, command_segment
from repro.dispatch.nearest import NearestDispatcher
from repro.dispatch.rescue_ts import RescueTsDispatcher, TimeSeriesDemandPredictor
from repro.dispatch.schedule import ScheduleDispatcher
from repro.dispatch.standby import standby_segments
from repro.roadnet.generator import RoadNetworkConfig
from repro.weather.storms import FLORENCE

DAY = 86_400.0


@pytest.fixture(scope="module")
def scen():
    return build_charlotte_scenario(FLORENCE, RoadNetworkConfig(grid_cols=8, grid_rows=8))


def make_obs(scen, pending: dict[int, int], num_teams: int = 4, t: float = 2 * DAY):
    teams = [
        TeamView(
            team_id=i,
            node=scen.hospitals[i % len(scen.hospitals)].node_id,
            state="idle",
            capacity_left=5,
            assignable=True,
        )
        for i in range(num_teams)
    ]
    return DispatchObservation(
        t_s=t,
        teams=teams,
        pending=pending,
        closed=frozenset(),
        network=scen.network,
        hospitals=scen.hospitals,
    )


class TestAssignmentSolvers:
    def test_expand_demand_slots(self):
        slots = expand_demand_slots({7: 12.0, 3: 2.0}, capacity=5)
        assert slots == [7, 7, 7, 3]
        assert expand_demand_slots({1: 0.0}, capacity=5) == []
        assert expand_demand_slots({7: 12.0}, capacity=5, max_slots=2) == [7, 7]
        with pytest.raises(ValueError):
            expand_demand_slots({1: 1.0}, capacity=0)

    def test_hungarian_simple(self):
        cost = np.array([[1.0, 10.0], [10.0, 1.0]])
        pairs = dict(solve_assignment(cost))
        assert pairs == {0: 0, 1: 1}

    def test_rectangular(self):
        cost = np.array([[1.0, 2.0, 3.0]])  # 1 team, 3 slots
        pairs = solve_assignment(cost)
        assert pairs == [(0, 0)]

    def test_empty(self):
        assert solve_assignment(np.zeros((0, 0))) == []
        assert solve_assignment_milp(np.zeros((0, 0))) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_assignment(np.zeros(3))
        with pytest.raises(ValueError):
            solve_assignment_milp(np.zeros(3))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 10_000))
    def test_milp_matches_hungarian_objective(self, n, m, seed):
        """The explicit IP and the Hungarian algorithm find assignments of
        equal total cost."""
        rng = np.random.default_rng(seed)
        cost = rng.uniform(0, 100, size=(n, m))
        a = solve_assignment(cost)
        b = solve_assignment_milp(cost)
        assert len(a) == len(b) == min(n, m)
        obj_a = sum(cost[r, c] for r, c in a)
        obj_b = sum(cost[r, c] for r, c in b)
        assert obj_a == pytest.approx(obj_b, abs=1e-6)


class TestStandby:
    def test_standby_segments(self, scen):
        segs = standby_segments(scen.network, scen.hospitals)
        assert segs
        assert len(set(segs)) == len(segs)
        for s in segs:
            seg = scen.network.segment(s)
            assert seg.u in {h.node_id for h in scen.hospitals}

    def test_empty_hospitals_rejected(self, scen):
        with pytest.raises(ValueError):
            standby_segments(scen.network, [])


class TestScheduleDispatcher:
    def test_assigns_pending_and_standby(self, scen):
        seg = scen.network.out_segments(scen.network.landmark_ids()[12])[0].segment_id
        disp = ScheduleDispatcher()
        obs = make_obs(scen, pending={seg: 3}, num_teams=4)
        commands = disp.dispatch(obs)
        assert len(commands) == 4
        # All teams serve (constant fleet, Fig 14): no depot commands.
        assert all(not c.is_depot for c in commands.values())
        assert any(c.segment_id == seg for c in commands.values())

    def test_nearest_team_gets_the_request(self, scen):
        seg = scen.network.out_segments(scen.hospitals[0].node_id)[0].segment_id
        disp = ScheduleDispatcher()
        obs = make_obs(scen, pending={seg: 1}, num_teams=len(scen.hospitals))
        commands = disp.dispatch(obs)
        # Team 0 sits at hospital 0, right at the request's segment.
        assert commands[0].segment_id == seg

    def test_computation_delay_grows_with_demand(self, scen):
        disp = ScheduleDispatcher()
        disp.dispatch(make_obs(scen, pending={}, num_teams=4))
        d_small = disp.computation_delay_s
        segs = [s.segment_id for s in scen.network.segments()[:8]]
        disp.dispatch(make_obs(scen, pending={s: 5 for s in segs}, num_teams=16))
        assert disp.computation_delay_s > d_small

    def test_flood_unaware(self):
        assert ScheduleDispatcher.flood_aware is False

    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduleDispatcher(team_capacity=0)


class TestTimeSeriesPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesDemandPredictor(num_days=0)
        with pytest.raises(ValueError):
            TimeSeriesDemandPredictor(decay=0.0)
        with pytest.raises(ValueError):
            TimeSeriesDemandPredictor(hour_window=-1)

    def test_empty_history_predicts_nothing(self):
        ts = TimeSeriesDemandPredictor()
        assert ts.predict(10 * DAY) == {}

    def test_weighted_average_over_days(self):
        ts = TimeSeriesDemandPredictor(num_days=2, decay=0.5, hour_window=0)
        # Two requests at segment 7, 10:30 of days 8 and 9.
        ts.record(8 * DAY + 10.5 * 3_600, 7)
        ts.record(9 * DAY + 10.5 * 3_600, 7)
        pred = ts.predict(10 * DAY + 10.5 * 3_600)
        # Weights 1 (yesterday) and 0.5 (two days ago): (1+0.5)/1.5 = 1.0.
        assert pred[7] == pytest.approx(1.0)

    def test_hour_window(self):
        ts = TimeSeriesDemandPredictor(num_days=1, hour_window=1)
        ts.record(8 * DAY + 9.5 * 3_600, 3)  # 9:30 yesterday
        assert 3 in ts.predict(9 * DAY + 10.5 * 3_600)  # asking at 10:30
        ts0 = TimeSeriesDemandPredictor(num_days=1, hour_window=0)
        ts0.record(8 * DAY + 9.5 * 3_600, 3)
        assert 3 not in ts0.predict(9 * DAY + 10.5 * 3_600)

    def test_no_future_leakage(self):
        """Today's own requests never feed today's prediction."""
        ts = TimeSeriesDemandPredictor(num_days=3)
        ts.record(9 * DAY + 10.5 * 3_600, 5)
        assert 5 not in ts.predict(9 * DAY + 11.5 * 3_600)


class TestRescueTsDispatcher:
    def test_covers_predicted_demand(self, scen):
        disp = RescueTsDispatcher()
        seg = scen.network.out_segments(scen.network.landmark_ids()[30])[0].segment_id
        # History: requests at this segment same hour yesterday.
        from repro.sim.requests import RescueRequest

        t = 22 * DAY + 10.5 * 3_600
        disp.seed_history([RescueRequest(0, 0, t - DAY, seg, 0)])
        commands = disp.dispatch(make_obs(scen, pending={}, num_teams=4, t=t))
        assert any(c.segment_id == seg for c in commands.values())
        assert disp.last_prediction.get(seg, 0) > 0

    def test_all_teams_serving(self, scen):
        disp = RescueTsDispatcher()
        commands = disp.dispatch(make_obs(scen, pending={}, num_teams=6))
        assert len(commands) == 6
        assert all(not c.is_depot for c in commands.values())

    def test_flood_unaware(self):
        assert RescueTsDispatcher.flood_aware is False


class TestNearestDispatcher:
    def test_assigns_nearest_and_depots_the_rest(self, scen):
        seg = scen.network.out_segments(scen.hospitals[1].node_id)[0].segment_id
        disp = NearestDispatcher()
        obs = make_obs(scen, pending={seg: 2}, num_teams=4)
        commands = disp.dispatch(obs)
        serving = [tid for tid, c in commands.items() if not c.is_depot]
        assert len(serving) == 1  # one team covers 2 requests (capacity 5)
        assert commands[serving[0]].segment_id == seg

    def test_closed_segments_skipped(self, scen):
        seg = scen.network.out_segments(scen.hospitals[1].node_id)[0].segment_id
        disp = NearestDispatcher()
        obs = make_obs(scen, pending={seg: 2}, num_teams=2)
        obs.closed = frozenset({seg})
        commands = disp.dispatch(obs)
        assert all(c.is_depot for c in commands.values())

    def test_flood_aware(self):
        assert NearestDispatcher.flood_aware is True


class TestCommands:
    def test_command_helpers(self):
        assert command_depot().is_depot
        assert not command_segment(3).is_depot
        assert command_segment(3).segment_id == 3

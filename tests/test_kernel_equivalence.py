"""Golden-equivalence suite: the event kernel must change nothing.

One fixed-seed workload is pushed through the engine twice — once through
the seed fixed-step :class:`RescueSimulator`, once through the
event-driven :class:`EventKernelSimulator` — and every recorded artifact
(pickups, deliveries, serving samples, incidents, reward traces) must be
*bit-identical*: exact float equality, not approx.  The kernel skips
ticks and reorders nothing observable; any divergence means it did.

The matrix spans simulation seeds and fault-injection profiles: the
``severe`` profile exercises breakdowns (repair wake events), injected
road closures (closure-boundary events), radio outages and dispatcher
failures on top of the flood dynamics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dispatch.nearest import NearestDispatcher
from repro.dispatch.rescue_ts import RescueTsDispatcher
from repro.faults import make_injector
from repro.perf.routing_cache import RoutingCache
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.kernel import (
    EventKernelSimulator,
    build_simulator,
    set_event_kernel_enabled,
)
from repro.sim.requests import RescueRequest


@pytest.fixture(scope="module")
def kernel_window(florence_scenario):
    """(scenario, requests, t0, t1): a fixed 2-hour storm-onset workload."""
    scenario = florence_scenario
    network = scenario.network
    rng = np.random.default_rng(11)
    seg_ids = np.array(network.segment_ids())
    t0 = scenario.timeline.storm_start_s
    t1 = t0 + 2.0 * 3_600.0
    requests = []
    for i, seg in enumerate(rng.choice(seg_ids, size=60)):
        segment = network.segment(int(seg))
        requests.append(
            RescueRequest(
                request_id=i,
                person_id=i,
                time_s=float(t0 + rng.uniform(0.0, (t1 - t0) * 0.8)),
                segment_id=int(seg),
                node_id=segment.u,
            )
        )
    return scenario, requests, t0, t1


def _config(t0, t1, *, seed=0, step_s=60.0, num_teams=20):
    return SimulationConfig(
        t0_s=t0, t1_s=t1, num_teams=num_teams, seed=seed, step_s=step_s
    )


def _run(cls, scenario, requests, config, dispatcher=None, faults=None, router=None):
    sim = cls(
        scenario, list(requests), dispatcher or NearestDispatcher(), config,
        faults=faults, router=router,
    )
    return sim.run()


def _assert_bit_identical(a, b):
    """Full SimulationResult equality — frozen event dataclasses compare
    fieldwise, floats included, so ``==`` here *is* bit-identity."""
    assert a.pickups == b.pickups
    assert a.deliveries == b.deliveries
    assert a.serving_samples == b.serving_samples
    assert list(a.incidents) == list(b.incidents)
    assert a.incidents_dropped == b.incidents_dropped
    assert a.requests == b.requests
    assert a.num_served == b.num_served


class TestKernelGoldenEquivalence:
    @pytest.mark.parametrize("sim_seed", [0, 3])
    @pytest.mark.parametrize("profile", ["none", "mild", "severe"])
    def test_kernel_bit_identical(self, kernel_window, profile, sim_seed):
        scenario, requests, t0, t1 = kernel_window
        config = _config(t0, t1, seed=sim_seed)

        def faults():
            return make_injector(profile, t0, t1, seed=7)

        seed_result = _run(
            RescueSimulator, scenario, requests, config,
            faults=faults(), router=RoutingCache(scenario.network),
        )
        kernel_result = _run(
            EventKernelSimulator, scenario, requests, config, faults=faults()
        )
        assert seed_result.num_served > 0
        if profile == "severe":
            assert seed_result.incidents, "severe profile must record incidents"
        _assert_bit_identical(seed_result, kernel_result)

    def test_kernel_fine_step_bit_identical(self, kernel_window):
        """The regime the kernel exists for — sub-minute steps — where most
        grid ticks are provably skippable."""
        scenario, requests, t0, t1 = kernel_window
        config = _config(t0, t1, step_s=10.0)
        seed_result = _run(
            RescueSimulator, scenario, requests, config,
            router=RoutingCache(scenario.network),
        )
        sim = EventKernelSimulator(
            scenario, list(requests), NearestDispatcher(), config
        )
        kernel_result = sim.run()
        _assert_bit_identical(seed_result, kernel_result)
        assert sim.ticks_processed < sim.num_grid_ticks
        assert sim.events_processed >= sim.ticks_processed

    def test_flood_unaware_dispatcher_equivalence(self, kernel_window):
        """Flood-unaware planning (empty closed set for commands, real one
        for driving) exercises the mid-leg reroute path."""
        scenario, requests, t0, t1 = kernel_window
        config = _config(t0, t1)
        seed_result = _run(
            RescueSimulator, scenario, requests, config,
            dispatcher=RescueTsDispatcher(),
            router=RoutingCache(scenario.network),
        )
        kernel_result = _run(
            EventKernelSimulator, scenario, requests, config,
            dispatcher=RescueTsDispatcher(),
        )
        _assert_bit_identical(seed_result, kernel_result)

    def test_process_toggle_equivalence(self, kernel_window):
        """``build_simulator`` + the global switch select equivalent engines."""
        scenario, requests, t0, t1 = kernel_window
        config = _config(t0, t1)
        previous = set_event_kernel_enabled(False)
        try:
            sim = build_simulator(
                scenario, list(requests), NearestDispatcher(), config,
                router=RoutingCache(scenario.network),
            )
            assert not isinstance(sim, EventKernelSimulator)
            off = sim.run()
            set_event_kernel_enabled(True)
            sim = build_simulator(
                scenario, list(requests), NearestDispatcher(), config
            )
            assert isinstance(sim, EventKernelSimulator)
            on = sim.run()
        finally:
            set_event_kernel_enabled(previous)
        _assert_bit_identical(off, on)


class TestRewardTraceEquivalence:
    def test_rl_reward_trace_bit_identical(self, michael_small, kernel_window):
        """The MobiRescue dispatcher's training transitions — state, action,
        reward, next-state — must be byte-for-byte the same through the
        seed loop and the event kernel."""
        from repro.core.config import MobiRescueConfig
        from repro.core.predictor import RequestPredictor, TrainingSet
        from repro.core.rl_dispatcher import MobiRescueDispatcher, make_agent

        scenario, requests, t0, t1 = kernel_window
        config = _config(t0, t1)
        mscen, _ = michael_small
        rng = np.random.default_rng(21)
        x = rng.normal(size=(80, 3))
        y = (x.sum(axis=1) > 0).astype(int)
        predictor = RequestPredictor(mscen, flood_gated=False).fit(
            TrainingSet(x=x, y=y)
        ).clone_for(scenario)
        cfg = MobiRescueConfig(seed=5)

        def run_with(cls, router):
            agent = make_agent(cfg)
            trace = []
            original = agent.remember

            def recording_remember(state, action, reward, next_state, done):
                trace.append(
                    (state.tobytes(), int(action), float(reward),
                     next_state.tobytes(), bool(done))
                )
                original(state, action, reward, next_state, done)

            agent.remember = recording_remember
            dispatcher = MobiRescueDispatcher(
                scenario, predictor, lambda t: {}, agent, cfg, training=True
            )
            result = _run(
                cls, scenario, requests, config,
                dispatcher=dispatcher, router=router,
            )
            return result, trace

        seed_result, seed_trace = run_with(
            RescueSimulator, RoutingCache(scenario.network)
        )
        kernel_result, kernel_trace = run_with(EventKernelSimulator, None)
        assert seed_trace, "training run must record transitions"
        assert seed_trace == kernel_trace
        _assert_bit_identical(seed_result, kernel_result)

"""Sharding layer tests: keyspace, assignment, order-insensitive merges,
the routed guard's unsharded-equivalence, and the saturation properties.

The saturation tests are the PR's property suite: under any offered
load, a full shard sheds **oldest-first**, nothing raises, and the shed
counts reconcile *exactly* — per shard and across shards — with offered
minus accepted minus quarantined.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.ingest import IngestGuard
from repro.service.records import GpsRecord, IngestSchema
from repro.service.sharding.partition import (
    GridKeyspace,
    ShardAssignment,
    merge_counter_sum,
    merge_reason_counts,
    merge_shard_records,
)
from repro.service.sharding.router import ShardedIngestGuard
from repro.service.sharding.shard import Shard

WIDTH, HEIGHT = 1_000.0, 800.0
SCHEMA = IngestSchema(width_m=WIDTH, height_m=HEIGHT)


def make_keyspace(cells_x=4, cells_y=2) -> GridKeyspace:
    return GridKeyspace(WIDTH, HEIGHT, cells_x=cells_x, cells_y=cells_y)


def cell_center(ks: GridKeyspace, cell: int) -> tuple[float, float]:
    cx, cy = cell % ks.cells_x, cell // ks.cells_x
    return (
        (cx + 0.5) * ks.width_m / ks.cells_x,
        (cy + 0.5) * ks.height_m / ks.cells_y,
    )


def rec_in_cell(ks: GridKeyspace, cell: int, pid: int, t: float) -> GpsRecord:
    x, y = cell_center(ks, cell)
    return GpsRecord(person_id=pid, t_s=t, x=x, y=y, node=pid * 10)


class TestGridKeyspace:
    def test_cell_of_is_row_major(self):
        ks = make_keyspace()
        assert ks.num_cells == 8
        assert ks.cell_of(10.0, 10.0) == 0
        assert ks.cell_of(990.0, 10.0) == 3
        assert ks.cell_of(10.0, 790.0) == 4
        assert ks.cell_of(990.0, 790.0) == 7
        for cell in ks.cells():
            assert ks.cell_of(*cell_center(ks, cell)) == cell

    def test_cell_of_is_total(self):
        ks = make_keyspace()
        assert ks.cell_of(float("nan"), 10.0) == 0
        assert ks.cell_of(10.0, float("inf")) == 0
        assert ks.cell_of(-500.0, -500.0) == 0  # clamped to the border
        assert ks.cell_of(10_000.0, 10_000.0) == ks.num_cells - 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            GridKeyspace(0.0, 100.0)
        with pytest.raises(ValueError):
            GridKeyspace(100.0, 100.0, cells_x=0)


class TestShardAssignment:
    def test_home_stripes_are_contiguous_and_cover_the_keyspace(self):
        assignment = ShardAssignment(make_keyspace(), num_shards=4)
        owners = [assignment.owner(cell) for cell in range(8)]
        assert owners == [0, 0, 1, 1, 2, 2, 3, 3]
        assert owners == sorted(owners)  # contiguous stripes

    def test_reassign_and_restore_round_trip(self):
        assignment = ShardAssignment(make_keyspace(), num_shards=4)
        moved = assignment.reassign(1, 0)
        assert moved == (2, 3)
        assert assignment.owner(2) == 0
        assert assignment.home_owner(2) == 1  # home is immutable
        assert assignment.uncovered_cells(alive=(0, 2, 3)) == ()
        restored = assignment.restore(1)
        assert restored == (2, 3)
        assert assignment.cells_of(1) == (2, 3)

    def test_uncovered_cells_reports_dead_ownership(self):
        assignment = ShardAssignment(make_keyspace(), num_shards=4)
        assert assignment.uncovered_cells(alive=(0, 2, 3)) == (2, 3)
        assert assignment.uncovered_cells(alive=(0, 1, 2, 3)) == ()

    def test_neighbor_ring_distance_ties_break_low(self):
        assignment = ShardAssignment(make_keyspace(8, 8), num_shards=8)
        assert assignment.neighbor_of(1, alive=(0, 2, 5)) == 0  # tie 0 vs 2
        assert assignment.neighbor_of(0, alive=(1, 7)) == 1  # ring wraps
        assert assignment.neighbor_of(3, alive=(3,)) is None  # only itself
        assert assignment.neighbor_of(3, alive=()) is None

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(ValueError):
            ShardAssignment(make_keyspace(), num_shards=0)
        with pytest.raises(ValueError):
            ShardAssignment(make_keyspace(), num_shards=9)  # 8 cells


class TestMergeReducers:
    def test_merge_shard_records_is_order_insensitive(self):
        ks = make_keyspace()
        lists = [
            [rec_in_cell(ks, 0, pid=3, t=10.0), rec_in_cell(ks, 1, pid=1, t=10.0)],
            [rec_in_cell(ks, 2, pid=2, t=10.0)],
            [rec_in_cell(ks, 3, pid=1, t=20.0)],  # newer fix for person 1
        ]
        merged = merge_shard_records(lists)
        for permuted in (lists[::-1], [lists[1], lists[2], lists[0]]):
            other = merge_shard_records(permuted)
            assert other == merged
            assert list(other.items()) == list(merged.items())  # key order too
        assert list(merged) == [1, 2, 3]  # ascending person id
        assert merged[1] == 10  # t=20 record wins for person 1

    def test_merge_reason_counts_is_order_insensitive(self):
        counts = [{"b": 2, "a": 1}, {"a": 3}, {"c": 1}]
        merged = merge_reason_counts(counts)
        assert merged == {"a": 4, "b": 2, "c": 1}
        assert list(merged) == ["a", "b", "c"]
        assert merge_reason_counts(counts[::-1]) == merged

    def test_merge_counter_sum(self):
        assert merge_counter_sum([1, 2, 3]) == 6
        assert merge_counter_sum([]) == 0


def make_router(num_shards=4, max_queue=1_000, **kwargs) -> ShardedIngestGuard:
    return ShardedIngestGuard(
        schema=SCHEMA,
        keyspace=make_keyspace(),
        num_shards=num_shards,
        shard_max_queue=max_queue,
        **kwargs,
    )


class TestShardedIngestGuard:
    def test_routes_by_cell_ownership(self):
        router = make_router()
        ks = router.keyspace
        for cell in range(8):
            shard = router.shard_for(rec_in_cell(ks, cell, pid=cell + 1, t=10.0))
            assert shard.shard_id == router.assignment.owner(cell) == cell // 2

    def test_snapshot_is_bit_identical_to_unsharded_guard(self):
        """The tentpole equivalence, at guard level: same submissions in
        feed order, same snapshot dict — values *and* key order."""
        router = make_router()
        plain = IngestGuard(SCHEMA)
        ks = router.keyspace
        rng = np.random.default_rng(7)
        for tick in range(5):
            t = 100.0 * (tick + 1)
            batch = [
                rec_in_cell(ks, int(rng.integers(8)), pid=pid, t=t)
                for pid in range(1, 40)
            ]
            for record in batch:  # feed order: ascending person id
                assert router.submit(record, now_s=t) == plain.submit(
                    record, now_s=t
                )
            sharded = router.snapshot(t)
            unsharded = plain.snapshot(t)
            assert list(sharded.items()) == list(unsharded.items())

    def test_quarantine_is_isolated_to_the_owning_shard(self):
        router = make_router()
        ks = router.keyspace
        bad = rec_in_cell(ks, 6, pid=5, t=10.0)
        bad = GpsRecord(bad.person_id, float("nan"), bad.x, bad.y, bad.node)
        assert not router.submit(bad, now_s=10.0)
        per_shard = [len(s.guard.quarantined) for s in router.shards]
        assert per_shard == [0, 0, 0, 1]  # cell 6 belongs to shard 3
        assert router.stats()["rejected_total"] == 1

    def test_dead_shard_loses_submits_but_never_raises(self):
        router = make_router()
        ks = router.keyspace
        router.shards[2].kill()
        assert not router.submit(rec_in_cell(ks, 4, pid=1, t=10.0), now_s=10.0)
        assert router.lost == 1
        assert router.shards[2].lost_submits == 1
        assert router.snapshot(10.0) == {}  # dead shard drains nothing
        assert router.reconciles()

    def test_fault_hook_applied_once_per_timestamp(self):
        calls = []
        router = make_router(fault_hook=calls.append)
        ks = router.keyspace
        router.submit(rec_in_cell(ks, 0, pid=1, t=10.0), now_s=10.0)
        router.submit(rec_in_cell(ks, 1, pid=2, t=10.0), now_s=10.0)
        router.snapshot(10.0)
        router.snapshot(20.0)
        assert calls == [10.0, 20.0]


class TestSaturationProperties:
    """Satellite: property-style saturation and exact shed reconciliation."""

    def _offer(self, router, records):
        quarantined = 0
        for record in records:
            if not router.submit(record, now_s=record.t_s):
                quarantined += 1
        return quarantined

    def test_full_shard_sheds_oldest_first(self):
        router = make_router(max_queue=3)
        ks = router.keyspace
        records = [rec_in_cell(ks, 0, pid=pid, t=10.0) for pid in range(1, 7)]
        assert self._offer(router, records) == 0
        shard = router.shards[0]
        assert shard.guard.shed == 3
        survivors = [r.person_id for r in shard.guard.drain()]
        assert survivors == [4, 5, 6]  # the three newest

    def test_saturation_never_raises_and_reconciles_per_shard(self):
        rng = np.random.default_rng(42)
        router = make_router(max_queue=20)
        ks = router.keyspace
        offered = 0
        quarantined = 0
        for tick in range(10):
            t = 50.0 * (tick + 1)
            batch = []
            for pid in range(1, 120):
                cell = int(rng.integers(8))
                record = rec_in_cell(ks, cell, pid=pid, t=t)
                if rng.random() < 0.05:  # a few malformed fixes
                    record = GpsRecord(
                        record.person_id, record.t_s, float("nan"),
                        record.y, record.node,
                    )
                batch.append(record)
            offered += len(batch)
            quarantined += self._offer(router, batch)
            if tick % 3 == 2:
                router.snapshot(t)
        # Global conservation: every offered record has exactly one fate.
        assert offered == router.accepted + quarantined
        # Per-shard conservation, exactly.
        for shard in router.shards:
            guard = shard.guard
            assert guard.accepted == guard.drained + guard.queued + guard.shed
            assert guard.queued <= 20
        assert router.reconciles()
        # Cross-shard: the aggregate view sums the per-shard counters.
        stats = router.stats()
        assert stats["accepted"] == sum(
            s.guard.accepted for s in router.shards
        )
        assert stats["shed"] == sum(s.guard.shed for s in router.shards)
        assert stats["rejected_total"] == quarantined

    def test_shed_counts_reconcile_across_uneven_load(self):
        """Hot-spot skew: one cell gets most traffic; sheds concentrate
        on its owner but the global ledger still balances exactly."""
        router = make_router(max_queue=10)
        ks = router.keyspace
        offered = 0
        for tick in range(6):
            t = 100.0 * (tick + 1)
            hot = [rec_in_cell(ks, 0, pid=pid, t=t) for pid in range(1, 60)]
            cold = [rec_in_cell(ks, 5, pid=pid + 100, t=t) for pid in range(1, 4)]
            for record in hot + cold:
                offered += 1
                assert router.submit(record, now_s=t)
            router.snapshot(t)
        hot_shard, cold_shard = router.shards[0], router.shards[2]
        assert hot_shard.guard.shed > 0
        assert cold_shard.guard.shed == 0  # isolation: no cross-shard shed
        assert offered == router.accepted
        assert router.accepted == router.drained + router.queued + router.shed
        assert router.reconciles()

    def test_transfer_preserves_the_ledger(self):
        router = make_router(max_queue=50)
        ks = router.keyspace
        for pid in range(1, 11):
            assert router.submit(rec_in_cell(ks, 0, pid=pid, t=10.0), now_s=10.0)
        donor, receiver = router.shards[0], router.shards[1]
        assert donor.transfer_queue_to(receiver) == 10
        assert donor.transferred_out == 10
        assert receiver.transferred_in == 10
        assert receiver.guard.queued == 10
        assert receiver.guard.accepted == 0  # no double-count
        assert donor.reconciles() and receiver.reconciles()
        assert router.reconciles()


class TestShardLifecycle:
    def test_kill_loses_queue_and_reconciles(self):
        guard = IngestGuard(SCHEMA)
        shard = Shard(0, guard)
        ks = make_keyspace()
        for pid in range(1, 6):
            assert shard.submit(rec_in_cell(ks, 0, pid=pid, t=10.0), now_s=10.0)
        assert shard.kill() == 5
        assert shard.lost_queued == 5
        assert not shard.alive
        assert shard.drain_snapshot(20.0) is None  # dead: no beat
        assert shard.last_beat_t_s is None
        assert shard.reconciles()

    def test_revive_restores_service_and_heartbeat(self):
        shard = Shard(0, IngestGuard(SCHEMA))
        ks = make_keyspace()
        shard.kill()
        shard.revive()
        assert shard.submit(rec_in_cell(ks, 0, pid=1, t=30.0), now_s=30.0)
        drained = shard.drain_snapshot(30.0)
        assert drained is not None and len(drained) == 1
        assert shard.last_beat_t_s == 30.0
        assert shard.reconciles()

    def test_skew_reduces_capacity_oldest_first(self):
        shard = Shard(0, IngestGuard(SCHEMA, max_queue=8))
        ks = make_keyspace()
        for pid in range(1, 9):
            assert shard.submit(rec_in_cell(ks, 0, pid=pid, t=10.0), now_s=10.0)
        shard.capacity_divisor = 4  # injected hot-shard skew: capacity 2
        drained = shard.drain_snapshot(10.0)
        assert [r.person_id for r in drained] == [7, 8]
        assert shard.guard.shed == 6
        assert shard.reconciles()

    def test_stall_is_carried_on_the_heartbeat(self):
        shard = Shard(0, IngestGuard(SCHEMA))
        shard.stall_s = 30.0
        shard.drain_snapshot(10.0)
        assert shard.last_beat_t_s == 10.0
        assert shard.last_beat_delay_s == 30.0

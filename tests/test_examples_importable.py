"""The example scripts must at least import cleanly and expose ``main``.

Full example runs are minutes-long; CI-level protection here is that the
modules parse, import their dependencies, and keep the documented entry
point.  (The examples are exercised end-to-end manually and by the
equivalent library paths under tests/.)
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None))
    assert module.__doc__, "examples must explain themselves"
    assert "Run:" in module.__doc__


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "dataset_analysis", "method_comparison"} <= names
    assert len(names) >= 3

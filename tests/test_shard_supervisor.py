"""Supervisor tests: the failover state machine end to end.

Dead and stalled detection, keyspace reassignment to the ring
neighbour, stalled-queue transfer, bounded recovery probes with
abandonment, rebalance on recovery, the degraded-in-place path when no
neighbour is alive, and the bounded incident ring.
"""

from __future__ import annotations

import pytest

from repro.service.records import GpsRecord, IngestSchema
from repro.service.sharding.partition import GridKeyspace
from repro.service.sharding.router import ShardedIngestGuard
from repro.service.sharding.supervisor import (
    STATUS_ABANDONED,
    STATUS_ACTIVE,
    STATUS_FAILED,
    ShardSupervisor,
    SupervisorConfig,
)

WIDTH, HEIGHT = 1_000.0, 800.0
SCHEMA = IngestSchema(width_m=WIDTH, height_m=HEIGHT)


def rec_in_cell(ks: GridKeyspace, cell: int, pid: int, t: float) -> GpsRecord:
    cx, cy = cell % ks.cells_x, cell // ks.cells_x
    x = (cx + 0.5) * ks.width_m / ks.cells_x
    y = (cy + 0.5) * ks.height_m / ks.cells_y
    return GpsRecord(person_id=pid, t_s=t, x=x, y=y, node=pid)


class Harness:
    """A router + supervisor driven tick by tick, like the service does."""

    def __init__(self, num_shards=4, config=None, incidents=None):
        self.router = ShardedIngestGuard(
            schema=SCHEMA,
            keyspace=GridKeyspace(WIDTH, HEIGHT, cells_x=4, cells_y=2),
            num_shards=num_shards,
        )
        sink = None
        if incidents is not None:
            sink = lambda kind, detail, t: incidents.append(kind)
        self.supervisor = ShardSupervisor(
            self.router, config or SupervisorConfig(), incident_sink=sink
        )
        self.tick = 0

    def step(self, before_judgement=None):
        """One service tick: snapshot (drain + heartbeats), then judge."""
        self.tick += 1
        t = float(self.tick) * 300.0
        snapshot = self.router.snapshot(t)
        if before_judgement is not None:
            before_judgement(t)
        self.supervisor.on_tick(self.tick, t)
        return t, snapshot


class TestDeadFailover:
    def test_dead_shard_fails_over_to_ring_neighbour(self):
        h = Harness()
        h.step()  # all healthy
        h.router.shards[1].kill()
        t, _ = h.step()
        assert h.supervisor.statuses()[1] == STATUS_FAILED
        [event] = h.supervisor.failovers
        assert event.reason == "dead"
        assert event.from_shard == 1
        assert event.to_shard == 0  # ring distance 1, tie breaks low
        assert event.cells == (2, 3)
        assert event.uncovered_cycles == 1
        assert event.transferred_records == 0  # the dead queue died
        # The keyspace is re-covered: records for cell 2 now land on 0.
        record = rec_in_cell(h.router.keyspace, 2, pid=1, t=t)
        assert h.router.shard_for(record).shard_id == 0
        assert h.router.assignment.uncovered_cells(h.router.alive_shards()) == ()

    def test_miss_threshold_delays_detection(self):
        h = Harness(config=SupervisorConfig(miss_threshold=3))
        h.router.shards[1].kill()
        h.step()
        h.step()
        assert h.supervisor.failovers == []
        h.step()  # third consecutive miss
        [event] = h.supervisor.failovers
        assert event.uncovered_cycles == 3

    def test_budget_verdict_reflects_uncovered_cycles(self):
        config = SupervisorConfig(miss_threshold=3, failover_budget_cycles=2)
        h = Harness(config=config)
        h.router.shards[1].kill()
        for _ in range(3):
            h.step()
        assert h.supervisor.max_uncovered_cycles() == 3
        assert not h.supervisor.within_failover_budget()


class TestStalledFailover:
    def test_stalled_shard_transfers_its_queue(self):
        config = SupervisorConfig(stall_tolerance_s=5.0, stall_threshold=2)
        h = Harness(config=config)
        h.router.shards[2].stall_s = 30.0
        h.step()  # first stalled beat: tolerated
        assert h.supervisor.failovers == []

        def enqueue_before_judgement(t):
            # Records accepted after the drain sit in the queue when the
            # supervisor commands the failover — they must move, not drop.
            for pid in range(1, 4):
                assert h.router.submit(
                    rec_in_cell(h.router.keyspace, 4, pid=pid, t=t), now_s=t
                )

        h.step(before_judgement=enqueue_before_judgement)
        [event] = h.supervisor.failovers
        assert event.reason == "stalled"
        assert event.from_shard == 2
        assert event.to_shard == 1  # ring distance 1, tie breaks low
        assert event.transferred_records == 3
        assert event.uncovered_cycles == 0  # it kept beating throughout
        assert h.router.shards[1].guard.queued == 3
        assert h.router.shards[2].transferred_out == 3
        assert h.router.reconciles()

    def test_recovered_stall_resets_the_counter(self):
        config = SupervisorConfig(stall_tolerance_s=5.0, stall_threshold=2)
        h = Harness(config=config)
        h.router.shards[2].stall_s = 30.0
        h.step()
        h.router.shards[2].stall_s = 0.0  # latency spike ended
        h.step()
        h.router.shards[2].stall_s = 30.0
        h.step()
        assert h.supervisor.failovers == []  # never two *consecutive* stalls


class TestRecovery:
    def test_revived_shard_is_probed_and_rebalanced(self):
        h = Harness()
        h.router.shards[1].kill()
        h.step()  # failover
        h.router.shards[1].revive()
        h.step()  # drain stamps a fresh beat; probe passes
        assert h.supervisor.statuses()[1] == STATUS_ACTIVE
        [event] = h.supervisor.rebalances
        assert event.shard == 1
        assert event.cells == (2, 3)
        assert event.probes_used == 1
        assert h.router.assignment.owner(2) == 1

    def test_probes_are_bounded_then_abandoned(self):
        incidents = []
        config = SupervisorConfig(max_probe_retries=3)
        h = Harness(config=config, incidents=incidents)
        h.router.shards[1].kill()
        h.step()  # failover
        for _ in range(3):
            h.step()  # dead probes
        assert h.supervisor.statuses()[1] == STATUS_ABANDONED
        assert "shard_abandoned" in incidents
        probes_at_abandon = h.supervisor.watch[1].probes
        h.step()  # abandoned shards are not probed again
        assert h.supervisor.watch[1].probes == probes_at_abandon
        # Its keyspace stays with the failover target for good.
        assert h.router.assignment.owner(2) == 0

    def test_rebalanced_shard_can_fail_over_again(self):
        h = Harness()
        h.router.shards[1].kill()
        h.step()
        h.router.shards[1].revive()
        h.step()  # rebalanced
        h.router.shards[1].kill()
        h.step()  # second failover
        assert len(h.supervisor.failovers) == 2
        assert h.supervisor.watch[1].failovers == 2


class TestDegradedInPlace:
    def test_no_alive_neighbour_degrades_without_moving_keyspace(self):
        incidents = []
        h = Harness(num_shards=2, incidents=incidents)
        h.router.shards[0].kill()
        h.router.shards[1].kill()
        h.step()
        assert incidents.count("shard_degraded") == 2
        for event in h.supervisor.failovers:
            assert event.to_shard is None
        # Ownership unmoved: nobody alive could take it.
        assert h.router.assignment.owner(0) == 0
        assert h.router.assignment.owner(7) == 1


class TestIncidentRingAndSummary:
    def test_incident_ring_is_bounded(self):
        config = SupervisorConfig(max_incidents=1, max_probe_retries=1)
        h = Harness(config=config)
        h.router.shards[1].kill()
        h.router.shards[3].kill()
        h.step()  # two failover incidents into a ring of one
        assert len(h.supervisor.incidents) == 1
        assert h.supervisor.incidents_dropped >= 1

    def test_summary_is_json_ready_and_complete(self):
        import json

        h = Harness()
        h.router.shards[1].kill()
        h.step()
        h.router.shards[1].revive()
        h.step()
        summary = h.supervisor.summary()
        encoded = json.loads(json.dumps(summary))
        assert encoded["ticks_supervised"] == 2
        assert encoded["statuses"]["1"] == STATUS_ACTIVE
        assert len(encoded["failovers"]) == 1
        assert len(encoded["rebalances"]) == 1
        assert encoded["within_failover_budget"] is True

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(miss_threshold=0)
        with pytest.raises(ValueError):
            SupervisorConfig(stall_tolerance_s=-1.0)
        with pytest.raises(ValueError):
            SupervisorConfig(max_probe_retries=0)
        with pytest.raises(ValueError):
            SupervisorConfig(failover_budget_cycles=0)
        with pytest.raises(ValueError):
            SupervisorConfig(max_incidents=0)

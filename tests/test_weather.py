"""Tests for storm timelines, weather fields and the weather service."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.regions import charlotte_regions
from repro.geo.terrain import TerrainField
from repro.geo.flood import FloodModel
from repro.weather.fields import RegionWeatherField
from repro.weather.service import WeatherService
from repro.weather.storms import (
    FLORENCE,
    MICHAEL,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    StormTimeline,
    day_index,
    day_label,
)

W, H = 70_000.0, 45_000.0


class TestStormTimeline:
    def test_florence_window_covers_paper_days(self):
        # Aug 25 (Fig 2 before-day) .. Sep 20 (after-day), storm Sep 12-15.
        assert day_label(FLORENCE, 0) == "Aug 25"
        assert day_label(FLORENCE, 26) == "Sep 20"
        assert day_index(FLORENCE, "Sep 16") == 22
        assert 18.0 <= FLORENCE.storm_start_day <= 19.0
        assert 21.0 <= FLORENCE.storm_end_day <= 22.0

    def test_intensity_zero_outside_storm(self):
        assert FLORENCE.intensity(0.0) == 0.0
        assert FLORENCE.intensity(FLORENCE.duration_s) == 0.0

    def test_intensity_peaks_mid_storm(self):
        mid = (FLORENCE.storm_start_s + FLORENCE.storm_end_s) / 2
        assert FLORENCE.intensity(mid) == pytest.approx(1.0)

    @given(st.floats(0, 27 * SECONDS_PER_DAY))
    def test_intensity_bounded(self, t):
        assert 0.0 <= FLORENCE.intensity(t) <= 1.0

    @given(st.floats(0, 27 * SECONDS_PER_DAY))
    def test_flood_level_bounded(self, t):
        assert 0.0 <= FLORENCE.flood_level(t) <= 1.0

    def test_flood_crests_after_storm_end(self):
        """The flood level peaks after the rain stops (river-crest lag)."""
        ts = np.arange(0, FLORENCE.duration_s, 600.0)
        levels = np.array([FLORENCE.flood_level(t) for t in ts])
        t_peak = ts[int(np.argmax(levels))]
        assert t_peak > FLORENCE.storm_end_s

    def test_flood_level_sep16_near_peak(self):
        sep16_noon = (day_index(FLORENCE, "Sep 16") + 0.5) * SECONDS_PER_DAY
        sep14_noon = (day_index(FLORENCE, "Sep 14") + 0.5) * SECONDS_PER_DAY
        assert FLORENCE.flood_level(sep16_noon) > 0.8
        assert FLORENCE.flood_level(sep16_noon) > 1.5 * FLORENCE.flood_level(sep14_noon)

    def test_flood_recedes_but_persists(self):
        sep20 = (day_index(FLORENCE, "Sep 20") + 0.5) * SECONDS_PER_DAY
        level = FLORENCE.flood_level(sep20)
        assert 0.1 < level < 0.8

    def test_intensity_integral_matches_numeric(self):
        t0, t1 = FLORENCE.storm_start_s - 3600, FLORENCE.storm_end_s + 3600
        ts = np.linspace(t0, t1, 20_000)
        numeric = np.trapezoid([FLORENCE.intensity(t) for t in ts], ts) / SECONDS_PER_HOUR
        assert FLORENCE.intensity_integral_h(t0, t1) == pytest.approx(numeric, rel=1e-4)

    def test_intensity_integral_additive(self):
        a, b, c = FLORENCE.storm_start_s, FLORENCE.storm_start_s + 40_000, FLORENCE.storm_end_s
        assert FLORENCE.intensity_integral_h(a, c) == pytest.approx(
            FLORENCE.intensity_integral_h(a, b) + FLORENCE.intensity_integral_h(b, c)
        )

    def test_phase(self):
        assert FLORENCE.phase(0.0) == "before"
        assert FLORENCE.phase((FLORENCE.storm_start_s + FLORENCE.storm_end_s) / 2) == "during"
        assert FLORENCE.phase(FLORENCE.duration_s) == "after"

    def test_michael_valid(self):
        assert MICHAEL.total_days == 14
        # Michael hit Charlotte less hard than Florence: its flood crest
        # stays well below Florence's.
        crest = max(MICHAEL.flood_level(d * 0.1 * SECONDS_PER_DAY) for d in range(140))
        assert 0.3 < crest < 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            StormTimeline("x", "Sep 1", 10, 8.0, 5.0)
        with pytest.raises(ValueError):
            StormTimeline("x", "Sep 1", 10, 1.0, 5.0, rise_tau_days=0.0)
        with pytest.raises(ValueError):
            StormTimeline("x", "Sep 1", 10, 1.0, 5.0, crest_gain=0.5)

    def test_day_label_roundtrip(self):
        for d in range(FLORENCE.total_days):
            assert day_index(FLORENCE, day_label(FLORENCE, d)) == d

    def test_day_label_month_rollover(self):
        assert day_label(FLORENCE, 6) == "Aug 31"
        assert day_label(FLORENCE, 7) == "Sep 1"


class TestRegionWeatherField:
    @pytest.fixture(scope="class")
    def field(self):
        return RegionWeatherField(charlotte_regions(W, H), FLORENCE)

    def test_peak_precip_matches_profile(self, field):
        mid = (FLORENCE.storm_start_s + FLORENCE.storm_end_s) / 2
        assert field.precipitation_mm_per_h(1, mid) == pytest.approx(127.0)
        assert field.precipitation_mm_per_h(2, mid) == pytest.approx(152.0)

    def test_wind_floor_when_calm(self, field):
        assert field.wind_mph(1, 0.0) == 5.0

    def test_severity_ordering_matches_profiles(self, field):
        t = (FLORENCE.storm_end_s + 12 * SECONDS_PER_HOUR)
        sev = {r: field.severity(r, t) for r in field.partition.region_ids}
        assert sev[3] > sev[2] > sev[1]

    def test_severity_zero_before_storm(self, field):
        for r in field.partition.region_ids:
            assert field.severity(r, 0.0) == 0.0

    def test_factor_precipitation_positive_after_storm(self, field):
        """The trailing-window factor stays informative on Sep 16."""
        sep16 = (day_index(FLORENCE, "Sep 16") + 0.5) * SECONDS_PER_DAY
        assert field.factor_precipitation_mm_per_h(3, sep16) > 5.0
        assert field.precipitation_mm_per_h(3, sep16) == 0.0

    def test_factor_precipitation_ordering(self, field):
        sep16 = (day_index(FLORENCE, "Sep 16") + 0.5) * SECONDS_PER_DAY
        fp = {r: field.factor_precipitation_mm_per_h(r, sep16) for r in (1, 2, 3)}
        assert fp[3] > fp[2] > fp[1]

    def test_accumulated_monotone(self, field):
        acc = [
            field.accumulated_precipitation_mm(3, d * SECONDS_PER_DAY)
            for d in range(FLORENCE.total_days)
        ]
        assert all(b >= a for a, b in zip(acc, acc[1:]))

    def test_accumulated_total_scale(self, field):
        """Total accumulation = peak rate x sine-pulse integral."""
        total = field.accumulated_precipitation_mm(3, FLORENCE.duration_s)
        storm_hours = (FLORENCE.storm_end_s - FLORENCE.storm_start_s) / SECONDS_PER_HOUR
        expected = 165.0 * storm_hours * 2.0 / np.pi
        assert total == pytest.approx(expected, rel=1e-6)


class TestWeatherService:
    @pytest.fixture(scope="class")
    def service(self):
        part = charlotte_regions(W, H)
        terr = TerrainField(part)
        field = RegionWeatherField(part, FLORENCE)
        flood = FloodModel(terr, field.severity_fn())
        return WeatherService(field, terr, flood)

    def test_factor_vector_shape_and_content(self, service):
        t = 20 * SECONDS_PER_DAY
        h = service.factor_vector(W / 2, H / 2, t)
        assert h.shape == (3,)
        precip, wind, alt = h
        assert precip > 0
        assert wind >= 5.0
        assert 150 < alt < 260

    def test_factor_vectors_match_scalar(self, service):
        t = 20 * SECONDS_PER_DAY
        rng = np.random.default_rng(4)
        xy = rng.uniform([0, 0], [W, H], size=(50, 2))
        batch = service.factor_vectors(xy, t)
        for i in range(10):
            np.testing.assert_allclose(
                batch[i], service.factor_vector(xy[i, 0], xy[i, 1], t), rtol=1e-9
            )

    def test_flood_query_consistent(self, service):
        t = 22.5 * SECONDS_PER_DAY
        assert service.is_flooded(W / 2, H / 2, t) == service.flood.is_flooded(
            W / 2, H / 2, t
        )

    def test_mismatched_partition_rejected(self):
        part_a = charlotte_regions(W, H)
        part_b = charlotte_regions(W, H)
        terr = TerrainField(part_a)
        field = RegionWeatherField(part_b, FLORENCE)
        flood = FloodModel(terr, field.severity_fn())
        with pytest.raises(ValueError):
            WeatherService(field, terr, flood)

"""Property-style randomized equivalence tests for the routing cache.

Core claim under test: for ANY ``(src, dst, closed-set)`` triple — random
closure sets of every density, disconnected pairs, the all-closed network —
the cache answers exactly what a fresh seed Dijkstra answers, and keeps
answering it across hits, promotions and LRU evictions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.routing_cache import (
    DirectRouter,
    RoutingCache,
    clear_routing_caches,
    default_router,
    routing_cache,
    routing_cache_enabled,
    set_routing_cache_enabled,
)
from repro.roadnet.routing import (
    dijkstra_tree,
    route_to_segment,
    shortest_path,
    shortest_time_from,
    shortest_time_to,
)

NUM_CASES = 200


@pytest.fixture(scope="module")
def net(florence_scenario):
    return florence_scenario.network


def _random_closed(rng, seg_ids, fraction):
    k = int(round(fraction * len(seg_ids)))
    if k == 0:
        return frozenset()
    return frozenset(int(s) for s in rng.choice(seg_ids, size=k, replace=False))


class TestRandomizedEquivalence:
    def test_cached_routes_match_fresh_dijkstra(self, net):
        """~NUM_CASES random (src, dst, closed) triples, mixed densities.

        Closure fractions include 0 (free network), mid densities that
        disconnect some pairs, and 1.0 (everything closed).  Every triple
        is queried three times so the first-touch (target-pruned),
        promotion (full-tree build) and hit paths all face the same oracle.
        """
        rng = np.random.default_rng(42)
        nodes = np.array(net.landmark_ids())
        seg_ids = np.array(net.segment_ids())
        cache = RoutingCache(net)
        fractions = [0.0, 0.02, 0.1, 0.35, 0.7, 1.0]
        cases = 0
        unreachable = 0
        for fraction in fractions:
            for _ in range(NUM_CASES // len(fractions) // 2 + 1):
                closed = _random_closed(rng, seg_ids, fraction)
                src, dst = (int(n) for n in rng.choice(nodes, size=2, replace=False))
                expected = shortest_path(net, src, dst, closed=closed)
                for _repeat in range(3):
                    cases += 1
                    got = cache.route(src, dst, closed=closed)
                    assert got == expected
                    if expected is None:
                        unreachable += 1
                    else:
                        # Exact float equality, not approx: same routine,
                        # same relaxation order, same accumulation.
                        assert got.travel_time_s == expected.travel_time_s
                        assert got.nodes == expected.nodes
                        assert got.segment_ids == expected.segment_ids
        assert cases >= NUM_CASES
        assert unreachable > 0, "closure densities must produce disconnected pairs"
        assert cache.hits > 0 and cache.misses > 0

    def test_cached_costs_match_fresh_dijkstra(self, net):
        rng = np.random.default_rng(43)
        nodes = np.array(net.landmark_ids())
        seg_ids = np.array(net.segment_ids())
        cache = RoutingCache(net)
        for fraction in (0.0, 0.15, 0.5, 1.0):
            closed = _random_closed(rng, seg_ids, fraction)
            for _ in range(6):
                root = int(rng.choice(nodes))
                assert cache.time_from(root, closed=closed) == shortest_time_from(
                    net, root, closed=closed
                )
                assert cache.time_to(root, closed=closed) == shortest_time_to(
                    net, root, closed=closed
                )

    def test_route_to_segment_matches_seed(self, net):
        rng = np.random.default_rng(44)
        nodes = np.array(net.landmark_ids())
        seg_ids = np.array(net.segment_ids())
        cache = RoutingCache(net)
        for fraction in (0.0, 0.2, 0.6):
            closed = _random_closed(rng, seg_ids, fraction)
            for _ in range(15):
                src = int(rng.choice(nodes))
                seg = int(rng.choice(seg_ids))
                expected = route_to_segment(net, src, seg, closed=closed)
                assert cache.route_to_segment(src, seg, closed=closed) == expected
        # A closed target segment is never routable.
        seg = int(seg_ids[0])
        assert cache.route_to_segment(int(nodes[0]), seg, closed=frozenset({seg})) is None

    def test_all_closed_network(self, net):
        closed = frozenset(int(s) for s in net.segment_ids())
        cache = RoutingCache(net)
        nodes = net.landmark_ids()
        src, dst = int(nodes[0]), int(nodes[1])
        assert cache.route(src, dst, closed=closed) is None
        assert cache.time_from(src, closed=closed) == {src: 0.0}
        assert cache.time_to(dst, closed=closed) == {dst: 0.0}
        # src == dst stays trivially routable even with everything closed.
        trivial = cache.route(src, src, closed=closed)
        assert trivial is not None and trivial.is_trivial


class TestCacheMechanics:
    def test_promotion_path_is_consistent(self, net):
        """First touch (target-pruned), second touch (full-tree build) and
        third touch (hit) of the same root must all agree."""
        nodes = net.landmark_ids()
        src, dst = int(nodes[3]), int(nodes[-5])
        cache = RoutingCache(net)
        first = cache.route(src, dst)
        assert cache.num_trees == 0  # pruned search, nothing cached yet
        second = cache.route(src, dst)
        assert cache.num_trees == 1  # promoted to a full tree
        hits_before = cache.hits
        third = cache.route(src, dst)
        assert cache.hits == hits_before + 1
        assert first == second == third == shortest_path(net, src, dst)

    def test_cost_row_then_route_is_a_hit(self, net):
        """The engine's nearest-hospital pattern: one SSSP serves both."""
        nodes = net.landmark_ids()
        src, dst = int(nodes[0]), int(nodes[7])
        cache = RoutingCache(net)
        cache.time_from(src)
        assert (cache.misses, cache.hits) == (1, 0)
        route = cache.route(src, dst)
        assert (cache.misses, cache.hits) == (1, 1)
        assert route == shortest_path(net, src, dst)

    def test_lru_eviction_keeps_answers_correct(self, net):
        rng = np.random.default_rng(45)
        nodes = np.array(net.landmark_ids())
        cache = RoutingCache(net, max_closure_sets=2, max_trees_per_closure=4)
        seg_ids = np.array(net.segment_ids())
        closures = [_random_closed(rng, seg_ids, f) for f in (0.0, 0.1, 0.3)]
        for _ in range(40):
            closed = closures[int(rng.integers(len(closures)))]
            root = int(rng.choice(nodes))
            assert cache.time_from(root, closed=closed) == shortest_time_from(
                net, root, closed=closed
            )
            assert len(cache._closures) <= 2
            assert all(len(line.trees) <= 4 for line in cache._closures.values())

    def test_invalid_weight_rejected(self, net):
        cache = RoutingCache(net)
        nodes = net.landmark_ids()
        with pytest.raises(ValueError):
            cache.route(int(nodes[0]), int(nodes[1]), weight="fuel")
        with pytest.raises(ValueError):
            cache.time_from(int(nodes[0]), weight="fuel")
        with pytest.raises(ValueError):
            RoutingCache(net, max_closure_sets=0)

    def test_unknown_landmark_rejected(self, net):
        cache = RoutingCache(net)
        with pytest.raises(KeyError):
            cache.route(-1, int(net.landmark_ids()[0]))

    def test_weight_length_cached_separately(self, net):
        nodes = net.landmark_ids()
        src, dst = int(nodes[2]), int(nodes[-2])
        cache = RoutingCache(net)
        by_time = cache.time_from(src, weight="time")
        by_length = cache.time_from(src, weight="length")
        assert by_time == shortest_time_from(net, src, weight="time")
        assert by_length == shortest_time_from(net, src, weight="length")
        r = cache.route(src, dst, weight="length")
        assert r == shortest_path(net, src, dst, weight="length")


class TestProcessWideWiring:
    def test_toggle_switches_router_kind(self, net):
        clear_routing_caches()
        previous = set_routing_cache_enabled(True)
        try:
            assert routing_cache_enabled()
            assert isinstance(default_router(net), RoutingCache)
            assert set_routing_cache_enabled(False) is True
            assert isinstance(default_router(net), DirectRouter)
        finally:
            set_routing_cache_enabled(previous)
            clear_routing_caches()

    def test_cache_is_per_network_and_reused(self, net):
        clear_routing_caches()
        previous = set_routing_cache_enabled(True)
        try:
            a = routing_cache(net)
            assert routing_cache(net) is a
        finally:
            set_routing_cache_enabled(previous)
            clear_routing_caches()

    def test_direct_router_matches_seed_functions(self, net):
        nodes = net.landmark_ids()
        src, dst = int(nodes[1]), int(nodes[-1])
        router = DirectRouter(net)
        assert router.route(src, dst) == shortest_path(net, src, dst)
        assert router.time_from(src) == shortest_time_from(net, src)
        assert router.time_to(dst) == shortest_time_to(net, dst)
        seg = int(net.segment_ids()[5])
        assert router.route_to_segment(src, seg) == route_to_segment(net, src, seg)


class TestPrunedTreeProperty:
    def test_pruned_and_full_trees_agree_on_settled_labels(self, net):
        """The invariant the first-touch optimization rests on: a run that
        stops at ``target`` has settled exactly the labels the full run
        settles, with identical distances and predecessors."""
        rng = np.random.default_rng(46)
        nodes = np.array(net.landmark_ids())
        for _ in range(20):
            root, target = (int(n) for n in rng.choice(nodes, size=2, replace=False))
            full_dist, full_prev = dijkstra_tree(net, root)
            dist, prev = dijkstra_tree(net, root, target=target)
            # The target and its whole predecessor chain are settled when
            # the pruned run stops: labels and predecessors are final and
            # identical to the full run.
            node = target
            while node != root:
                assert dist[node] == full_dist[node]
                assert prev[node] == full_prev[node]
                node = net.segment(prev[node]).u
            # Frontier nodes only ever hold *tentative* labels, which can
            # overestimate but never undercut the final label.
            for other, d in dist.items():
                assert d >= full_dist[other]

"""Unit tests for the numeric-health sentinel's detectors and rings.

Everything here runs on synthetic values and a tiny throwaway DQN agent
— the full-training behaviours (golden equivalence, rollback recovery,
abort forensics) live in tests/test_training_recovery.py.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.faults import (
    NULL_TRAINING_PLAN,
    TRAIN_PROFILES,
    TrainingFaultInjector,
    get_train_profile,
)
from repro.ml.dqn import DQNAgent, DQNConfig
from repro.ml.replay import ReplayBuffer, Transition
from repro.training.health import (
    ANOMALY_KINDS,
    Anomaly,
    IncidentRing,
    RingStats,
    SentinelConfig,
    TrainingAnomalyError,
    TrainingSentinel,
    replay_checksum,
)


def tiny_agent(seed: int = 0) -> DQNAgent:
    return DQNAgent(DQNConfig(state_dim=4, num_actions=3, batch_size=8, seed=seed))


def make_sentinel(**overrides) -> TrainingSentinel:
    sentinel = TrainingSentinel(SentinelConfig(**overrides))
    sentinel.begin_attempt(0, 0)
    return sentinel


class TestRingStats:
    def test_zscore_none_until_full(self):
        ring = RingStats(4)
        for x in (1.0, 2.0, 3.0):
            assert ring.zscore(10.0) is None
            ring.push(x)
        ring.push(4.0)
        assert ring.zscore(10.0) is not None

    def test_zscore_matches_numpy(self):
        ring = RingStats(8)
        values = [0.3, 1.7, -0.2, 0.9, 2.4, 0.1, 1.1, 0.6]
        for x in values:
            ring.push(x)
        w = np.asarray(values)
        expected = (5.0 - w.mean()) / w.std()
        assert ring.zscore(5.0) == pytest.approx(expected, rel=1e-9)

    def test_eviction_keeps_window_stats_fresh(self):
        ring = RingStats(4)
        for x in (100.0, 1.0, 2.0, 3.0, 4.0):  # 100.0 evicted
            ring.push(x)
        w = np.asarray([1.0, 2.0, 3.0, 4.0])
        expected = (9.0 - w.mean()) / w.std()
        assert ring.zscore(9.0) == pytest.approx(expected, rel=1e-9)

    def test_degenerate_window_is_none(self):
        ring = RingStats(4)
        for _ in range(4):
            ring.push(2.0)
        assert ring.zscore(100.0) is None

    def test_clear_resets(self):
        ring = RingStats(3)
        for x in (1.0, 2.0, 3.0):
            ring.push(x)
        ring.clear()
        assert len(ring) == 0
        assert ring.zscore(1.0) is None

    def test_determinism(self):
        a, b = RingStats(16), RingStats(16)
        rng = np.random.default_rng(7)
        for x in rng.normal(size=64):
            a.push(float(x))
            b.push(float(x))
            assert a.zscore(3.0) == b.zscore(3.0)


class TestIncidentRing:
    def test_bounded_with_drop_count(self):
        ring = IncidentRing(2)
        for i in range(5):
            ring.push(Anomaly("nan-loss", 0, 0, i, float(i), "x"))
        assert len(ring) == 2
        assert ring.dropped == 3
        assert [a.step for a in ring.items()] == [3, 4]

    def test_as_json_reports_drops(self):
        ring = IncidentRing(1)
        ring.push(Anomaly("nan-loss", 0, 0, 1, 1.0, "x"))
        ring.push(Anomaly("nan-loss", 0, 0, 2, 2.0, "y"))
        payload = ring.as_json()
        assert payload["dropped"] == 1
        assert len(payload["incidents"]) == 1


class TestAnomaly:
    def test_json_maps_non_finite_value_to_none(self):
        a = Anomaly("nan-loss", 1, 0, 7, float("nan"), "boom")
        assert a.as_json()["value"] is None
        b = Anomaly("q-explosion", 1, 0, 7, 123.0, "big")
        assert b.as_json()["value"] == 123.0

    def test_unknown_kind_rejected(self):
        sentinel = make_sentinel()
        with pytest.raises(ValueError):
            sentinel.record("made-up-kind", 0, 0.0, "nope")
        assert "nan-loss" in ANOMALY_KINDS


class TestObserve:
    def test_nan_loss_detected_and_deduped(self):
        sentinel = make_sentinel()
        agent = tiny_agent()
        sentinel.observe(agent, float("nan"))
        sentinel.observe(agent, float("nan"))
        kinds = [a.kind for a in sentinel.drain()]
        assert kinds == ["nan-loss"]
        # A fresh attempt screens anew.
        sentinel.begin_attempt(0, 1)
        sentinel.observe(agent, float("inf"))
        assert [a.kind for a in sentinel.drain()] == ["nan-loss"]

    def test_td_divergence_needs_z_and_absolute_floor(self):
        sentinel = make_sentinel(td_window=8)
        agent = tiny_agent()
        # Fill the window with small, non-degenerate losses.
        for i in range(8):
            sentinel.observe(agent, 0.01 + 0.001 * (i % 3))
        # Statistically extreme but absolutely tiny: NOT divergence
        # (natural early-training losses spike hundreds of sigma).
        sentinel.observe(agent, 1.0)
        assert sentinel.drain() == []
        sentinel.observe(agent, 1.0e4)  # extreme AND above the floor
        assert [a.kind for a in sentinel.drain()] == ["td-divergence"]

    def test_grad_explosion(self):
        sentinel = make_sentinel()
        agent = tiny_agent()
        agent.q_net.last_grad_max = 1.0e9
        sentinel.observe(agent, 0.01)
        assert [a.kind for a in sentinel.drain()] == ["grad-explosion"]
        sentinel.begin_attempt(0, 1)
        agent.q_net.last_grad_max = float("nan")
        sentinel.observe(agent, 0.01)
        assert [a.kind for a in sentinel.drain()] == ["grad-explosion"]

    def test_grad_stats_track_injected_nan(self):
        agent = tiny_agent()
        agent.q_net.grad_stats_enabled = True
        rng = np.random.default_rng(0)
        for _ in range(16):
            agent.remember(
                rng.normal(size=4), int(rng.integers(3)), 1.0,
                rng.normal(size=4), False,
            )
        agent.learn()
        assert math.isfinite(agent.q_net.last_grad_max)
        agent.q_net.layers[0].w[0, 0] = np.nan
        agent.learn()
        assert math.isnan(agent.q_net.last_grad_max)


class TestBoundaryScreens:
    def test_param_screens(self):
        sentinel = make_sentinel()
        agent = tiny_agent()
        sentinel.screen_params(agent)
        assert sentinel.drain() == []
        agent.q_net.layers[0].w[0, 0] = np.nan
        sentinel.screen_params(agent)
        assert [a.kind for a in sentinel.drain()] == ["nan-param"]
        sentinel.begin_attempt(0, 1)
        agent.q_net.layers[0].w[0, 0] = 1.0e6
        sentinel.screen_params(agent)
        assert [a.kind for a in sentinel.drain()] == ["q-explosion"]

    def test_replay_screens(self):
        sentinel = make_sentinel()
        buffer = ReplayBuffer(capacity=8, state_dim=3)
        state = np.zeros(3)
        for _ in range(4):
            buffer.push(Transition(state, 0, 1.0, state, False))
        sentinel.screen_replay(buffer)
        assert sentinel.drain() == []
        buffer.views()["states"][1] = np.nan
        sentinel.screen_replay(buffer)
        assert [a.kind for a in sentinel.drain()] == ["replay-corrupt"]
        sentinel.begin_attempt(0, 1)
        buffer.views()["states"][1] = 0.0
        buffer.views()["rewards"][0] = 1.0e7
        sentinel.screen_replay(buffer)
        assert [a.kind for a in sentinel.drain()] == ["replay-reward-bound"]

    def test_reward_collapse(self):
        sentinel = make_sentinel()
        healthy = [0.80, 0.90, 0.85, 0.95, 0.90]
        sentinel.screen_rewards(healthy)
        assert sentinel.drain() == []
        sentinel.screen_rewards(healthy + [0.05])
        assert [a.kind for a in sentinel.drain()] == ["reward-collapse"]

    def test_reward_screen_inert_below_min_samples(self):
        sentinel = make_sentinel()
        sentinel.screen_rewards([0.9, 0.9, 0.01])
        assert sentinel.drain() == []


class TestReplayChecksum:
    def test_stable_and_content_sensitive(self):
        def fill(buffer):
            rng = np.random.default_rng(1)
            for _ in range(5):
                buffer.push(
                    Transition(rng.normal(size=3), 1, 0.5, rng.normal(size=3), False)
                )

        a, b = ReplayBuffer(8, 3), ReplayBuffer(8, 3)
        fill(a)
        fill(b)
        assert replay_checksum(a) == replay_checksum(b)
        b.views()["rewards"][0] += 1.0
        assert replay_checksum(a) != replay_checksum(b)


class TestAnomalyError:
    def test_carries_anomalies_and_kinds(self):
        anomalies = [
            Anomaly("nan-loss", 0, 0, 3, float("nan"), "x"),
            Anomaly("grad-explosion", 0, 0, 4, 1e9, "y"),
        ]
        err = TrainingAnomalyError(anomalies)
        assert err.anomalies == anomalies
        assert "grad-explosion" in str(err)
        assert "nan-loss" in str(err)


class TestFaultInjector:
    def test_plans_are_deterministic(self):
        profile = get_train_profile("train-severe")
        a = TrainingFaultInjector(profile, seed=3)
        b = TrainingFaultInjector(profile, seed=3)
        for ep in range(6):
            for attempt in range(3):
                assert a.plan(ep, attempt) == b.plan(ep, attempt)
            assert a.bitrot(ep) == b.bitrot(ep)

    def test_null_profile_never_fires(self):
        injector = TrainingFaultInjector(TRAIN_PROFILES["train-none"], seed=0)
        for ep in range(8):
            assert injector.plan(ep, 0) == NULL_TRAINING_PLAN
            assert not injector.bitrot(ep)

    def test_transient_faults_exhaust_their_attempt_budget(self):
        profile = get_train_profile("train-severe")
        injector = TrainingFaultInjector(profile, seed=0)
        for ep in range(8):
            budget = injector.faulted_attempts(ep)
            if budget < 0:
                continue  # persistent (not present in severe)
            assert injector.plan(ep, budget + 5).is_null

    def test_blackout_is_persistent(self):
        injector = TrainingFaultInjector(TRAIN_PROFILES["train-blackout"], seed=0)
        assert injector.persistent(0)
        for attempt in range(6):
            assert injector.plan(0, attempt).nan_at_step is not None

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            get_train_profile("train-bogus")

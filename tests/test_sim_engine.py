"""Unit tests for the rescue simulator: teams, requests, engine mechanics."""

import numpy as np
import pytest

from repro.data.charlotte import build_charlotte_scenario
from repro.dispatch.base import Dispatcher, TeamCommand, command_depot, command_segment
from repro.roadnet.generator import RoadNetworkConfig
from repro.roadnet.routing import route_to_segment
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.requests import RescueRequest, remap_to_operable, requests_from_rescues
from repro.sim.teams import RescueTeam, TeamState
from repro.weather.storms import FLORENCE

DAY = 86_400.0


@pytest.fixture(scope="module")
def small_scenario():
    return build_charlotte_scenario(
        FLORENCE, RoadNetworkConfig(grid_cols=8, grid_rows=8)
    )


class ScriptedDispatcher(Dispatcher):
    """Replays a fixed command table: cycle index -> commands."""

    name = "Scripted"
    computation_delay_s = 0.0

    def __init__(self, script: dict[int, dict[int, TeamCommand]]):
        self.script = script
        self.cycle = 0
        self.observations = []

    def dispatch(self, obs):
        self.observations.append(obs)
        commands = self.script.get(self.cycle, {})
        self.cycle += 1
        return commands


class IdleDispatcher(Dispatcher):
    name = "Idle"

    def dispatch(self, obs):
        return {}


class TestRescueRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            RescueRequest(0, 0, -1.0, 0, 0)

    def test_requests_from_rescues_window(self, florence_small):
        _, bundle = florence_small
        t0, t1 = 22 * DAY, 23 * DAY
        reqs = requests_from_rescues(bundle.rescues, t0, t1)
        assert all(t0 <= r.time_s < t1 for r in reqs)
        times = [r.time_s for r in reqs]
        assert times == sorted(times)
        assert len({r.request_id for r in reqs}) == len(reqs)
        with pytest.raises(ValueError):
            requests_from_rescues(bundle.rescues, t1, t0)

    def test_remap_to_operable(self, florence_small):
        scenario, bundle = florence_small
        reqs = requests_from_rescues(bundle.rescues, 22 * DAY, 23 * DAY)
        remapped = remap_to_operable(reqs, scenario.network, scenario.flood)
        assert len(remapped) == len(reqs)
        for old, new in zip(reqs, remapped):
            assert old.request_id == new.request_id
            closed = scenario.network.closed_segments(
                scenario.flood, (new.time_s // 3600) * 3600
            )
            if old.segment_id not in closed:
                assert new.segment_id == old.segment_id
            else:
                # Either an operable replacement was found, or none existed.
                assert new.segment_id not in closed or new.segment_id == old.segment_id


class TestRescueTeam:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RescueTeam(team_id=0, capacity=0, node=0)

    def test_begin_leg_validation(self, small_scenario):
        net = small_scenario.network
        team = RescueTeam(team_id=0, capacity=5, node=0)
        route = route_to_segment(net, 0, net.out_segments(0)[0].segment_id)
        with pytest.raises(ValueError):  # wrong start node
            team2 = RescueTeam(team_id=1, capacity=5, node=route.nodes[-1])
            team2.begin_leg(
                route, 1.0, np.ones(len(route.segment_ids)), 0.0, TeamState.TO_SEGMENT, 1
            )
        with pytest.raises(ValueError):  # misaligned times
            team.begin_leg(route, 1.0, np.ones(99), 0.0, TeamState.TO_SEGMENT, 1)
        with pytest.raises(ValueError):  # idle legs are not a thing
            team.begin_leg(
                route, 1.0, np.ones(len(route.segment_ids)), 0.0, TeamState.IDLE, None
            )

    def test_leg_lifecycle(self, small_scenario):
        net = small_scenario.network
        seg = net.out_segments(0)[0].segment_id
        route = route_to_segment(net, 0, seg)
        team = RescueTeam(team_id=0, capacity=5, node=0)
        times = np.full(len(route.segment_ids), 10.0)
        team.begin_leg(route, 1.0, times, 100.0, TeamState.TO_SEGMENT, seg)
        assert team.is_driving
        assert team.is_assignable
        assert team.arrival_time_s == pytest.approx(100.0 + 10.0 * len(times))
        team.stop()
        assert team.state is TeamState.IDLE
        assert team.arrival_time_s is None

    def test_hospital_leg_not_assignable(self, small_scenario):
        net = small_scenario.network
        seg = net.out_segments(0)[0].segment_id
        route = route_to_segment(net, 0, seg)
        team = RescueTeam(team_id=0, capacity=5, node=0)
        team.begin_leg(
            route, 1.0, np.ones(len(route.segment_ids)), 0.0, TeamState.TO_HOSPITAL, None
        )
        assert not team.is_assignable


class TestSimulationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(t0_s=10.0, t1_s=5.0)
        with pytest.raises(ValueError):
            SimulationConfig(t0_s=0.0, t1_s=10.0, num_teams=0)
        with pytest.raises(ValueError):
            SimulationConfig(t0_s=0.0, t1_s=10.0, step_s=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(t0_s=0.0, t1_s=10.0, step_s=600.0, dispatch_period_s=300.0)

    def test_timely_window_must_be_positive(self):
        with pytest.raises(ValueError):
            SimulationConfig(t0_s=0.0, t1_s=10.0, timely_window_s=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(t0_s=0.0, t1_s=10.0, timely_window_s=-60.0)

    def test_storm_slowdown_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            SimulationConfig(t0_s=0.0, t1_s=10.0, storm_slowdown=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(t0_s=0.0, t1_s=10.0, storm_slowdown=1.5)
        with pytest.raises(ValueError):
            SimulationConfig(t0_s=0.0, t1_s=10.0, storm_slowdown=-0.2)
        # Boundary: exactly 1.0 (no slowdown) is legal.
        SimulationConfig(t0_s=0.0, t1_s=10.0, storm_slowdown=1.0)

    def test_dispatch_budget_must_be_positive_or_none(self):
        with pytest.raises(ValueError):
            SimulationConfig(t0_s=0.0, t1_s=10.0, dispatch_budget_s=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(t0_s=0.0, t1_s=10.0, dispatch_budget_s=-1.0)
        SimulationConfig(t0_s=0.0, t1_s=10.0, dispatch_budget_s=0.5)
        SimulationConfig(t0_s=0.0, t1_s=10.0, dispatch_budget_s=None)


class TestEngineMechanics:
    """Deterministic mechanics on a pre-storm day (no flooding)."""

    T0 = 2 * DAY  # Aug 27: dry, full speed

    def _request_near(self, scenario, node: int, dt: float = 0.0) -> RescueRequest:
        seg = scenario.network.out_segments(node)[0]
        return RescueRequest(0, 999, self.T0 + dt, seg.segment_id, node)

    def test_team_drives_and_picks_up(self, small_scenario):
        scen = small_scenario
        hosp_node = scen.hospitals[0].node_id
        # Request on a segment adjacent to a *different* node.
        target_node = scen.network.nearest_landmark(
            scen.partition.width_m * 0.5, scen.partition.height_m * 0.5
        )
        req = self._request_near(scen, target_node)
        script = {0: {0: command_segment(req.segment_id)}}
        sim = RescueSimulator(
            scen,
            [req],
            ScriptedDispatcher(script),
            SimulationConfig(t0_s=self.T0, t1_s=self.T0 + 6 * 3_600, num_teams=1, seed=3),
        )
        result = sim.run()
        assert result.num_served == 1
        pickup = result.pickups[0]
        assert pickup.request_id == 0
        assert pickup.driving_delay_s > 0
        # Delivered to a hospital afterwards.
        assert len(result.deliveries) == 1
        assert result.deliveries[0].request_id == 0
        assert result.deliveries[0].t_s > pickup.t_s

    def test_idle_dispatcher_serves_nothing(self, small_scenario):
        scen = small_scenario
        req = self._request_near(scen, scen.network.landmark_ids()[5])
        sim = RescueSimulator(
            scen,
            [req],
            IdleDispatcher(),
            SimulationConfig(t0_s=self.T0, t1_s=self.T0 + 2 * 3_600, num_teams=2),
        )
        result = sim.run()
        assert result.num_served == 0
        assert result.num_unserved == 1

    def test_immediate_pickup_when_team_pre_positioned(self, small_scenario):
        """A team standing at the request's segment serves it at timeliness 0
        (the paper's proactive case)."""
        scen = small_scenario
        target_node = scen.network.landmark_ids()[10]
        seg = scen.network.out_segments(target_node)[0]
        # Request appears two hours in; team is sent there in cycle 0.
        req = RescueRequest(0, 999, self.T0 + 2 * 3_600, seg.segment_id, target_node)
        script = {0: {0: command_segment(seg.segment_id)}}
        sim = RescueSimulator(
            scen,
            [req],
            ScriptedDispatcher(script),
            SimulationConfig(t0_s=self.T0, t1_s=self.T0 + 6 * 3_600, num_teams=1, seed=3),
        )
        result = sim.run()
        assert result.num_served == 1
        assert result.pickups[0].timeliness_s == 0.0
        assert result.pickups[0].driving_delay_s == 0.0

    def test_depot_command_parks_team_at_hospital(self, small_scenario):
        scen = small_scenario
        sim = RescueSimulator(
            scen,
            [],
            ScriptedDispatcher({0: {0: command_depot()}}),
            SimulationConfig(t0_s=self.T0, t1_s=self.T0 + 3_600, num_teams=1, seed=3),
        )
        sim.run()
        hospital_nodes = {h.node_id for h in scen.hospitals}
        assert sim._teams[0].node in hospital_nodes
        assert sim._teams[0].state is TeamState.IDLE

    def test_capacity_respected(self, small_scenario):
        """A capacity-2 team picks at most 2 of 3 co-located requests, then
        delivers; the remainder needs another trip."""
        scen = small_scenario
        target_node = scen.network.landmark_ids()[20]
        seg = scen.network.out_segments(target_node)[0]
        reqs = [
            RescueRequest(i, 100 + i, self.T0, seg.segment_id, target_node)
            for i in range(3)
        ]
        script = {i: {0: command_segment(seg.segment_id)} for i in range(40)}
        sim = RescueSimulator(
            scen,
            reqs,
            ScriptedDispatcher(script),
            SimulationConfig(
                t0_s=self.T0, t1_s=self.T0 + 12 * 3_600, num_teams=1, team_capacity=2, seed=3
            ),
        )
        result = sim.run()
        assert result.num_served == 3
        # First two pickups happen together, the third on a later trip.
        ts = sorted(p.t_s for p in result.pickups)
        assert ts[1] < ts[2]
        assert len(result.deliveries) == 3

    def test_observation_contents(self, small_scenario):
        scen = small_scenario
        req = self._request_near(scen, scen.network.landmark_ids()[3])
        disp = ScriptedDispatcher({})
        sim = RescueSimulator(
            scen,
            [req],
            disp,
            SimulationConfig(t0_s=self.T0, t1_s=self.T0 + 1_800, num_teams=4),
        )
        sim.run()
        obs = disp.observations[0]
        assert len(obs.teams) == 4
        assert obs.pending.get(req.segment_id) == 1
        assert all(tv.assignable for tv in obs.teams)

    def test_computation_delay_defers_commands(self, small_scenario):
        """With a huge computation delay, commands never apply within the
        window and nothing is served."""
        scen = small_scenario
        target_node = scen.network.landmark_ids()[10]
        seg = scen.network.out_segments(target_node)[0]
        req = RescueRequest(0, 999, self.T0, seg.segment_id, target_node)

        class SlowDispatcher(ScriptedDispatcher):
            computation_delay_s = 10 * 3_600.0

        sim = RescueSimulator(
            scen,
            [req],
            SlowDispatcher({i: {0: command_segment(seg.segment_id)} for i in range(40)}),
            SimulationConfig(t0_s=self.T0, t1_s=self.T0 + 2 * 3_600, num_teams=1),
        )
        result = sim.run()
        assert result.num_served == 0

    def test_serving_samples_recorded_per_cycle(self, small_scenario):
        scen = small_scenario
        sim = RescueSimulator(
            scen,
            [],
            IdleDispatcher(),
            SimulationConfig(
                t0_s=self.T0, t1_s=self.T0 + 3_600, num_teams=2, dispatch_period_s=600.0
            ),
        )
        result = sim.run()
        assert len(result.serving_samples) == 7  # t0, +600, ..., +3600
        assert all(n == 0 for _, n in result.serving_samples)

    def test_teams_spawn_at_hospitals(self, small_scenario):
        scen = small_scenario
        sim = RescueSimulator(
            scen,
            [],
            IdleDispatcher(),
            SimulationConfig(t0_s=self.T0, t1_s=self.T0 + 600, num_teams=20, seed=9),
        )
        hospital_nodes = {h.node_id for h in scen.hospitals}
        assert all(t.node in hospital_nodes for t in sim._teams)


class TestSimulationMetrics:
    def _run(self, small_scenario):
        scen = small_scenario
        t0 = 2 * DAY
        target_node = scen.network.landmark_ids()[30]
        seg = scen.network.out_segments(target_node)[0]
        reqs = [RescueRequest(i, i, t0 + i * 1_800.0, seg.segment_id, target_node) for i in range(4)]
        script = {i: {0: command_segment(seg.segment_id)} for i in range(60)}
        sim = RescueSimulator(
            scen,
            reqs,
            ScriptedDispatcher(script),
            SimulationConfig(t0_s=t0, t1_s=t0 + 24 * 3_600, num_teams=1, seed=3),
        )
        return sim.run()

    def test_hourly_shapes(self, small_scenario):
        result = self._run(small_scenario)
        m = SimulationMetrics(result)
        assert m.num_hours == 24
        assert m.timely_served_per_hour().shape == (24,)
        assert m.served_per_hour().sum() == result.num_served
        assert m.served_per_team().shape == (1,)

    def test_delay_and_timeliness_alignment(self, small_scenario):
        result = self._run(small_scenario)
        m = SimulationMetrics(result)
        assert len(m.driving_delays()) == result.num_served
        assert (m.timeliness_values() >= 0).all()
        # Timeliness includes waiting; it can never be below driving delay
        # for requests that pre-date the response.
        assert m.total_timely_served <= result.num_served

    def test_delivery_stats(self, small_scenario):
        result = self._run(small_scenario)
        m = SimulationMetrics(result)
        assert m.delivered_count() == len(result.deliveries)
        if result.deliveries:
            assert m.mean_request_to_delivery_s() > 0

"""Tests for the MobiRescue core: predictor, state encoding, RL dispatcher,
training and the system facade."""

import numpy as np
import pytest

from repro.core.config import MobiRescueConfig
from repro.core.positions import PopulationFeed
from repro.core.predictor import RequestPredictor, TrainingSet, build_training_set
from repro.core.rl_dispatcher import MobiRescueDispatcher, make_agent
from repro.core.state import (
    DEMAND_SCALE,
    FEATURES_PER_CANDIDATE,
    TIME_SCALE,
    build_context,
    select_candidates,
)
from repro.core.system import MobiRescueSystem
from repro.core.training import pretrain_agent, train_mobirescue
from repro.dispatch.base import TeamView
from repro.mobility.cleaning import clean_trace
from repro.mobility.mapmatch import map_match
from repro.roadnet.matrix import travel_time_oracle
from repro.weather.storms import SECONDS_PER_DAY


@pytest.fixture(scope="module")
def michael_matched(michael_small):
    scenario, bundle = michael_small
    clean, _ = clean_trace(bundle.trace, scenario.partition.width_m, scenario.partition.height_m)
    return map_match(clean, scenario.network)


@pytest.fixture(scope="module")
def training_set(michael_small, michael_matched):
    scenario, bundle = michael_small
    return build_training_set(scenario, bundle, matched=michael_matched, seed=1)


@pytest.fixture(scope="module")
def fitted_predictor(michael_small, training_set):
    scenario, _ = michael_small
    return RequestPredictor(scenario, c=8.0).fit(training_set)


@pytest.fixture(scope="module")
def trained(michael_small):
    scenario, bundle = michael_small
    return train_mobirescue(
        scenario, bundle, MobiRescueConfig(seed=1), episodes=2, num_teams=15
    )


class TestConfig:
    def test_dimensions(self):
        cfg = MobiRescueConfig(num_candidates=6)
        assert cfg.state_dim == 3 * 6 + 3
        assert cfg.num_actions == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            MobiRescueConfig(num_candidates=0)
        with pytest.raises(ValueError):
            MobiRescueConfig(alpha=-1.0)
        with pytest.raises(ValueError):
            MobiRescueConfig(discount=0.0)


class TestTrainingSet:
    def test_shape_and_balance(self, training_set):
        assert training_set.x.shape[1] == 3
        assert training_set.num_positive > 5
        negatives = len(training_set.y) - training_set.num_positive
        assert negatives >= training_set.num_positive

    def test_positive_factors_are_low_altitude(self, training_set):
        pos_alt = training_set.x[training_set.y == 1, 2]
        neg_alt = training_set.x[training_set.y == 0, 2]
        assert pos_alt.mean() < neg_alt.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingSet(x=np.zeros((3, 2)), y=np.zeros(3))
        with pytest.raises(ValueError):
            TrainingSet(x=np.zeros((3, 3)), y=np.zeros(4))

    def test_bad_negatives_rejected(self, michael_small, michael_matched):
        scenario, bundle = michael_small
        with pytest.raises(ValueError):
            build_training_set(
                scenario, bundle, matched=michael_matched, negatives_per_positive=0
            )


class TestRequestPredictor:
    def test_accuracy_on_training_distribution(self, fitted_predictor, training_set):
        counts = fitted_predictor.evaluate(training_set)
        assert counts.accuracy > 0.8
        assert counts.recall > 0.5

    def test_unfitted_guard(self, michael_small):
        scenario, _ = michael_small
        with pytest.raises(RuntimeError):
            RequestPredictor(scenario).predict_labels(np.zeros((2, 3)))

    def test_distribution_counts_persons(self, michael_small, fitted_predictor):
        scenario, bundle = michael_small
        # Put three persons on a deeply flooded node at the storm crest and
        # one on the highest node.
        t = (scenario.timeline.storm_end_day + 1.5) * SECONDS_PER_DAY
        net = scenario.network
        node_xy = np.array([net.landmark(n).xy for n in net.landmark_ids()])
        alts = scenario.terrain.altitude_many(node_xy)
        low = net.landmark_ids()[int(np.argmin(alts))]
        high = net.landmark_ids()[int(np.argmax(alts))]
        dist = fitted_predictor.predict_request_distribution(
            {1: low, 2: low, 3: low, 4: high}, t
        )
        low_seg = net.nearest_segment(*net.landmark(low).xy)
        assert dist.get(low_seg, 0) == 3
        high_seg = net.nearest_segment(*net.landmark(high).xy)
        assert high_seg not in dist or high_seg == low_seg

    def test_empty_positions(self, fitted_predictor):
        assert fitted_predictor.predict_request_distribution({}, 0.0) == {}

    def test_flood_gate_suppresses_dry_ground(self, michael_small, fitted_predictor):
        """Before the storm nothing is flooded: the gate forces all-negative
        regardless of the SVM."""
        scenario, _ = michael_small
        nodes = scenario.network.landmark_ids()[:50]
        labels = fitted_predictor.predict_node_labels(nodes, 0.0)
        assert labels.sum() == 0

    def test_clone_for_preserves_model(self, michael_small, florence_small, fitted_predictor):
        fscen, _ = florence_small
        clone = fitted_predictor.clone_for(fscen)
        assert clone.is_fitted
        assert clone.svm is fitted_predictor.svm
        assert clone.scenario is fscen


class TestStateEncoding:
    CFG = MobiRescueConfig(num_candidates=4)

    def _team(self, scen, cap=5):
        return TeamView(0, scen.hospitals[0].node_id, "idle", cap, True)

    def test_context_shape(self, michael_small):
        scenario, _ = michael_small
        oracle = travel_time_oracle(scenario.network)
        segs = [s.segment_id for s in scenario.network.segments()[:6]]
        pending = {segs[0]: 2.0}
        predicted = {segs[1]: 5.0, segs[2]: 1.0}
        ctx = build_context(
            self._team(scenario), pending, predicted, oracle, frozenset(), 0.5, self.CFG
        )
        assert ctx.state.shape == (self.CFG.state_dim,)
        assert ctx.valid_actions.shape == (self.CFG.num_actions,)
        assert ctx.valid_actions[-1]  # depot always valid
        assert len(ctx.candidate_segments) == 3
        assert (ctx.state >= 0).all()

    def test_pending_always_candidate(self, michael_small):
        """A far 1-person pending segment makes the candidate list even when
        big predicted clusters outscore it."""
        scenario, _ = michael_small
        oracle = travel_time_oracle(scenario.network)
        net = scenario.network
        team = self._team(scenario)
        far_node = max(
            net.landmark_ids(), key=lambda n: oracle.node_to_node_s(team.node, n)
        )
        far_seg = net.out_segments(far_node)[0].segment_id
        near_segs = [s.segment_id for s in net.out_segments(team.node)]
        predicted = {s: 10.0 for s in near_segs}
        cands, _ = select_candidates(
            team, {far_seg: 1.0}, predicted, oracle, frozenset(), 2, pending_weight=3.0
        )
        assert far_seg in cands

    def test_closed_segments_excluded(self, michael_small):
        scenario, _ = michael_small
        oracle = travel_time_oracle(scenario.network)
        seg = scenario.network.segments()[0].segment_id
        cands, _ = select_candidates(
            self._team(scenario), {seg: 3.0}, {}, oracle, frozenset({seg}), 4, 3.0
        )
        assert cands == []

    def test_feature_scaling_saturates(self, michael_small):
        scenario, _ = michael_small
        oracle = travel_time_oracle(scenario.network)
        seg = scenario.network.out_segments(self._team(scenario).node)[0].segment_id
        ctx = build_context(
            self._team(scenario),
            {seg: 1_000.0},
            {},
            oracle,
            frozenset(),
            2.0,  # clipped to 1
            self.CFG,
        )
        f = FEATURES_PER_CANDIDATE
        assert ctx.state[0] == pytest.approx(1.0)  # pending saturated
        assert ctx.state[f * self.CFG.num_candidates + 1] == pytest.approx(1.0)


class TestPretraining:
    def test_pretrained_values_sensible(self):
        cfg = MobiRescueConfig(num_candidates=4, seed=2)
        agent = make_agent(cfg)
        pretrain_agent(agent, cfg)  # production sample/step counts
        f = FEATURES_PER_CANDIDATE
        # Rich nearby pending beats depot; depot beats a far empty candidate.
        s = np.zeros(cfg.state_dim)
        s[0] = 5.0 / DEMAND_SCALE  # 5 pending
        s[2] = 300.0 / TIME_SCALE
        s[f * 4] = 1.0
        q = agent.q_values(s)
        assert q[0] > q[4]  # serving the pending candidate beats depot
        s2 = np.zeros(cfg.state_dim)
        s2[2] = 2.0  # far, empty candidate
        s2[f * 4] = 1.0
        q2 = agent.q_values(s2)
        assert q2[4] > q2[0]


class TestTraining:
    def test_artifacts(self, trained):
        assert trained.predictor.is_fitted
        assert trained.episodes_run >= 1
        assert all(0.0 <= r <= 1.0 for r in trained.episode_service_rates)
        assert trained.agent.learn_steps > 0

    def test_validation(self, michael_small):
        scenario, bundle = michael_small
        with pytest.raises(ValueError):
            train_mobirescue(scenario, bundle, episodes=0)


class TestMobiRescueDispatcher:
    def test_requires_fitted_predictor(self, michael_small):
        scenario, _ = michael_small
        cfg = MobiRescueConfig()
        with pytest.raises(ValueError):
            MobiRescueDispatcher(
                scenario, RequestPredictor(scenario), lambda t: {}, make_agent(cfg), cfg
            )

    def test_end_to_end_deploy(self, michael_small, florence_small, trained):
        """The trained system deploys on Florence and serves requests."""
        fscen, fbundle = florence_small
        system = MobiRescueSystem(trained)
        dispatcher = system.deploy(fscen, fbundle)
        assert dispatcher.name == "MobiRescue"
        assert dispatcher.computation_delay_s < 1.0
        assert dispatcher.flood_aware is True

        from repro.sim.engine import RescueSimulator, SimulationConfig
        from repro.sim.requests import remap_to_operable, requests_from_rescues
        from repro.weather.storms import day_index

        day = day_index(fscen.timeline, "Sep 16")
        t0, t1 = day * SECONDS_PER_DAY, (day + 0.5) * SECONDS_PER_DAY
        requests = remap_to_operable(
            requests_from_rescues(fbundle.rescues, t0, t1), fscen.network, fscen.flood
        )
        assert requests, "eval window must contain requests"
        sim = RescueSimulator(
            fscen,
            requests,
            dispatcher,
            SimulationConfig(t0_s=t0, t1_s=t1, num_teams=20, seed=0),
        )
        result = sim.run()
        assert result.num_served >= 0.5 * len(requests)
        assert dispatcher.last_prediction  # SVM produced a distribution

    def test_online_training_toggle(self, michael_small, florence_small, trained):
        fscen, fbundle = florence_small
        system = MobiRescueSystem(trained)
        d_off = system.deploy(fscen, fbundle, online_training=False)
        assert d_off.config.online_training is False
        d_on = system.deploy(fscen, fbundle, online_training=True)
        assert d_on.config.online_training is True


class TestPopulationFeed:
    def test_caching(self, michael_matched):
        feed = PopulationFeed(michael_matched, cache_size=2)
        a = feed(5 * SECONDS_PER_DAY)
        b = feed(5 * SECONDS_PER_DAY)
        assert a is b
        feed(6 * SECONDS_PER_DAY)
        feed(7 * SECONDS_PER_DAY)  # evicts the first entry
        c = feed(5 * SECONDS_PER_DAY)
        assert c == a and c is not a

    def test_validation(self, michael_matched):
        with pytest.raises(ValueError):
            PopulationFeed(michael_matched, cache_size=0)

"""Tests for the factor-vector semantics (hydrological precipitation,
wake wind) and their temporal alignment with the flood."""

import numpy as np
import pytest

from repro.geo.regions import charlotte_regions
from repro.weather.fields import RegionWeatherField
from repro.weather.storms import FLORENCE, MICHAEL, SECONDS_PER_DAY, day_index

W, H = 70_000.0, 45_000.0


@pytest.fixture(scope="module")
def field():
    return RegionWeatherField(charlotte_regions(W, H), FLORENCE)


class TestFactorPrecipitation:
    def test_tracks_flood_level(self, field):
        """The precipitation factor is temporally aligned with the flood
        (water on the ground), not with the instantaneous rain rate."""
        tl = field.timeline
        for t in np.linspace(0, tl.duration_s, 40):
            expected = (
                field.partition.profile(3).precipitation_mm * tl.flood_level(float(t))
            )
            assert field.factor_precipitation_mm_per_h(3, float(t)) == pytest.approx(
                expected
            )

    def test_peaks_at_crest_not_at_peak_rain(self, field):
        tl = field.timeline
        peak_rain_t = (tl.storm_start_s + tl.storm_end_s) / 2
        crest_t = tl.storm_end_s + tl.crest_lag_days * SECONDS_PER_DAY
        assert field.factor_precipitation_mm_per_h(3, crest_t) > (
            field.factor_precipitation_mm_per_h(3, peak_rain_t)
        )

    def test_regional_ordering_preserved(self, field):
        sep16 = (day_index(FLORENCE, "Sep 16") + 0.5) * SECONDS_PER_DAY
        fp = {r: field.factor_precipitation_mm_per_h(r, sep16) for r in (1, 2, 3)}
        assert fp[3] > fp[2] > fp[1]

    def test_cross_storm_scale(self):
        """Michael's smaller flood yields smaller precipitation factors than
        Florence's at the respective crests — the transferable signal."""
        part = charlotte_regions(W, H)
        flor = RegionWeatherField(part, FLORENCE)
        mich = RegionWeatherField(part, MICHAEL)
        f_crest = FLORENCE.storm_end_s + FLORENCE.crest_lag_days * SECONDS_PER_DAY
        m_crest = MICHAEL.storm_end_s + MICHAEL.crest_lag_days * SECONDS_PER_DAY
        assert flor.factor_precipitation_mm_per_h(3, f_crest) > (
            mich.factor_precipitation_mm_per_h(3, m_crest)
        )


class TestFactorWind:
    def test_floor_in_calm_weather(self, field):
        assert field.factor_wind_mph(1, 0.0) == 5.0

    def test_peak_during_storm(self, field):
        tl = field.timeline
        mid = (tl.storm_start_s + tl.storm_end_s) / 2
        assert field.factor_wind_mph(2, mid) == pytest.approx(72.0)

    def test_wake_term_after_storm(self, field):
        """Wind keeps a flood-wake component after the rain stops."""
        sep16 = (day_index(FLORENCE, "Sep 16") + 0.5) * SECONDS_PER_DAY
        assert field.factor_wind_mph(3, sep16) > 5.0
        assert field.factor_wind_mph(3, sep16) < 78.0

"""Tests for the numpy MLP, replay buffer and DQN agent."""

import numpy as np
import pytest

from repro.ml.dqn import DQNAgent, DQNConfig
from repro.ml.nn import MLP
from repro.ml.replay import ReplayBuffer, Transition


class TestMLP:
    def test_shapes(self):
        net = MLP([4, 8, 3])
        out = net.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)
        assert net.predict_one(np.zeros(4)).shape == (3,)

    def test_validation(self):
        with pytest.raises(ValueError):
            MLP([4])
        with pytest.raises(ValueError):
            MLP([4, 0, 2])
        with pytest.raises(ValueError):
            MLP([4, 2], learning_rate=0.0)
        net = MLP([4, 2])
        with pytest.raises(ValueError):
            net.forward(np.zeros((3, 5)))

    def test_learns_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(256, 3))
        w = np.array([[1.0], [-2.0], [0.5]])
        y = x @ w
        net = MLP([3, 32, 1], learning_rate=3e-3, huber_delta=None, seed=1)
        for _ in range(800):
            net.train_step(x, y)
        pred = net.forward(x)
        assert float(np.mean((pred - y) ** 2)) < 0.01

    def test_learns_nonlinear_function(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-2, 2, size=(512, 2))
        y = (np.sin(x[:, :1]) * x[:, 1:2])
        net = MLP([2, 64, 64, 1], learning_rate=2e-3, huber_delta=None, seed=2)
        for _ in range(1_500):
            net.train_step(x, y)
        mse = float(np.mean((net.forward(x) - y) ** 2))
        assert mse < 0.02

    def test_loss_decreases(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(64, 2))
        y = x.sum(axis=1, keepdims=True)
        net = MLP([2, 16, 1], learning_rate=1e-2, seed=3)
        first = net.train_step(x, y)
        for _ in range(200):
            last = net.train_step(x, y)
        assert last < first * 0.5

    def test_masked_update_only_touches_selected_outputs(self):
        """With a mask selecting output 0, predictions for output 1 barely
        change in a single step (weights are shared, so only a weak indirect
        effect is possible — here we verify the loss only counts masked
        units)."""
        net = MLP([2, 4, 2], learning_rate=1e-3, seed=4)
        x = np.ones((1, 2))
        out0 = net.forward(x).copy()
        target = out0.copy()
        target[0, 0] += 100.0  # huge error on unit 0
        target[0, 1] += 100.0  # huge error on unit 1 too, but masked away
        mask = np.array([[1.0, 0.0]])
        loss = net.train_step(x, target, output_mask=mask)
        # Huber loss with delta=1 on one unit with error 100: ~ 99.5.
        assert loss == pytest.approx(100.0, abs=1.0)

    def test_target_shape_checked(self):
        net = MLP([2, 4, 2])
        with pytest.raises(ValueError):
            net.train_step(np.zeros((1, 2)), np.zeros((1, 3)))
        with pytest.raises(ValueError):
            net.train_step(np.zeros((1, 2)), np.zeros((1, 2)), output_mask=np.zeros((2, 2)))

    def test_clone_and_weights_roundtrip(self):
        net = MLP([3, 5, 2], seed=5)
        clone = net.clone()
        x = np.random.default_rng(6).normal(size=(4, 3))
        np.testing.assert_allclose(net.forward(x), clone.forward(x))
        # Training the original must not affect the clone.
        net.train_step(x, np.zeros((4, 2)))
        assert not np.allclose(net.forward(x), clone.forward(x))

    def test_set_weights_validation(self):
        net = MLP([3, 5, 2])
        with pytest.raises(ValueError):
            net.set_weights(net.get_weights()[:1])


class TestReplayBuffer:
    @staticmethod
    def _tr(v: float) -> Transition:
        return Transition(np.full(2, v), 0, v, np.full(2, v + 1), False)

    def test_push_and_len(self):
        buf = ReplayBuffer(capacity=3, state_dim=2)
        assert len(buf) == 0
        for i in range(5):
            buf.push(self._tr(float(i)))
        assert len(buf) == 3  # ring overwrote the oldest

    def test_ring_overwrites_oldest(self):
        buf = ReplayBuffer(capacity=2, state_dim=2)
        for i in range(3):
            buf.push(self._tr(float(i)))
        rng = np.random.default_rng(0)
        states, _, rewards, _, _ = buf.sample(64, rng)
        assert set(rewards.tolist()) <= {1.0, 2.0}

    def test_sample_shapes(self):
        buf = ReplayBuffer(capacity=10, state_dim=3)
        for i in range(4):
            buf.push(Transition(np.zeros(3), i, 0.5, np.ones(3), i % 2 == 0))
        s, a, r, ns, d = buf.sample(8, np.random.default_rng(1))
        assert s.shape == (8, 3) and ns.shape == (8, 3)
        assert a.shape == (8,) and r.shape == (8,) and d.shape == (8,)
        assert d.dtype == bool

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0, 2)
        buf = ReplayBuffer(4, 2)
        with pytest.raises(ValueError):
            buf.sample(1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            buf.push(Transition(np.zeros(3), 0, 0.0, np.zeros(2), False))


class _LineWorld:
    """5-state chain: move right to reach the goal (reward 1 at state 4)."""

    N = 5

    def __init__(self):
        self.pos = 0

    def reset(self) -> np.ndarray:
        self.pos = 0
        return self.state()

    def state(self) -> np.ndarray:
        s = np.zeros(self.N)
        s[self.pos] = 1.0
        return s

    def step(self, action: int) -> tuple[np.ndarray, float, bool]:
        self.pos = max(0, min(self.N - 1, self.pos + (1 if action == 1 else -1)))
        done = self.pos == self.N - 1
        return self.state(), (1.0 if done else -0.01), done


class TestDQN:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DQNConfig(state_dim=0, num_actions=2)
        with pytest.raises(ValueError):
            DQNConfig(state_dim=2, num_actions=2, gamma=0.0)
        with pytest.raises(ValueError):
            DQNConfig(state_dim=2, num_actions=2, epsilon_end=0.9, epsilon_start=0.5)

    def test_action_masking(self):
        agent = DQNAgent(DQNConfig(state_dim=3, num_actions=4, seed=0))
        mask = np.array([False, False, True, False])
        for _ in range(20):
            assert agent.act(np.zeros(3), valid_actions=mask) == 2
        with pytest.raises(ValueError):
            agent.act(np.zeros(3), valid_actions=np.zeros(4, dtype=bool))

    def test_learn_requires_batch(self):
        agent = DQNAgent(DQNConfig(state_dim=2, num_actions=2, batch_size=8))
        assert agent.learn() is None

    def test_epsilon_decays(self):
        cfg = DQNConfig(state_dim=2, num_actions=2, batch_size=4, epsilon_decay=0.9)
        agent = DQNAgent(cfg)
        for _ in range(10):
            agent.remember(np.zeros(2), 0, 0.0, np.zeros(2), False)
        for _ in range(20):
            agent.learn()
        assert agent.epsilon < cfg.epsilon_start
        assert agent.epsilon >= cfg.epsilon_end

    def test_solves_lineworld(self):
        """After training, the greedy policy walks straight to the goal."""
        cfg = DQNConfig(
            state_dim=5,
            num_actions=2,
            hidden_sizes=(32,),
            learning_rate=5e-3,
            gamma=0.9,
            epsilon_decay=0.99,
            batch_size=32,
            target_sync_every=50,
            seed=7,
        )
        agent = DQNAgent(cfg)
        env = _LineWorld()
        for _ in range(150):
            s = env.reset()
            for _ in range(20):
                a = agent.act(s)
                ns, r, done = env.step(a)
                agent.remember(s, a, r, ns, done)
                agent.learn()
                s = ns
                if done:
                    break
        # Greedy rollout reaches the goal in the minimum 4 steps.
        s = env.reset()
        steps = 0
        done = False
        while not done and steps < 10:
            a = agent.act(s, greedy=True)
            s, _, done = env.step(a)
            steps += 1
        assert done and steps == 4

    def test_target_sync(self):
        cfg = DQNConfig(state_dim=2, num_actions=2, batch_size=4, target_sync_every=5)
        agent = DQNAgent(cfg)
        for i in range(10):
            agent.remember(np.random.default_rng(i).normal(size=2), i % 2, 1.0, np.zeros(2), False)
        for _ in range(5):
            agent.learn()
        x = np.zeros((1, 2))
        np.testing.assert_allclose(agent.q_net.forward(x), agent.target_net.forward(x))

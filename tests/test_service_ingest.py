"""Ingest guard tests: schema reasons, backpressure, quarantine bounds,
the chaos record corrupter, and the validated feed's clean-path
transparency.

Also covers the batch-side validators in :mod:`repro.mobility.cleaning`
that the streaming schema reuses (the same corruption must carry the
same reason code in both pipelines).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.models import ComponentFaultInjector
from repro.faults.profiles import get_component_profile
from repro.mobility.cleaning import (
    REASON_NON_FINITE,
    REASON_NON_MONOTONIC,
    MalformedTraceError,
    find_malformed,
    fix_reason,
    validate_trace,
)
from repro.mobility.trace import GpsTrace
from repro.service.ingest import (
    IngestGuard,
    ValidatedPositionFeed,
    make_record_corrupter,
)
from repro.service.records import (
    ALL_REASONS,
    REASON_DUPLICATE,
    REASON_FUTURE,
    REASON_OUT_OF_RANGE,
    REASON_UNKNOWN_NODE,
    REASON_UNKNOWN_PERSON,
    GpsRecord,
    IngestSchema,
)

SCHEMA = IngestSchema(
    width_m=1_000.0,
    height_m=800.0,
    known_persons=frozenset({1, 2, 3}),
    known_nodes=frozenset({10, 11}),
    future_slack_s=1.0,
)


def rec(pid=1, t=100.0, x=5.0, y=5.0, node=10) -> GpsRecord:
    return GpsRecord(person_id=pid, t_s=t, x=x, y=y, node=node)


class TestIngestSchema:
    def test_valid_record_passes(self):
        assert SCHEMA.validate(rec(), now_s=100.0, last_t_s=50.0) is None

    @pytest.mark.parametrize(
        "record, expected",
        [
            (rec(x=float("nan")), REASON_NON_FINITE),
            (rec(y=float("inf")), REASON_NON_FINITE),
            (rec(t=float("nan")), REASON_NON_FINITE),
            (rec(t=300.0), REASON_FUTURE),
            (rec(x=-1.0), REASON_OUT_OF_RANGE),
            (rec(y=801.0), REASON_OUT_OF_RANGE),
            (rec(pid=-4), REASON_UNKNOWN_PERSON),
            (rec(pid=99), REASON_UNKNOWN_PERSON),
            (rec(node=999), REASON_UNKNOWN_NODE),
        ],
    )
    def test_reason_codes(self, record, expected):
        verdict = SCHEMA.validate(record, now_s=100.0, last_t_s=None)
        assert verdict is not None
        reason, detail = verdict
        assert reason == expected
        assert reason in ALL_REASONS
        assert detail

    def test_future_slack_tolerates_bounded_skew(self):
        assert SCHEMA.validate(rec(t=100.9), now_s=100.0, last_t_s=None) is None

    def test_ordering_judged_against_last_accepted(self):
        dup = SCHEMA.validate(rec(t=100.0), now_s=200.0, last_t_s=100.0)
        assert dup is not None and dup[0] == REASON_DUPLICATE
        backwards = SCHEMA.validate(rec(t=99.0), now_s=200.0, last_t_s=100.0)
        assert backwards is not None and backwards[0] == REASON_NON_MONOTONIC

    def test_open_identity_sets_still_reject_negative_ids(self):
        schema = IngestSchema(width_m=100.0, height_m=100.0)
        verdict = schema.validate(rec(pid=-1), now_s=200.0, last_t_s=None)
        assert verdict is not None and verdict[0] == REASON_UNKNOWN_PERSON


class TestIngestGuard:
    def test_accept_and_snapshot_latest_wins(self):
        guard = IngestGuard(SCHEMA)
        assert guard.submit(rec(pid=1, t=10.0, node=10), now_s=10.0)
        assert guard.submit(rec(pid=1, t=20.0, node=11), now_s=20.0)
        assert guard.submit(rec(pid=2, t=20.0, node=10), now_s=20.0)
        assert guard.snapshot() == {1: 11, 2: 10}
        assert guard.queued == 0  # snapshot drains

    def test_rejects_are_quarantined_with_reason_counts(self):
        guard = IngestGuard(SCHEMA)
        assert not guard.submit(rec(x=float("nan")), now_s=100.0)
        assert not guard.submit(rec(pid=99), now_s=100.0)
        assert guard.rejected_by_reason == {
            REASON_NON_FINITE: 1,
            REASON_UNKNOWN_PERSON: 1,
        }
        assert len(guard.quarantined) == 2
        assert guard.quarantined[0].reason == REASON_NON_FINITE

    def test_duplicate_rejected_across_submissions(self):
        guard = IngestGuard(SCHEMA)
        assert guard.submit(rec(t=10.0), now_s=10.0)
        assert not guard.submit(rec(t=10.0), now_s=20.0)
        assert guard.rejected_by_reason == {REASON_DUPLICATE: 1}

    def test_backpressure_sheds_oldest_first(self):
        guard = IngestGuard(SCHEMA, max_queue=2)
        guard.submit(rec(pid=1, t=10.0, node=10), now_s=10.0)
        guard.submit(rec(pid=2, t=11.0, node=10), now_s=11.0)
        guard.submit(rec(pid=3, t=12.0, node=11), now_s=12.0)
        assert guard.shed == 1
        drained = guard.drain()
        assert [r.person_id for r in drained] == [2, 3]  # person 1 was oldest

    def test_quarantine_ring_is_bounded(self):
        guard = IngestGuard(SCHEMA, max_quarantine=3)
        for i in range(10):
            guard.submit(rec(pid=99, t=float(i)), now_s=100.0)
        assert len(guard.quarantined) == 3
        assert guard.quarantine_dropped == 7
        stats = guard.stats()
        assert stats["rejected_total"] == 10
        assert stats["quarantine_kept"] == 3
        assert stats["quarantine_dropped"] == 7


class TestRecordCorrupter:
    def _records(self, n=40):
        return [
            rec(pid=i + 1, t=1_000.0, x=10.0 + i, y=20.0, node=10) for i in range(n)
        ]

    def test_null_profile_is_identity(self):
        cf = ComponentFaultInjector(get_component_profile("none"), seed=3)
        corrupt = make_record_corrupter(cf)
        records = self._records()
        assert corrupt(records, 1_000.0) == records

    def test_storm_is_deterministic(self):
        cf = ComponentFaultInjector(get_component_profile("blackout"), seed=3)
        corrupt = make_record_corrupter(cf)
        records = self._records()
        ticks = [float(t) for t in range(1_000, 1_010)]
        once = [corrupt(list(records), t) for t in ticks]
        twice = [corrupt(list(records), t) for t in ticks]
        # repr-compare: NaN coordinates defeat dataclass `==` (nan != nan).
        assert repr(once) == repr(twice)
        # Blackout storms fire on about half the cycles: some tick mutated.
        assert any(batch != records for batch in once)

    def test_corrupted_records_are_caught_by_the_schema(self):
        cf = ComponentFaultInjector(get_component_profile("blackout"), seed=3)
        corrupt = make_record_corrupter(cf)
        schema = IngestSchema(width_m=1_000.0, height_m=800.0)
        originals = self._records()
        mangled = []
        now_s = 1_000.0
        for tick in range(1_000, 1_020):
            now_s = float(tick)
            mangled = [
                r for r in corrupt(list(originals), now_s) if r not in originals
            ]
            if mangled:
                break
        assert mangled
        for r in mangled:
            verdict = schema.validate(r, now_s=now_s, last_t_s=999.0)
            assert verdict is not None, r


class _FakeLandmark:
    def __init__(self, xy):
        self.xy = xy


class _FakeNetwork:
    """Two-landmark stand-in for the ValidatedPositionFeed tests."""

    def landmark(self, node_id):
        return _FakeLandmark((float(node_id), float(node_id)))


class TestValidatedPositionFeed:
    def _make(self, inner, corrupter=None, incidents=None):
        guard = IngestGuard(IngestSchema(width_m=1_000.0, height_m=1_000.0))
        sink = None
        if incidents is not None:
            sink = lambda kind, detail, t: incidents.append((kind, detail, t))
        feed = ValidatedPositionFeed(
            inner,
            guard,
            _FakeNetwork(),
            corrupter=corrupter,
            incident_sink=sink,
        )
        return feed, guard

    def test_clean_path_is_transparent(self):
        inner = lambda t: {3: 30, 1: 10, 2: 20}
        feed, guard = self._make(inner)
        assert feed(500.0) == inner(500.0)
        assert guard.stats()["rejected_total"] == 0

    def test_same_tick_queries_are_cached(self):
        calls = []

        def inner(t):
            calls.append(t)
            return {1: 10}

        feed, guard = self._make(inner)
        assert feed(500.0) == {1: 10}
        assert feed(500.0) == {1: 10}  # cached: no re-submit, no duplicates
        assert calls == [500.0]
        assert guard.rejected_by_reason == {}

    def test_corrupter_rejects_are_quarantined_not_served(self):
        inner = lambda t: {1: 10, 2: 20, 3: 30, 4: 40}

        def corrupter(records, t):
            # Mangle person 2's fix into a NaN coordinate.
            return [
                r if r.person_id != 2 else GpsRecord(r.person_id, r.t_s, float("nan"), r.y, r.node)
                for r in records
            ]

        incidents = []
        feed, guard = self._make(inner, corrupter=corrupter, incidents=incidents)
        assert feed(500.0) == {1: 10, 3: 30, 4: 40}
        assert guard.rejected_by_reason == {REASON_NON_FINITE: 1}

    def test_habitual_node_delegates(self):
        class Inner:
            def __call__(self, t):
                return {}

            def habitual_node(self, pid, t):
                return 77

        feed, _ = self._make(Inner())
        assert feed.habitual_node(5, 100.0) == 77
        bare, _ = self._make(lambda t: {})
        assert bare.habitual_node(5, 100.0) is None


class TestGuardBoundsAndTransfers:
    """PR 6 satellite: bounded per-person state and the failover verbs."""

    def _open_schema(self):
        return IngestSchema(width_m=1_000.0, height_m=800.0)

    def test_per_person_state_is_bounded_with_lru_eviction(self):
        guard = IngestGuard(self._open_schema(), max_tracked_persons=3)
        for pid in (1, 2, 3, 4):
            assert guard.submit(rec(pid=pid, t=10.0), now_s=10.0)
        # Person 1 was least recently seen: evicted to admit person 4.
        assert guard.tracked_persons == 3
        assert guard.tracked_evictions == 1
        stats = guard.stats()
        assert stats["tracked_persons"] == 3
        assert stats["tracked_evictions"] == 1

    def test_eviction_order_follows_recency_not_insertion(self):
        guard = IngestGuard(self._open_schema(), max_tracked_persons=2)
        assert guard.submit(rec(pid=1, t=10.0), now_s=10.0)
        assert guard.submit(rec(pid=2, t=11.0), now_s=11.0)
        # Touch person 1 so person 2 becomes the LRU entry.
        assert guard.submit(rec(pid=1, t=12.0), now_s=12.0)
        assert guard.submit(rec(pid=3, t=13.0), now_s=13.0)  # evicts person 2
        # Person 1's ordering state survived: a replay is still caught...
        assert not guard.submit(rec(pid=1, t=12.0), now_s=14.0)
        assert guard.rejected_by_reason == {REASON_DUPLICATE: 1}
        # ...while evicted person 2 restarts with a clean slate.
        assert guard.submit(rec(pid=2, t=11.0), now_s=15.0)
        assert guard.tracked_evictions == 2  # admitting 2 re-evicted the LRU

    def test_eviction_is_deterministic(self):
        def run():
            guard = IngestGuard(self._open_schema(), max_tracked_persons=5)
            for i in range(40):
                guard.submit(rec(pid=i % 9 + 1, t=float(i)), now_s=float(i))
            return (
                guard.tracked_evictions,
                sorted(guard.snapshot().items()),
                guard.stats()["accepted"],
            )

        assert run() == run()

    def test_take_queue_does_not_count_as_drained(self):
        guard = IngestGuard(self._open_schema())
        guard.submit(rec(pid=1, t=10.0), now_s=10.0)
        guard.submit(rec(pid=2, t=10.0), now_s=10.0)
        taken = guard.take_queue()
        assert [r.person_id for r in taken] == [1, 2]
        assert guard.queued == 0
        assert guard.drained == 0  # a transfer/kill is not a snapshot

    def test_requeue_skips_validation_and_accept_counting(self):
        donor = IngestGuard(self._open_schema())
        donor.submit(rec(pid=1, t=10.0), now_s=10.0)
        records = donor.take_queue()
        receiver = IngestGuard(self._open_schema())
        assert receiver.requeue(records) == 1
        assert receiver.accepted == 0  # the donor already counted it
        assert receiver.queued == 1
        assert receiver.snapshot() == {1: 10}

    def test_requeue_respects_capacity(self):
        receiver = IngestGuard(self._open_schema(), max_queue=2)
        records = [rec(pid=i, t=10.0) for i in range(1, 5)]
        # All four are taken in (the transfer accounting needs the true
        # count), but capacity sheds the two oldest at the receiver.
        assert receiver.requeue(records) == 4
        assert receiver.queued == 2
        assert receiver.shed == 2
        assert [r.person_id for r in receiver.drain()] == [3, 4]

    def test_shed_to_drops_oldest_first_and_counts(self):
        guard = IngestGuard(self._open_schema())
        for i in range(1, 6):
            guard.submit(rec(pid=i, t=10.0), now_s=10.0)
        assert guard.shed_to(2) == 3
        assert guard.shed == 3
        assert [r.person_id for r in guard.drain()] == [4, 5]

    def test_snapshot_accepts_optional_timestamp(self):
        guard = IngestGuard(self._open_schema())
        guard.submit(rec(pid=1, t=10.0), now_s=10.0)
        assert guard.snapshot(123.0) == {1: 10}  # interface parity with router


# -- the shared batch validators (satellite: loud cleaning) --------------------


def _trace(person, t, x, y):
    n = len(person)
    return GpsTrace(
        person_id=np.asarray(person),
        t=np.asarray(t, dtype=np.float64),
        x=np.asarray(x, dtype=np.float64),
        y=np.asarray(y, dtype=np.float64),
        altitude=np.zeros(n),
        speed=np.zeros(n),
    )


class TestBatchValidators:
    def test_fix_reason_matches_schema_reasons(self):
        assert fix_reason(1.0, float("nan"), 2.0) == REASON_NON_FINITE
        assert fix_reason(float("inf"), 1.0, 2.0) == REASON_NON_FINITE
        assert fix_reason(1.0, 2.0, 3.0) is None

    def test_find_malformed_flags_non_finite(self):
        trace = _trace([1, 1], [0.0, 1.0], [1.0, float("nan")], [2.0, 2.0])
        bad = find_malformed(trace)
        assert bad is not None and bad[1] == REASON_NON_FINITE

    def test_find_malformed_flags_backwards_time(self):
        trace = _trace([1, 1], [10.0, 5.0], [1.0, 1.0], [2.0, 2.0])
        bad = find_malformed(trace, require_monotonic=True)
        assert bad is not None and bad[1] == REASON_NON_MONOTONIC
        # The batch cleaner tolerates unordered raw input by contract.
        assert find_malformed(trace, require_monotonic=False) is None

    def test_validate_trace_raises_typed_error(self):
        trace = _trace([7, 7], [0.0, 1.0], [1.0, 1.0], [float("nan"), 2.0])
        with pytest.raises(MalformedTraceError) as err:
            validate_trace(trace)
        assert err.value.reason == REASON_NON_FINITE
        assert err.value.person_id == 7
        assert err.value.index == 0

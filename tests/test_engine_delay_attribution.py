"""Tests pinning down the driving-delay attribution semantics.

Driving delay measures the time from the system's *first response* toward a
request (the first team leg that targets its segment after the call) to the
pickup — re-commands and detours count as driving, queueing before any
response does not.
"""

import pytest

from repro.data.charlotte import build_charlotte_scenario
from repro.dispatch.base import Dispatcher, command_segment
from repro.roadnet.generator import RoadNetworkConfig
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.requests import RescueRequest
from repro.weather.storms import FLORENCE

DAY = 86_400.0
T0 = 2 * DAY  # pre-storm: no flooding, deterministic travel


@pytest.fixture(scope="module")
def scen():
    return build_charlotte_scenario(FLORENCE, RoadNetworkConfig(grid_cols=8, grid_rows=8))


class DelayedResponse(Dispatcher):
    """Ignores the request for ``idle_cycles`` dispatch cycles, then sends
    team 0 to it."""

    name = "DelayedResponse"
    computation_delay_s = 0.0

    def __init__(self, segment_id: int, idle_cycles: int):
        self.segment_id = segment_id
        self.idle_cycles = idle_cycles
        self.cycle = 0

    def dispatch(self, obs):
        self.cycle += 1
        if self.cycle <= self.idle_cycles:
            return {}
        return {0: command_segment(self.segment_id)}


def far_request(scen) -> RescueRequest:
    """A request far from every hospital so travel time is substantial."""
    hx = [scen.network.landmark(h.node_id).xy for h in scen.hospitals]

    def dist_to_hospitals(n):
        lm = scen.network.landmark(n)
        return min((lm.x - x) ** 2 + (lm.y - y) ** 2 for x, y in hx)

    node = max(scen.network.landmark_ids(), key=dist_to_hospitals)
    seg = scen.network.out_segments(node)[0]
    return RescueRequest(0, 7, T0, seg.segment_id, node)


class TestDelayAttribution:
    def test_queueing_before_response_not_counted(self, scen):
        """A request ignored for 2 h then served has ~the same driving delay
        as one served immediately — the wait is timeliness, not driving."""
        req = far_request(scen)

        def run(idle_cycles):
            sim = RescueSimulator(
                scen,
                [req],
                DelayedResponse(req.segment_id, idle_cycles),
                SimulationConfig(t0_s=T0, t1_s=T0 + 12 * 3_600, num_teams=1, seed=3),
            )
            return sim.run().pickups[0]

        fast = run(idle_cycles=0)
        slow = run(idle_cycles=24)  # 24 cycles * 5 min = 2 h of queueing
        assert slow.timeliness_s > fast.timeliness_s + 1.5 * 3_600
        assert slow.driving_delay_s == pytest.approx(fast.driving_delay_s, rel=0.2)

    def test_driving_delay_bounded_by_hospital_travel_times(self, scen):
        from repro.roadnet.matrix import travel_time_oracle

        req = far_request(scen)
        sim = RescueSimulator(
            scen,
            [req],
            DelayedResponse(req.segment_id, 0),
            SimulationConfig(t0_s=T0, t1_s=T0 + 12 * 3_600, num_teams=1, seed=3),
        )
        pickup = sim.run().pickups[0]
        oracle = travel_time_oracle(scen.network)
        hospital_times = [
            oracle.node_to_segment_end_s(h.node_id, req.segment_id)
            for h in scen.hospitals
        ]
        # The team left from some hospital at full pre-storm speed: the
        # measured driving delay falls between the closest and the farthest
        # hospital's free-flow time (plus a step of slack).
        assert min(hospital_times) - 120 <= pickup.driving_delay_s
        assert pickup.driving_delay_s <= max(hospital_times) + 600

    def test_timeliness_includes_computation_delay(self, scen):
        req = far_request(scen)

        class SlowBrain(DelayedResponse):
            computation_delay_s = 1_200.0

        fast = RescueSimulator(
            scen, [req], DelayedResponse(req.segment_id, 0),
            SimulationConfig(t0_s=T0, t1_s=T0 + 12 * 3_600, num_teams=1, seed=3),
        ).run().pickups[0]
        slow = RescueSimulator(
            scen, [req], SlowBrain(req.segment_id, 0),
            SimulationConfig(t0_s=T0, t1_s=T0 + 12 * 3_600, num_teams=1, seed=3),
        ).run().pickups[0]
        assert slow.timeliness_s >= fast.timeliness_s + 1_000.0

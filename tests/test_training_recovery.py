"""Self-healing training: golden equivalence, rollback, abort forensics.

The load-bearing claims of docs/TRAINING_HEALTH.md, on real (small)
training runs:

* a fault-free sentinel run is **bit-identical** to plain
  ``train_mobirescue`` — weights, Adam state, replay buffer, RNG state,
  and the reward trace — across multiple seeds;
* the detectors raise **zero false positives** across five seeds of
  fault-free training;
* a transient injected fault is detected, rolled back, and the
  recovered run's final state is bit-identical to the golden run;
* a persistent fault climbs the ladder and **aborts** with a complete
  forensics bundle instead of committing a poisoned checkpoint;
* re-invoking a completed run is a journal-driven no-op.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.artifacts import verify_artifact_dir
from repro.core.config import MobiRescueConfig
from repro.core.persistence import list_checkpoints, load_checkpoint
from repro.core.training import train_mobirescue
from repro.faults import TrainingFaultInjector, get_train_profile
from repro.training import (
    FORENSICS_FORMAT,
    LadderConfig,
    sentinel_training,
)

GOLDEN_SEEDS = (0, 1, 2)
FALSE_POSITIVE_SEEDS = (0, 1, 2, 3, 4)
EPISODES = 2
NUM_TEAMS = 8


def states_equal(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


@pytest.fixture(scope="module")
def golden(michael_small):
    """Plain sentinel-off training per seed."""
    scenario, bundle = michael_small
    return {
        seed: train_mobirescue(
            scenario,
            bundle,
            MobiRescueConfig(seed=seed),
            episodes=EPISODES,
            num_teams=NUM_TEAMS,
            team_capacity=5,
        )
        for seed in GOLDEN_SEEDS
    }


@pytest.fixture(scope="module")
def sentinel_runs(michael_small, tmp_path_factory):
    """Fault-free sentinel runs, shared by the equivalence and
    false-positive tests (one training run per seed, not two)."""
    scenario, bundle = michael_small
    runs = {}
    for seed in FALSE_POSITIVE_SEEDS:
        ckpt = tmp_path_factory.mktemp(f"sentinel-seed-{seed}")
        runs[seed] = (
            sentinel_training(
                scenario,
                bundle,
                MobiRescueConfig(seed=seed),
                episodes=EPISODES,
                num_teams=NUM_TEAMS,
                team_capacity=5,
                checkpoint_dir=ckpt,
            ),
            ckpt,
        )
    return runs


class TestGoldenEquivalence:
    @pytest.mark.parametrize("seed", GOLDEN_SEEDS)
    def test_sentinel_on_is_bit_identical(self, golden, sentinel_runs, seed):
        base = golden[seed]
        result, _ckpt = sentinel_runs[seed]
        assert result.trained is not None
        assert states_equal(
            base.agent.get_state(), result.trained.agent.get_state()
        )
        assert base.episode_service_rates == result.trained.episode_service_rates


class TestNoFalsePositives:
    @pytest.mark.parametrize("seed", FALSE_POSITIVE_SEEDS)
    def test_fault_free_run_is_clean(self, sentinel_runs, seed):
        result, _ckpt = sentinel_runs[seed]
        assert result.anomalies == []
        assert result.recoveries == []
        assert not result.aborted
        assert result.journal["level"] == 0


class TestTransientRecovery:
    def test_detect_rollback_and_match_golden(
        self, michael_small, golden, tmp_path
    ):
        scenario, bundle = michael_small
        injector = TrainingFaultInjector(get_train_profile("train-mild"), seed=0)
        plans = [injector.plan(ep, 0) for ep in range(EPISODES)]
        assert any(not p.is_null for p in plans), "seed 0 must fire in-window"
        result = sentinel_training(
            scenario,
            bundle,
            MobiRescueConfig(seed=0),
            episodes=EPISODES,
            num_teams=NUM_TEAMS,
            team_capacity=5,
            checkpoint_dir=tmp_path / "ck",
            injector=injector,
        )
        assert not result.aborted
        assert result.anomalies, "injected faults must be detected"
        assert result.recoveries, "detection must trigger rollback"
        # Every anomaly lands in the same (episode, attempt) the fault hit.
        applied_windows = {(a["episode"], a["attempt"]) for a in result.applied}
        for anomaly in result.anomalies:
            assert (anomaly["episode"], anomaly["attempt"]) in applied_windows
        # Transient faults are gone on replay, so recovery converges to
        # the exact golden trajectory.
        assert result.trained is not None
        assert states_equal(
            golden[0].agent.get_state(), result.trained.agent.get_state()
        )

    def test_committed_checkpoints_are_clean(self, michael_small, tmp_path):
        scenario, bundle = michael_small
        injector = TrainingFaultInjector(get_train_profile("train-mild"), seed=0)
        result = sentinel_training(
            scenario,
            bundle,
            MobiRescueConfig(seed=0),
            episodes=EPISODES,
            num_teams=NUM_TEAMS,
            team_capacity=5,
            checkpoint_dir=tmp_path / "ck",
            keep_checkpoints=EPISODES + 2,
            injector=injector,
        )
        assert result.anomalies
        for path in list_checkpoints(tmp_path / "ck"):
            checkpoint = load_checkpoint(path)
            for arr in checkpoint.agent_state.values():
                if arr.dtype.kind == "f":
                    assert bool(np.isfinite(arr).all()), path.name


class TestBlackoutAbort:
    def test_abort_with_forensics_instead_of_committing(
        self, michael_small, tmp_path
    ):
        scenario, bundle = michael_small
        injector = TrainingFaultInjector(
            get_train_profile("train-blackout"), seed=0
        )
        result = sentinel_training(
            scenario,
            bundle,
            MobiRescueConfig(seed=0),
            episodes=EPISODES,
            num_teams=NUM_TEAMS,
            team_capacity=5,
            checkpoint_dir=tmp_path / "ck",
            # Climb rollback -> rollback+reperturb -> abort, keeping the
            # test short while still exercising the re-perturbation rung.
            ladder=LadderConfig(abort_level=2),
            injector=injector,
        )
        assert result.aborted
        assert result.trained is None
        assert any("reperturb" in r["actions"] for r in result.recoveries)
        # No poisoned progress was committed: only the initial
        # pre-episode-0 checkpoint exists.
        paths = list_checkpoints(tmp_path / "ck")
        assert [load_checkpoint(p).episodes_done for p in paths] == [0]
        # The forensics bundle is manifest-complete and self-describing.
        assert result.forensics_path is not None
        verify_artifact_dir(result.forensics_path)
        with open(result.forensics_path / "incidents.json") as fh:
            payload = json.load(fh)
        assert payload["format"] == FORENSICS_FORMAT
        assert payload["anomalies"]
        assert (result.forensics_path / "agent_state.npz").exists()

    def test_aborted_run_stays_aborted_on_reinvoke(self, michael_small, tmp_path):
        scenario, bundle = michael_small
        kwargs = dict(
            episodes=EPISODES,
            num_teams=NUM_TEAMS,
            team_capacity=5,
            checkpoint_dir=tmp_path / "ck",
            ladder=LadderConfig(abort_level=1),
        )
        injector = TrainingFaultInjector(
            get_train_profile("train-blackout"), seed=0
        )
        first = sentinel_training(
            scenario, bundle, MobiRescueConfig(seed=0), injector=injector, **kwargs
        )
        assert first.aborted
        again = sentinel_training(
            scenario, bundle, MobiRescueConfig(seed=0), injector=injector, **kwargs
        )
        assert again.aborted
        assert again.journal["anomaly_count"] == first.journal["anomaly_count"]


class TestResume:
    def test_completed_run_resumes_as_noop(self, michael_small, sentinel_runs):
        scenario, bundle = michael_small
        first, ckpt = sentinel_runs[0]
        again = sentinel_training(
            scenario,
            bundle,
            MobiRescueConfig(seed=0),
            episodes=EPISODES,
            num_teams=NUM_TEAMS,
            team_capacity=5,
            checkpoint_dir=ckpt,
        )
        assert again.trained is not None
        assert states_equal(
            first.trained.agent.get_state(), again.trained.agent.get_state()
        )
        assert (
            first.trained.episode_service_rates
            == again.trained.episode_service_rates
        )
        assert again.anomalies == []

"""Request-activation order is pinned across all three implementations.

The seed engine originally rescanned a deque head every tick; it now
advances an index cursor, and the event kernel pops from a
``RequestArray`` via ``searchsorted``.  All three must hand requests to
the pending queues in exactly the same order — sorted by request time,
ties in original input order (Python's stable sort) — for every query
sequence the engine can produce (non-decreasing tick times).
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.kernel import EventKernelSimulator, RequestArray
from repro.sim.requests import RescueRequest


def _request(i: int, time_s: float) -> RescueRequest:
    return RescueRequest(
        request_id=i, person_id=i, time_s=time_s, segment_id=0, node_id=0
    )


def _deque_reference(requests, query_times):
    """The pre-refactor semantics: rescan the sorted deque head per tick."""
    active = deque(sorted(requests, key=lambda r: r.time_s))
    batches = []
    for t in query_times:
        batch = []
        while active and active[0].time_s <= t:
            batch.append(active.popleft())
        batches.append(batch)
    return batches


class _CursorHarness:
    """Just enough state to run the engine's indexed-cursor method."""

    def __init__(self, requests):
        self.requests = sorted(requests, key=lambda r: r.time_s)
        self._activation_cursor = 0

    take = RescueSimulator._take_due_requests


@pytest.mark.parametrize("seed", range(30))
def test_cursor_and_array_match_deque_reference(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 40))
    # Coarse time grid: duplicates are likely, exercising tie order.
    times = [float(rng.integers(0, 15)) for _ in range(n)]
    requests = [_request(i, t) for i, t in enumerate(times)]
    queries = np.cumsum(rng.uniform(0.0, 4.0, size=12)).tolist()

    expected = _deque_reference(requests, queries)
    harness = _CursorHarness(requests)
    array = RequestArray(sorted(requests, key=lambda r: r.time_s))
    for t, batch in zip(queries, expected):
        assert harness.take(t) == batch
        assert array.take_due(t) == batch
    # Everything at or before the last query time is activated; the rest
    # is still waiting, in order.
    remaining = [r for r in sorted(requests, key=lambda r: r.time_s)
                 if r.time_s > queries[-1]]
    assert array.next_time() == (remaining[0].time_s if remaining else None)


def test_ties_preserve_input_order():
    requests = [_request(0, 5.0), _request(1, 3.0), _request(2, 5.0),
                _request(3, 5.0), _request(4, 1.0)]
    harness = _CursorHarness(requests)
    taken = harness.take(5.0)
    assert [r.request_id for r in taken] == [4, 1, 0, 2, 3]
    assert harness.take(5.0) == []  # cursor advanced, nothing re-activates


def test_request_array_rejects_unsorted_input():
    with pytest.raises(ValueError):
        RequestArray([_request(0, 5.0), _request(1, 1.0)])


class _RecordingSeed(RescueSimulator):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.activated: list[int] = []

    def _take_due_requests(self, upto_t):
        newly = super()._take_due_requests(upto_t)
        self.activated.extend(r.request_id for r in newly)
        return newly


class _RecordingKernel(EventKernelSimulator):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.activated: list[int] = []

    def _take_due_requests(self, upto_t):
        newly = super()._take_due_requests(upto_t)
        self.activated.extend(r.request_id for r in newly)
        return newly


def test_engine_activation_order_unchanged(florence_scenario):
    """End to end: both engines activate the same ids in the same order,
    with deliberate duplicate request times in the workload."""
    from repro.dispatch.nearest import NearestDispatcher

    scenario = florence_scenario
    network = scenario.network
    rng = np.random.default_rng(13)
    seg_ids = np.array(network.segment_ids())
    t0 = scenario.timeline.storm_start_s
    t1 = t0 + 1.0 * 3_600.0
    requests = []
    for i, seg in enumerate(rng.choice(seg_ids, size=30)):
        segment = network.segment(int(seg))
        # Quantized times: several requests share an activation instant.
        time_s = t0 + 300.0 * float(rng.integers(0, 10))
        requests.append(
            RescueRequest(request_id=i, person_id=i, time_s=time_s,
                          segment_id=int(seg), node_id=segment.u)
        )
    config = SimulationConfig(t0_s=t0, t1_s=t1, num_teams=5, seed=0)
    seed_sim = _RecordingSeed(
        scenario, list(requests), NearestDispatcher(), config
    )
    seed_sim.run()
    kernel_sim = _RecordingKernel(
        scenario, list(requests), NearestDispatcher(), config
    )
    kernel_sim.run()
    assert seed_sim.activated, "workload must activate requests"
    assert seed_sim.activated == kernel_sim.activated
    # The order is the stable time-sort of the input.
    expected = [r.request_id
                for r in sorted(requests, key=lambda r: r.time_s)
                if r.time_s <= t1]
    assert seed_sim.activated == expected

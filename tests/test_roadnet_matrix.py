"""Tests for the all-pairs travel-time oracle."""

import numpy as np
import pytest

from repro.geo.regions import charlotte_regions
from repro.roadnet.generator import RoadNetworkConfig, generate_road_network
from repro.roadnet.matrix import TravelTimeOracle, travel_time_oracle
from repro.roadnet.routing import route_to_segment, shortest_path, shortest_time_to


@pytest.fixture(scope="module")
def network():
    part = charlotte_regions(70_000.0, 45_000.0)
    return generate_road_network(part, RoadNetworkConfig(grid_cols=9, grid_rows=9))


@pytest.fixture(scope="module")
def oracle(network):
    return TravelTimeOracle(network)


class TestTravelTimeOracle:
    def test_matches_exact_dijkstra(self, network, oracle):
        rng = np.random.default_rng(0)
        nodes = network.landmark_ids()
        for _ in range(20):
            a, b = rng.choice(nodes, size=2, replace=False)
            exact = shortest_path(network, int(a), int(b)).travel_time_s
            assert oracle.node_to_node_s(int(a), int(b)) == pytest.approx(
                exact, rel=1e-5
            )

    def test_diagonal_zero(self, network, oracle):
        for n in network.landmark_ids()[:10]:
            assert oracle.node_to_node_s(n, n) == 0.0

    def test_segment_end_semantics(self, network, oracle):
        """Time to a segment's end = time to its head + its own traversal."""
        rng = np.random.default_rng(1)
        for _ in range(15):
            src = int(rng.choice(network.landmark_ids()))
            seg_id = int(rng.choice(network.segment_ids()))
            exact = route_to_segment(network, src, seg_id).travel_time_s
            assert oracle.node_to_segment_end_s(src, seg_id) == pytest.approx(
                exact, rel=1e-5
            )

    def test_vectorized_matches_scalar(self, network, oracle):
        src = 0
        segs = network.segment_ids()[:30]
        batch = oracle.node_to_segments_s(src, segs)
        for s, t in zip(segs, batch):
            assert oracle.node_to_segment_end_s(src, s) == pytest.approx(
                float(t), rel=1e-5
            )

    def test_memoization(self, network):
        a = travel_time_oracle(network)
        b = travel_time_oracle(network)
        assert a is b


class TestReverseDijkstra:
    def test_matches_forward(self, network):
        rng = np.random.default_rng(2)
        dst = int(rng.choice(network.landmark_ids()))
        to_dst = shortest_time_to(network, dst)
        for src in rng.choice(network.landmark_ids(), size=10, replace=False):
            fwd = shortest_path(network, int(src), dst).travel_time_s
            assert to_dst[int(src)] == pytest.approx(fwd, rel=1e-9)

    def test_respects_closures(self, network):
        dst = 0
        closed = frozenset(s.segment_id for s in network.in_segments(dst))
        to_dst = shortest_time_to(network, dst, closed=closed)
        # With every incoming segment closed, only dst itself can reach dst.
        assert set(to_dst) == {dst}

    def test_invalid_weight(self, network):
        with pytest.raises(ValueError):
            shortest_time_to(network, 0, weight="bananas")

"""Tests for the extension features: historical-fallback position feed
(paper Section IV-C5) and trained-model persistence."""

import numpy as np
import pytest

from repro.core.persistence import load_trained, save_trained
from repro.core.positions import HistoricalFallbackFeed
from repro.core.system import MobiRescueSystem
from repro.core.training import train_mobirescue
from repro.core.config import MobiRescueConfig
from repro.mobility.cleaning import clean_trace
from repro.mobility.mapmatch import MatchedTrajectories, map_match
from repro.weather.storms import SECONDS_PER_DAY, SECONDS_PER_HOUR


def synthetic_trajectories() -> MatchedTrajectories:
    """Two people with clear daily habits over days 0-4:

    * person 1: node 10 at night, node 20 during 8-17h for days 0-4; on
      day 5 they evacuate to node 99 and their phone dies at noon;
    * person 2: always node 30, with a single early fix.
    """
    ts1, nodes1 = [], []
    for day in range(5):
        for hour in range(24):
            ts1.append(day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR)
            nodes1.append(20 if 8 <= hour < 17 else 10)
    # Day 5: at an unusual node (evacuated); fixes stop at noon.
    for hour in range(12):
        ts1.append(5 * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR)
        nodes1.append(99)

    ts2 = [d * SECONDS_PER_DAY + h * SECONDS_PER_HOUR for d in range(8) for h in range(24)]
    nodes2 = [30] * len(ts2)
    # Collapse consecutive duplicates, as map_match would.
    n2_t, n2_n = [ts2[0]], [nodes2[0]]
    return MatchedTrajectories(
        trajectories={
            1: (np.array(ts1, dtype=float), np.array(nodes1)),
            2: (np.array(n2_t, dtype=float), np.array(n2_n)),
        },
        dropped_far_fixes=0,
    )


class TestHistoricalFallbackFeed:
    def make_feed(self, staleness_h=6.0):
        return HistoricalFallbackFeed(
            synthetic_trajectories(),
            history_start_s=0.0,
            history_end_s=5 * SECONDS_PER_DAY,
            staleness_s=staleness_h * SECONDS_PER_HOUR,
        )

    def test_fresh_fix_used_directly(self):
        feed = self.make_feed()
        pos = feed(5 * SECONDS_PER_DAY + 11.5 * SECONDS_PER_HOUR)
        # Last fix is half an hour old: the unusual evacuated position wins
        # over the node-20 habit.
        assert pos[1] == 99

    def test_stale_device_falls_back_to_habit(self):
        feed = self.make_feed()
        # Day 6 at 22:00: person 1's last fix is 35 h old; at 22:00 their
        # habit says node 10 (home at night), even though the last fix was
        # at node 20.
        pos = feed(6 * SECONDS_PER_DAY + 22 * SECONDS_PER_HOUR)
        assert pos[1] == 10
        assert feed.fallback_uses >= 1

    def test_stale_device_daytime_habit(self):
        feed = self.make_feed()
        pos = feed(6 * SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR)
        assert pos[1] == 20  # work hours

    def test_person_with_single_anchor(self):
        feed = self.make_feed()
        pos = feed(7 * SECONDS_PER_DAY + 3 * SECONDS_PER_HOUR)
        assert pos[2] == 30

    def test_habitual_node_neighbouring_hours(self):
        feed = self.make_feed()
        # Person 2's history (collapsed to a single entry at hour 0) still
        # resolves for any queried hour via the neighbouring-hour search.
        assert feed.habitual_node(2, 13.5 * SECONDS_PER_HOUR) == 30
        assert feed.habitual_node(999, 0.0) is None

    def test_caching(self):
        feed = self.make_feed()
        t = 6 * SECONDS_PER_DAY
        assert feed(t) is feed(t)

    def test_validation(self):
        with pytest.raises(ValueError):
            HistoricalFallbackFeed(synthetic_trajectories(), 5.0, 5.0)
        with pytest.raises(ValueError):
            HistoricalFallbackFeed(synthetic_trajectories(), 0.0, 1.0, staleness_s=0.0)

    def test_on_real_trace(self, florence_small):
        """On the real dataset the fallback feed returns positions for the
        same population as the plain feed."""
        scenario, bundle = florence_small
        clean, _ = clean_trace(
            bundle.trace, scenario.partition.width_m, scenario.partition.height_m
        )
        matched = map_match(clean, scenario.network)
        feed = HistoricalFallbackFeed(
            matched,
            history_start_s=0.0,
            history_end_s=scenario.timeline.storm_start_s,
        )
        t = 22.5 * SECONDS_PER_DAY
        pos = feed(t)
        assert len(pos) == len(bundle.persons)
        valid_nodes = set(scenario.network.landmark_ids())
        assert set(pos.values()) <= valid_nodes


class TestGpsFallbackDeploy:
    def test_deploy_with_fallback_feed(self, michael_small, florence_small):
        scenario, bundle = michael_small
        trained = train_mobirescue(
            scenario, bundle, MobiRescueConfig(seed=7), episodes=1, num_teams=8
        )
        fscen, fbundle = florence_small
        dispatcher = MobiRescueSystem(trained).deploy(
            fscen, fbundle, gps_fallback=True
        )
        assert isinstance(dispatcher.positions_fn, HistoricalFallbackFeed)
        positions = dispatcher.positions_fn(22.5 * SECONDS_PER_DAY)
        assert len(positions) > 0


class TestPersistence:
    @pytest.fixture(scope="class")
    def trained(self, michael_small):
        scenario, bundle = michael_small
        return train_mobirescue(
            scenario, bundle, MobiRescueConfig(seed=3), episodes=1, num_teams=10
        )

    def test_roundtrip_preserves_models(self, trained, michael_small, tmp_path):
        scenario, _ = michael_small
        path = tmp_path / "mobirescue.npz"
        save_trained(trained, path)
        loaded = load_trained(path, scenario)

        # SVM decisions survive.
        rng = np.random.default_rng(0)
        x = rng.normal([60, 40, 200], [30, 15, 15], size=(50, 3))
        np.testing.assert_array_equal(
            trained.predictor.predict_labels(x), loaded.predictor.predict_labels(x)
        )
        # Q-network survives bit-exact.
        s = rng.normal(size=(4, trained.config.state_dim))
        np.testing.assert_allclose(
            trained.agent.q_net.forward(s), loaded.agent.q_net.forward(s)
        )
        assert loaded.config == trained.config
        assert loaded.episode_service_rates == trained.episode_service_rates
        assert loaded.agent.epsilon == trained.agent.epsilon

    def test_loaded_system_deploys(self, trained, michael_small, florence_small, tmp_path):
        scenario, _ = michael_small
        fscen, fbundle = florence_small
        path = tmp_path / "m.npz"
        save_trained(trained, path)
        loaded = load_trained(path, scenario)
        dispatcher = MobiRescueSystem(loaded).deploy(fscen, fbundle)
        assert dispatcher.predictor.is_fitted

    def test_unfitted_rejected(self, michael_small, trained, tmp_path):
        import copy

        broken = copy.copy(trained)
        from repro.core.predictor import RequestPredictor

        broken.predictor = RequestPredictor(michael_small[0])
        with pytest.raises(ValueError):
            save_trained(broken, tmp_path / "x.npz")

    def test_save_lands_at_exact_path(self, trained, tmp_path):
        # np.savez would have silently written to model.bin.npz.
        path = tmp_path / "model.bin"
        save_trained(trained, path)
        assert path.exists()
        assert not (tmp_path / "model.bin.npz").exists()

    def test_corrupt_archive_typed_error(self, trained, michael_small, tmp_path):
        from repro.core.artifacts import CorruptArtifactError

        scenario, _ = michael_small
        path = tmp_path / "m.npz"
        save_trained(trained, path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptArtifactError):
            load_trained(path, scenario)

        path.write_bytes(raw[: len(raw) // 3])
        with pytest.raises(CorruptArtifactError):
            load_trained(path, scenario)

    def test_unknown_version_typed_error(self, trained, michael_small, tmp_path):
        from repro.core.artifacts import ArtifactVersionError, atomic_savez

        scenario, _ = michael_small
        path = tmp_path / "m.npz"
        save_trained(trained, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.array([99])
        atomic_savez(path, **arrays)
        with pytest.raises(ArtifactVersionError):
            load_trained(path, scenario)
        # ...which old callers still catch as ValueError.
        with pytest.raises(ValueError):
            load_trained(path, scenario)

    def test_v1_archive_migrates_to_v2(self, trained, michael_small, tmp_path):
        from repro.core.artifacts import atomic_savez

        scenario, _ = michael_small
        path = tmp_path / "m.npz"
        save_trained(trained, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        # Strip everything the v2 format added, as a v1 writer would have.
        arrays = {
            k: v
            for k, v in arrays.items()
            if not k.startswith("target_") and k != "rng_json"
        }
        arrays["version"] = np.array([1])
        atomic_savez(path, **arrays)

        loaded = load_trained(path, scenario)
        # v1 had no separate target net: migration seeds it from the Q-net.
        for (qw, qb), (tw, tb) in zip(
            loaded.agent.q_net.get_weights(), loaded.agent.target_net.get_weights()
        ):
            np.testing.assert_array_equal(qw, tw)
            np.testing.assert_array_equal(qb, tb)
        rng = np.random.default_rng(1)
        s = rng.normal(size=(4, trained.config.state_dim))
        np.testing.assert_allclose(
            trained.agent.q_net.forward(s), loaded.agent.q_net.forward(s)
        )

    def test_unknown_config_key_dropped_with_warning(
        self, trained, michael_small, tmp_path, caplog
    ):
        import json
        import logging

        from repro.core.artifacts import atomic_savez

        scenario, _ = michael_small
        path = tmp_path / "m.npz"
        save_trained(trained, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        cfg = json.loads(str(arrays["config_json"][0]))
        cfg["future_knob"] = 42
        arrays["config_json"] = np.array([json.dumps(cfg)])
        atomic_savez(path, **arrays)

        with caplog.at_level(logging.WARNING, logger="repro.core.persistence"):
            loaded = load_trained(path, scenario)
        assert loaded.config == trained.config
        assert any("future_knob" in rec.getMessage() for rec in caplog.records)

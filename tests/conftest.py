"""Shared fixtures: a small Charlotte scenario and dataset.

The full-size dataset (8,590 people over 27 days) takes minutes to build;
tests run on a scaled-down population which exercises every code path.
Session scope keeps the expensive builds to one per test run.
"""

from __future__ import annotations

import pytest

from repro.data import DatasetSpec, build_dataset
from repro.data.charlotte import build_charlotte_scenario
from repro.weather.storms import FLORENCE, MICHAEL


@pytest.fixture(scope="session")
def florence_scenario():
    return build_charlotte_scenario(FLORENCE)


@pytest.fixture(scope="session")
def michael_scenario():
    return build_charlotte_scenario(MICHAEL)


@pytest.fixture(scope="session")
def florence_small():
    """(scenario, bundle) for a 500-person Florence dataset."""
    return build_dataset(DatasetSpec(storm="florence", population_size=500))


@pytest.fixture(scope="session")
def michael_small():
    """(scenario, bundle) for a 500-person Michael dataset."""
    return build_dataset(DatasetSpec(storm="michael", population_size=500))

"""Service-loop tests: guarded wrappers, golden equivalence, chaos runs.

The acceptance bar for the whole service layer is the *golden
equivalence* test: a full service run with every guard wired and zero
faults must be bit-identical to a plain engine run of the same system.
The chaos test then composes environment and component faults and checks
the harness invariants end to end.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.dispatch.base import Dispatcher
from repro.faults.models import InjectedPredictorFault
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.chaos import ChaosConfig, ChaosHarness
from repro.service.deadline import ManualClock
from repro.service.guards import GuardedPredictor, ResilientDispatcher
from repro.service.loop import ServiceConfig

# -- guarded predictor (fakes) -------------------------------------------------


class FakePredictor:
    def __init__(self, fail=False):
        self.fail = fail
        self.calls = 0

    @property
    def is_fitted(self):
        return True

    def predict_request_distribution(self, person_nodes, t_s):
        self.calls += 1
        if self.fail:
            raise RuntimeError("svm exploded")
        return {1: 2, 3: 4}


def make_guarded(inner, clock=None, threshold=2, slice_s=None, incidents=None):
    breaker = CircuitBreaker(
        "predictor", BreakerConfig(failure_threshold=threshold, cooldown_s=600.0)
    )
    sink = None
    if incidents is not None:
        sink = lambda kind, detail, t: incidents.append(kind)
    guard = GuardedPredictor(
        inner,
        breaker,
        clock if clock is not None else ManualClock(),
        deadline_slice_s=slice_s,
        incident_sink=sink,
    )
    return guard, breaker


class TestGuardedPredictor:
    def test_clean_path_is_transparent(self):
        inner = FakePredictor()
        guard, breaker = make_guarded(inner)
        assert guard.predict_request_distribution({}, 0.0) == {1: 2, 3: 4}
        assert inner.calls == 1
        assert breaker.state == "closed"
        assert guard.fallback_serves == 0

    def test_failure_serves_last_known_good(self):
        inner = FakePredictor()
        incidents = []
        guard, breaker = make_guarded(inner, incidents=incidents)
        good = guard.predict_request_distribution({}, 0.0)
        inner.fail = True
        served = guard.predict_request_distribution({}, 300.0)
        assert served == good
        assert guard.fallback_serves == 1
        assert incidents == ["predictor_failure"]

    def test_breaker_opens_and_inner_is_not_called(self):
        inner = FakePredictor(fail=True)
        incidents = []
        guard, breaker = make_guarded(inner, threshold=2, incidents=incidents)
        guard.predict_request_distribution({}, 0.0)
        guard.predict_request_distribution({}, 300.0)
        assert breaker.state == "open"
        calls_before = inner.calls
        guard.predict_request_distribution({}, 400.0)
        assert inner.calls == calls_before  # breaker open: no inner call
        assert incidents[-1] == "predictor_breaker_open"

    def test_recovery_probe_after_cooldown(self):
        inner = FakePredictor(fail=True)
        guard, breaker = make_guarded(inner, threshold=1)
        guard.predict_request_distribution({}, 0.0)
        assert breaker.state == "open"
        inner.fail = False
        result = guard.predict_request_distribution({}, 600.0)  # probe admitted
        assert result == {1: 2, 3: 4}
        assert breaker.state == "closed"

    def test_deadline_overrun_discards_result(self):
        clock = ManualClock()
        inner = FakePredictor()

        class SlowPredictor(FakePredictor):
            def predict_request_distribution(self, person_nodes, t_s):
                clock.advance(1.0)  # slower than any slice
                return super().predict_request_distribution(person_nodes, t_s)

        slow = SlowPredictor()
        incidents = []
        guard, breaker = make_guarded(
            slow, clock=clock, slice_s=0.2, incidents=incidents
        )
        served = guard.predict_request_distribution({}, 0.0)
        assert served == {}  # overrun result discarded; empty last-known-good
        assert breaker.failures == 1
        assert incidents == ["predictor_deadline"]

    def test_injected_fault_hook(self):
        inner = FakePredictor()
        guard, breaker = make_guarded(inner)
        guard.fault_hook = lambda t: True
        guard.predict_request_distribution({}, 0.0)
        assert inner.calls == 0  # fault fires before the inner call
        assert breaker.failures == 1


# -- resilient dispatcher (fakes) ----------------------------------------------


class FakeDispatcherBase(Dispatcher):
    name = "Fake"
    flood_aware = False
    computation_delay_s = 1.0

    def __init__(self):
        self.calls = 0
        self.observed = []
        self.cycle_ends = 0

    def dispatch(self, obs):
        self.calls += 1
        return {0: "cmd"}

    def observe_requests(self, requests):
        self.observed.append(requests)

    def on_cycle_end(self, obs):
        self.cycle_ends += 1


class FailingDispatcher(FakeDispatcherBase):
    def dispatch(self, obs):
        self.calls += 1
        raise InjectedPredictorFault("policy crashed")


class FallbackDispatcher(FakeDispatcherBase):
    name = "Fallback"

    def dispatch(self, obs):
        self.calls += 1
        return {9: "fallback-cmd"}


def obs_at(t_s: float):
    return SimpleNamespace(t_s=t_s)


def make_resilient(inner, fallback=None, clock=None, slice_s=None, hook=None):
    breaker = CircuitBreaker(
        "policy", BreakerConfig(failure_threshold=2, cooldown_s=600.0)
    )
    wrapper = ResilientDispatcher(
        inner,
        breaker,
        clock if clock is not None else ManualClock(),
        deadline_slice_s=slice_s,
        fallback=fallback if fallback is not None else FallbackDispatcher(),
        latency_hook=hook,
    )
    return wrapper, breaker


class TestResilientDispatcher:
    def test_clean_path_passes_commands_through(self):
        inner = FakeDispatcherBase()
        wrapper, breaker = make_resilient(inner)
        assert wrapper.dispatch(obs_at(0.0)) == {0: "cmd"}
        assert wrapper.fallback_cycles == 0
        assert wrapper.name == "Fake"
        assert wrapper.computation_delay_s == 1.0

    def test_exception_serves_fallback_same_cycle(self):
        inner = FailingDispatcher()
        fallback = FallbackDispatcher()
        wrapper, breaker = make_resilient(inner, fallback=fallback)
        assert wrapper.dispatch(obs_at(0.0)) == {9: "fallback-cmd"}
        assert wrapper.fallback_cycles == 1
        assert breaker.failures == 1

    def test_open_breaker_skips_inner(self):
        inner = FailingDispatcher()
        wrapper, breaker = make_resilient(inner)
        wrapper.dispatch(obs_at(0.0))
        wrapper.dispatch(obs_at(300.0))
        assert breaker.state == "open"
        calls_before = inner.calls
        wrapper.dispatch(obs_at(400.0))
        assert inner.calls == calls_before

    def test_latency_spike_advances_clock_not_wall_time(self):
        inner = FakeDispatcherBase()
        fallback = FallbackDispatcher()
        wrapper, breaker = make_resilient(
            inner, fallback=fallback, slice_s=0.2, hook=lambda t: 30.0
        )
        # Injected 30 s stall overruns the 0.2 s slice: fallback serves.
        assert wrapper.dispatch(obs_at(0.0)) == {9: "fallback-cmd"}
        assert breaker.failures == 1
        assert wrapper.fallback_cycles == 1

    def test_lifecycle_hooks_pass_through(self):
        inner = FakeDispatcherBase()
        wrapper, _ = make_resilient(inner)
        wrapper.observe_requests(["r1"])
        wrapper.on_cycle_end(obs_at(0.0))
        assert inner.observed == [["r1"]]
        assert inner.cycle_ends == 1


# -- service config ------------------------------------------------------------


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServiceConfig(future_slack_s=-1.0)
        with pytest.raises(ValueError):
            ServiceConfig(max_incidents=0)


# -- the integration triple: golden equivalence + chaos invariants -------------


@pytest.fixture(scope="module")
def chaos_verdict():
    """One full baseline/clean/chaos triple on the shared small world."""
    harness = ChaosHarness(
        ChaosConfig(
            profile="severe",
            seeds=(0,),
            population_size=500,
            num_teams=10,
            window_days=0.25,
        )
    )
    return harness.run_seed(0), harness


class TestGoldenEquivalence:
    def test_clean_service_run_is_bit_identical(self, chaos_verdict):
        verdict, _ = chaos_verdict
        assert verdict.equivalence_ok, verdict.violations
        # Clean run: guards wired but completely silent.
        clean = verdict.clean_summary
        assert clean["service_incidents"] == 0
        assert clean["policy_fallback_cycles"] == 0
        assert clean["predictor_fallback_serves"] == 0
        assert clean["ingest"]["rejected_total"] == 0

    def test_clean_run_completed_every_tick(self, chaos_verdict):
        verdict, _ = chaos_verdict
        clean = verdict.clean_summary
        assert clean["ticks_completed"] == clean["ticks_expected"] > 0


class TestChaosInvariants:
    def test_verdict_passes(self, chaos_verdict):
        verdict, _ = chaos_verdict
        assert verdict.ok, verdict.violations

    def test_no_tick_skipped_under_chaos(self, chaos_verdict):
        verdict, _ = chaos_verdict
        assert verdict.ticks_ok
        chaos = verdict.chaos_summary
        assert chaos["ticks_completed"] == chaos["ticks_expected"]

    def test_faults_actually_fired(self, chaos_verdict):
        """A chaos run that injected nothing proves nothing."""
        verdict, _ = chaos_verdict
        chaos = verdict.chaos_summary
        assert chaos["service_incidents"] > 0
        assert chaos["ingest"]["rejected_total"] > 0
        # Every injected corruption mode must have been caught at ingest.
        assert len(chaos["ingest"]["rejected_by_reason"]) >= 3

    def test_report_is_json_ready(self, chaos_verdict):
        import json

        verdict, _ = chaos_verdict
        encoded = json.dumps(verdict.as_json())
        assert '"ok"' in encoded

    def test_expected_ticks_matches_engine_loop(self, chaos_verdict):
        verdict, harness = chaos_verdict
        service = harness._service(0, with_faults=False)
        # One serving sample is recorded per dispatch cycle: the replayed
        # loop arithmetic must agree with what the engine actually did.
        expected = service.expected_ticks()
        assert expected == verdict.clean_summary["ticks_expected"]
        assert expected == verdict.clean_summary["ticks_completed"]

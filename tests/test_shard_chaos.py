"""Shard chaos integration: the unsharded/sharded/shard-chaos triple.

The acceptance bar for the sharded topology: the clean sharded run is
bit-identical to the unsharded PR 5 service run, and under the
shard-blackout profile every tick still completes, failover re-covers
dead keyspace within the supervisor's budget, and the per-shard record
ledger reconciles exactly.
"""

from __future__ import annotations

import json

import pytest

from repro.service.chaos import results_bit_identical
from repro.service.sharding import (
    ShardChaosConfig,
    ShardChaosHarness,
    ShardingConfig,
)


@pytest.fixture(scope="module")
def shard_verdict():
    """One unsharded/sharded/chaos triple on the shared small world."""
    harness = ShardChaosHarness(
        ShardChaosConfig(
            profile="shard-blackout",
            seeds=(0,),
            population_size=250,
            num_teams=10,
            window_days=0.25,
            sharding=ShardingConfig(num_shards=4),
        )
    )
    return harness.run_seed(0), harness


class TestCleanShardedEquivalence:
    def test_clean_sharded_run_is_bit_identical_to_unsharded(self, shard_verdict):
        verdict, _ = shard_verdict
        assert verdict.equivalence_ok, verdict.violations

    def test_equivalence_holds_on_a_fresh_pair(self, shard_verdict):
        """Belt and braces: rebuild both services and compare directly."""
        _, harness = shard_verdict
        unsharded = harness._service(0, with_faults=False).run()
        sharded = harness._sharded_service(0, with_shard_faults=False).run()
        assert results_bit_identical(unsharded.result, sharded.result)

    def test_clean_sharded_run_is_silent(self, shard_verdict):
        verdict, _ = shard_verdict
        clean = verdict.clean_summary
        assert clean["ticks_completed"] == clean["ticks_expected"] > 0
        assert clean["ingest"]["rejected_total"] == 0
        assert clean["ingest"]["lost"] == 0
        assert clean["supervisor"]["failovers"] == []


class TestShardChaosInvariants:
    def test_verdict_passes(self, shard_verdict):
        verdict, _ = shard_verdict
        assert verdict.ok, verdict.violations

    def test_no_tick_skipped_despite_shard_deaths(self, shard_verdict):
        verdict, _ = shard_verdict
        assert verdict.ticks_ok
        chaos = verdict.chaos_summary
        assert chaos["ticks_completed"] == chaos["ticks_expected"]

    def test_shard_faults_actually_fired(self, shard_verdict):
        """A chaos run that killed nothing proves nothing."""
        verdict, _ = shard_verdict
        supervisor = verdict.chaos_summary["supervisor"]
        assert supervisor["failovers"], "no shard ever failed over"

    def test_failover_stayed_within_budget(self, shard_verdict):
        verdict, _ = shard_verdict
        assert verdict.failover_budget_ok
        supervisor = verdict.chaos_summary["supervisor"]
        assert (
            supervisor["max_uncovered_cycles"]
            <= supervisor["failover_budget_cycles"]
        )

    def test_ledger_reconciles_under_chaos(self, shard_verdict):
        verdict, _ = shard_verdict
        assert verdict.reconciliation_ok

    def test_report_is_json_ready(self, shard_verdict):
        verdict, _ = shard_verdict
        encoded = json.dumps(verdict.as_json())
        assert '"failover_budget_ok"' in encoded

"""Tests for repro.geo.coords: points, distances, projection."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo.coords import (
    CHARLOTTE_BBOX,
    BoundingBox,
    GeoPoint,
    LocalProjection,
    euclidean_m,
    haversine_m,
)


class TestGeoPoint:
    def test_valid_point(self):
        p = GeoPoint(35.0, -80.0)
        assert p.lat == 35.0
        assert p.lon == -80.0

    @pytest.mark.parametrize("lat", [-91.0, 91.0, 180.0])
    def test_latitude_out_of_range(self, lat):
        with pytest.raises(ValueError):
            GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lon", [-181.0, 181.0, 360.0])
    def test_longitude_out_of_range(self, lon):
        with pytest.raises(ValueError):
            GeoPoint(0.0, lon)


class TestHaversine:
    def test_zero_distance(self):
        p = GeoPoint(35.6, -79.0)
        assert haversine_m(p, p) == 0.0

    def test_known_distance_one_degree_lat(self):
        a = GeoPoint(35.0, -79.0)
        b = GeoPoint(36.0, -79.0)
        # One degree of latitude is ~111.2 km.
        assert haversine_m(a, b) == pytest.approx(111_195, rel=0.01)

    def test_symmetry(self):
        a = GeoPoint(35.7, -79.1)
        b = GeoPoint(35.9, -78.4)
        assert haversine_m(a, b) == pytest.approx(haversine_m(b, a))

    @given(
        st.floats(-60, 60),
        st.floats(-170, 170),
        st.floats(-60, 60),
        st.floats(-170, 170),
    )
    def test_non_negative(self, lat1, lon1, lat2, lon2):
        d = haversine_m(GeoPoint(lat1, lon1), GeoPoint(lat2, lon2))
        assert d >= 0.0


class TestBoundingBox:
    def test_charlotte_bbox_matches_paper(self):
        # Paper Section III-A: SW (35.6022, -79.0735), NE (36.0070, -78.2592).
        assert CHARLOTTE_BBOX.south == 35.6022
        assert CHARLOTTE_BBOX.west == -79.0735
        assert CHARLOTTE_BBOX.north == 36.0070
        assert CHARLOTTE_BBOX.east == -78.2592

    def test_contains(self):
        assert CHARLOTTE_BBOX.contains(GeoPoint(35.8, -78.7))
        assert not CHARLOTTE_BBOX.contains(GeoPoint(34.0, -78.7))

    def test_invalid_orientation(self):
        with pytest.raises(ValueError):
            BoundingBox(south=36.0, west=-79.0, north=35.0, east=-78.0)
        with pytest.raises(ValueError):
            BoundingBox(south=35.0, west=-78.0, north=36.0, east=-79.0)

    def test_center(self):
        c = CHARLOTTE_BBOX.center
        assert CHARLOTTE_BBOX.south < c.lat < CHARLOTTE_BBOX.north
        assert CHARLOTTE_BBOX.west < c.lon < CHARLOTTE_BBOX.east


class TestLocalProjection:
    def setup_method(self):
        self.proj = LocalProjection(CHARLOTTE_BBOX)

    def test_origin_is_south_west(self):
        x, y = self.proj.to_xy(CHARLOTTE_BBOX.south_west)
        assert x == pytest.approx(0.0, abs=1e-6)
        assert y == pytest.approx(0.0, abs=1e-6)

    def test_extent_positive_and_city_scale(self):
        assert 30_000 < self.proj.width_m < 120_000
        assert 30_000 < self.proj.height_m < 120_000

    def test_north_east_maps_to_extent(self):
        x, y = self.proj.to_xy(CHARLOTTE_BBOX.north_east)
        assert x == pytest.approx(self.proj.width_m)
        assert y == pytest.approx(self.proj.height_m)

    @given(st.floats(35.61, 36.0), st.floats(-79.07, -78.26))
    def test_round_trip(self, lat, lon):
        p = GeoPoint(lat, lon)
        x, y = self.proj.to_xy(p)
        back = self.proj.to_geo(x, y)
        assert back.lat == pytest.approx(lat, abs=1e-9)
        assert back.lon == pytest.approx(lon, abs=1e-9)

    def test_projection_agrees_with_haversine(self):
        a = GeoPoint(35.7, -78.9)
        b = GeoPoint(35.9, -78.5)
        planar = euclidean_m(self.proj.to_xy(a), self.proj.to_xy(b))
        great_circle = haversine_m(a, b)
        assert planar == pytest.approx(great_circle, rel=0.005)

    def test_contains_xy(self):
        assert self.proj.contains_xy(100.0, 100.0)
        assert not self.proj.contains_xy(-1.0, 100.0)
        assert not self.proj.contains_xy(100.0, self.proj.height_m + 1.0)


def test_euclidean_m():
    assert euclidean_m((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)
    assert math.isclose(euclidean_m((1.0, 1.0), (1.0, 1.0)), 0.0)

"""Tests for population generation, trips and route caching."""

import numpy as np
import pytest

from repro.geo.regions import charlotte_regions
from repro.mobility.person import Person
from repro.mobility.population import PopulationConfig, generate_population
from repro.mobility.routes import RouteCache
from repro.mobility.trips import PlannedTrip, TripModel, TripModelConfig, _dechain_conflicts
from repro.roadnet.generator import RoadNetworkConfig, generate_road_network

W, H = 70_000.0, 45_000.0


@pytest.fixture(scope="module")
def partition():
    return charlotte_regions(W, H)


@pytest.fixture(scope="module")
def network(partition):
    return generate_road_network(partition, RoadNetworkConfig(grid_cols=10, grid_rows=10))


@pytest.fixture(scope="module")
def population(network, partition):
    return generate_population(network, partition, PopulationConfig(size=300), seed=1)


class TestPerson:
    def test_anchors(self):
        p = Person(0, 1, 2, (3, 4), 3600.0)
        assert p.anchors == (1, 2, 3, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            Person(-1, 1, 2, (), 3600.0)
        with pytest.raises(ValueError):
            Person(0, 1, 2, (), 0.0)


class TestPopulation:
    def test_size_and_unique_ids(self, population):
        assert len(population) == 300
        assert len({p.person_id for p in population}) == 300

    def test_anchors_are_valid_landmarks(self, population, network):
        nodes = set(network.landmark_ids())
        for p in population:
            assert set(p.anchors) <= nodes

    def test_gps_interval_in_paper_range(self, population):
        for p in population:
            assert 1_800.0 <= p.gps_interval_s <= 7_200.0

    def test_deterministic(self, network, partition):
        cfg = PopulationConfig(size=50)
        a = generate_population(network, partition, cfg, seed=9)
        b = generate_population(network, partition, cfg, seed=9)
        assert [(p.home_node, p.work_node, p.poi_nodes) for p in a] == [
            (p.home_node, p.work_node, p.poi_nodes) for p in b
        ]

    def test_downtown_home_bias(self, network, partition):
        pop = generate_population(
            network, partition, PopulationConfig(size=2_000), seed=2
        )
        homes = np.array([network.landmark(p.home_node).xy for p in pop])
        regions = partition.region_of_many(homes)
        share_r3 = (regions == 3).mean()
        share_r6 = (regions == 6).mean()
        assert share_r3 > share_r6

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(size=0)
        with pytest.raises(ValueError):
            PopulationConfig(downtown_work_share=1.5)
        with pytest.raises(ValueError):
            PopulationConfig(gps_interval_range_s=(0.0, 100.0))


class TestTripModel:
    @staticmethod
    def _model(sev: float = 0.0) -> TripModel:
        return TripModel(lambda node, t: sev, TripModelConfig(suppression=1.0))

    def test_trips_chain(self, population):
        model = self._model()
        rng = np.random.default_rng(0)
        for person in population[:50]:
            trips = model.plan_day(person, 3, rng)
            cur = person.home_node
            last_t = -1.0
            for tr in trips:
                assert tr.src == cur
                assert tr.depart_s > last_t
                cur = tr.dst
                last_t = tr.depart_s

    def test_full_severity_suppresses_everything(self, population):
        model = self._model(sev=1.0)
        rng = np.random.default_rng(0)
        total = sum(len(model.plan_day(p, 0, rng)) for p in population[:100])
        assert total == 0

    def test_zero_severity_produces_trips(self, population):
        model = self._model(sev=0.0)
        rng = np.random.default_rng(0)
        total = sum(len(model.plan_day(p, 0, rng)) for p in population[:100])
        assert total > 100

    def test_trips_within_day(self, population):
        model = self._model()
        rng = np.random.default_rng(1)
        for person in population[:30]:
            for tr in model.plan_day(person, 5, rng):
                assert 5 * 86_400.0 <= tr.depart_s < 6 * 86_400.0

    def test_dechain_drops_mismatched(self):
        trips = [
            PlannedTrip(100.0, 1, 2),
            PlannedTrip(200.0, 9, 3),  # person is at 2, not 9 -> dropped
            PlannedTrip(300.0, 2, 1),
        ]
        out = _dechain_conflicts(trips)
        assert [(t.src, t.dst) for t in out] == [(1, 2), (2, 1)]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TripModelConfig(commute_probability=1.2)


class TestRouteCache:
    def test_cache_hits(self, network):
        cache = RouteCache(network)
        r1 = cache.route(0, 5)
        r2 = cache.route(0, 5)
        assert r1 is r2
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_distinct_keys(self, network):
        cache = RouteCache(network)
        cache.route(0, 5)
        cache.route(5, 0)
        assert len(cache) == 2

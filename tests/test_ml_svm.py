"""Tests for the from-scratch SVM, kernels, scaler and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.kernels import linear_kernel, polynomial_kernel, rbf_kernel, resolve_kernel
from repro.ml.metrics import ClassificationCounts, accuracy, confusion_counts, f1_score
from repro.ml.scaler import StandardScaler
from repro.ml.svm import SVC


class TestKernels:
    def test_linear_is_dot_product(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[1.0, 0.0]])
        np.testing.assert_allclose(linear_kernel(a, b), [[1.0], [3.0]])

    def test_rbf_diagonal_is_one(self):
        a = np.random.default_rng(0).normal(size=(10, 3))
        k = rbf_kernel(a, a, gamma=0.7)
        np.testing.assert_allclose(np.diag(k), 1.0)

    def test_rbf_symmetric_psd(self):
        a = np.random.default_rng(1).normal(size=(15, 3))
        k = rbf_kernel(a, a, gamma=0.5)
        np.testing.assert_allclose(k, k.T, atol=1e-12)
        eig = np.linalg.eigvalsh(k)
        assert eig.min() > -1e-9

    def test_rbf_decreases_with_distance(self):
        a = np.array([[0.0]])
        assert rbf_kernel(a, np.array([[1.0]]))[0, 0] > rbf_kernel(a, np.array([[2.0]]))[0, 0]

    def test_rbf_invalid_gamma(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.zeros((1, 1)), np.zeros((1, 1)), gamma=0.0)

    def test_polynomial(self):
        a, b = np.array([[1.0, 1.0]]), np.array([[1.0, 1.0]])
        assert polynomial_kernel(a, b, degree=2, coef0=0.0)[0, 0] == pytest.approx(4.0)
        with pytest.raises(ValueError):
            polynomial_kernel(a, b, degree=0)

    def test_resolve(self):
        assert resolve_kernel("linear") is linear_kernel
        k = resolve_kernel("rbf", gamma=2.0)
        assert k(np.zeros((1, 2)), np.zeros((1, 2)))[0, 0] == 1.0
        with pytest.raises(ValueError):
            resolve_kernel("sigmoid")

    def test_1d_inputs_promoted(self):
        assert linear_kernel(np.array([1.0, 0.0]), np.array([1.0, 0.0])).shape == (1, 1)


class TestScaler:
    def test_fit_transform_standardizes(self):
        rng = np.random.default_rng(2)
        x = rng.normal(5.0, 3.0, size=(500, 4))
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_round_trip(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(50, 2))
        sc = StandardScaler().fit(x)
        np.testing.assert_allclose(sc.inverse_transform(sc.transform(x)), x, atol=1e-12)

    def test_constant_feature_safe(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.isfinite(z).all()
        np.testing.assert_allclose(z[:, 0], 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_bad_input(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))


class TestMetrics:
    def test_counts(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1, 1])
        c = confusion_counts(y_true, y_pred)
        assert (c.tp, c.fp, c.tn, c.fn) == (2, 1, 1, 1)
        assert c.accuracy == pytest.approx(3 / 5)
        assert c.precision == pytest.approx(2 / 3)
        assert c.recall == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_degenerate_denominators(self):
        c = ClassificationCounts(tp=0, fp=0, tn=5, fn=0)
        assert c.precision == 0.0
        assert c.recall == 0.0
        assert c.f1 == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            confusion_counts(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError):
            confusion_counts(np.array([0, 2]), np.array([0, 1]))

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)), min_size=1, max_size=60))
    def test_accuracy_matches_definition(self, pairs):
        y_true = np.array([a for a, _ in pairs])
        y_pred = np.array([b for _, b in pairs])
        assert accuracy(y_true, y_pred) == pytest.approx((y_true == y_pred).mean())


class TestSVC:
    def test_linearly_separable(self):
        rng = np.random.default_rng(4)
        x0 = rng.normal([-2, -2], 0.5, size=(60, 2))
        x1 = rng.normal([2, 2], 0.5, size=(60, 2))
        x = np.vstack([x0, x1])
        y = np.array([0] * 60 + [1] * 60)
        clf = SVC(kernel="linear", c=1.0).fit(x, y)
        assert accuracy(y, clf.predict(x)) > 0.98

    def test_xor_needs_rbf(self):
        """XOR is not linearly separable; the RBF kernel solves it."""
        rng = np.random.default_rng(5)
        centers = np.array([[1, 1], [-1, -1], [1, -1], [-1, 1]], dtype=float)
        labels = np.array([1, 1, 0, 0])
        x = np.vstack([rng.normal(c, 0.2, size=(40, 2)) for c in centers])
        y = np.repeat(labels, 40)
        rbf = SVC(kernel="rbf", gamma=1.0, c=5.0).fit(x, y)
        assert accuracy(y, rbf.predict(x)) > 0.95
        lin = SVC(kernel="linear", c=5.0).fit(x, y)
        assert accuracy(y, lin.predict(x)) < 0.8

    def test_decision_function_sign_matches_predict(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(80, 3))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        clf = SVC(kernel="linear").fit(x, y)
        scores = clf.decision_function(x)
        np.testing.assert_array_equal(clf.predict(x), (scores > 0).astype(int))

    def test_single_sample_predict(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(40, 2))
        y = (x[:, 0] > 0).astype(int)
        clf = SVC(kernel="linear").fit(x, y)
        assert clf.predict(np.array([5.0, 0.0]))[0] == 1
        assert clf.predict(np.array([-5.0, 0.0]))[0] == 0

    def test_support_vectors_subset(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(100, 2))
        y = (x[:, 0] > 0).astype(int)
        clf = SVC(kernel="linear").fit(x, y)
        assert 0 < clf.num_support_vectors <= 100

    def test_generalizes_held_out(self):
        """Train/test split on a noisy logistic ground truth — the setting
        of the rescue predictor."""
        rng = np.random.default_rng(9)
        x = rng.normal(size=(400, 3))
        logits = 1.5 * x[:, 0] - 2.0 * x[:, 1] + 0.5 * x[:, 2]
        y = (logits + rng.normal(0, 0.5, 400) > 0).astype(int)
        clf = SVC(kernel="rbf", gamma=0.5, c=2.0).fit(x[:300], y[:300])
        assert accuracy(y[300:], clf.predict(x[300:])) > 0.85

    def test_validation(self):
        with pytest.raises(ValueError):
            SVC(c=0.0)
        clf = SVC()
        with pytest.raises(ValueError):
            clf.fit(np.zeros((4, 2)), np.zeros(4))  # single class
        with pytest.raises(ValueError):
            clf.fit(np.zeros((4, 2)), np.array([0, 1, 2, 1]))  # bad labels
        with pytest.raises(ValueError):
            clf.fit(np.zeros(4), np.array([0, 1, 0, 1]))  # 1-D x
        with pytest.raises(RuntimeError):
            clf.predict(np.zeros((2, 2)))  # unfitted

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(10)
        x = rng.normal(size=(60, 2))
        y = (x[:, 0] > 0).astype(int)
        a = SVC(kernel="rbf", seed=3).fit(x, y)
        b = SVC(kernel="rbf", seed=3).fit(x, y)
        np.testing.assert_allclose(a.decision_function(x), b.decision_function(x))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_separable_always_learned(self, seed):
        rng = np.random.default_rng(seed)
        x = np.vstack(
            [rng.normal([-3, 0], 0.4, size=(25, 2)), rng.normal([3, 0], 0.4, size=(25, 2))]
        )
        y = np.array([0] * 25 + [1] * 25)
        clf = SVC(kernel="linear").fit(x, y)
        assert accuracy(y, clf.predict(x)) == 1.0

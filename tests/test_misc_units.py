"""Assorted small-unit tests: dispatcher defaults, observation helpers,
flood monotonicity, route-cache weights."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dispatch.base import (
    DispatchObservation,
    Dispatcher,
    TeamView,
    command_depot,
)
from repro.geo.flood import FloodModel
from repro.geo.regions import charlotte_regions
from repro.geo.terrain import TerrainField
from repro.mobility.routes import RouteCache
from repro.roadnet.generator import RoadNetworkConfig, generate_road_network

W, H = 70_000.0, 45_000.0


@pytest.fixture(scope="module")
def partition():
    return charlotte_regions(W, H)


@pytest.fixture(scope="module")
def network(partition):
    return generate_road_network(partition, RoadNetworkConfig(grid_cols=7, grid_rows=7))


class PassiveDispatcher(Dispatcher):
    name = "Passive"

    def dispatch(self, obs):
        return {}


class TestDispatcherDefaults:
    def test_default_attributes(self):
        d = PassiveDispatcher()
        assert d.computation_delay_s == 0.0
        assert d.flood_aware is True

    def test_hooks_are_noops(self):
        d = PassiveDispatcher()
        d.observe_requests([])  # must not raise
        d.on_cycle_end(None)

    def test_abstract_base(self):
        with pytest.raises(TypeError):
            Dispatcher()  # type: ignore[abstract]


class TestDispatchObservation:
    def test_assignable_teams_filter(self, network, partition):
        teams = [
            TeamView(0, 0, "idle", 5, True),
            TeamView(1, 0, "to_hospital", 2, False),
            TeamView(2, 0, "to_segment", 5, True),
        ]
        obs = DispatchObservation(
            t_s=0.0, teams=teams, pending={}, closed=frozenset(),
            network=network, hospitals=[],
        )
        assert [t.team_id for t in obs.assignable_teams()] == [0, 2]

    def test_command_depot_identity(self):
        assert command_depot().segment_id is None


class TestFloodMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_waterline_monotone_in_severity(self, s1, s2):
        part = charlotte_regions(W, H)
        terr = TerrainField(part)
        level = {"v": 0.0}
        flood = FloodModel(terr, lambda r, t: level["v"], grid_resolution=20)
        lo, hi = sorted((s1, s2))
        level["v"] = lo
        w_lo = flood.waterline_m(3, 0.0)
        level["v"] = hi
        w_hi = flood.waterline_m(3, 0.0)
        assert w_hi >= w_lo - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(st.floats(0.0, 1.0))
    def test_flooded_fraction_bounded(self, sev):
        part = charlotte_regions(W, H)
        terr = TerrainField(part)
        flood = FloodModel(terr, lambda r, t: sev, grid_resolution=20)
        for rid in part.region_ids:
            frac = flood.flooded_fraction(rid, 0.0)
            assert 0.0 <= frac <= flood.max_flood_fraction + 0.06


class TestRouteCacheWeights:
    def test_length_weighted_cache(self, network):
        by_time = RouteCache(network, weight="time")
        by_length = RouteCache(network, weight="length")
        a, b = 0, network.num_landmarks - 1
        rt, rl = by_time.route(a, b), by_length.route(a, b)
        assert rt is not None and rl is not None
        # The length-optimal route is never longer than the time-optimal one.
        assert rl.length_m <= rt.length_m + 1e-6
        # And the time-optimal route is never slower.
        assert rt.travel_time_s <= rl.travel_time_s + 1e-6

    def test_none_routes_cached(self, network):
        cache = RouteCache(network)
        r1 = cache.route(0, 0)
        assert r1 is not None and r1.is_trivial
        assert cache.route(0, 0) is r1

"""Edge-case tests for simulation metrics and result containers."""

import math

import numpy as np
import pytest

from repro.sim.engine import (
    DeliveryEvent,
    PickupEvent,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.metrics import SimulationMetrics
from repro.sim.requests import RescueRequest


def make_result(pickups=(), deliveries=(), requests=(), num_teams=4, hours=24):
    cfg = SimulationConfig(t0_s=0.0, t1_s=hours * 3_600.0, num_teams=num_teams)
    return SimulationResult(
        config=cfg,
        dispatcher_name="test",
        requests=list(requests),
        pickups=list(pickups),
        deliveries=list(deliveries),
    )


class TestEmptyResult:
    def test_all_metrics_well_defined(self):
        m = SimulationMetrics(make_result())
        assert m.timely_served_per_hour().sum() == 0
        assert m.served_per_hour().sum() == 0
        assert m.served_per_team().shape == (4,)
        assert m.driving_delays().size == 0
        assert m.timeliness_values().size == 0
        assert m.total_timely_served == 0
        assert m.service_rate == 0.0
        assert m.delivered_count() == 0
        assert math.isnan(m.mean_request_to_delivery_s())
        assert np.isnan(m.avg_delay_per_hour()).all()
        assert np.isnan(m.serving_teams_per_hour()).all()


class TestBinning:
    def test_hour_boundaries(self):
        pickups = [
            PickupEvent(0, 0, 0.0, 10.0, 10.0),
            PickupEvent(1, 1, 3_599.9, 20.0, 20.0),
            PickupEvent(2, 1, 3_600.0, 30.0, 30.0),
            PickupEvent(3, 2, 23 * 3_600.0 + 1, 40.0, 5_000.0),
        ]
        reqs = [RescueRequest(i, i, 0.0, 0, 0) for i in range(4)]
        m = SimulationMetrics(make_result(pickups=pickups, requests=reqs))
        per_hour = m.served_per_hour()
        assert per_hour[0] == 2
        assert per_hour[1] == 1
        assert per_hour[23] == 1
        # Timely bound (1800 s default) excludes the 5000 s pickup.
        assert m.total_timely_served == 3
        assert m.timely_served_per_hour()[23] == 0

    def test_out_of_window_times_clamped(self):
        pickups = [PickupEvent(0, 0, 10_000_000.0, 1.0, 1.0)]
        reqs = [RescueRequest(0, 0, 0.0, 0, 0)]
        m = SimulationMetrics(make_result(pickups=pickups, requests=reqs))
        assert m.served_per_hour().sum() == 1  # clamped into the last hour

    def test_avg_delay_ignores_empty_hours(self):
        pickups = [
            PickupEvent(0, 0, 1_800.0, 100.0, 100.0),
            PickupEvent(1, 0, 1_900.0, 300.0, 300.0),
        ]
        reqs = [RescueRequest(i, i, 0.0, 0, 0) for i in range(2)]
        m = SimulationMetrics(make_result(pickups=pickups, requests=reqs))
        delays = m.avg_delay_per_hour()
        assert delays[0] == pytest.approx(200.0)
        assert np.isnan(delays[5])


class TestDeliveryStats:
    def test_mean_request_to_delivery(self):
        reqs = [RescueRequest(0, 0, 100.0, 0, 0), RescueRequest(1, 1, 200.0, 0, 0)]
        deliveries = [
            DeliveryEvent(0, 0, 1_100.0, 5),
            DeliveryEvent(1, 0, 2_200.0, 5),
        ]
        m = SimulationMetrics(make_result(deliveries=deliveries, requests=reqs))
        assert m.mean_request_to_delivery_s() == pytest.approx(1_500.0)

    def test_unserved_accounting(self):
        reqs = [RescueRequest(i, i, 0.0, 0, 0) for i in range(5)]
        pickups = [PickupEvent(0, 0, 10.0, 1.0, 1.0)]
        result = make_result(pickups=pickups, requests=reqs)
        assert result.num_served == 1
        assert result.num_unserved == 4
        m = SimulationMetrics(result)
        assert m.service_rate == pytest.approx(0.2)

"""Tests for the 7-region partition and terrain/flood models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo.flood import FloodModel
from repro.geo.regions import (
    CHARLOTTE_REGION_PROFILES,
    RegionPartition,
    RegionProfile,
    charlotte_regions,
)
from repro.geo.terrain import TerrainField

W, H = 70_000.0, 45_000.0


@pytest.fixture(scope="module")
def partition():
    return charlotte_regions(W, H)


@pytest.fixture(scope="module")
def terrain(partition):
    return TerrainField(partition)


class TestRegionProfiles:
    def test_seven_regions(self):
        assert len(CHARLOTTE_REGION_PROFILES) == 7
        assert [p.region_id for p in CHARLOTTE_REGION_PROFILES] == list(range(1, 8))

    def test_paper_fig1_values_r1_r2(self):
        r1 = CHARLOTTE_REGION_PROFILES[0]
        r2 = CHARLOTTE_REGION_PROFILES[1]
        assert (r1.precipitation_mm, r1.wind_mph, r1.altitude_m) == (127.0, 61.0, 232.86)
        assert (r2.precipitation_mm, r2.wind_mph, r2.altitude_m) == (152.0, 72.0, 195.07)

    def test_downtown_most_severe(self):
        profiles = {p.region_id: p for p in CHARLOTTE_REGION_PROFILES}
        assert profiles[3].severity == max(p.severity for p in CHARLOTTE_REGION_PROFILES)

    def test_r1_least_severe(self):
        profiles = {p.region_id: p for p in CHARLOTTE_REGION_PROFILES}
        assert profiles[1].severity == min(p.severity for p in CHARLOTTE_REGION_PROFILES)

    def test_severity_in_unit_interval(self):
        for p in CHARLOTTE_REGION_PROFILES:
            assert 0.0 <= p.severity <= 1.0

    def test_invalid_region_id(self):
        with pytest.raises(ValueError):
            RegionProfile(0, "bad", 100.0, 50.0, 200.0, (0.5, 0.5))

    def test_invalid_seed(self):
        with pytest.raises(ValueError):
            RegionProfile(1, "bad", 100.0, 50.0, 200.0, (1.5, 0.5))


class TestRegionPartition:
    def test_region_of_seed_is_itself(self, partition):
        for rid in partition.region_ids:
            sx, sy = partition.seed_xy(rid)
            assert partition.region_of(sx, sy) == rid

    def test_center_is_downtown(self, partition):
        assert partition.region_of(W / 2, H / 2) == 3

    def test_region_of_many_matches_scalar(self, partition):
        rng = np.random.default_rng(3)
        xy = rng.uniform([0, 0], [W, H], size=(200, 2))
        vec = partition.region_of_many(xy)
        for (x, y), r in zip(xy, vec):
            assert partition.region_of(x, y) == r

    @given(st.floats(0, W), st.floats(0, H))
    def test_region_always_valid(self, x, y):
        part = charlotte_regions(W, H)
        assert part.region_of(x, y) in part.region_ids

    def test_unknown_region_raises(self, partition):
        with pytest.raises(KeyError):
            partition.profile(99)

    def test_duplicate_ids_rejected(self):
        p = CHARLOTTE_REGION_PROFILES[0]
        with pytest.raises(ValueError):
            RegionPartition([p, p], W, H)

    def test_bad_shape_rejected(self, partition):
        with pytest.raises(ValueError):
            partition.region_of_many(np.zeros(5))


class TestTerrain:
    def test_region_altitudes_track_profiles(self, partition, terrain):
        """Sampled region-average altitudes stay close to the Fig-1 profile
        values (IDW boundary blending pulls extremes toward the mean, so a
        tolerance rather than exact ordering) and the extreme regions keep
        their ranks: R1 highest, R3 lowest."""
        rng = np.random.default_rng(5)
        xy = rng.uniform([0, 0], [W, H], size=(30_000, 2))
        regions = partition.region_of_many(xy)
        alts = terrain.altitude_many(xy)
        means = {r: alts[regions == r].mean() for r in partition.region_ids}
        for r, mean in means.items():
            assert abs(mean - partition.profile(r).altitude_m) < 18.0
        assert max(means, key=means.get) == 1
        assert min(means, key=means.get) == 3

    def test_scalar_matches_vector(self, terrain):
        assert terrain.altitude(1000.0, 2000.0) == pytest.approx(
            float(terrain.altitude_many(np.array([[1000.0, 2000.0]]))[0])
        )

    def test_altitudes_plausible(self, terrain):
        rng = np.random.default_rng(6)
        xy = rng.uniform([0, 0], [W, H], size=(5_000, 2))
        alts = terrain.altitude_many(xy)
        assert alts.min() > 150.0
        assert alts.max() < 260.0

    def test_bad_shape_rejected(self, terrain):
        with pytest.raises(ValueError):
            terrain.altitude_many(np.zeros((3, 3)))

    def test_invalid_wavelength(self, partition):
        with pytest.raises(ValueError):
            TerrainField(partition, relief_wavelength_m=0.0)


class TestFloodModel:
    @pytest.fixture(scope="class")
    def flood(self, partition, terrain):
        # Severity ramps from 0 to peak at t=10 days then stays.
        def severity(region_id, t):
            peak = partition.profile(region_id).severity
            return peak * min(1.0, t / (10 * 86_400.0))

        return FloodModel(terrain, severity)

    def test_nothing_flooded_at_t0(self, partition, flood):
        rng = np.random.default_rng(7)
        xy = rng.uniform([0, 0], [W, H], size=(500, 2))
        assert not flood.is_flooded_many(xy, 0.0).any()

    def test_flooding_monotone_in_time(self, partition, flood):
        for rid in partition.region_ids:
            f1 = flood.flooded_fraction(rid, 3 * 86_400.0)
            f2 = flood.flooded_fraction(rid, 10 * 86_400.0)
            assert f2 >= f1

    def test_downtown_floods_most(self, partition, flood):
        t = 10 * 86_400.0
        fracs = {r: flood.flooded_fraction(r, t) for r in partition.region_ids}
        assert fracs[3] == max(fracs.values())
        assert fracs[3] > 0.1

    def test_flooded_fraction_bounded_by_max(self, partition, flood):
        t = 20 * 86_400.0
        for rid in partition.region_ids:
            assert flood.flooded_fraction(rid, t) <= flood.max_flood_fraction + 0.05

    def test_low_points_flood_first(self, partition, terrain, flood):
        """Within a flooding region, flooded points are lower than dry ones."""
        t = 10 * 86_400.0
        rng = np.random.default_rng(8)
        xy = rng.uniform([0, 0], [W, H], size=(4_000, 2))
        regions = partition.region_of_many(xy)
        in_r3 = xy[regions == 3]
        flooded = flood.is_flooded_many(in_r3, t)
        if flooded.any() and (~flooded).any():
            alts = terrain.altitude_many(in_r3)
            assert alts[flooded].max() <= alts[~flooded].min() + 1e-6

    def test_scalar_matches_vector(self, flood):
        t = 10 * 86_400.0
        rng = np.random.default_rng(9)
        for _ in range(20):
            x, y = rng.uniform(0, W), rng.uniform(0, H)
            assert flood.is_flooded(x, y, t) == bool(
                flood.is_flooded_many(np.array([[x, y]]), t)[0]
            )

    def test_invalid_params(self, terrain):
        with pytest.raises(ValueError):
            FloodModel(terrain, lambda r, t: 0.0, max_flood_fraction=0.0)
        with pytest.raises(ValueError):
            FloodModel(terrain, lambda r, t: 0.0, grid_resolution=2)

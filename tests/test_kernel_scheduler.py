"""Property suite for the kernel's deterministic event scheduler.

Randomized schedule/cancel/reschedule/pop sequences are driven against a
transparent sorted-list oracle that mirrors the :class:`EventHeap`
contract — pop order is ``(time, kind, team_id, insertion sequence)``,
cancelled events never surface, every live event pops exactly once.
Two hundred independent sequences (20 seeds x 10 sequences) cover the
tombstone machinery from every angle the engine uses it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.kernel import Event, EventHeap, EventKind

_KINDS = list(EventKind)


class _Oracle:
    """Reference semantics: a plain list, sorted on demand."""

    def __init__(self) -> None:
        self._live: dict[int, tuple[float, int, int, int]] = {}
        self._seq = 0
        self._token = 0

    def schedule(self, time: float, kind: EventKind, team_id: int) -> int:
        token = self._token
        self._token += 1
        self._live[token] = (time, int(kind), team_id, self._seq)
        self._seq += 1
        return token

    def cancel(self, token: int) -> bool:
        return self._live.pop(token, None) is not None

    def reschedule(self, token: int, time: float) -> int:
        _, kind, team_id, _ = self._live.pop(token)
        return self.schedule(time, EventKind(kind), team_id)

    def pop(self) -> Event | None:
        if not self._live:
            return None
        token = min(self._live, key=self._live.__getitem__)
        time, kind, team_id, _ = self._live.pop(token)
        return Event(time, EventKind(kind), team_id)

    def __len__(self) -> int:
        return len(self._live)


def _drive(rng: np.random.Generator, ops: int) -> None:
    heap, oracle = EventHeap(), _Oracle()
    pairs: list[tuple[int, int]] = []  # (heap token, oracle token), live only
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.45 or not pairs:
            time = float(rng.integers(0, 10))  # small grid forces ties
            kind = _KINDS[int(rng.integers(len(_KINDS)))]
            team_id = int(rng.integers(-1, 4))
            pairs.append(
                (heap.schedule(time, kind, team_id),
                 oracle.schedule(time, kind, team_id))
            )
        elif roll < 0.60:
            ht, ot = pairs.pop(int(rng.integers(len(pairs))))
            assert heap.cancel(ht) is True
            assert oracle.cancel(ot) is True
            assert heap.cancel(ht) is False  # tokens are single-use
        elif roll < 0.75:
            i = int(rng.integers(len(pairs)))
            ht, ot = pairs[i]
            time = float(rng.integers(0, 10))
            pairs[i] = (heap.reschedule(ht, time), oracle.reschedule(ot, time))
            with pytest.raises(KeyError):
                heap.reschedule(ht, time)  # the old token is dead
        else:
            expected = oracle.pop()
            peeked = heap.peek()
            got = heap.pop()
            assert got == expected
            assert peeked == expected
            if got is not None:
                pairs = [(ht, ot) for ht, ot in pairs if ot in oracle._live]
        assert len(heap) == len(oracle)
    # Drain: both must empty in exactly the same order, never losing or
    # duplicating a live event, with non-decreasing times throughout.
    drained: list[Event] = []
    expected_live = len(oracle)
    while True:
        expected = oracle.pop()
        got = heap.pop()
        assert got == expected
        if got is None:
            break
        drained.append(got)
    assert len(heap) == 0
    assert len(drained) == expected_live
    assert all(a.time <= b.time for a, b in zip(drained, drained[1:]))


@pytest.mark.parametrize("seed", range(20))
def test_randomized_sequences_match_oracle(seed):
    """10 sequences per seed: 200 randomized scenarios in total."""
    rng = np.random.default_rng(seed)
    for _ in range(10):
        _drive(rng, ops=int(rng.integers(20, 80)))


class TestOrderingContract:
    def test_tie_break_is_time_kind_team_then_insertion(self):
        heap = EventHeap()
        heap.schedule(1.0, EventKind.ARRIVAL, 2)
        heap.schedule(1.0, EventKind.ARRIVAL, 1)
        heap.schedule(1.0, EventKind.DISPATCH_CYCLE, 9)
        heap.schedule(0.5, EventKind.REPAIR, 5)
        heap.schedule(1.0, EventKind.ARRIVAL, 1)  # same key: insertion order
        assert heap.pop() == Event(0.5, EventKind.REPAIR, 5)
        assert heap.pop() == Event(1.0, EventKind.DISPATCH_CYCLE, 9)
        assert heap.pop() == Event(1.0, EventKind.ARRIVAL, 1)
        assert heap.pop() == Event(1.0, EventKind.ARRIVAL, 1)
        assert heap.pop() == Event(1.0, EventKind.ARRIVAL, 2)
        assert heap.pop() is None

    def test_kind_order_mirrors_seed_phase_order(self):
        """Within a tick: activation, dispatch, flood/closure, command
        application, then team events — the seed tick body's phase order."""
        values = [int(k) for k in _KINDS]
        assert values == sorted(values)
        assert EventKind.REQUEST_ACTIVATION < EventKind.DISPATCH_CYCLE
        assert EventKind.DISPATCH_CYCLE < EventKind.ACTION_APPLY
        assert EventKind.ACTION_APPLY < EventKind.BREAKDOWN
        assert EventKind.REPAIR < EventKind.ARRIVAL

    def test_popped_counter_counts_live_pops_only(self):
        heap = EventHeap()
        t1 = heap.schedule(1.0, EventKind.ARRIVAL, 0)
        heap.schedule(2.0, EventKind.ARRIVAL, 1)
        heap.cancel(t1)
        assert heap.pop() == Event(2.0, EventKind.ARRIVAL, 1)
        assert heap.pop() is None
        assert heap.popped == 1

    def test_nan_time_rejected(self):
        heap = EventHeap()
        with pytest.raises(ValueError):
            heap.schedule(float("nan"), EventKind.ARRIVAL, 0)

    def test_cancelled_event_never_surfaces_via_peek(self):
        heap = EventHeap()
        token = heap.schedule(1.0, EventKind.ARRIVAL, 0)
        heap.schedule(2.0, EventKind.REPAIR, 1)
        assert heap.peek() == Event(1.0, EventKind.ARRIVAL, 0)
        heap.cancel(token)
        assert heap.peek() == Event(2.0, EventKind.REPAIR, 1)
        assert len(heap) == 1

"""Property-style tests for the order-insensitive merge reducers.

The claim under test: the merged campaign is a pure function of the
*set* of episode results.  Random completion orders, different worker
counts, and mid-run worker deaths must all produce byte-equal replay
buffers and eval tables against the serial reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.runner import RetryPolicy
from repro.faults import WorkerCrashFault, WorkerFaultInjector
from repro.faults.models import WorkerFaultProfile
from repro.ml.replay import ReplayBuffer, Transition
from repro.rollouts import (
    DuplicateEpisodeError,
    EpisodeSpec,
    RolloutConfig,
    RolloutExecutor,
    SyntheticTask,
    drain_transitions,
    merge_results,
    run_rollouts_serial,
)

TASK = SyntheticTask(steps=4, state_dim=3)
SPECS = [EpisodeSpec(episode_id=i, kind=TASK.kind, seed=9) for i in range(10)]


def fast_config(num_workers):
    return RolloutConfig(
        num_workers=num_workers,
        heartbeat_timeout_s=3.0,
        beat_interval_s=0.05,
        poll_interval_s=0.005,
        max_worker_restarts=64,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.05),
    )


@pytest.fixture(scope="module")
def serial():
    return run_rollouts_serial(TASK, SPECS)


def buffer_state(merged, capacity=64):
    buffer = ReplayBuffer(capacity=capacity, state_dim=TASK.state_dim)
    merged.feed_replay(buffer)
    return buffer.get_state()


def states_equal(a, b):
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


# -- completion-order scrambling (pure, no processes) --------------------------


class TestOrderInsensitivity:
    def test_any_completion_order_merges_identically(self, serial):
        rng = np.random.default_rng(0)
        results = list(serial.merged.results)
        reference = serial.merged.fingerprint()
        for _ in range(25):
            shuffled = [results[i] for i in rng.permutation(len(results))]
            assert merge_results(shuffled).fingerprint() == reference

    def test_scrambled_merges_feed_identical_replay_buffers(self, serial):
        rng = np.random.default_rng(1)
        results = list(serial.merged.results)
        reference = buffer_state(serial.merged)
        for _ in range(10):
            shuffled = [results[i] for i in rng.permutation(len(results))]
            assert states_equal(buffer_state(merge_results(shuffled)), reference)

    def test_scrambled_merges_produce_identical_eval_tables(self, serial):
        rng = np.random.default_rng(2)
        results = list(serial.merged.results)
        reference = serial.merged.eval_table()
        for _ in range(10):
            shuffled = [results[i] for i in rng.permutation(len(results))]
            assert merge_results(shuffled).eval_table() == reference

    def test_duplicates_are_rejected_loudly(self, serial):
        results = list(serial.merged.results)
        with pytest.raises(DuplicateEpisodeError):
            merge_results(results + [results[0]])

    def test_restrict_keeps_sorted_subset(self, serial):
        sub = serial.merged.restrict([7, 1, 4])
        assert sub.episode_ids == (1, 4, 7)
        assert sub.fingerprint() == serial.merged.restrict({1, 4, 7}).fingerprint()


# -- real parallel runs: worker counts and injected deaths ---------------------


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_worker_count_never_changes_the_bytes(self, serial, num_workers):
        report = RolloutExecutor(
            TASK, config=fast_config(num_workers), seed=9
        ).run(SPECS)
        assert report.zero_lost
        assert report.merged.fingerprint() == serial.merged.fingerprint()
        assert states_equal(buffer_state(report.merged), buffer_state(serial.merged))
        assert report.merged.eval_table() == serial.merged.eval_table()

    @pytest.mark.parametrize("chaos_seed", [1, 3])
    def test_injected_deaths_never_change_the_bytes(self, serial, chaos_seed):
        """Workers really die mid-episode; retried attempts must slot
        back into the exact same merged bytes."""
        profile = WorkerFaultProfile(
            name="crashy",
            crash=WorkerCrashFault(
                p_affected=0.5, max_crashes=1, crash_after_beats=2
            ),
        )
        report = RolloutExecutor(
            TASK,
            config=fast_config(2),
            seed=9,
            fault_injector=WorkerFaultInjector(profile, seed=chaos_seed),
        ).run(SPECS)
        assert report.worker_deaths > 0, "chaos seed must kill at least once"
        assert report.zero_lost
        assert not report.quarantined_ids
        assert report.merged.fingerprint() == serial.merged.fingerprint()
        assert states_equal(buffer_state(report.merged), buffer_state(serial.merged))
        assert report.merged.eval_table() == serial.merged.eval_table()


# -- replay-buffer ring arithmetic ---------------------------------------------


class TestDrainTransitions:
    def make_transition(self, rng, state_dim=3):
        return Transition(
            state=rng.random(state_dim),
            action=int(rng.integers(0, 4)),
            reward=float(rng.random()),
            next_state=rng.random(state_dim),
            done=bool(rng.random() < 0.2),
        )

    @pytest.mark.parametrize("n_pushed", [0, 5, 8, 13])
    def test_round_trip_preserves_insertion_order(self, n_pushed):
        """Drain must recover insertion order even after the ring wraps
        (capacity 8, up to 13 pushes)."""
        rng = np.random.default_rng(42)
        buffer = ReplayBuffer(capacity=8, state_dim=3)
        pushed = [self.make_transition(rng) for _ in range(n_pushed)]
        for tr in pushed:
            buffer.push(tr)
        drained = drain_transitions(buffer)
        expected = pushed[-8:]
        assert len(drained) == len(expected)
        for row, tr in zip(drained, expected):
            state, action, reward, next_state, done = row
            assert np.allclose(state, tr.state)
            assert action == tr.action
            assert reward == tr.reward
            assert np.allclose(next_state, tr.next_state)
            assert done == tr.done

    def test_drained_rows_are_plain_json_types(self):
        rng = np.random.default_rng(0)
        buffer = ReplayBuffer(capacity=4, state_dim=3)
        buffer.push(self.make_transition(rng))
        [[state, action, reward, next_state, done]] = drain_transitions(buffer)
        assert all(type(x) is float for x in state + next_state)
        assert type(action) is int
        assert type(reward) is float
        assert type(done) is bool


# -- eval-table semantics ------------------------------------------------------


class TestEvalTable:
    def test_identity_fields_stay_out_of_aggregates(self, serial):
        table = serial.merged.eval_table()
        assert table["count"] == len(SPECS)
        for aggregate in (table["totals"], table["means"]):
            assert "episode_id" not in aggregate
            assert "sim_seed" not in aggregate
        assert {row["episode_id"] for row in table["episodes"]} == set(
            range(len(SPECS))
        )

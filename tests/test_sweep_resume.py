"""Resumable experiment sweeps: per-cell durable results.

A killed sweep resumed against the same :class:`SweepStore` re-runs only
the uncompleted cells and yields the same table as an uninterrupted run;
torn or bit-flipped cell files are silently discarded and re-run.

The sweeps here use only the cheap heuristic methods so no MobiRescue
training happens.
"""

import json

import pytest

from repro.eval.experiments import (
    ComparisonSweep,
    ComparisonSweepConfig,
    SweepStore,
    format_comparison_cells,
)
from repro.eval.harness import HarnessConfig
from repro.eval.robustness import (
    RobustnessConfig,
    RobustnessSweep,
    format_degradation_table,
)

CHEAP = ("Schedule", "Nearest")
HARNESS = HarnessConfig(num_teams=10)


class TestSweepStore:
    def test_roundtrip(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put("method=A,seed=0", {"served": 3, "rate": 0.5})
        assert store.get("method=A,seed=0") == {"served": 3, "rate": 0.5}
        assert len(store) == 1

    def test_missing_key(self, tmp_path):
        assert SweepStore(tmp_path).get("method=A,seed=0") is None

    def test_torn_file_discarded(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put("k", {"a": 1})
        store._path("k").write_text('{"format": "repro-sweep-cell", "key"')
        assert store.get("k") is None

    def test_tampered_payload_discarded(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put("k", {"served": 3})
        wrapper = json.loads(store._path("k").read_text())
        wrapper["cell"]["served"] = 9999
        store._path("k").write_text(json.dumps(wrapper))
        assert store.get("k") is None

    def test_key_mismatch_discarded(self, tmp_path):
        store = SweepStore(tmp_path)
        store.put("method=A,seed=0", {"a": 1})
        # A renamed/copied file must not satisfy a different key.
        other = store._path("method=B,seed=0")
        other.write_bytes(store._path("method=A,seed=0").read_bytes())
        assert store.get("method=B,seed=0") is None

    def test_foreign_format_discarded(self, tmp_path):
        store = SweepStore(tmp_path)
        store._path("k").write_text(json.dumps({"format": "other", "cell": {}}))
        assert store.get("k") is None


@pytest.fixture(scope="module")
def datasets(florence_small, michael_small):
    return florence_small, michael_small


@pytest.fixture(scope="module")
def comparison_baseline(datasets):
    """An uninterrupted sweep, no store — the reference table."""
    florence, michael = datasets
    cfg = ComparisonSweepConfig(methods=CHEAP, seeds=(0,), harness=HARNESS)
    return ComparisonSweep(florence, michael, cfg).run()


class TestComparisonSweepResume:
    def test_interrupted_resume_matches_uninterrupted(
        self, datasets, comparison_baseline, tmp_path
    ):
        florence, michael = datasets
        cfg = ComparisonSweepConfig(methods=CHEAP, seeds=(0,), harness=HARNESS)
        store = SweepStore(tmp_path)

        # "Kill" the sweep after the first cell by running only one method.
        first = ComparisonSweepConfig(methods=CHEAP[:1], seeds=(0,), harness=HARNESS)
        ComparisonSweep(florence, michael, first, store).run()
        assert len(store) == 1

        ran: list[str] = []
        cells = ComparisonSweep(florence, michael, cfg, store).run(progress=ran.append)
        assert cells == comparison_baseline
        assert any("reusing stored cell" in line for line in ran)
        assert sum("running" in line for line in ran) == 1  # only the missing cell

    def test_fully_stored_sweep_runs_nothing(
        self, datasets, comparison_baseline, tmp_path
    ):
        florence, michael = datasets
        cfg = ComparisonSweepConfig(methods=CHEAP, seeds=(0,), harness=HARNESS)
        store = SweepStore(tmp_path)
        ComparisonSweep(florence, michael, cfg, store).run()

        ran: list[str] = []
        cells = ComparisonSweep(florence, michael, cfg, store).run(progress=ran.append)
        assert cells == comparison_baseline
        assert all("reusing" in line for line in ran)

    def test_corrupt_cell_is_rerun(self, datasets, comparison_baseline, tmp_path):
        florence, michael = datasets
        cfg = ComparisonSweepConfig(methods=CHEAP, seeds=(0,), harness=HARNESS)
        store = SweepStore(tmp_path)
        ComparisonSweep(florence, michael, cfg, store).run()

        path = store._path(f"method={CHEAP[0]},seed=0")
        path.write_text(path.read_text()[:-20])

        cells = ComparisonSweep(florence, michael, cfg, store).run()
        assert cells == comparison_baseline
        assert store.get(f"method={CHEAP[0]},seed=0") is not None  # re-committed

    def test_table_formats_stored_cells(self, comparison_baseline):
        table = format_comparison_cells(comparison_baseline)
        for method in CHEAP:
            assert method in table


class TestRobustnessSweepResume:
    @pytest.fixture(scope="class")
    def config(self):
        return RobustnessConfig(
            profiles=("none",), methods=CHEAP, harness=HARNESS
        )

    @pytest.fixture(scope="class")
    def baseline(self, datasets, config):
        florence, michael = datasets
        return RobustnessSweep(florence, michael, config).run()

    def test_interrupted_resume_matches_uninterrupted(
        self, datasets, config, baseline, tmp_path
    ):
        florence, michael = datasets
        store = SweepStore(tmp_path)
        first = RobustnessConfig(
            profiles=("none",), methods=CHEAP[:1], harness=HARNESS
        )
        RobustnessSweep(florence, michael, first).run(store=store)
        assert len(store) == 1

        ran: list[str] = []
        cells = RobustnessSweep(florence, michael, config).run(
            progress=ran.append, store=store
        )
        assert cells == baseline
        assert any("reusing stored cell" in line for line in ran)
        assert format_degradation_table(cells) == format_degradation_table(baseline)

    def test_fully_stored_sweep_runs_nothing(self, datasets, config, baseline, tmp_path):
        florence, michael = datasets
        store = SweepStore(tmp_path)
        RobustnessSweep(florence, michael, config).run(store=store)
        ran: list[str] = []
        cells = RobustnessSweep(florence, michael, config).run(
            progress=ran.append, store=store
        )
        assert cells == baseline
        assert all("reusing" in line for line in ran)

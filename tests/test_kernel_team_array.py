"""Randomized round-trip: TeamArray columns == per-object RescueTeam.

Every mutation the engine ever performs on a team — ``begin_leg``,
node-by-node advancement, ``stop``, ``break_down``/``repair``, passenger
boarding and delivery, deferred-command handoff — is applied in random
order to a :class:`RescueTeam` and to the matching
:class:`TeamArrayView`, and after *every* op the view must expose exactly
the object's state (floats bitwise, arrays elementwise).  The columnar
invariants (``capacity_left``, ``state_code``, the ``wake_s`` scheduling
contract) and the vectorized fleet queries (``attention``,
``serving_ids``, ``idle_team_at``) are cross-checked against brute-force
loops over the same views.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.roadnet.routing import Route
from repro.sim.kernel import TeamArray, TeamArrayView
from repro.sim.kernel.state import _NO_TARGET, _STATE_CODE, team_array_from_views
from repro.sim.teams import RescueTeam, TeamState

CAPACITY = 3


def _random_route(rng: np.random.Generator, src: int) -> tuple[Route, np.ndarray]:
    n_segs = int(rng.integers(1, 5))
    nodes = [src] + [int(rng.integers(0, 1_000)) for _ in range(n_segs)]
    seg_ids = tuple(int(rng.integers(0, 10_000)) for _ in range(n_segs))
    times = rng.uniform(5.0, 300.0, size=n_segs)
    route = Route(
        nodes=tuple(nodes),
        segment_ids=seg_ids,
        travel_time_s=float(times.sum()),
        length_m=float(n_segs * 100.0),
    )
    return route, times


def _assert_mirrors(team: RescueTeam, view: TeamArrayView) -> None:
    assert view.team_id == team.team_id
    assert view.capacity == team.capacity
    assert view.node == team.node
    assert view.state is team.state
    assert list(view.passengers) == list(team.passengers)
    assert view.route_nodes == team.route_nodes
    assert view.route_segments == team.route_segments
    if team.node_times is None:
        assert view.node_times is None
    else:
        assert view.node_times is not None
        assert np.array_equal(view.node_times, team.node_times)
    assert view.next_node_idx == team.next_node_idx
    assert view.target_segment == team.target_segment
    assert view.leg_start_s == team.leg_start_s
    assert view.pending_assignment is team.pending_assignment
    assert view.total_pickups == team.total_pickups
    assert view.down_until_s == team.down_until_s
    assert view.capacity_left == team.capacity_left
    assert view.is_driving == team.is_driving
    assert view.is_down == team.is_down
    assert view.is_assignable == team.is_assignable
    assert view.arrival_time_s == team.arrival_time_s


def _assert_columns_consistent(array: TeamArray) -> None:
    """Column invariants the engine's vectorized scans rely on."""
    for i, view in enumerate(array.views()):
        assert array.capacity_left[i] == array.capacity - len(array.passengers[i])
        assert array.state_code[i] == _STATE_CODE[array.state[i]]
        assert (array.target_segment[i] == _NO_TARGET) == (
            view.target_segment is None
        )
        # The wake_s contract, recomputed from first principles.
        down = array.down_until_s[i]
        if down == down:
            expected = float(down)
        elif array.state[i] is not TeamState.IDLE:
            idx = int(array.next_node_idx[i])
            times = array.node_times[i]
            if times is not None and idx < len(times):
                expected = float(times[idx])
            else:
                expected = float("inf")
        elif array.pending_assignment[i] is not None:
            expected = float("-inf")
        else:
            expected = float("inf")
        assert array.wake_s[i] == expected


def _apply_random_op(
    rng: np.random.Generator, team: RescueTeam, view: TeamArrayView, t: float
) -> None:
    """One engine-shaped mutation, applied identically to both."""
    roll = rng.random()
    if roll < 0.25:
        route, times = _random_route(rng, team.node)
        state = TeamState.TO_SEGMENT if rng.random() < 0.5 else TeamState.TO_HOSPITAL
        target = (
            int(route.segment_ids[-1])
            if state is TeamState.TO_SEGMENT and rng.random() < 0.8
            else None
        )
        team.begin_leg(route, 1.0, times, t, state, target)
        view.begin_leg(route, 1.0, times, t, state, target)
    elif roll < 0.45:
        # Advance through one node, the way _advance_team moves teams.
        if team.is_driving and team.node_times is not None:
            idx = team.next_node_idx
            if idx < len(team.route_nodes):
                team.node = team.route_nodes[idx]
                team.next_node_idx += 1
                view.node = view.route_nodes[idx]
                view.next_node_idx += 1
            else:
                team.stop()
                view.stop()
    elif roll < 0.55:
        team.stop()
        view.stop()
    elif roll < 0.65:
        until = t + float(rng.uniform(60.0, 3_600.0))
        team.break_down(until)
        view.break_down(until)
    elif roll < 0.72:
        if team.is_down:
            team.repair()
            view.repair()
    elif roll < 0.82:
        if team.capacity_left > 0:
            rid = int(rng.integers(0, 100_000))
            team.passengers.append(rid)
            team.total_pickups += 1
            view.passengers.append(rid)
            view.total_pickups += 1
        else:
            team.passengers.clear()
            view.passengers.clear()
    elif roll < 0.92:
        cmd = object() if rng.random() < 0.7 else None
        team.pending_assignment = cmd
        view.pending_assignment = cmd
    else:
        team.passengers.clear()
        view.passengers.clear()


@pytest.mark.parametrize("seed", range(25))
def test_randomized_round_trip(seed):
    rng = np.random.default_rng(seed)
    n_teams = int(rng.integers(2, 6))
    spawn = [int(rng.integers(0, 1_000)) for _ in range(n_teams)]
    array = TeamArray(CAPACITY, spawn)
    views = array.views()
    teams = [
        RescueTeam(team_id=i, capacity=CAPACITY, node=spawn[i])
        for i in range(n_teams)
    ]
    t = 0.0
    for _ in range(60):
        t += float(rng.uniform(0.0, 120.0))
        i = int(rng.integers(n_teams))
        _apply_random_op(rng, teams[i], views[i], t)
        _assert_mirrors(teams[i], views[i])
        _assert_columns_consistent(array)
        # Vectorized fleet queries vs brute force over the object fleet.
        due = [
            j for j in range(n_teams) if float(array.wake_s[j]) <= t
        ]
        assert [int(k) for k in array.attention(t)] == due
        serving = {
            tm.team_id
            for tm in teams
            if tm.state is TeamState.TO_HOSPITAL
            or (tm.state is TeamState.TO_SEGMENT and tm.target_segment is not None)
        }
        assert array.serving_ids() == serving
        probe = (teams[i].node, int(rng.integers(0, 1_000)))
        brute = next(
            (
                tm.team_id
                for tm in teams
                if tm.state is TeamState.IDLE
                and not tm.is_down
                and tm.capacity_left > 0
                and tm.node in probe
            ),
            None,
        )
        assert array.idle_team_at(probe) == brute


def test_team_array_from_views_identifies_backing_store():
    array = TeamArray(CAPACITY, [1, 2, 3])
    assert team_array_from_views(array.views()) is array
    plain = [RescueTeam(team_id=0, capacity=CAPACITY, node=1)]
    assert team_array_from_views(plain) is None
    assert team_array_from_views([]) is None


def test_begin_leg_arrival_times_bitwise_equal_seed_formula():
    """The node-time construction must be the seed's exact float recipe."""
    rng = np.random.default_rng(7)
    array = TeamArray(CAPACITY, [5])
    view = array.view(0)
    team = RescueTeam(team_id=0, capacity=CAPACITY, node=5)
    route, times = _random_route(rng, 5)
    t0 = 1_234.567
    team.begin_leg(route, 1.0, times, t0, TeamState.TO_SEGMENT, None)
    view.begin_leg(route, 1.0, times, t0, TeamState.TO_SEGMENT, None)
    assert team.node_times is not None and view.node_times is not None
    assert team.node_times.tobytes() == view.node_times.tobytes()


def test_validation_mirrors_rescue_team():
    array = TeamArray(CAPACITY, [5])
    view = array.view(0)
    rng = np.random.default_rng(3)
    route, times = _random_route(rng, 99)  # wrong source node
    with pytest.raises(ValueError):
        view.begin_leg(route, 1.0, times, 0.0, TeamState.TO_SEGMENT, None)
    route, times = _random_route(rng, 5)
    with pytest.raises(ValueError):
        view.begin_leg(route, 1.0, times, 0.0, TeamState.IDLE, None)
    with pytest.raises(ValueError):
        view.begin_leg(route, 1.0, times[:-1], 0.0, TeamState.TO_SEGMENT, None)
    with pytest.raises(ValueError):
        TeamArray(0, [1])
    with pytest.raises(ValueError):
        TeamArray(CAPACITY, [])

"""Tests for the command-line interface.

These run the real pipelines at a tiny population so the full command paths
execute in seconds.
"""

import pytest

from repro.cli import build_parser, main

POP = ["--population", "200", "--episodes", "1"]


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("measure", "compare", "predict", "simulate", "robustness"):
            args = parser.parse_args([cmd])
            assert callable(args.func)
            assert args.population == 800
            assert args.verbose is False

    def test_robustness_options(self):
        args = build_parser().parse_args(
            ["robustness", "--profiles", "none,severe",
             "--methods", "Nearest", "--budget", "0.5", "-v"]
        )
        assert args.profiles == "none,severe"
        assert args.methods == "Nearest"
        assert args.budget == 0.5
        assert args.verbose is True

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy-to-prod"])


class TestCommands:
    def test_measure(self, capsys):
        assert main(["measure", *POP]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "precipitation" in out
        assert "R3" in out

    def test_compare(self, capsys):
        assert main(["compare", *POP]) == 0
        out = capsys.readouterr().out
        assert "MobiRescue" in out
        assert "Schedule" in out
        assert "Rescue" in out

    def test_predict(self, capsys):
        assert main(["predict", *POP]) == 0
        out = capsys.readouterr().out
        assert "mean accuracy" in out

    def test_figure_ascii(self, capsys):
        assert main(["figure", "fig14", *POP]) == 0
        out = capsys.readouterr().out
        assert "serving rescue teams" in out
        assert "*=MobiRescue" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99", *POP]) == 2

    def test_robustness(self, capsys):
        assert main([
            "robustness", *POP,
            "--profiles", "none,severe", "--methods", "Nearest",
        ]) == 0
        out = capsys.readouterr().out
        assert "Degradation under fault injection" in out
        assert "severe" in out
        assert "Nearest" in out

    def test_simulate_with_save(self, capsys, tmp_path):
        archive = str(tmp_path / "trained.npz")
        assert main(["simulate", *POP, "--save", archive]) == 0
        out = capsys.readouterr().out
        assert "served" in out
        assert (tmp_path / "trained.npz").exists()

        # The archive loads back into a deployable system.
        from repro.core.persistence import load_trained
        from repro.data import build_michael_dataset

        scenario, _ = build_michael_dataset(population_size=200)
        loaded = load_trained(archive, scenario)
        assert loaded.predictor.is_fitted

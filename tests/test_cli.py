"""Tests for the command-line interface.

These run the real pipelines at a tiny population so the full command paths
execute in seconds.
"""

import pytest

from repro.cli import build_parser, main

POP = ["--population", "200", "--episodes", "1"]


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("measure", "compare", "predict", "simulate", "robustness"):
            args = parser.parse_args([cmd])
            assert callable(args.func)
            assert args.population == 800
            assert args.verbose is False

    def test_bench_options(self):
        parser = build_parser()
        args = parser.parse_args(["bench"])
        assert callable(args.func)
        assert args.quick is False and args.out == ""
        args = parser.parse_args(["bench", "--quick", "--out", "B.json"])
        assert args.quick is True and args.out == "B.json"

    def test_robustness_options(self):
        args = build_parser().parse_args(
            ["robustness", "--profiles", "none,severe",
             "--methods", "Nearest", "--budget", "0.5", "-v"]
        )
        assert args.profiles == "none,severe"
        assert args.methods == "Nearest"
        assert args.budget == 0.5
        assert args.verbose is True

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["deploy-to-prod"])


class TestCommands:
    def test_measure(self, capsys):
        assert main(["measure", *POP]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "precipitation" in out
        assert "R3" in out

    def test_compare(self, capsys):
        assert main(["compare", *POP]) == 0
        out = capsys.readouterr().out
        assert "MobiRescue" in out
        assert "Schedule" in out
        assert "Rescue" in out

    def test_predict(self, capsys):
        assert main(["predict", *POP]) == 0
        out = capsys.readouterr().out
        assert "mean accuracy" in out

    def test_figure_ascii(self, capsys):
        assert main(["figure", "fig14", *POP]) == 0
        out = capsys.readouterr().out
        assert "serving rescue teams" in out
        assert "*=MobiRescue" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99", *POP]) == 2

    def test_robustness(self, capsys):
        assert main([
            "robustness", *POP,
            "--profiles", "none,severe", "--methods", "Nearest",
        ]) == 0
        out = capsys.readouterr().out
        assert "Degradation under fault injection" in out
        assert "severe" in out
        assert "Nearest" in out

    def test_simulate_with_save(self, capsys, tmp_path):
        archive = str(tmp_path / "trained.npz")
        assert main(["simulate", *POP, "--save", archive]) == 0
        out = capsys.readouterr().out
        assert "served" in out
        assert (tmp_path / "trained.npz").exists()

        # The archive loads back into a deployable system.
        from repro.core.persistence import load_trained
        from repro.data import build_michael_dataset

        scenario, _ = build_michael_dataset(population_size=200)
        loaded = load_trained(archive, scenario)
        assert loaded.predictor.is_fitted


class TestResumableCommands:
    """The crash-safety surface: `train` checkpoints, sweeps persist cells."""

    def test_parser_knows_new_commands(self):
        parser = build_parser()
        args = parser.parse_args(["train", "--checkpoint-dir", "ckpts"])
        assert callable(args.func)
        assert args.checkpoint_dir == "ckpts"
        assert args.resume is False
        args = parser.parse_args(
            ["experiments", "--methods", "Nearest", "--seeds", "0,1",
             "--results-dir", "out", "--resume"]
        )
        assert args.resume is True

    def test_train_refuses_dirty_directory_without_resume(self, capsys, tmp_path):
        from repro.core.config import MobiRescueConfig
        from repro.core.persistence import save_checkpoint
        from repro.core.rl_dispatcher import make_agent

        # Fails fast, before any dataset build.
        cfg = MobiRescueConfig(num_candidates=3, seed=0)
        from repro.core.persistence import TrainingCheckpoint

        save_checkpoint(
            tmp_path,
            TrainingCheckpoint(
                episodes_done=1,
                service_rates=[0.5],
                config=cfg,
                agent_state=make_agent(cfg).get_state(),
                predictor_arrays={},
            ),
        )
        assert main(["train", "--checkpoint-dir", str(tmp_path)]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_train_resume_needs_checkpoints(self, capsys, tmp_path):
        assert main(["train", "--checkpoint-dir", str(tmp_path), "--resume"]) == 2
        assert "no checkpoints" in capsys.readouterr().err

    def test_experiments_rejects_unknown_method(self, capsys):
        assert main(["experiments", "--methods", "Teleport", *POP]) == 2
        assert "unknown methods" in capsys.readouterr().err

    def test_experiments_refuses_dirty_results_dir(self, capsys, tmp_path):
        from repro.eval.experiments import SweepStore

        SweepStore(tmp_path).put("method=Nearest,seed=0", {"served": 1})
        assert main(
            ["experiments", "--results-dir", str(tmp_path), *POP]
        ) == 2
        assert "--resume" in capsys.readouterr().err

    def test_train_runs_and_resumes(self, capsys, tmp_path):
        ckpts = str(tmp_path / "ckpts")
        pop = ["--population", "200", "--episodes", "1", "--checkpoint-dir", ckpts]
        assert main(["train", *pop]) == 0
        assert "trained 1 episode(s)" in capsys.readouterr().out

        # Same target already met: resume restores and runs nothing new.
        assert main(["train", *pop, "--resume"]) == 0
        assert "service rates" in capsys.readouterr().out

    def test_experiments_with_store(self, capsys, tmp_path):
        results = str(tmp_path / "cells")
        argv = ["experiments", "--methods", "Nearest,Schedule", *POP,
                "--results-dir", results]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Method comparison" in out

        # Re-run resumes entirely from the store.
        assert main([*argv, "--resume"]) == 0
        captured = capsys.readouterr()
        assert captured.out == out
        assert "reusing stored cell" in captured.err

"""Tests for the road-network graph, generator and routing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo.regions import charlotte_regions
from repro.roadnet.generator import RoadNetworkConfig, generate_road_network
from repro.roadnet.graph import Landmark, NetworkStats, RoadNetwork, RoadSegment, network_stats
from repro.roadnet.routing import Route, route_to_segment, shortest_path, shortest_time_from

W, H = 70_000.0, 45_000.0


def tiny_network() -> RoadNetwork:
    """A 4-node diamond: 0 -> 1 -> 3 and 0 -> 2 -> 3, plus reverse edges."""
    net = RoadNetwork()
    coords = [(0, 0), (1000, 0), (0, 1000), (1000, 1000)]
    for i, (x, y) in enumerate(coords):
        net.add_landmark(Landmark(i, float(x), float(y)))
    links = [(0, 1, 1000, 10), (1, 3, 1000, 10), (0, 2, 1000, 20), (2, 3, 1000, 20)]
    sid = 0
    for u, v, length, speed in links:
        net.add_segment(RoadSegment(sid, u, v, length, speed, 1))
        sid += 1
        net.add_segment(RoadSegment(sid, v, u, length, speed, 1))
        sid += 1
    return net.freeze()


@pytest.fixture(scope="module")
def partition():
    return charlotte_regions(W, H)


@pytest.fixture(scope="module")
def city(partition):
    return generate_road_network(partition, RoadNetworkConfig(grid_cols=12, grid_rows=12))


class TestGraphConstruction:
    def test_segment_validation(self):
        net = RoadNetwork()
        net.add_landmark(Landmark(0, 0.0, 0.0))
        net.add_landmark(Landmark(1, 100.0, 0.0))
        with pytest.raises(ValueError):
            net.add_segment(RoadSegment(0, 0, 0, 100.0, 10.0, 1))  # self-loop
        with pytest.raises(ValueError):
            net.add_segment(RoadSegment(0, 0, 2, 100.0, 10.0, 1))  # unknown node
        with pytest.raises(ValueError):
            RoadSegment(0, 0, 1, -5.0, 10.0, 1)  # bad length
        with pytest.raises(ValueError):
            RoadSegment(0, 0, 1, 5.0, 0.0, 1)  # bad speed

    def test_duplicate_ids_rejected(self):
        net = RoadNetwork()
        net.add_landmark(Landmark(0, 0.0, 0.0))
        with pytest.raises(ValueError):
            net.add_landmark(Landmark(0, 1.0, 1.0))

    def test_parallel_segments_rejected(self):
        net = RoadNetwork()
        net.add_landmark(Landmark(0, 0.0, 0.0))
        net.add_landmark(Landmark(1, 100.0, 0.0))
        net.add_segment(RoadSegment(0, 0, 1, 100.0, 10.0, 1))
        with pytest.raises(ValueError):
            net.add_segment(RoadSegment(1, 0, 1, 100.0, 10.0, 1))

    def test_frozen_is_immutable(self):
        net = tiny_network()
        with pytest.raises(RuntimeError):
            net.add_landmark(Landmark(99, 0.0, 0.0))

    def test_queries_require_freeze(self):
        net = RoadNetwork()
        net.add_landmark(Landmark(0, 0.0, 0.0))
        with pytest.raises(RuntimeError):
            net.nearest_landmark(0.0, 0.0)

    def test_freeze_empty_rejected(self):
        with pytest.raises(ValueError):
            RoadNetwork().freeze()

    def test_free_flow_time(self):
        seg = RoadSegment(0, 0, 1, 1000.0, 10.0, 1)
        assert seg.free_flow_time_s == pytest.approx(100.0)

    def test_accessors(self):
        net = tiny_network()
        assert net.num_landmarks == 4
        assert net.num_segments == 8
        assert net.segment_between(0, 1) is not None
        assert net.segment_between(1, 2) is None
        assert {s.v for s in net.out_segments(0)} == {1, 2}
        assert {s.u for s in net.in_segments(3)} == {1, 2}
        with pytest.raises(KeyError):
            net.landmark(42)
        with pytest.raises(KeyError):
            net.segment(42)

    def test_nearest_landmark(self):
        net = tiny_network()
        assert net.nearest_landmark(10.0, 10.0) == 0
        assert net.nearest_landmark(990.0, 990.0) == 3

    def test_segment_midpoint(self):
        net = tiny_network()
        seg = net.segment_between(0, 1)
        assert net.segment_midpoint(seg.segment_id) == (500.0, 0.0)


class TestGeneratedCity:
    def test_size(self, city):
        assert city.num_landmarks == 144
        # 4-neighbour grid: 2 * (2 * 12 * 11) directed segments.
        assert city.num_segments == 2 * 2 * 12 * 11

    def test_all_regions_covered(self, city, partition):
        regions = {s.region_id for s in city.segments()}
        assert regions == set(partition.region_ids)

    def test_downtown_denser(self, city, partition):
        """The warped grid concentrates landmarks downtown: Region 3 holds
        more landmarks per unit area than the city average."""
        xy = np.array([city.landmark(n).xy for n in city.landmark_ids()])
        regions = partition.region_of_many(xy)
        # Estimate region areas by uniform sampling.
        rng = np.random.default_rng(0)
        samples = rng.uniform([0, 0], [W, H], size=(20_000, 2))
        sample_regions = partition.region_of_many(samples)
        area_share = (sample_regions == 3).mean()
        node_share = (regions == 3).mean()
        assert node_share > 1.3 * area_share

    def test_speed_limits_two_tiers(self, city):
        speeds = {round(s.speed_limit_mps, 3) for s in city.segments()}
        assert len(speeds) == 2

    def test_deterministic(self, partition):
        cfg = RoadNetworkConfig(grid_cols=8, grid_rows=8, seed=5)
        a = generate_road_network(partition, cfg)
        b = generate_road_network(partition, cfg)
        for n in a.landmark_ids():
            assert a.landmark(n).xy == b.landmark(n).xy

    def test_strongly_connected(self, city):
        """Every landmark is reachable from node 0 and vice versa."""
        fwd = shortest_time_from(city, 0)
        assert len(fwd) == city.num_landmarks

    def test_stats(self, city):
        stats = network_stats(city)
        assert isinstance(stats, NetworkStats)
        assert stats.num_segments == city.num_segments
        assert stats.mean_segment_length_m > 0
        assert sum(stats.segments_per_region.values()) == city.num_segments

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RoadNetworkConfig(grid_cols=2)
        with pytest.raises(ValueError):
            RoadNetworkConfig(downtown_concentration=1.0)
        with pytest.raises(ValueError):
            RoadNetworkConfig(jitter_fraction=0.5)
        with pytest.raises(ValueError):
            RoadNetworkConfig(arterial_every=1)


class TestRouting:
    def test_trivial_route(self):
        net = tiny_network()
        r = shortest_path(net, 0, 0)
        assert r is not None and r.is_trivial
        assert r.travel_time_s == 0.0

    def test_prefers_faster_path(self):
        net = tiny_network()
        r = shortest_path(net, 0, 3)
        # Via node 2 (20 m/s) takes 100 s; via node 1 (10 m/s) takes 200 s.
        assert r.nodes == (0, 2, 3)
        assert r.travel_time_s == pytest.approx(100.0)

    def test_weight_length_tie(self):
        net = tiny_network()
        r = shortest_path(net, 0, 3, weight="length")
        assert r.length_m == pytest.approx(2000.0)

    def test_invalid_weight(self):
        net = tiny_network()
        with pytest.raises(ValueError):
            shortest_path(net, 0, 3, weight="fuel")

    def test_closed_segment_forces_detour(self):
        net = tiny_network()
        fast = net.segment_between(0, 2).segment_id
        r = shortest_path(net, 0, 3, closed=frozenset({fast}))
        assert r.nodes == (0, 1, 3)

    def test_unreachable_returns_none(self):
        net = tiny_network()
        closed = frozenset(
            {net.segment_between(0, 1).segment_id, net.segment_between(0, 2).segment_id}
        )
        assert shortest_path(net, 0, 3, closed=closed) is None

    def test_route_to_segment_ends_with_it(self):
        net = tiny_network()
        seg = net.segment_between(2, 3).segment_id
        r = route_to_segment(net, 0, seg)
        assert r.segment_ids[-1] == seg
        assert r.dst == 3

    def test_route_to_closed_segment_is_none(self):
        net = tiny_network()
        seg = net.segment_between(2, 3).segment_id
        assert route_to_segment(net, 0, seg, closed=frozenset({seg})) is None

    def test_route_to_segment_from_its_head(self):
        # Standing at seg.u: the route is exactly the segment itself.
        net = tiny_network()
        seg = net.segment_between(2, 3)
        r = route_to_segment(net, seg.u, seg.segment_id)
        assert r.nodes == (seg.u, seg.v)
        assert r.segment_ids == (seg.segment_id,)
        assert r.travel_time_s == pytest.approx(seg.free_flow_time_s)

    def test_route_to_segment_from_its_tail(self):
        # Standing at seg.v: must first drive back to seg.u, then traverse —
        # never a zero-length "already there" answer.
        net = tiny_network()
        seg = net.segment_between(2, 3)
        r = route_to_segment(net, seg.v, seg.segment_id)
        assert r.src == seg.v and r.dst == seg.v
        assert r.segment_ids[-1] == seg.segment_id
        assert len(r.segment_ids) >= 2
        assert r.travel_time_s > 0.0

    def test_route_to_segment_unreachable_head_is_none(self):
        net = tiny_network()
        seg = net.segment_between(2, 3)
        closed = frozenset(
            {net.segment_between(0, 2).segment_id, net.segment_between(3, 2).segment_id}
        )
        assert route_to_segment(net, 0, seg.segment_id, closed=closed) is None

    def test_forward_and_reverse_costs_agree(self, city):
        # shortest_time_from and shortest_time_to run the one unified
        # Dijkstra routine in opposite directions; costs must match.
        from repro.roadnet.routing import shortest_time_to

        rng = np.random.default_rng(7)
        nodes = city.landmark_ids()
        for _ in range(10):
            a, b = (int(n) for n in rng.choice(nodes, size=2, replace=False))
            from_a = shortest_time_from(city, a)
            to_b = shortest_time_to(city, b)
            # Same path, summed in opposite directions: equal up to the
            # non-associativity of float addition.
            assert from_a[b] == pytest.approx(to_b[a], rel=1e-12)
            assert set(from_a) and set(to_b)

    def test_dijkstra_tree_reconstructs_shortest_path(self, city):
        from repro.roadnet.routing import dijkstra_tree, route_from_tree

        rng = np.random.default_rng(8)
        nodes = city.landmark_ids()
        for _ in range(10):
            a, b = (int(n) for n in rng.choice(nodes, size=2, replace=False))
            _, prev = dijkstra_tree(city, a)
            assert route_from_tree(city, a, b, prev) == shortest_path(city, a, b)

    def test_route_invariants_random_pairs(self, city):
        rng = np.random.default_rng(1)
        nodes = city.landmark_ids()
        for _ in range(25):
            a, b = rng.choice(nodes, size=2, replace=False)
            r = shortest_path(city, int(a), int(b))
            assert r is not None
            assert r.src == a and r.dst == b
            # Segment chain is continuous and totals match.
            total_t = sum(city.segment(s).free_flow_time_s for s in r.segment_ids)
            assert r.travel_time_s == pytest.approx(total_t)
            total_l = sum(city.segment(s).length_m for s in r.segment_ids)
            assert r.length_m == pytest.approx(total_l)

    def test_single_source_matches_point_queries(self, city):
        rng = np.random.default_rng(2)
        src = 0
        dist = shortest_time_from(city, src)
        for b in rng.choice(city.landmark_ids(), size=10, replace=False):
            r = shortest_path(city, src, int(b))
            assert dist[int(b)] == pytest.approx(r.travel_time_s)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 143), st.integers(0, 143))
    def test_triangle_inequality(self, a, b):
        part = charlotte_regions(W, H)
        net = generate_road_network(part, RoadNetworkConfig(grid_cols=12, grid_rows=12))
        r = shortest_path(net, a, b)
        assert r is not None
        # Shortest path cannot beat straight-line distance at max speed.
        max_speed = max(s.speed_limit_mps for s in net.segments())
        assert r.travel_time_s >= net.node_distance_m(a, b) / max_speed - 1e-6

    def test_route_validation(self):
        with pytest.raises(ValueError):
            Route((0, 1), (), 0.0, 0.0)

"""Golden-equivalence suite: the performance layer must change nothing.

One fixed-seed scenario is pushed through the full simulation engine
twice — once with the seed per-call Dijkstra (:class:`DirectRouter`), once
with the closure-aware :class:`RoutingCache` — and every recorded artifact
(pickups, deliveries, serving samples, incidents, reward traces) must be
*bit-identical*: exact float equality, not approx.  Any divergence means
the cache changed an answer, which it is never allowed to do.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dispatch.nearest import NearestDispatcher
from repro.dispatch.rescue_ts import RescueTsDispatcher
from repro.perf.routing_cache import (
    DirectRouter,
    RoutingCache,
    clear_routing_caches,
    set_routing_cache_enabled,
)
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.requests import remap_to_operable, requests_from_rescues
from repro.weather.storms import SECONDS_PER_DAY, day_index


@pytest.fixture(scope="module")
def eval_window(florence_small):
    """(scenario, requests, config) for a fixed-seed Sep-16 half day."""
    scenario, bundle = florence_small
    day = day_index(scenario.timeline, "Sep 16")
    t0, t1 = day * SECONDS_PER_DAY, (day + 0.5) * SECONDS_PER_DAY
    requests = remap_to_operable(
        requests_from_rescues(bundle.rescues, t0, t1), scenario.network, scenario.flood
    )
    assert requests, "evaluation window must contain requests"
    config = SimulationConfig(t0_s=t0, t1_s=t1, num_teams=15, seed=0)
    return scenario, requests, config


def _run(scenario, requests, config, dispatcher, router):
    sim = RescueSimulator(scenario, list(requests), dispatcher, config, router=router)
    return sim.run()


def _assert_bit_identical(a, b):
    """Full SimulationResult equality — frozen event dataclasses compare
    fieldwise, floats included, so ``==`` here *is* bit-identity."""
    assert a.pickups == b.pickups
    assert a.deliveries == b.deliveries
    assert a.serving_samples == b.serving_samples
    assert a.incidents == b.incidents
    assert a.requests == b.requests
    assert a.num_served == b.num_served
    # Spot-check that the float payloads really carry information.
    if a.pickups:
        assert any(p.driving_delay_s > 0 for p in a.pickups)


class TestEngineGoldenEquivalence:
    def test_cached_run_is_bit_identical(self, eval_window):
        scenario, requests, config = eval_window
        dispatcher = NearestDispatcher()
        seed_result = _run(
            scenario, requests, config, dispatcher, DirectRouter(scenario.network)
        )
        cached_result = _run(
            scenario, requests, config, dispatcher, RoutingCache(scenario.network)
        )
        assert seed_result.num_served > 0
        _assert_bit_identical(seed_result, cached_result)

    def test_flood_unaware_dispatcher_equivalence(self, eval_window):
        """A flood-unaware planner routes commands against the empty closed
        set but drives against the real one — both cache lines must agree
        with the seed run, reroutes included."""
        scenario, requests, config = eval_window
        seed_result = _run(
            scenario, requests, config,
            RescueTsDispatcher(), DirectRouter(scenario.network),
        )
        cached_result = _run(
            scenario, requests, config,
            RescueTsDispatcher(), RoutingCache(scenario.network),
        )
        _assert_bit_identical(seed_result, cached_result)

    def test_process_toggle_equivalence(self, eval_window):
        """The default-router wiring (global switch) is equivalent too."""
        scenario, requests, config = eval_window
        dispatcher = NearestDispatcher()
        previous = set_routing_cache_enabled(False)
        try:
            clear_routing_caches()
            off = _run(scenario, requests, config, dispatcher, None)
            set_routing_cache_enabled(True)
            clear_routing_caches()
            on = _run(scenario, requests, config, dispatcher, None)
        finally:
            set_routing_cache_enabled(previous)
            clear_routing_caches()
        _assert_bit_identical(off, on)

    def test_repeat_cached_runs_are_deterministic(self, eval_window):
        """A warm cache must answer exactly like a cold one."""
        scenario, requests, config = eval_window
        cache = RoutingCache(scenario.network)
        first = _run(scenario, requests, config, NearestDispatcher(), cache)
        assert cache.hits > 0
        second = _run(scenario, requests, config, NearestDispatcher(), cache)
        _assert_bit_identical(first, second)


class TestRewardTraceEquivalence:
    def test_rl_reward_trace_bit_identical(self, michael_small, eval_window):
        """The MobiRescue dispatcher's training transitions — state, action,
        reward, next-state — must be byte-for-byte the same with and
        without the routing cache."""
        from repro.core.config import MobiRescueConfig
        from repro.core.predictor import RequestPredictor, TrainingSet
        from repro.core.rl_dispatcher import MobiRescueDispatcher, make_agent

        scenario, requests, config = eval_window
        mscen, _ = michael_small
        rng = np.random.default_rng(21)
        x = rng.normal(size=(80, 3))
        y = (x.sum(axis=1) > 0).astype(int)
        predictor = RequestPredictor(mscen, flood_gated=False).fit(
            TrainingSet(x=x, y=y)
        ).clone_for(scenario)
        cfg = MobiRescueConfig(seed=5)

        def run_with(router):
            agent = make_agent(cfg)
            trace = []
            original = agent.remember

            def recording_remember(state, action, reward, next_state, done):
                trace.append(
                    (state.tobytes(), int(action), float(reward),
                     next_state.tobytes(), bool(done))
                )
                original(state, action, reward, next_state, done)

            agent.remember = recording_remember
            dispatcher = MobiRescueDispatcher(
                scenario, predictor, lambda t: {}, agent, cfg, training=True
            )
            result = _run(scenario, requests, config, dispatcher, router)
            return result, trace

        seed_result, seed_trace = run_with(DirectRouter(scenario.network))
        cached_result, cached_trace = run_with(RoutingCache(scenario.network))
        assert seed_trace, "training run must record transitions"
        assert seed_trace == cached_trace
        _assert_bit_identical(seed_result, cached_result)

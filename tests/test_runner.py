"""Tests for the supervision layer: retry policy, deadlines, incidents."""

import time

import numpy as np
import pytest

from repro.core.runner import (
    AttemptTimeoutError,
    Incident,
    RetriesExhaustedError,
    RetryPolicy,
    Supervisor,
)


def make_supervisor(policy: RetryPolicy, sleeps: list[float]) -> Supervisor:
    return Supervisor(policy=policy, name="test", sleep=sleeps.append)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout_s=0.0)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay_s=1.0, backoff=2.0, max_delay_s=5.0, jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.delay_s(a, rng) for a in range(5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay_s=1.0, backoff=1.0, jitter=0.5)
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert 1.0 <= policy.delay_s(0, rng) <= 1.5


class TestSupervisor:
    def test_success_first_try(self):
        sleeps: list[float] = []
        sup = make_supervisor(RetryPolicy(max_attempts=3), sleeps)
        assert sup.run(lambda attempt: attempt + 41) == 41
        assert sup.incidents == []
        assert sleeps == []

    def test_retries_then_succeeds(self):
        sleeps: list[float] = []
        sup = make_supervisor(
            RetryPolicy(max_attempts=3, base_delay_s=1.0, jitter=0.0), sleeps
        )

        def flaky(attempt: int) -> str:
            if attempt < 2:
                raise RuntimeError(f"transient {attempt}")
            return "done"

        assert sup.run(flaky) == "done"
        assert [i.kind for i in sup.incidents] == ["attempt-failed", "attempt-failed"]
        assert [i.attempt for i in sup.incidents] == [0, 1]
        assert sleeps == [1.0, 2.0]  # exponential backoff between attempts

    def test_exhaustion_raises_from_last_failure(self):
        sup = make_supervisor(RetryPolicy(max_attempts=2, base_delay_s=0.0), [])

        def always_fails(attempt: int):
            raise RuntimeError(f"boom {attempt}")

        with pytest.raises(RetriesExhaustedError) as excinfo:
            sup.run(always_fails)
        assert "boom 1" in str(excinfo.value.__cause__)
        assert len(sup.incidents) == 2

    def test_non_retryable_propagates_immediately(self):
        sup = make_supervisor(RetryPolicy(max_attempts=3), [])

        def fails(attempt: int):
            raise TypeError("programming error")

        with pytest.raises(TypeError):
            sup.run(fails, retryable=(ValueError,))
        assert sup.incidents == []

    def test_attempt_deadline(self):
        sup = make_supervisor(
            RetryPolicy(max_attempts=2, base_delay_s=0.0, attempt_timeout_s=0.05), []
        )

        def slow_then_fast(attempt: int) -> str:
            if attempt == 0:
                time.sleep(1.0)
            return "recovered"

        assert sup.run(slow_then_fast) == "recovered"
        assert [i.kind for i in sup.incidents] == ["attempt-timeout"]

    def test_record_keeps_custom_incidents(self):
        sup = make_supervisor(RetryPolicy(), [])
        sup.record("corrupt-checkpoint", "ckpt-000007 rejected")
        assert sup.incidents == [
            Incident(kind="corrupt-checkpoint", message="ckpt-000007 rejected", attempt=0)
        ]

"""Focused tests for the trace generator's configuration knobs."""

import numpy as np
import pytest

from repro.data.charlotte import build_charlotte_scenario
from repro.mobility.generator import MobilityTraceGenerator, TraceConfig
from repro.mobility.population import PopulationConfig, generate_population
from repro.roadnet.generator import RoadNetworkConfig
from repro.weather.storms import MICHAEL, SECONDS_PER_DAY


@pytest.fixture(scope="module")
def scen():
    return build_charlotte_scenario(MICHAEL, RoadNetworkConfig(grid_cols=8, grid_rows=8))


@pytest.fixture(scope="module")
def persons(scen):
    return generate_population(
        scen.network,
        scen.partition,
        PopulationConfig(size=80),
        excluded_nodes=frozenset(h.node_id for h in scen.hospitals),
    )


def make_generator(scen, **config_kwargs):
    return MobilityTraceGenerator(
        scen.network,
        scen.partition,
        scen.terrain,
        scen.weather_field,
        scen.flood,
        scen.hospitals,
        TraceConfig(**config_kwargs),
    )


class TestGeneratorConfig:
    def test_determinism(self, scen, persons):
        a = make_generator(scen, seed=11).generate(persons)
        b = make_generator(scen, seed=11).generate(persons)
        assert len(a.trace) == len(b.trace)
        assert len(a.rescues) == len(b.rescues)
        np.testing.assert_array_equal(a.trace.t[:500], b.trace.t[:500])
        assert [r.person_id for r in a.rescues] == [r.person_id for r in b.rescues]

    def test_seed_changes_outcome(self, scen, persons):
        a = make_generator(scen, seed=11).generate(persons)
        b = make_generator(scen, seed=12).generate(persons)
        assert len(a.trace) != len(b.trace) or len(a.rescues) != len(b.rescues)

    def test_zero_trap_probability_means_no_rescues(self, scen, persons):
        bundle = make_generator(scen, seed=2, trap_probability=0.0).generate(persons)
        assert bundle.rescues == []

    def test_huge_tolerance_means_no_rescues(self, scen, persons):
        bundle = make_generator(
            scen, seed=2, depth_tolerance_range_m=(500.0, 600.0)
        ).generate(persons)
        assert bundle.rescues == []

    def test_tiny_tolerance_means_more_rescues(self, scen, persons):
        few = make_generator(scen, seed=2, depth_tolerance_range_m=(3.0, 12.0))
        many = make_generator(scen, seed=2, depth_tolerance_range_m=(0.05, 0.5))
        assert len(many.generate(persons).rescues) > len(few.generate(persons).rescues)

    def test_clean_config_produces_clean_trace(self, scen, persons):
        bundle = make_generator(
            scen, seed=2, outlier_rate=0.0, duplicate_rate=0.0
        ).generate(persons)
        assert (bundle.trace.x <= scen.partition.width_m).all()
        assert (bundle.trace.x >= 0).all()

    def test_outlier_rate_respected(self, scen, persons):
        bundle = make_generator(scen, seed=2, outlier_rate=0.05).generate(persons)
        outside = (bundle.trace.x > scen.partition.width_m).mean()
        assert 0.02 < outside < 0.08

    def test_requests_on_day(self, scen, persons):
        bundle = make_generator(scen, seed=2).generate(persons)
        total = sum(
            len(bundle.requests_on_day(d)) for d in range(scen.timeline.total_days)
        )
        assert total == len(bundle.rescues)
        for d in range(scen.timeline.total_days):
            for r in bundle.requests_on_day(d):
                assert d * SECONDS_PER_DAY <= r.request_time_s < (d + 1) * SECONDS_PER_DAY

    def test_rescued_people_emit_hospital_fixes(self, scen, persons):
        """A rescued person's trace contains fixes near their delivery
        hospital after the delivery time."""
        bundle = make_generator(scen, seed=2).generate(persons)
        if not bundle.rescues:
            pytest.skip("no rescues at this scale/seed")
        r = bundle.rescues[0]
        hx, hy = scen.network.landmark(r.hospital_node).xy
        person_fixes = bundle.trace.person_slice(r.person_id)
        after = person_fixes.t >= r.delivery_time_s - 1.0
        d = np.hypot(
            person_fixes.x[after].astype(float) - hx,
            person_fixes.y[after].astype(float) - hy,
        )
        assert (d < 200.0).any()

    def test_fix_intervals_respect_person_rate(self, scen, persons):
        """Stationary-period fixes arrive no faster than the person's GPS
        interval (driving fixes are denser by design)."""
        bundle = make_generator(scen, seed=2, outlier_rate=0.0, duplicate_rate=0.0).generate(
            persons[:5]
        )
        for person in persons[:2]:
            fixes = bundle.trace.person_slice(person.person_id).sort()
            stationary = fixes.speed < 1.0
            ts = fixes.t[stationary]
            if len(ts) > 10:
                gaps = np.diff(ts)
                # Allow trip interruptions; the *typical* stationary gap is
                # the person's interval.
                assert np.median(gaps) >= 0.6 * person.gps_interval_s

"""reprolint: the static gate itself, and the linter's self-tests.

``test_source_tree_is_clean`` is the tier-1 gate: the full installed
``repro`` tree must produce zero findings.  The remaining tests pin the
linter's behaviour on fixture files with known violations, the pragma
escape-hatch semantics, the JSON output contract and the CLI exit codes —
so the gate can only pass because the code is clean, never because a rule
silently stopped firing.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_RULES,
    KNOWN_PRAGMAS,
    RULE_CATALOGUE,
    default_target,
    lint_paths,
    lint_source,
    module_name_for,
)
from repro.analysis.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: fixture file -> exact expected rule-id multiset.
EXPECTED = {
    "det_import_random.py": ["REP101", "REP101"],
    "det_np_global.py": ["REP102", "REP102", "REP102", "REP103"],
    "det_wallclock.py": ["REP104", "REP104", "REP104"],
    "det_wallclock_unscoped.py": [],
    "dur_unsafe_write.py": ["REP201"] * 5,
    "exc_hygiene.py": ["REP301", "REP302", "REP302"],
    "ord_set_iteration.py": ["REP401", "REP401", "REP401"],
    "rollout_worker_ident.py": ["REP403"] * 3,
    "shard_merge.py": ["REP402"] * 4,
    "svc_swallow.py": ["REP303", "REP303"],
    "pragma_suppression.py": ["REP102"],
    "pragma_standalone.py": [],
    "pragma_unused.py": ["REP001"],
    "pragma_unknown.py": ["REP002"],
    "clean_module.py": [],
}


# -- the gate ------------------------------------------------------------------


def test_source_tree_is_clean():
    """Tier-1: the whole repro package satisfies every invariant rule."""
    report = lint_paths([default_target()])
    assert report.files_checked > 50
    assert report.clean, "\n".join(f.format_text() for f in report.findings)


def test_fixture_expectations_cover_every_fixture():
    on_disk = {p.name for p in FIXTURES.glob("*.py")}
    assert on_disk == set(EXPECTED)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_fixture_findings(name):
    report = lint_paths([FIXTURES / name])
    got = sorted(f.rule for f in report.findings)
    assert got == sorted(EXPECTED[name]), "\n".join(
        f.format_text() for f in report.findings
    )


def test_fixture_tree_fails_as_a_whole():
    report = lint_paths([FIXTURES])
    expected_total = sum(len(v) for v in EXPECTED.values())
    assert len(report.findings) == expected_total
    assert not report.clean


# -- pragma semantics ----------------------------------------------------------


def test_pragma_suppresses_exactly_one_finding():
    source = (FIXTURES / "pragma_suppression.py").read_text()
    findings = lint_source(source, module="repro.fixture")
    assert [f.rule for f in findings] == ["REP102"]
    # Both calls violate without the pragma.
    bare = source.replace("# repro: allow-nondeterminism -- fixture: suppressed", "")
    findings = lint_source(bare, module="repro.fixture")
    assert [f.rule for f in findings] == ["REP102", "REP102"]


def test_standalone_pragma_attaches_to_next_code_line():
    findings = lint_source(
        (FIXTURES / "pragma_standalone.py").read_text(), module="repro.fixture"
    )
    assert findings == []


def test_unused_pragma_flagged_only_in_strict_mode():
    source = (FIXTURES / "pragma_unused.py").read_text()
    strict = lint_source(source, module="repro.fixture")
    assert [f.rule for f in strict] == ["REP001"]
    lax = lint_source(source, module="repro.fixture", strict_pragmas=False)
    assert lax == []


def test_unknown_pragma_always_flagged():
    source = (FIXTURES / "pragma_unknown.py").read_text()
    for strict in (True, False):
        findings = lint_source(
            source, module="repro.fixture", strict_pragmas=strict
        )
        assert [f.rule for f in findings] == ["REP002"]


def test_prose_mentioning_pragmas_is_not_a_pragma():
    source = "#: the `# repro: allow-broad-except` pragma is documented here\nx = 1\n"
    assert lint_source(source, module="repro.fixture") == []


# -- rule scoping --------------------------------------------------------------


def test_wallclock_scoped_to_deterministic_packages():
    source = "import time\nt = time.time()\n"
    assert lint_source(source, module="repro.sim.engine") != []
    assert lint_source(source, module="repro.core.runner") == []
    assert lint_source(source, module="repro.eval.harness") == []


def test_artifact_layer_exempt_from_write_rule():
    source = "fh = open('x', 'w')\n"
    assert lint_source(source, module="repro.core.artifacts") == []
    assert [f.rule for f in lint_source(source, module="repro.core.persistence")] == [
        "REP201"
    ]


def test_module_directive_overrides_path_stem():
    source = "# reprolint: module=repro.sim.engine\nimport time\nt = time.monotonic()\n"
    findings = lint_source(source, path="somewhere/loose_file.py")
    assert [f.rule for f in findings] == ["REP104"]


def test_module_name_for_walks_package_chain():
    target = default_target()
    assert module_name_for(target / "sim" / "engine.py") == "repro.sim.engine"
    assert module_name_for(target / "__init__.py") == "repro"


def test_reraise_handlers_are_sanctioned():
    source = (
        "try:\n    x = 1\nexcept Exception:\n    raise\n"
    )
    assert lint_source(source, module="repro.anything") == []


def test_service_swallow_scoped_to_service_package():
    source = "try:\n    x = 1\nexcept ValueError:\n    y = 2\n"
    assert [f.rule for f in lint_source(source, module="repro.service.guards")] == [
        "REP303"
    ]
    assert lint_source(source, module="repro.sim.engine") == []


def test_worker_identity_scoped_to_rollouts_package():
    source = "import os\npid = os.getpid()\n"
    assert [f.rule for f in lint_source(source, module="repro.rollouts.workers")] == [
        "REP403"
    ]
    assert lint_source(source, module="repro.service.loop") == []


def test_worker_identity_flags_wallclock_in_rollouts():
    source = "import time\nt = time.monotonic()\n"
    assert [f.rule for f in lint_source(source, module="repro.rollouts.executor")] == [
        "REP403"
    ]


def test_worker_identity_spawn_key_detected_through_attributes():
    source = (
        "import numpy as np\n"
        "rng = np.random.default_rng([seed, self.worker_id, episode_id])\n"
    )
    assert [f.rule for f in lint_source(source, module="repro.rollouts.spec")] == [
        "REP403"
    ]
    clean = (
        "import numpy as np\n"
        "rng = np.random.default_rng([seed, 115, episode_id])\n"
    )
    assert lint_source(clean, module="repro.rollouts.spec") == []


def test_service_swallow_satisfied_by_recorder_call():
    source = (
        "try:\n    x = 1\nexcept ValueError:\n"
        "    guard.quarantine(record, 'reason', 'detail')\n"
    )
    assert lint_source(source, module="repro.service.ingest") == []


# -- output contracts ----------------------------------------------------------


def test_json_format_contract(capsys):
    code = lint_main([str(FIXTURES / "det_np_global.py"), "--format", "json"])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    assert document["files_checked"] == 1
    assert document["total"] == 4
    assert document["counts"] == {"REP102": 3, "REP103": 1}
    finding = document["findings"][0]
    assert set(finding) == {"path", "line", "col", "rule", "message", "pragma"}


def test_text_format_is_file_line_col(capsys):
    code = lint_main([str(FIXTURES / "exc_hygiene.py")])
    assert code == 1
    out = capsys.readouterr().out.splitlines()
    assert all(":" in line and " REP" in line for line in out)


def test_cli_exit_codes(capsys):
    assert lint_main([str(FIXTURES / "clean_module.py")]) == 0
    assert lint_main([str(FIXTURES)]) == 1
    assert lint_main([str(FIXTURES / "does_not_exist.py")]) == 2
    assert lint_main(["--select", "REP999"]) == 2
    capsys.readouterr()


def test_cli_select_narrows_rules(capsys):
    code = lint_main([str(FIXTURES), "--select", "REP301"])
    assert code == 1
    out = capsys.readouterr().out
    assert "REP301" in out
    assert "REP102" not in out


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for doc in RULE_CATALOGUE:
        assert doc.rule_id in out


def test_repro_cli_has_lint_subcommand():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(FIXTURES / "clean_module.py")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr


def test_catalogue_pragmas_are_known():
    for doc in RULE_CATALOGUE:
        if doc.pragma:
            assert doc.pragma in KNOWN_PRAGMAS
    for rule in DEFAULT_RULES:
        assert rule.pragma in KNOWN_PRAGMAS


# -- external tools (gated: the container may not ship them) -------------------


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_core_and_ml():
    proc = subprocess.run(
        [
            "mypy",
            "--strict",
            str(REPO_ROOT / "src" / "repro" / "core"),
            str(REPO_ROOT / "src" / "repro" / "ml"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", str(REPO_ROOT / "src")],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

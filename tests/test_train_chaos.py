"""Training chaos harness: invariants, detection matching, report shape."""

from __future__ import annotations

import json

import pytest

from repro.training import TrainChaosConfig, TrainChaosHarness, run_train_chaos
from repro.training.chaos import DETECTION_MAP, _matches


def small_config(**overrides) -> TrainChaosConfig:
    defaults = dict(
        profile="train-mild",
        seeds=(0,),
        episodes=2,
        population_size=500,
        num_teams=8,
    )
    defaults.update(overrides)
    return TrainChaosConfig(**defaults)


class TestConfig:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            TrainChaosConfig(profile="train-nope")

    def test_needs_seeds_and_positive_sizes(self):
        with pytest.raises(ValueError):
            TrainChaosConfig(seeds=())
        with pytest.raises(ValueError):
            TrainChaosConfig(episodes=0)
        with pytest.raises(ValueError):
            TrainChaosConfig(recovery_floor=0.0)


class TestDetectionMatching:
    def test_step_fault_matches_same_window_kind(self):
        applied = {"kind": "nan-gradient", "episode": 1, "attempt": 0, "step": 4}
        hit = {"kind": "nan-loss", "episode": 1, "attempt": 0, "step": 5, "value": 0}
        assert _matches(applied, hit)
        other_attempt = dict(hit, attempt=1)
        assert not _matches(applied, other_attempt)
        wrong_kind = dict(hit, kind="reward-collapse")
        assert not _matches(applied, wrong_kind)

    def test_bitrot_matches_on_checkpoint_number(self):
        applied = {"kind": "checkpoint-bitrot", "episode": 2, "checkpoint": 3}
        hit = {"kind": "checkpoint-bitrot", "episode": 2, "attempt": 0, "value": 3.0}
        assert _matches(applied, hit)
        assert not _matches(applied, dict(hit, value=2.0))

    def test_map_covers_every_step_fault(self):
        assert set(DETECTION_MAP) == {
            "nan-gradient", "corrupt-replay", "reward-spike",
        }


class TestHarness:
    @pytest.fixture(scope="class")
    def report(self, michael_small):
        config = small_config()
        return TrainChaosHarness(config, dataset=michael_small).run()

    def test_all_invariants_hold(self, report):
        assert report["ok"], report["violations"]
        assert report["violations"] == []

    def test_faults_fired_and_were_detected(self, report):
        run = report["runs"][0]
        assert run["applied_count"] > 0
        assert run["anomalies"]
        assert run["recoveries"]
        assert not run["aborted"]

    def test_clean_run_was_bit_identical(self, report):
        assert report["runs"][0]["clean_identical"] is True

    def test_report_shape(self, report):
        assert report["profile"] == "train-mild"
        assert report["seeds"] == [0]
        run = report["runs"][0]
        for key in (
            "seed", "ok", "clean_identical", "aborted", "applied",
            "anomalies", "anomaly_kinds", "recoveries", "baseline_rates",
            "chaos_rates", "committed_checkpoints", "violations",
        ):
            assert key in run
        assert run["committed_checkpoints"] >= 1

    def test_report_round_trips_to_json(self, report, tmp_path):
        out = tmp_path / "report.json"
        out.write_text(json.dumps(report))
        assert json.loads(out.read_text()) == report


class TestRunTrainChaos:
    def test_writes_report_and_work_dir(self, michael_small, tmp_path):
        work = tmp_path / "work"
        out = tmp_path / "report.json"
        config = small_config(work_dir=str(work))
        report = run_train_chaos(config, out_path=out, dataset=michael_small)
        with open(out) as fh:
            assert json.load(fh) == report
        # The persisted run dirs (journals, checkpoints) survive for CI.
        seed_dir = work / "seed-0"
        assert (seed_dir / "chaos" / "sentinel-journal.json").exists()
        assert list((seed_dir / "chaos").glob("ckpt-*"))

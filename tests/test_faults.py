"""Fault injection: models, profiles, engine degradation paths, determinism."""

import numpy as np
import pytest

from repro.core.positions import DegradedPositionFeed
from repro.data.charlotte import build_charlotte_scenario
from repro.dispatch.base import (
    DispatchGuard,
    Dispatcher,
    command_segment,
)
from repro.faults import (
    CommLossFault,
    DispatcherFailureFault,
    FaultInjector,
    FaultProfile,
    GpsDropoutFault,
    OutageWindow,
    PROFILES,
    RoadClosureFault,
    TeamBreakdownFault,
    get_profile,
    make_injector,
    sample_windows,
)
from repro.roadnet.generator import RoadNetworkConfig
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.requests import RescueRequest
from repro.sim.teams import RescueTeam, TeamState
from repro.weather.storms import FLORENCE

DAY = 86_400.0
T0 = 2 * DAY  # dry pre-storm day: engine mechanics are deterministic


@pytest.fixture(scope="module")
def small_scenario():
    return build_charlotte_scenario(
        FLORENCE, RoadNetworkConfig(grid_cols=8, grid_rows=8)
    )


class ScriptedDispatcher(Dispatcher):
    name = "Scripted"

    def __init__(self, script):
        self.script = script
        self.cycle = 0

    def dispatch(self, obs):
        commands = self.script.get(self.cycle, {})
        self.cycle += 1
        return commands


def _request_near(scenario, node, dt=0.0):
    seg = scenario.network.out_segments(node)[0]
    return RescueRequest(0, 999, T0 + dt, seg.segment_id, node)


def _result_fingerprint(result):
    return (
        tuple(result.pickups),
        tuple(result.deliveries),
        tuple(result.serving_samples),
        tuple(result.incidents),
    )


class TestProfiles:
    def test_shipped_profiles(self):
        assert set(PROFILES) == {"none", "mild", "severe", "blackout"}
        assert get_profile("none").is_null
        for name in ("mild", "severe", "blackout"):
            assert not get_profile(name).is_null

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            get_profile("catastrophic")

    def test_make_injector_none_is_disabled(self):
        assert make_injector("none", 0.0, DAY) is None
        assert make_injector("severe", 0.0, DAY) is not None

    def test_injector_validation(self):
        profile = get_profile("severe")
        with pytest.raises(ValueError):
            FaultInjector(profile, 10.0, 5.0)
        with pytest.raises(ValueError):
            FaultInjector(profile, 0.0, DAY, seed=-1)


class TestSampling:
    def test_outage_window_covers(self):
        w = OutageWindow(10.0, 20.0)
        assert w.covers(10.0) and w.covers(19.999)
        assert not w.covers(20.0) and not w.covers(9.999)

    def test_sample_windows_disjoint_sorted_clipped(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            windows = sample_windows(rng, 0.0, DAY, 1.0, 5.0, 4 * 3_600.0)
            prev_end = -1.0
            for w in windows:
                assert 0.0 <= w.start_s < w.end_s <= DAY
                assert w.start_s > prev_end  # merged: strictly disjoint
                prev_end = w.end_s

    def test_zero_probability_never_affects(self):
        rng = np.random.default_rng(0)
        assert sample_windows(rng, 0.0, DAY, 0.0, 5.0, 3_600.0) == ()

    def test_query_order_independent(self):
        a = make_injector("severe", 0.0, DAY, seed=3)
        b = make_injector("severe", 0.0, DAY, seed=3)
        ids = list(range(30))
        fwd = [a.comm_blocked(i, 40_000.0) for i in ids]
        rev = [b.comm_blocked(i, 40_000.0) for i in reversed(ids)]
        assert fwd == list(reversed(rev))

    def test_seed_changes_schedule(self):
        t = 40_000.0
        ids = range(300)
        a = make_injector("blackout", 0.0, DAY, seed=0)
        b = make_injector("blackout", 0.0, DAY, seed=1)
        assert [a.gps_stale(i, t) for i in ids] != [b.gps_stale(i, t) for i in ids]

    def test_closures_bound_once(self):
        inj = make_injector("blackout", 0.0, DAY, seed=0)
        inj.bind_segments(list(range(500)))
        first = inj.closed_segments(DAY / 2)
        inj.bind_segments(list(range(500, 900)))  # ignored: already bound
        assert inj.closed_segments(DAY / 2) == first
        assert first  # blackout closes plenty out of 500 segments


class TestDispatchGuard:
    class _Boom(Dispatcher):
        name = "Boom"

        def dispatch(self, obs):
            raise RuntimeError("solver crashed")

        def on_cycle_end(self, obs):
            raise ValueError("training diverged")

    def test_exception_becomes_fallback(self):
        guard = DispatchGuard(self._Boom())
        action, incident = guard.dispatch(None)
        assert action == {}
        assert "solver crashed" in incident
        assert guard.fallback_count == 1

    def test_budget_overrun_becomes_fallback(self):
        import time

        class Slow(Dispatcher):
            name = "Slow"

            def dispatch(self, obs):
                time.sleep(0.05)
                return {0: command_segment(1)}

        guard = DispatchGuard(Slow(), budget_s=0.001)
        action, incident = guard.dispatch(None)
        assert action == {}
        assert "compute budget" in incident

    def test_within_budget_passes_through(self):
        class Fast(Dispatcher):
            name = "Fast"

            def dispatch(self, obs):
                return {0: command_segment(1)}

        guard = DispatchGuard(Fast(), budget_s=60.0)
        action, incident = guard.dispatch(None)
        assert incident is None
        assert action == {0: command_segment(1)}

    def test_hooks_guarded(self):
        guard = DispatchGuard(self._Boom())
        assert "training diverged" in guard.on_cycle_end(None)
        assert guard.hook_error_count == 1

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            DispatchGuard(self._Boom(), budget_s=0.0)


class TestTeamBreakdownState:
    def test_break_down_and_repair(self):
        team = RescueTeam(team_id=0, capacity=5, node=0)
        assert not team.is_down and team.is_assignable
        team.break_down(500.0)
        assert team.is_down
        assert not team.is_assignable
        assert team.state is TeamState.IDLE
        team.repair()
        assert not team.is_down and team.is_assignable


class TestEngineDegradation:
    def test_crashing_dispatcher_does_not_abort_run(self, small_scenario):
        scen = small_scenario
        node = scen.network.landmark_ids()[10]
        req = _request_near(scen, node)

        class Crashy(ScriptedDispatcher):
            def dispatch(self, obs):
                self.cycle += 1
                if self.cycle % 2 == 0:
                    raise RuntimeError("boom")
                return {0: command_segment(req.segment_id)}

        sim = RescueSimulator(
            scen, [req], Crashy({}),
            SimulationConfig(t0_s=T0, t1_s=T0 + 6 * 3_600, num_teams=1, seed=3),
        )
        result = sim.run()
        m = SimulationMetrics(result)
        assert result.num_served == 1  # surviving cycles still dispatch
        assert m.fallback_activations > 0
        assert m.incident_counts()["dispatcher_fallback"] == m.fallback_activations

    def test_injected_dispatcher_failure_activates_fallback(self, small_scenario):
        scen = small_scenario
        profile = FaultProfile(
            name="disp-only", dispatcher=DispatcherFailureFault(p_fail_per_cycle=1.0)
        )
        inj = FaultInjector(profile, T0, T0 + 2 * 3_600, seed=0)
        node = scen.network.landmark_ids()[10]
        req = _request_near(scen, node)
        sim = RescueSimulator(
            scen, [req],
            ScriptedDispatcher({i: {0: command_segment(req.segment_id)} for i in range(40)}),
            SimulationConfig(t0_s=T0, t1_s=T0 + 2 * 3_600, num_teams=1, seed=3),
            faults=inj,
        )
        result = sim.run()
        m = SimulationMetrics(result)
        # Every cycle failed: the dispatcher never ran, nothing was served.
        assert result.num_served == 0
        assert m.fallback_activations == len(result.serving_samples)

    def test_comm_blackout_drops_commands(self, small_scenario):
        scen = small_scenario
        profile = FaultProfile(
            name="comm-only",
            comm=CommLossFault(p_affected=1.0, outages_per_team=1.0, mean_outage_s=10 * DAY),
        )
        inj = FaultInjector(profile, T0 - DAY, T0 + 2 * DAY, seed=1)
        # Guarantee the whole window is one long outage for team 0.
        inj._comm[0] = (OutageWindow(T0 - DAY, T0 + 2 * DAY),)
        node = scen.network.landmark_ids()[10]
        req = _request_near(scen, node)
        sim = RescueSimulator(
            scen, [req],
            ScriptedDispatcher({i: {0: command_segment(req.segment_id)} for i in range(40)}),
            SimulationConfig(t0_s=T0, t1_s=T0 + 4 * 3_600, num_teams=1, seed=3),
            faults=inj,
        )
        result = sim.run()
        m = SimulationMetrics(result)
        assert result.num_served == 0  # no command ever reached the team
        assert m.dropped_commands > 0

    def test_breakdown_strands_then_recovers(self, small_scenario):
        scen = small_scenario
        profile = FaultProfile(
            name="bk-only",
            breakdown=TeamBreakdownFault(p_affected=1.0, breakdowns_per_team=1.0),
        )
        inj = FaultInjector(profile, T0, T0 + DAY, seed=1)
        # Break down one hour in, repaired two hours later.
        inj._breakdown[0] = (OutageWindow(T0 + 3_600.0, T0 + 3 * 3_600.0),)
        node = scen.network.landmark_ids()[10]
        req = _request_near(scen, node)
        sim = RescueSimulator(
            scen, [req],
            ScriptedDispatcher({i: {0: command_segment(req.segment_id)} for i in range(300)}),
            SimulationConfig(t0_s=T0, t1_s=T0 + 12 * 3_600, num_teams=1, seed=3),
            faults=inj,
        )
        result = sim.run()
        m = SimulationMetrics(result)
        assert m.breakdowns == 1
        assert m.incident_counts().get("repair_complete") == 1
        # The team recovers and the mission still completes.
        assert result.num_served == 1
        assert len(result.deliveries) == 1

    def test_fault_closures_feed_reroutes(self, small_scenario):
        scen = small_scenario
        profile = FaultProfile(
            name="closure-only",
            closure=RoadClosureFault(
                p_affected=0.5, closures_per_segment=1.0, mean_closure_s=12 * 3_600.0
            ),
        )
        inj = FaultInjector(profile, T0, T0 + DAY, seed=5)
        node = scen.network.landmark_ids()[10]
        req = _request_near(scen, node)
        sim = RescueSimulator(
            scen, [req],
            ScriptedDispatcher({i: {0: command_segment(req.segment_id)} for i in range(300)}),
            SimulationConfig(t0_s=T0, t1_s=T0 + 12 * 3_600, num_teams=1, seed=3),
            faults=inj,
        )
        result = sim.run()  # must complete despite widespread closures
        assert inj.closed_segments(T0 + 6 * 3_600)  # closures actually active

    def test_dispatch_budget_config(self, small_scenario):
        import time

        scen = small_scenario
        node = scen.network.landmark_ids()[10]
        req = _request_near(scen, node)

        class Slow(ScriptedDispatcher):
            def dispatch(self, obs):
                time.sleep(0.02)
                return {0: command_segment(req.segment_id)}

        sim = RescueSimulator(
            scen, [req], Slow({}),
            SimulationConfig(
                t0_s=T0, t1_s=T0 + 2 * 3_600, num_teams=1, seed=3,
                dispatch_budget_s=0.001,
            ),
        )
        result = sim.run()
        m = SimulationMetrics(result)
        assert result.num_served == 0  # every cycle blew the budget
        assert m.fallback_activations == len(result.serving_samples)


class TestFaultDeterminism:
    def _run(self, scen, faults):
        node = scen.network.landmark_ids()[10]
        req = _request_near(scen, node)
        script = {i: {j: command_segment(req.segment_id) for j in range(4)} for i in range(300)}
        sim = RescueSimulator(
            scen, [req], ScriptedDispatcher(script),
            SimulationConfig(t0_s=T0, t1_s=T0 + 24 * 3_600, num_teams=4, seed=3),
            faults=faults,
        )
        return sim.run()

    def test_same_seed_same_profile_bit_identical(self, small_scenario):
        scen = small_scenario
        r1 = self._run(scen, make_injector("severe", T0, T0 + 24 * 3_600, seed=11))
        r2 = self._run(scen, make_injector("severe", T0, T0 + 24 * 3_600, seed=11))
        assert _result_fingerprint(r1) == _result_fingerprint(r2)
        m1, m2 = SimulationMetrics(r1), SimulationMetrics(r2)
        assert m1.incident_counts() == m2.incident_counts()
        assert np.array_equal(m1.served_per_hour(), m2.served_per_hour())
        assert np.array_equal(m1.driving_delays(), m2.driving_delays())

    def test_none_profile_matches_no_injector_exactly(self, small_scenario):
        scen = small_scenario
        baseline = self._run(scen, None)
        guarded = self._run(scen, make_injector("none", T0, T0 + 24 * 3_600, seed=11))
        assert _result_fingerprint(baseline) == _result_fingerprint(guarded)


class TestDegradedPositionFeed:
    class _StubInjector:
        def __init__(self, stale_ids):
            self.stale_ids = stale_ids

        def gps_stale(self, pid, t):
            return pid in self.stale_ids

    def test_drops_stale_without_history(self):
        inner = lambda t: {1: 10, 2: 20, 3: 30}  # noqa: E731
        feed = DegradedPositionFeed(inner, self._StubInjector({2}))
        assert feed(0.0) == {1: 10, 3: 30}
        assert feed.stale_drops == 1
        assert feed.fallback_uses == 0

    def test_falls_back_to_habitual_position(self):
        class InnerWithHistory:
            def __call__(self, t):
                return {1: 10, 2: 20}

            def habitual_node(self, pid, t):
                return 99 if pid == 2 else None

        feed = DegradedPositionFeed(InnerWithHistory(), self._StubInjector({2}))
        assert feed(0.0) == {1: 10, 2: 99}
        assert feed.fallback_uses == 1
        assert feed.stale_drops == 0

    def test_no_faults_is_identity(self):
        inner = lambda t: {1: 10, 2: 20}  # noqa: E731
        feed = DegradedPositionFeed(inner, self._StubInjector(set()))
        assert feed(5.0) == inner(5.0)

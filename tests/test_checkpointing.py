"""Crash-safe checkpointing and resumable training.

The load-bearing guarantee: training interrupted at episode *k* and
resumed is **bit-identical** to an uninterrupted run — same Q-network
weights, epsilon, learn-step counter and episode service rates.  On top
of that: corrupt checkpoints (truncated, bit-flipped, unversioned,
uncommitted) raise typed errors, get quarantined, and recovery falls back
to the previous valid checkpoint.
"""

import shutil

import numpy as np
import pytest

from repro.core.artifacts import (
    ArtifactError,
    ArtifactVersionError,
    CorruptArtifactError,
    MissingManifestError,
    atomic_savez,
    write_manifest,
)
from repro.core.config import MobiRescueConfig
from repro.core.persistence import (
    TrainingCheckpoint,
    checkpoint_from_training,
    find_latest_valid_checkpoint,
    list_checkpoints,
    load_checkpoint,
    prune_checkpoints,
    save_checkpoint,
)
from repro.core.rl_dispatcher import make_agent
from repro.core.runner import RetryPolicy, Supervisor, supervised_training
from repro.core.training import resume_training, train_mobirescue
from repro.ml.replay import ReplayBuffer

CFG = MobiRescueConfig(seed=1)
EPISODES = 2
NUM_TEAMS = 12


def _weights_equal(net_a, net_b) -> bool:
    return all(
        np.array_equal(wa, wb) and np.array_equal(ba, bb)
        for (wa, ba), (wb, bb) in zip(net_a.get_weights(), net_b.get_weights())
    )


# -- unit level: agent/buffer state roundtrips (no dataset needed) -----------


class TestAgentStateRoundtrip:
    def fill_agent(self, agent, cfg, n=200, seed=0):
        rng = np.random.default_rng(seed)
        for _ in range(n):
            agent.remember(
                rng.random(cfg.state_dim),
                int(rng.integers(cfg.num_actions)),
                float(rng.random()),
                rng.random(cfg.state_dim),
                bool(rng.random() < 0.1),
            )

    def test_restored_agent_continues_identically(self):
        cfg = MobiRescueConfig(num_candidates=3, seed=7)
        agent = make_agent(cfg)
        self.fill_agent(agent, cfg)
        for _ in range(10):
            agent.learn()

        twin = make_agent(cfg)
        twin.set_state(agent.get_state())

        state = np.linspace(0.0, 1.0, cfg.state_dim)
        for _ in range(5):
            # Identical losses require identical replay sampling (RNG),
            # identical Adam state, and an identical target net.
            assert agent.learn() == twin.learn()
            assert agent.act(state) == twin.act(state)
        assert agent.epsilon == twin.epsilon
        assert agent.learn_steps == twin.learn_steps
        assert _weights_equal(agent.q_net, twin.q_net)
        assert _weights_equal(agent.target_net, twin.target_net)

    def test_buffer_capacity_mismatch_rejected(self):
        buffer = ReplayBuffer(16, 4)
        other = ReplayBuffer(32, 4)
        with pytest.raises(ValueError):
            other.set_state(buffer.get_state())


# -- checkpoint store ---------------------------------------------------------


def _synthetic_checkpoint(episodes_done=1, rates=(0.5,)):
    cfg = MobiRescueConfig(num_candidates=3, seed=5)
    agent = make_agent(cfg)
    return TrainingCheckpoint(
        episodes_done=episodes_done,
        service_rates=list(rates),
        config=cfg,
        agent_state=agent.get_state(),
        predictor_arrays={
            "svm_alpha": np.ones(3),
            "svm_b": np.array([0.1]),
            "svm_sv_x": np.ones((3, 3)),
            "svm_sv_y": np.ones(3),
            "svm_params": np.array(["rbf", "0.5", "3", "8.0"]),
            "scaler_mean": np.zeros(3),
            "scaler_std": np.ones(3),
        },
    )


class TestCheckpointStore:
    def test_roundtrip(self, tmp_path):
        ckpt = _synthetic_checkpoint(episodes_done=3, rates=(0.5, 0.25, 0.75))
        path = save_checkpoint(tmp_path, ckpt)
        assert path.name == "ckpt-000003"
        loaded = load_checkpoint(path)
        assert loaded.episodes_done == 3
        assert loaded.service_rates == [0.5, 0.25, 0.75]
        assert loaded.config == ckpt.config
        agent = make_agent(loaded.config)
        agent.set_state(loaded.agent_state)

    def test_truncated_archive(self, tmp_path):
        path = save_checkpoint(tmp_path, _synthetic_checkpoint())
        state = path / "state.npz"
        state.write_bytes(state.read_bytes()[: state.stat().st_size // 2])
        with pytest.raises(CorruptArtifactError):
            load_checkpoint(path)

    def test_flipped_byte(self, tmp_path):
        path = save_checkpoint(tmp_path, _synthetic_checkpoint())
        state = path / "state.npz"
        raw = bytearray(state.read_bytes())
        raw[120] ^= 0x01
        state.write_bytes(bytes(raw))
        with pytest.raises(CorruptArtifactError):
            load_checkpoint(path)

    def test_missing_manifest(self, tmp_path):
        path = save_checkpoint(tmp_path, _synthetic_checkpoint())
        (path / "manifest.json").unlink()
        with pytest.raises(MissingManifestError):
            load_checkpoint(path)

    def test_wrong_version(self, tmp_path):
        path = save_checkpoint(tmp_path, _synthetic_checkpoint())
        with np.load(path / "state.npz", allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["version"] = np.array([99])
        atomic_savez(path / "state.npz", **arrays)
        write_manifest(path, 99)  # re-commit so only the version is wrong
        with pytest.raises(ArtifactVersionError):
            load_checkpoint(path)

    def test_fallback_skips_and_quarantines_corrupt_latest(self, tmp_path):
        save_checkpoint(tmp_path, _synthetic_checkpoint(1, (0.5,)))
        path2 = save_checkpoint(tmp_path, _synthetic_checkpoint(2, (0.5, 0.25)))
        raw = bytearray((path2 / "state.npz").read_bytes())
        raw[100] ^= 0xFF
        (path2 / "state.npz").write_bytes(bytes(raw))

        incidents: list[tuple[str, str]] = []
        found = find_latest_valid_checkpoint(
            tmp_path, on_incident=lambda kind, msg: incidents.append((kind, msg))
        )
        assert found is not None
        ckpt, path = found
        assert ckpt.episodes_done == 1
        assert path.name == "ckpt-000001"
        # The damaged checkpoint is quarantined, not retried forever.
        assert not path2.exists()
        assert (tmp_path / "quarantine" / "ckpt-000002").exists()
        assert [kind for kind, _ in incidents] == ["corrupt-checkpoint"]
        assert [p.name for p in list_checkpoints(tmp_path)] == ["ckpt-000001"]

    def test_prune_keeps_newest(self, tmp_path):
        for ep in range(1, 6):
            save_checkpoint(tmp_path, _synthetic_checkpoint(ep, (0.5,) * ep))
        removed = prune_checkpoints(tmp_path, keep=3)
        assert [p.name for p in removed] == ["ckpt-000001", "ckpt-000002"]
        assert [p.name for p in list_checkpoints(tmp_path)] == [
            "ckpt-000003", "ckpt-000004", "ckpt-000005",
        ]
        with pytest.raises(ValueError):
            prune_checkpoints(tmp_path, keep=1)


# -- integration: interrupt + resume is bit-identical -------------------------


@pytest.fixture(scope="module")
def straight(michael_small, tmp_path_factory):
    """Uninterrupted 2-episode training, checkpointing as it goes."""
    ckpt_dir = tmp_path_factory.mktemp("straight-ckpt")
    scenario, bundle = michael_small
    trained = train_mobirescue(
        scenario, bundle, CFG, episodes=EPISODES, num_teams=NUM_TEAMS,
        checkpoint_dir=ckpt_dir,
    )
    return trained, ckpt_dir


@pytest.fixture(scope="module")
def resumed(michael_small, tmp_path_factory):
    """The same run interrupted after episode 1, then resumed to the end."""
    ckpt_dir = tmp_path_factory.mktemp("resumed-ckpt")
    scenario, bundle = michael_small
    train_mobirescue(
        scenario, bundle, CFG, episodes=1, num_teams=NUM_TEAMS,
        checkpoint_dir=ckpt_dir,
    )
    trained = resume_training(
        ckpt_dir, scenario, bundle, episodes=EPISODES, num_teams=NUM_TEAMS
    )
    return trained, ckpt_dir


class TestResumeDeterminism:
    def test_bit_identical_weights_and_counters(self, straight, resumed):
        a, _ = straight
        b, _ = resumed
        assert _weights_equal(a.agent.q_net, b.agent.q_net)
        assert _weights_equal(a.agent.target_net, b.agent.target_net)
        assert a.agent.epsilon == b.agent.epsilon
        assert a.agent.learn_steps == b.agent.learn_steps
        assert a.episode_service_rates == b.episode_service_rates
        assert a.episodes_run == b.episodes_run

    def test_replay_and_rng_state_survive(self, straight, resumed):
        a, _ = straight
        b, _ = resumed
        sa, sb = a.agent.get_state(), b.agent.get_state()
        assert str(sa["rng_json"][0]) == str(sb["rng_json"][0])
        np.testing.assert_array_equal(sa["buffer.meta"], sb["buffer.meta"])
        np.testing.assert_array_equal(sa["buffer.states"], sb["buffer.states"])

    def test_checkpoints_committed_per_episode(self, straight):
        _, ckpt_dir = straight
        names = [p.name for p in list_checkpoints(ckpt_dir)]
        assert names == [f"ckpt-{ep:06d}" for ep in range(1, EPISODES + 1)]
        for path in list_checkpoints(ckpt_dir):
            load_checkpoint(path)  # verifies manifests too

    def test_resume_with_target_met_is_noop(self, straight, michael_small):
        trained, ckpt_dir = straight
        scenario, bundle = michael_small
        again = resume_training(
            ckpt_dir, scenario, bundle, episodes=EPISODES, num_teams=NUM_TEAMS
        )
        assert _weights_equal(trained.agent.q_net, again.agent.q_net)
        assert again.episode_service_rates == trained.episode_service_rates

    def test_resume_without_checkpoints_raises(self, tmp_path, michael_small):
        scenario, bundle = michael_small
        with pytest.raises(ArtifactError):
            resume_training(tmp_path / "empty", scenario, bundle, episodes=1)


class TestSupervisedTraining:
    def test_recovers_from_corrupt_latest_checkpoint(
        self, straight, resumed, michael_small, tmp_path
    ):
        """The acceptance scenario: latest checkpoint is damaged ->
        quarantine it, resume from the previous valid one, end state is
        bit-identical to the uninterrupted run; incidents are recorded."""
        trained, ckpt_dir = straight
        scenario, bundle = michael_small
        work = tmp_path / "ckpts"
        shutil.copytree(ckpt_dir, work)
        latest = list_checkpoints(work)[-1]
        raw = bytearray((latest / "state.npz").read_bytes())
        raw[200] ^= 0xFF
        (latest / "state.npz").write_bytes(bytes(raw))

        supervisor = Supervisor(policy=RetryPolicy(max_attempts=2), name="test")
        recovered = supervised_training(
            scenario,
            bundle,
            checkpoint_dir=work,
            episodes=EPISODES,
            num_teams=NUM_TEAMS,
            supervisor=supervisor,
        )
        assert (work / "quarantine" / latest.name).exists()
        kinds = [i.kind for i in supervisor.incidents]
        assert "corrupt-checkpoint" in kinds
        assert "resumed" in kinds
        assert _weights_equal(trained.agent.q_net, recovered.agent.q_net)
        assert recovered.episode_service_rates == trained.episode_service_rates

    def test_fresh_directory_trains_from_scratch(self, michael_small, tmp_path):
        scenario, bundle = michael_small
        supervisor = Supervisor(name="fresh")
        trained = supervised_training(
            scenario,
            bundle,
            config=CFG,
            checkpoint_dir=tmp_path / "fresh",
            episodes=1,
            num_teams=NUM_TEAMS,
            supervisor=supervisor,
        )
        assert trained.episodes_run >= 0
        assert [p.name for p in list_checkpoints(tmp_path / "fresh")] == ["ckpt-000001"]
        assert all(i.kind != "resumed" for i in supervisor.incidents)

"""Worker-chaos harness: real process deaths, invariant verdicts, CLI.

One small Florence eval world is built per module; the harness runs real
parallel campaigns against it with the ``worker-kill`` profile and the
tests assert the four invariants the CI gate relies on.  The CLI routing
tests monkeypatch the campaign runner so they exercise exit codes and
report plumbing without rebuilding the world.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.faults import WorkerFaultInjector, get_worker_profile
from repro.rollouts.chaos import (
    RolloutChaosConfig,
    RolloutChaosHarness,
    _expects_kills,
)

CONFIG = RolloutChaosConfig(
    profile="worker-kill",
    seeds=(0,),
    episodes=4,
    num_workers=2,
    population_size=250,
    num_teams=10,
    window_days=0.25,
)


@pytest.fixture(scope="module")
def harness():
    return RolloutChaosHarness(CONFIG)


@pytest.fixture(scope="module")
def report(harness):
    return harness.run()


class TestWorkerKillInvariants:
    def test_all_invariants_hold(self, report):
        assert report["ok"], report["violations"]

    def test_zero_episodes_lost(self, report):
        for run in report["runs"]:
            assert run["zero_lost_ok"]
            chaos = run["chaos"]
            assert (
                chaos["completed"] + len(chaos["quarantined_ids"])
                == chaos["total"]
            )

    def test_chaos_actually_killed_workers(self, harness, report):
        """A chaos run that hurt nothing proves nothing."""
        injector = WorkerFaultInjector(
            get_worker_profile("worker-kill"), seed=CONFIG.seeds[0]
        )
        episode_ids = [s.episode_id for s in harness.specs]
        assert _expects_kills(injector, episode_ids, budget=4)
        [run] = report["runs"]
        assert run["chaos_bit_ok"]
        assert run["worker_deaths"] > 0

    def test_quarantine_set_equals_poison_set(self, report):
        for run in report["runs"]:
            assert run["quarantine_ok"]
            assert run["quarantined_ids"] == run["expected_poison"]

    def test_merged_output_matches_serial_restriction(self, harness, report):
        [run] = report["runs"]
        survivors = [
            s.episode_id
            for s in harness.specs
            if s.episode_id not in run["quarantined_ids"]
        ]
        assert (
            run["chaos"]["fingerprint"]
            == harness.serial.merged.restrict(survivors).fingerprint()
        )

    def test_report_shape_and_serializability(self, report):
        encoded = json.dumps(report)
        assert report["profile"] == "worker-kill"
        assert report["serial_fingerprint"]
        assert '"zero_lost_ok"' in encoded
        [run] = report["runs"]
        assert set(run) >= {
            "seed",
            "ok",
            "zero_lost_ok",
            "equivalence_ok",
            "quarantine_ok",
            "chaos_bit_ok",
            "worker_deaths",
            "quarantined_ids",
            "expected_poison",
            "chaos",
        }


class TestChaosConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seeds": ()},
            {"episodes": 0},
            {"num_workers": 0},
            {"window_days": 0.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            RolloutChaosConfig(**kwargs)


class TestChaosCli:
    def fake_report(self, ok=True):
        return {
            "profile": "worker-kill",
            "seeds": [0],
            "episodes": 4,
            "num_workers": 2,
            "serial_fingerprint": "cafe" * 16,
            "ok": ok,
            "violations": [] if ok else ["seed 0: 1 episodes lost"],
            "runs": [
                {
                    "seed": 0,
                    "ok": ok,
                    "worker_deaths": 3,
                    "quarantined_ids": [2],
                }
            ],
        }

    def test_worker_profiles_route_to_rollout_harness(self, monkeypatch, capsys):
        seen = {}

        def runner(config, out_path=None, progress=None):
            seen["config"] = config
            return self.fake_report()

        monkeypatch.setattr("repro.rollouts.chaos.run_rollout_chaos", runner)
        assert main(["chaos", "--profile", "worker-kill", "--quick",
                     "--seeds", "0"]) == 0
        assert seen["config"].profile == "worker-kill"
        assert seen["config"].seeds == (0,)
        assert seen["config"].episodes == 4
        out = capsys.readouterr().out
        assert "worker deaths 3" in out
        assert "all worker chaos invariants held" in out

    def test_violations_fail_the_gate(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "repro.rollouts.chaos.run_rollout_chaos",
            lambda config, out_path=None, progress=None: self.fake_report(ok=False),
        )
        assert main(["chaos", "--profile", "worker-kill", "--quick"]) == 1
        assert "VIOLATION" in capsys.readouterr().err

    def test_report_artifact_is_written(self, monkeypatch, tmp_path, capsys):
        out = tmp_path / "worker-chaos.json"

        def runner(config, out_path=None, progress=None):
            report = self.fake_report()
            if out_path:
                out.write_text(json.dumps(report))
            return report

        monkeypatch.setattr("repro.rollouts.chaos.run_rollout_chaos", runner)
        assert main(["chaos", "--profile", "worker-kill", "--quick",
                     "--out", str(out)]) == 0
        assert json.loads(out.read_text())["ok"] is True
        assert f"wrote {out}" in capsys.readouterr().out

    def test_unknown_worker_profile_exits_2(self, capsys):
        assert main(["chaos", "--profile", "worker-typo"]) == 2
        assert "worker-kill" in capsys.readouterr().err

    def test_empty_seed_list_exits_2(self, capsys):
        assert main(["chaos", "--profile", "worker-kill", "--seeds", " "]) == 2
        capsys.readouterr()

"""Benchmark-regression gate: ``repro bench --quick`` under pytest.

Runs the quick microbenchmark suite once, validates the emitted BENCH
payload against its schema, checks the speedups the performance layer
exists for, and fails if any hot path regresses more than 2x against the
committed baseline (``benchmarks/baseline_bench.json``).

The 2x bound plus a small absolute grace keeps the gate meaningful while
tolerating machine-to-machine and scheduler variance: a genuine
complexity regression (cache disabled, vectorization dropped) overshoots
it by an order of magnitude.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.perf.bench import (
    HOT_PATHS,
    default_output_path,
    format_bench_table,
    run_bench,
    validate_bench_payload,
    write_bench,
)

BASELINE_PATH = pathlib.Path(__file__).parent.parent / "benchmarks" / "baseline_bench.json"

#: Allowed = REGRESSION_FACTOR * baseline + ABSOLUTE_GRACE_S seconds/op.
REGRESSION_FACTOR = 2.0
ABSOLUTE_GRACE_S = 0.010


@pytest.fixture(scope="module")
def payload():
    return run_bench(quick=True)


@pytest.fixture(scope="module")
def baseline():
    with open(BASELINE_PATH) as fh:
        data = json.load(fh)
    assert data["format"] == "repro-bench-baseline"
    assert data["quick"] is True
    return data


class TestBenchPayload:
    def test_schema_valid(self, payload):
        assert validate_bench_payload(payload) == []

    def test_quick_flag_and_metadata(self, payload):
        assert payload["quick"] is True
        assert payload["peak_rss_kib"] > 0
        assert default_output_path(payload) == f"BENCH_{payload['date']}.json"

    def test_speedups_hold(self, payload):
        """The reasons the perf layer exists, measured on this machine.

        Speedups are same-machine ratios, so they are robust to absolute
        machine speed; the floors match the acceptance criteria."""
        assert payload["speedups"]["routing"] >= 5.0
        assert payload["speedups"]["prediction"] >= 3.0
        # The cached full-tick run must at minimum not regress materially.
        assert payload["speedups"]["full_tick"] >= 0.5
        # The event kernel's acceptance floor over the cached tick loop.
        assert payload["speedups"]["event_kernel"] >= 5.0
        # Inverted pair: sentinel-on over sentinel-off learn steps.  The
        # numeric-health screen must stay within 10% of free (same-machine
        # ratio, self-checked for bit-equality inside the workload).
        assert payload["speedups"]["sentinel_overhead"] <= 1.10

    def test_table_renders(self, payload):
        table = format_bench_table(payload)
        for name in HOT_PATHS:
            assert name in table
        assert "speedup routing" in table


class TestRegressionGate:
    def test_baseline_covers_all_hot_paths(self, baseline):
        assert set(HOT_PATHS) <= set(baseline["seconds_per_op"])

    @pytest.mark.parametrize("name", HOT_PATHS)
    def test_hot_path_within_2x_of_baseline(self, payload, baseline, name):
        measured = payload["benchmarks"][name]["seconds_per_op"]
        allowed = REGRESSION_FACTOR * baseline["seconds_per_op"][name] + ABSOLUTE_GRACE_S
        assert measured <= allowed, (
            f"{name} regressed: {measured:.6f}s/op vs baseline "
            f"{baseline['seconds_per_op'][name]:.6f}s/op "
            f"(allowed {allowed:.6f}); refresh benchmarks/baseline_bench.json "
            f"only for an intentional change"
        )


class TestDurableOutput:
    def test_write_and_reload_roundtrip(self, payload, tmp_path):
        out = tmp_path / "BENCH_test.json"
        write_bench(payload, str(out))
        with open(out) as fh:
            reloaded = json.load(fh)
        assert reloaded == payload
        assert validate_bench_payload(reloaded) == []

    def test_write_rejects_invalid_payload(self, tmp_path):
        with pytest.raises(ValueError):
            write_bench({"format": "nope"}, str(tmp_path / "x.json"))

    def test_cli_bench_writes_artifact(self, payload, tmp_path, monkeypatch, capsys):
        """`repro bench --quick --out ...` end to end, reusing the already
        measured payload instead of re-running the suite."""
        import repro.perf.bench as bench_mod
        from repro.cli import main

        monkeypatch.setattr(bench_mod, "run_bench", lambda quick=False: dict(payload))
        out = tmp_path / "BENCH_cli.json"
        assert main(["bench", "--quick", "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "speedup routing" in captured
        with open(out) as fh:
            assert validate_bench_payload(json.load(fh)) == []


class TestValidator:
    def test_rejects_wrong_format(self, payload):
        bad = dict(payload)
        bad["format"] = "other"
        assert any("format" in p for p in validate_bench_payload(bad))

    def test_rejects_missing_hot_path(self, payload):
        bad = dict(payload)
        bad["benchmarks"] = {
            k: v for k, v in payload["benchmarks"].items() if k != "routing_cached"
        }
        assert any("routing_cached" in p for p in validate_bench_payload(bad))

    def test_rejects_nonpositive_timing(self, payload):
        bad = json.loads(json.dumps(payload))
        bad["benchmarks"]["training_step"]["seconds_per_op"] = 0.0
        assert any("training_step" in p for p in validate_bench_payload(bad))

    def test_rejects_non_object(self):
        assert validate_bench_payload([1, 2]) == ["payload is not an object"]

# reprolint-fixture: clean — a standalone pragma line applies to the
# next source line (continuation comments are skipped).
import numpy as np

# repro: allow-nondeterminism -- fixture: the pragma sits on its own
# line; the draw below is intentionally unseeded.
rng = np.random.default_rng()

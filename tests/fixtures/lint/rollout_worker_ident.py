"""Fixture: worker identity and wall-clock leaking into rollout state."""
# reprolint: module=repro.rollouts.workers
import os
import time

import numpy as np


def episode_seed(seed, worker_id, episode_id):
    # The banned spawn key: results now depend on worker assignment.
    return np.random.default_rng([seed, worker_id, episode_id])


def stamp_result(payload):
    payload["pid"] = os.getpid()
    payload["finished_at"] = time.time()
    return payload


def orphaned(parent_pid):
    return os.getppid() != parent_pid  # repro: allow-worker-ident -- fixture: sanctioned orphan check

# reprolint: module=repro.eval.fixture_harness
# reprolint-fixture: clean — REP104 only applies inside the deterministic
# scope (repro.sim/ml/mobility/dispatch/faults); measurement layers may
# read the wall clock.
import time

t0 = time.time()

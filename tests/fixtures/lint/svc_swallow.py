# reprolint: module=repro.service.fixture_swallow
# reprolint-fixture: REP303 x2 — silent swallows inside the service scope.


class _Breaker:
    def record_failure(self, t_s: float, detail: str) -> bool:
        return False


breaker = _Breaker()


def risky() -> None:
    raise ValueError("boom")


def silent_swallow() -> int:
    try:
        risky()
    except ValueError:  # expect REP303: neither re-raises nor records
        return 1
    return 0


def swallow_with_logging_only() -> int:
    try:
        risky()
    except (ValueError, KeyError):  # expect REP303: print is not a recorder
        print("oops")
        return 1
    return 0


def records_an_incident(t_s: float) -> int:
    try:
        risky()
    except ValueError:  # ok: breaker failure is an observable trace
        breaker.record_failure(t_s, "risky failed")
        return 1
    return 0


def reraises() -> int:
    try:
        risky()
    except ValueError as exc:
        raise RuntimeError("wrapped") from exc


def pragma_sanctioned() -> int:
    try:
        risky()
    except ValueError:  # repro: allow-service-swallow -- fixture: sanctioned
        return 1
    return 0

# reprolint-fixture: REP002 x1 — unknown pragma names are typos.
value = 1 + 1  # repro: allow-everything -- expect REP002

# reprolint-fixture: REP102 x3, REP103 x1 — numpy global RandomState.
import numpy as np
from numpy.random import default_rng

np.random.seed(0)  # expect REP102
values = np.random.rand(3)  # expect REP102
pick = np.random.choice(values)  # expect REP102
rng = np.random.default_rng()  # expect REP103
rng2 = default_rng(7)  # fine: seeded, explicit
rng3 = np.random.default_rng([0, 42])  # fine: seeded

# reprolint-fixture: REP301 x1, REP302 x2 — exception hygiene.
def risky() -> None:
    raise ValueError("boom")


def swallow_everything() -> int:
    try:
        risky()
    except:  # expect REP301
        return 1
    return 0


def swallow_broadly() -> int:
    try:
        risky()
    except Exception:  # expect REP302
        return 1
    return 0


def swallow_tuple() -> int:
    try:
        risky()
    except (ValueError, Exception):  # expect REP302
        return 1
    return 0


def cleanup_and_reraise() -> int:
    try:
        risky()
    except Exception:  # fine: bare raise re-raises the original
        raise
    return 0


def narrow_catch() -> int:
    try:
        risky()
    except ValueError:  # fine: named type
        return 1
    return 0

# reprolint-fixture: REP102 x1 — two identical violations, one pragma'd.
# The pragma must suppress exactly the finding on its own line.
import numpy as np

np.random.seed(0)  # repro: allow-nondeterminism -- fixture: suppressed
np.random.seed(1)  # expect REP102 (not suppressed)

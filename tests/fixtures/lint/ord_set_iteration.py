# reprolint: module=repro.ml.fixture_ordering
# reprolint-fixture: REP401 x3 — bare-set iteration in a numeric hot path.
values = {3.0, 1.0, 2.0}
other = {2.0, 4.0}

total = 0.0
for v in values | other:  # expect REP401
    total += v * total  # order-sensitive accumulation

weights = [v / total for v in set([1.0, 2.0])]  # expect REP401

for v in {x for x in weights}:  # expect REP401
    total -= v

for v in sorted(values | other):  # fine: sorted
    total += v

checksum = sum(v for v in values)  # fine: sum is order-insensitive
biggest = max(v for v in values | other)  # fine
as_list = sorted(v * 2 for v in values)  # fine: sorted sink

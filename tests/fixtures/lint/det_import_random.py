# reprolint-fixture: REP101 x2 — the stdlib random module is banned.
import random  # expect REP101
from random import choice  # expect REP101

print(random.random(), choice([1, 2]))

# reprolint: module=repro.fixture_writes
# reprolint-fixture: REP201 x5 — raw writes bypassing repro.core.artifacts.
import json
import pathlib

import numpy as np


def persist(path: pathlib.Path, payload: dict, arr: np.ndarray) -> None:
    with open(path, "w") as fh:  # expect REP201
        fh.write("x")
    with open(path, mode="ab") as fh:  # expect REP201
        fh.write(b"x")
    np.savez(path, arr=arr)  # expect REP201
    with open(path) as fh:  # fine: read-only
        json.dump(payload, fh)  # expect REP201 (yes, fh is read-only; static)
    path.write_text("data")  # expect REP201
    payload_text = json.dumps(payload)  # fine: dumps to a string
    print(payload_text)

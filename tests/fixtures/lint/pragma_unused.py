# reprolint-fixture: REP001 x1 — a pragma that suppresses nothing.
value = 1 + 1  # repro: allow-broad-except -- expect REP001 (nothing here)

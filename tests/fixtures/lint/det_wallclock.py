# reprolint: module=repro.sim.fixture_wallclock
# reprolint-fixture: REP104 x3 — wall-clock reads in deterministic code.
import time
from datetime import datetime

t0 = time.time()  # expect REP104
t1 = time.perf_counter()  # expect REP104
now = datetime.now()  # expect REP104

# reprolint: module=repro.service.sharding.fixture_shard_merge
# reprolint-fixture: REP402 x4 — hash-order folds in shard merge/reduce code.


def merge_position_maps(maps: list[dict[int, int]]) -> dict[int, int]:
    merged: dict[int, int] = {}
    for snapshot in maps:
        for pid, node in snapshot.items():  # expect REP402
            merged[pid] = node
    return merged


def merge_reason_rows(snapshots: dict[int, dict[str, int]]) -> dict[int, dict[str, int]]:
    return {shard: dict(rows) for shard, rows in snapshots.items()}  # expect REP402


def reduce_reason_names(counts: dict[str, int]) -> list[str]:
    return [reason for reason in counts.keys()]  # expect REP402


def merge_shard_ids(ids: list[int]) -> list[int]:
    alive = set(ids)
    out = []
    for shard in alive:  # expect REP402
        out.append(shard)
    return out


def merge_suppressed(counts: dict[str, int]) -> dict[str, int]:
    out: dict[str, int] = {}
    for key, value in counts.items():  # repro: allow-unordered-merge -- fixture
        out[key] = value
    return out


def merge_sorted(counts: dict[str, int]) -> dict[str, int]:
    merged: dict[str, int] = {}
    for key, value in sorted(counts.items()):  # fine: sorted fold
        merged[key] = value
    return merged


def merge_totals(counts: dict[str, int]) -> int:
    return sum(counts.values())  # fine: sum is order-insensitive


def route_record(cells: dict[int, int], cell: int) -> int:
    for owner in cells.values():  # fine: not a merge/reduce function
        return owner
    return 0

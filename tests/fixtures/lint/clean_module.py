# reprolint: module=repro.sim.fixture_clean
# reprolint-fixture: clean — the sanctioned idioms pass every rule.
import json

import numpy as np


def simulate(seed: int, segments: dict[int, float]) -> float:
    rng = np.random.default_rng(seed)  # seeded, explicit generator
    total = 0.0
    for seg in sorted(set(segments)):  # sorted set iteration
        total += segments[seg] * float(rng.random())
    return total


def load(path: str) -> dict:
    try:
        with open(path) as fh:  # read-only open is fine
            return dict(json.loads(fh.read()))
    except (OSError, ValueError):  # narrow exception types
        return {}

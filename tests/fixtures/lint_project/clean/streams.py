# reprolint: module=proj.lib.streams
"""One registered stream tag, used exactly once."""

TAG_MAIN = 7

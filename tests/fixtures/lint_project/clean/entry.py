# reprolint: module=proj.app.entry
import numpy as np

from proj.lib.streams import TAG_MAIN


def make_rng(seed: int):
    return np.random.default_rng([seed, TAG_MAIN])


def run(seed: int) -> float:
    return float(make_rng(seed).random())

# reprolint: module=proj.other.free
# Same mutable-global shape as state.py, but unreachable from any fork
# entry point: no finding.

_SEEN: dict = {}


def note(key: str) -> None:
    _SEEN[key] = True

# reprolint: module=proj.workers.entry
# The fork entry point; sanctioned, so its Queue construction is legal.
import multiprocessing

from proj.workers.state import remember
from proj.workers.submit import ship


def main() -> None:
    queue = multiprocessing.Queue()
    remember("boot", 1)
    ship(queue)

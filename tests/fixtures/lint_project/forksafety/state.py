# reprolint: module=proj.workers.state
# Module-level mutable state written after import, inside the fork
# closure: REP701 (subscript write + `global` rebind), one suppressed.

_CACHE: dict = {}
_COUNT = 0


def remember(key: str, value: int) -> None:
    _CACHE[key] = value


def bump() -> None:
    global _COUNT
    _COUNT += 1


def remember_quietly(key: str, value: int) -> None:
    _CACHE[key] = value  # repro: allow-fork-unsafe -- fixture: suppressed on purpose

# reprolint: module=proj.workers.submit
# A lambda across the process boundary (REP702) and an unsanctioned
# sync primitive (REP703), each with a suppressed twin.
import threading


def ship(q) -> None:
    q.put(lambda: 1)


def ship_quietly(q) -> None:
    q.put(lambda: 2)  # repro: allow-fork-unsafe -- fixture: suppressed on purpose


def make_lock():
    return threading.Lock()


def make_lock_quietly():
    return threading.Lock()  # repro: allow-fork-unsafe -- fixture: suppressed on purpose

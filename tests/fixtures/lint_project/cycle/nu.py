# reprolint: module=proj.n.nu
from proj.m.mu import mu_value


def nu_value() -> int:
    return mu_value() - 1

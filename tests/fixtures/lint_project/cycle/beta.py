# reprolint: module=proj.b.beta
from proj.a.alpha import alpha_value


def beta_value() -> int:
    return alpha_value() - 1

# reprolint: module=proj.c.gamma
# The back-edge to proj.d.delta is a lazy function-scope import: a
# deliberate cycle-breaker, invisible to the static graph — no REP502.


def load() -> int:
    from proj.d.delta import thing

    return thing()

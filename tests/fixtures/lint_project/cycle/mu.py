# reprolint: module=proj.m.mu
# Same static cycle shape as alpha/beta, suppressed at the anchor line.
from proj.n.nu import nu_value  # repro: allow-layering -- fixture: suppressed on purpose


def mu_value() -> int:
    return nu_value() + 1

# reprolint: module=proj.a.alpha
# Static mutual import with proj.b.beta: REP502, anchored here (the
# alphabetically-first module in the strongly connected component).
from proj.b.beta import beta_value


def alpha_value() -> int:
    return beta_value() + 1

# reprolint: module=proj.d.delta
from proj.c.gamma import load


def thing() -> int:
    return 0 if load else 1

# reprolint: module=proj.three.mod
# Tag 77 is in no registry: REP602.
import numpy as np


def make_rng(seed: int):
    return np.random.default_rng([seed, 77])

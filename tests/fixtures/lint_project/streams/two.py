# reprolint: module=proj.two.mod
# Spawns literal tag 1 — registered, but owned by proj.one: REP601 here too.
import numpy as np


def make_rng(seed: int):
    return np.random.default_rng([seed, 1])

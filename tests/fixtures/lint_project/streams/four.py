# reprolint: module=proj.four.mod
# `tag` has no call sites to chase: not statically resolvable, REP603 —
# once flagged, once pragma-suppressed.
import numpy as np


def make_rng(seed: int, tag: int):
    return np.random.default_rng([seed, tag])


def make_rng_quietly(seed: int, tag: int):
    return np.random.default_rng([seed, tag])  # repro: allow-stream-tag -- fixture: suppressed on purpose

# reprolint: module=proj.one.mod
# Spawns tag 1 via the registry constant — but proj.two spawns the same
# value, so both sites get REP601 (cross-subsystem duplicate).
import numpy as np

from proj.lib.streams import TAG_ONE


def make_rng(seed: int):
    return np.random.default_rng([seed, TAG_ONE])

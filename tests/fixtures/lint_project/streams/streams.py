# reprolint: module=proj.lib.streams
"""Fixture stream registry: one healthy tag, one registry collision."""


def _register(value: int, name: str, subsystem: str) -> int:
    return value


TAG_ONE = _register(1, "one", "one")
TAG_TWO = 2
TAG_DUP = _register(2, "dup", "two")  # collides with TAG_TWO: REP601

# reprolint: module=proj.ui.views
# Legal direct edge (ui -> svc), but svc reaches db, and ui -> db is a
# forbidden reach: REP504 fires here with the full chain.
from proj.svc.api import handle


def render() -> str:
    return handle()

# reprolint: module=proj.db.models


class Row:
    name = "row"

# reprolint: module=proj.extra.thing
# Package `extra` has no [tool.reprolint.layers] entry: REP503.


def nothing() -> None:
    return None

# reprolint: module=proj.svc.api
from proj.db.models import Row


def handle() -> str:
    return Row().name

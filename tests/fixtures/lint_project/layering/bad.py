# reprolint: module=proj.direct.bad
# The layer spec gives `direct` no allowed targets: REP501.
from proj.db.models import Row


def fetch() -> str:
    return Row().name

# reprolint: module=proj.direct.legacy
# Same violation, suppressed: REP501 must stay quiet here.
from proj.db.models import Row  # repro: allow-layering -- fixture: suppressed on purpose


def fetch() -> str:
    return Row().name

"""Load-generator tests: determinism, exact reconciliation, overload
shedding, and the artifact schema contract."""

from __future__ import annotations

import json

import pytest

from repro.service.sharding.loadgen import (
    LOADGEN_FORMAT,
    LoadGenerator,
    LoadgenConfig,
    default_output_path,
    format_loadgen_report,
    quick_config,
    run_loadgen,
    validate_loadgen_payload,
)


def tiny_config(seed: int = 0, **overrides) -> LoadgenConfig:
    params = dict(
        num_users=800,
        records_per_user_hour=4.0,
        sim_hours=0.25,
        num_shards=4,
        cells_x=8,
        cells_y=8,
        shard_max_queue=60,
        burst_multiplier=5.0,
        burst_ticks=1,
        burst_start_tick=1,
        seed=seed,
    )
    params.update(overrides)
    return LoadgenConfig(**params)


def strip_wall(payload: dict) -> dict:
    """Drop the only legitimately nondeterministic fields."""
    out = json.loads(json.dumps(payload))
    out["throughput"].pop("wall_s")
    out["throughput"].pop("records_per_wall_s")
    return out


class TestDeterminism:
    def test_same_seed_same_payload(self):
        a = LoadGenerator(tiny_config(seed=7)).run()
        b = LoadGenerator(tiny_config(seed=7)).run()
        assert strip_wall(a) == strip_wall(b)

    def test_different_seed_different_traffic(self):
        a = LoadGenerator(tiny_config(seed=0)).run()
        b = LoadGenerator(tiny_config(seed=1)).run()
        assert [r["accepted"] for r in a["per_shard"]] != [
            r["accepted"] for r in b["per_shard"]
        ]


class TestReconciliationAndShedding:
    def test_totals_reconcile_exactly(self):
        gen = LoadGenerator(tiny_config())
        payload = gen.run()
        totals = payload["totals"]
        assert payload["reconciliation_ok"] is True
        assert (
            totals["offered"]
            == totals["accepted"] + totals["quarantined"] + totals["lost"]
        )
        assert totals["accepted"] == (
            totals["drained"] + totals["queued_final"] + totals["shed"]
        )
        assert gen.router.reconciles()

    def test_overload_sheds_at_the_hot_shard_without_raising(self):
        payload = LoadGenerator(tiny_config()).run()
        rows = payload["per_shard"]
        hot = max(rows, key=lambda r: r["accepted"])
        assert hot["shed"] > 0  # the burst overflowed the bounded queue
        assert hot["max_queue_seen"] <= tiny_config().shard_max_queue
        assert payload["totals"]["shed"] == sum(r["shed"] for r in rows)

    def test_latency_percentiles_are_monotone_per_shard(self):
        payload = LoadGenerator(tiny_config()).run()
        for row in payload["per_shard"]:
            assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
            if row["accepted"]:
                assert row["p50_ms"] > 0.0

    def test_supervisor_saw_every_tick_and_stayed_quiet(self):
        gen = LoadGenerator(tiny_config())
        payload = gen.run()
        supervisor = payload["supervisor"]
        assert supervisor["ticks_supervised"] == gen.config.num_ticks
        assert supervisor["failovers"] == []  # no faults in a load test
        assert supervisor["within_failover_budget"] is True


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadgenConfig(num_users=0)
        with pytest.raises(ValueError):
            LoadgenConfig(sim_hours=0.0)
        with pytest.raises(ValueError):
            LoadgenConfig(burst_multiplier=0.5)
        with pytest.raises(ValueError):
            LoadgenConfig(drain_rate_rps=0.0)

    def test_derived_rates(self):
        cfg = LoadgenConfig(
            num_users=300_000, records_per_user_hour=4.0, tick_s=300.0
        )
        assert cfg.steady_records_per_tick == 100_000
        assert cfg.num_ticks == 12
        # The headline number: 1.2M records per simulated hour by default.
        assert cfg.steady_records_per_tick * cfg.num_ticks == 1_200_000

    def test_quick_config_is_small_and_marked(self):
        cfg = quick_config(seed=3)
        assert cfg.quick is True
        assert cfg.seed == 3
        assert cfg.num_users < 10_000


class TestArtifactContract:
    def test_payload_validates_clean(self):
        payload = LoadGenerator(tiny_config()).run()
        assert validate_loadgen_payload(payload) == []

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda p: p.pop("format"),
            lambda p: p.update(version="one"),
            lambda p: p.update(totals="nope"),
            lambda p: p["totals"].pop("offered"),
            lambda p: p.update(per_shard=[]),
            lambda p: p["per_shard"][0].pop("p95_ms"),
            lambda p: p.update(reconciliation_ok=False),
        ],
    )
    def test_validator_catches_mutations(self, mutation):
        payload = LoadGenerator(tiny_config()).run()
        mutation(payload)
        assert validate_loadgen_payload(payload)

    def test_validator_rejects_non_object(self):
        assert validate_loadgen_payload([1, 2]) == [
            "payload must be a JSON object"
        ]

    def test_default_output_path_embeds_the_date(self):
        payload = LoadGenerator(tiny_config()).run()
        assert default_output_path(payload) == f"LOADGEN_{payload['date']}.json"

    def test_run_loadgen_persists_a_loadable_artifact(self, tmp_path):
        out = tmp_path / "lg.json"
        payload = run_loadgen(tiny_config(), out_path=str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk["format"] == LOADGEN_FORMAT
        assert strip_wall(on_disk) == strip_wall(payload)

    def test_report_renders_every_shard(self):
        payload = LoadGenerator(tiny_config()).run()
        text = format_loadgen_report(payload)
        assert "reconciliation: exact" in text
        for row in payload["per_shard"]:
            assert f"\n  {row['shard']:>5}  " in text

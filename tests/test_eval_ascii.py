"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.eval.ascii import ascii_cdf, ascii_chart


class TestAsciiChart:
    def test_basic_structure(self):
        out = ascii_chart(
            {"a": np.arange(10.0), "b": 9 - np.arange(10.0)},
            height=6,
            title="T",
            x_label="hour",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "*=a" in out and "o=b" in out
        assert "hour" in out
        # Axis rows: title + height rows + baseline + x label + legend.
        assert len(lines) == 1 + 6 + 1 + 1 + 1

    def test_extremes_plotted_at_edges(self):
        out = ascii_chart({"a": np.array([0.0, 10.0])}, height=5)
        lines = out.splitlines()
        assert "*" in lines[0]  # max on the top row
        assert "*" in lines[4]  # min on the bottom row

    @staticmethod
    def _grid_only(out: str) -> str:
        # Strip the legend line (which contains the glyph) and x label.
        return "\n".join(
            line for line in out.splitlines() if "|" in line
        )

    def test_nan_skipped(self):
        out = ascii_chart({"a": np.array([1.0, np.nan, 3.0])}, height=4)
        assert self._grid_only(out).count("*") == 2

    def test_constant_series(self):
        out = ascii_chart({"a": np.full(5, 2.0)}, height=4)
        assert self._grid_only(out).count("*") == 5

    def test_axis_labels_show_range(self):
        out = ascii_chart({"a": np.array([5.0, 25.0])}, height=4)
        assert "25" in out and "5" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": np.arange(3.0)}, height=2)
        with pytest.raises(ValueError):
            ascii_chart({"a": np.arange(3.0), "b": np.arange(4.0)})
        with pytest.raises(ValueError):
            ascii_chart({"a": np.zeros(0)})
        with pytest.raises(ValueError):
            ascii_chart({"a": np.array([np.nan, np.nan])})


class TestAsciiCdf:
    def test_monotone_rendering(self):
        rng = np.random.default_rng(0)
        out = ascii_cdf({"x": rng.normal(size=200)}, points=30, height=8)
        assert "P" in out
        assert "x:" in out.splitlines()[-1]

    def test_two_populations_separate(self):
        out = ascii_cdf(
            {"low": np.zeros(50), "high": np.full(50, 10.0)}, points=20, height=6
        )
        assert "*=low" in out and "o=high" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf({})
        with pytest.raises(ValueError):
            ascii_cdf({"a": np.zeros(0)})

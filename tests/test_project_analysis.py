"""Whole-program reprolint: the project pass, its rules, and its gate.

``test_source_tree_is_project_clean`` is the tier-1 gate for the
REP5xx/6xx/7xx families: ``repro lint --project`` over ``src/repro``
must be clean under the repo's own ``[tool.reprolint]`` configuration.
The fixture mini-projects under ``tests/fixtures/lint_project/`` each
pin one rule family (violating + pragma-suppressed + clean shapes), so
the gate can only pass because the architecture is clean, never because
a rule silently stopped firing.
"""

from __future__ import annotations

import ast
import concurrent.futures
import json
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_PROJECT_RULES,
    PROJECT_RULE_INDEX,
    KNOWN_PRAGMAS,
    lint_paths,
    lint_source,
    load_project_config,
    module_name_for,
    report_as_sarif,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.pragmas import PROJECT_PRAGMAS, parse_pragmas
from repro.analysis.project import (
    FileContext,
    ProjectConfig,
    ProjectContext,
    _parse_toml_subset,
    _reprolint_tables,
    find_project_config,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"
CASES = Path(__file__).parent / "fixtures" / "lint_project"

#: case directory -> exact expected project-rule multiset.
EXPECTED = {
    "layering": ["REP501", "REP503", "REP504"],
    "cycle": ["REP502"],
    "streams": ["REP601", "REP601", "REP601", "REP602", "REP603"],
    "forksafety": ["REP701", "REP701", "REP702", "REP703"],
    "clean": [],
}


def lint_case(name: str, **kwargs):
    case = CASES / name
    config = load_project_config(case / "pyproject.toml")
    return lint_paths(
        [case],
        rules=(),
        project_rules=DEFAULT_PROJECT_RULES,
        project_config=config,
        **kwargs,
    )


def project_over_src() -> ProjectContext:
    config = load_project_config(REPO_ROOT / "pyproject.toml")
    contexts = []
    for path in sorted(SRC.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        contexts.append(
            FileContext(
                path=str(path),
                module=module_name_for(path),
                source=source,
                tree=ast.parse(source),
                pragmas=parse_pragmas(source),
            )
        )
    return ProjectContext(contexts, config)


# -- the gate ------------------------------------------------------------------


def test_source_tree_is_project_clean():
    """Tier-1: the whole tree satisfies the architecture, stream-key and
    fork-safety invariants under the repo's own configuration."""
    config = load_project_config(REPO_ROOT / "pyproject.toml")
    report = lint_paths(
        [SRC],
        project_rules=DEFAULT_PROJECT_RULES,
        project_config=config,
    )
    assert report.project_pass
    assert report.files_checked > 100
    assert report.clean, "\n".join(f.format_text() for f in report.findings)


def test_every_spawn_key_resolves_to_a_registered_tag():
    """Acceptance: every ``default_rng`` spawn key in faults/service/
    rollouts resolves statically and lands in the registry, collision-free."""
    project = project_over_src()
    registry = project.registry_values()
    assert registry is not None and len(registry) >= 18
    audited = 0
    owners: dict[int, set[str]] = {}
    for site in project.spawn_sites:
        package = project.package_of(site.module)
        if package not in ("faults", "service", "rollouts"):
            continue
        audited += 1
        assert site.tags is not None, f"{site.path}:{site.line} unresolved"
        for value in site.tags:
            assert value in registry, f"{site.path}:{site.line} tag {value}"
            owners.setdefault(value, set()).add(package)
    assert audited >= 8
    collisions = {v: pkgs for v, pkgs in owners.items() if len(pkgs) > 1}
    assert not collisions


# -- fixture mini-projects -----------------------------------------------------


def test_case_expectations_cover_every_case():
    on_disk = {p.name for p in CASES.iterdir() if p.is_dir()}
    assert on_disk == set(EXPECTED)


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_case_findings(name):
    report = lint_case(name)
    got = sorted(f.rule for f in report.findings)
    assert got == sorted(EXPECTED[name]), "\n".join(
        f.format_text() for f in report.findings
    )


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_suppressed_twins_consume_their_pragmas(name):
    """Strict-pragma audit stays quiet: every fixture pragma suppressed
    something (no REP001) and every token is known (no REP002)."""
    report = lint_case(name)
    audit = [f.rule for f in report.findings if f.rule in ("REP001", "REP002")]
    assert audit == []


def test_cycle_messages_name_the_full_chain():
    report = lint_case("cycle")
    (finding,) = report.findings
    assert finding.message == (
        "import cycle: proj.a.alpha -> proj.b.beta -> proj.a.alpha"
    )


def test_forbidden_reach_reports_the_witness_chain():
    report = lint_case("layering")
    reach = next(f for f in report.findings if f.rule == "REP504")
    assert "proj.ui.views -> proj.svc.api -> proj.db.models" in reach.message


def test_fork_findings_carry_an_import_chain_witness():
    report = lint_case("forksafety")
    mutable = [f for f in report.findings if f.rule == "REP701"]
    assert mutable and all(
        "proj.workers.entry -> proj.workers.state" in f.message for f in mutable
    )


# -- engine semantics ----------------------------------------------------------


def test_project_pass_and_per_file_pass_agree_on_file_scoped_rules():
    """File-scoped findings are identical whether or not the project
    pass runs alongside them."""
    fixtures = Path(__file__).parent / "fixtures" / "lint"
    solo = lint_paths([fixtures])
    both = lint_paths(
        [fixtures],
        project_rules=DEFAULT_PROJECT_RULES,
        project_config=ProjectConfig(),
    )
    file_scoped = lambda fs: [  # noqa: E731
        f for f in fs if f.rule not in PROJECT_RULE_INDEX
    ]
    assert file_scoped(both.findings) == file_scoped(solo.findings)


def test_parallel_file_pass_matches_serial():
    fixtures = Path(__file__).parent / "fixtures" / "lint"
    serial = lint_paths([fixtures], jobs=1)
    pooled = lint_paths([fixtures], jobs=4)
    assert pooled.findings == serial.findings
    project_serial = lint_case("streams", jobs=1)
    project_pooled = lint_case("streams", jobs=3)
    assert project_pooled.findings == project_serial.findings


def test_pool_failure_degrades_to_serial(monkeypatch):
    class Broken:
        def __init__(self, *args, **kwargs):
            raise OSError("no process pool in this sandbox")

    monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", Broken)
    fixtures = Path(__file__).parent / "fixtures" / "lint"
    report = lint_paths([fixtures], jobs=4)
    assert report.findings == lint_paths([fixtures], jobs=1).findings


def test_project_pragmas_audited_only_when_project_pass_runs(tmp_path):
    source = (
        "# reprolint: module=proj.solo.mod\n"
        "x = 1  # repro: allow-layering -- suppresses nothing\n"
    )
    # Per-file run: the rules this pragma feeds never executed; exempt.
    assert lint_source(source, module="proj.solo.mod") == []
    # Project run: the pragma is judged, and it is stale.
    target = tmp_path / "solo.py"
    target.write_text(source)
    report = lint_paths(
        [target],
        project_rules=DEFAULT_PROJECT_RULES,
        project_config=ProjectConfig(root_package="proj"),
    )
    assert [f.rule for f in report.findings] == ["REP001"]


def test_project_rule_pragmas_are_known():
    for rule in DEFAULT_PROJECT_RULES:
        assert rule.pragma in PROJECT_PRAGMAS
        assert rule.pragma in KNOWN_PRAGMAS


def test_module_directive_in_docstring_does_not_bind():
    source = (
        '"""Docs quoting a directive::\n\n'
        "    # reprolint: module=repro.sim.engine\n"
        '"""\n'
        "import time\n"
        "t = time.time()\n"
    )
    # Bound to the path stem, the wallclock rule (scoped to repro.sim.*)
    # must not fire; a directive in prose must never re-point a module.
    assert lint_source(source, path="loose.py") == []


# -- configuration loading -----------------------------------------------------


def test_find_project_config_walks_up_to_the_case(tmp_path):
    located = find_project_config([CASES / "layering" / "bad.py"])
    assert located == CASES / "layering" / "pyproject.toml"
    assert find_project_config([tmp_path]) is None


def test_repo_config_declares_the_streams_registry():
    config = load_project_config(REPO_ROOT / "pyproject.toml")
    assert config.streams_module == "repro.core.streams"
    assert "repro.core.streams" in config.shared_modules
    assert config.layers and "sim" in config.layers
    assert ("sim", "service") in config.forbidden_reach


def test_toml_fallback_parser_agrees_with_tomllib():
    tomllib = pytest.importorskip("tomllib")
    for pyproject in [REPO_ROOT / "pyproject.toml"] + sorted(
        CASES.glob("*/pyproject.toml")
    ):
        text = pyproject.read_text()
        via_tomllib = _reprolint_tables(pyproject)
        assert via_tomllib, pyproject
        subset = _parse_toml_subset(text)
        # tomllib returns {} for sections the fallback materializes empty.
        assert {k: v for k, v in subset.items() if v or k in via_tomllib} == {
            k: v for k, v in via_tomllib.items() if v or k in subset
        }


# -- output contracts ----------------------------------------------------------


def test_sarif_document_contract():
    report = lint_case("streams")
    document = report_as_sarif(report)
    assert document["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in document["$schema"]
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reprolint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert {"REP501", "REP601", "REP701"} <= set(rule_ids)
    assert len(run["results"]) == len(report.findings)
    for result, finding in zip(run["results"], report.findings):
        assert result["ruleId"] == finding.rule
        assert rule_ids[result["ruleIndex"]] == finding.rule
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert location["region"]["startLine"] == finding.line


def test_sarif_round_trips_through_json(capsys):
    code = lint_main(
        ["--project", "--format", "sarif", str(CASES / "forksafety")]
    )
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    got = sorted(r["ruleId"] for r in document["runs"][0]["results"])
    assert got == sorted(EXPECTED["forksafety"])


# -- CLI -----------------------------------------------------------------------


def test_cli_project_exit_codes(capsys, tmp_path):
    assert lint_main(["--project", str(CASES / "clean")]) == 0
    assert lint_main(["--project", str(CASES / "layering")]) == 1
    # No [tool.reprolint] anywhere above the paths: usage error.
    bare = tmp_path / "pyproject.toml"
    bare.write_text("[project]\nname = 'bare'\n")
    (tmp_path / "mod.py").write_text("x = 1\n")
    assert lint_main(["--project", str(tmp_path)]) == 2
    assert (
        lint_main(["--project", "--config", str(bare), str(tmp_path)]) == 2
    )
    capsys.readouterr()


def test_cli_select_narrows_to_project_rules(capsys):
    code = lint_main(
        ["--project", "--select", "REP501", str(CASES / "layering")]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "REP501" in out
    assert "REP503" not in out and "REP504" not in out


def test_cli_list_rules_includes_project_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in DEFAULT_PROJECT_RULES:
        assert rule.rule_id in out
    assert "whole-program" in out


def test_cli_verbose_reports_pass_composition(capsys):
    code = lint_main(["--project", "--verbose", str(CASES / "clean")])
    assert code == 0
    err = capsys.readouterr().err
    assert "file+project pass" in err and "wall" in err


# -- the stream registry itself ------------------------------------------------


def test_stream_registry_values_are_frozen():
    """The tag values are part of the bit-identity contract: changing
    any of them reshuffles every golden trace."""
    from repro.core import streams

    frozen = {
        "STREAM_FAULT_GPS": 101,
        "STREAM_FAULT_COMM": 102,
        "STREAM_FAULT_BREAKDOWN": 103,
        "STREAM_FAULT_CLOSURE": 104,
        "STREAM_FAULT_DISPATCHER": 105,
        "STREAM_FAULT_PREDICTOR": 106,
        "STREAM_FAULT_POLICY_LATENCY": 107,
        "STREAM_FAULT_CORRUPT_RECORD": 108,
        "STREAM_SHARD_KILL": 109,
        "STREAM_SHARD_STALL": 110,
        "STREAM_SHARD_SKEW": 111,
        "STREAM_WORKER_CRASH": 112,
        "STREAM_WORKER_STALL": 113,
        "STREAM_WORKER_CORRUPT": 114,
        "STREAM_ROLLOUT_EPISODE": 115,
        "STREAM_ROLLOUT_BACKOFF": 116,
        "STREAM_TRAIN_NAN_GRAD": 117,
        "STREAM_TRAIN_CORRUPT_REPLAY": 118,
        "STREAM_TRAIN_REWARD_SPIKE": 119,
        "STREAM_TRAIN_CKPT_BITROT": 120,
        "STREAM_TRAIN_REPERTURB": 121,
        "STREAM_LOADGEN_HOMES": 201,
        "STREAM_LOADGEN_JITTER": 202,
        "STREAM_MOBILITY_DIRTY": 999_983,
    }
    for name, value in frozen.items():
        assert getattr(streams, name) == value, name
        assert streams.REGISTRY[value].name
    assert len(streams.REGISTRY) == len(frozen)


def test_stream_registry_rejects_collisions():
    from repro.core.streams import REGISTRY, _register

    taken = next(iter(REGISTRY))
    with pytest.raises(ValueError, match="collision"):
        _register(taken, "fresh-name", "tests")
    with pytest.raises(ValueError, match="registered twice"):
        _register(2_000_000, REGISTRY[taken].name, "tests")
    with pytest.raises(ValueError, match="non-negative"):
        _register(-1, "negative", "tests")
    assert 2_000_000 not in REGISTRY


def test_stream_registry_lookup_helpers():
    from repro.core import streams

    info = streams.tag_info(streams.STREAM_ROLLOUT_EPISODE)
    assert info.subsystem == "rollouts"
    with pytest.raises(KeyError):
        streams.tag_info(12_345)
    assert streams.STREAM_ROLLOUT_EPISODE in streams.registered_values()
    table = streams.registry_table()
    assert any(row.value == streams.STREAM_LOADGEN_HOMES for row in table)

"""Tests for the trace generator and the stage-1 pipeline:
cleaning -> map matching -> trajectories -> flow rates."""

import numpy as np
import pytest

from repro.mobility.cleaning import clean_trace
from repro.mobility.flow import compute_flow_rates
from repro.mobility.mapmatch import map_match, reconstruct_traversals
from repro.mobility.trace import GpsTrace, RescueRecord, TraversalLog
from repro.weather.storms import SECONDS_PER_DAY, day_index


@pytest.fixture(scope="module")
def pipeline(florence_small):
    """Cleaned trace + matched trajectories, computed once."""
    scenario, bundle = florence_small
    clean, report = clean_trace(
        bundle.trace, scenario.partition.width_m, scenario.partition.height_m
    )
    matched = map_match(clean, scenario.network)
    return scenario, bundle, clean, report, matched


class TestGpsTrace:
    def test_column_length_mismatch_rejected(self):
        z = np.zeros(3)
        with pytest.raises(ValueError):
            GpsTrace(np.zeros(2), z, z, z, z, z)

    def test_sort_orders_by_person_then_time(self):
        tr = GpsTrace(
            np.array([2, 1, 1]),
            np.array([5.0, 9.0, 1.0]),
            np.zeros(3),
            np.zeros(3),
            np.zeros(3),
            np.zeros(3),
        ).sort()
        assert tr.person_id.tolist() == [1, 1, 2]
        assert tr.t.tolist() == [1.0, 9.0, 5.0]

    def test_concatenate_empty(self):
        assert len(GpsTrace.concatenate([])) == 0

    def test_person_slice(self):
        tr = GpsTrace(
            np.array([1, 2, 1]),
            np.arange(3, dtype=float),
            np.zeros(3),
            np.zeros(3),
            np.zeros(3),
            np.zeros(3),
        )
        assert len(tr.person_slice(1)) == 2

    def test_traversal_log_validation(self):
        with pytest.raises(ValueError):
            TraversalLog(np.zeros(2), np.zeros(3))

    def test_rescue_record_validation(self):
        with pytest.raises(ValueError):
            RescueRecord(0, 100.0, 50.0, 0, 0, 1, (0, 0, 0), 0, 200.0)
        with pytest.raises(ValueError):
            RescueRecord(0, 100.0, 150.0, 0, 0, 1, (0, 0, 0), 0, 100.0)


class TestGenerator:
    def test_scale(self, florence_small):
        _, bundle = florence_small
        assert len(bundle.trace) > 100_000
        assert len(bundle.traversals) > 50_000
        assert len(bundle.rescues) > 10

    def test_rescues_sorted_and_consistent(self, florence_small):
        scenario, bundle = florence_small
        times = [r.request_time_s for r in bundle.rescues]
        assert times == sorted(times)
        seg_ids = set(scenario.network.segment_ids())
        for r in bundle.rescues:
            assert r.trap_segment in seg_ids
            assert r.region_id in scenario.partition.region_ids
            assert r.trap_time_s <= r.request_time_s <= r.delivery_time_s

    def test_one_rescue_per_person(self, florence_small):
        _, bundle = florence_small
        pids = [r.person_id for r in bundle.rescues]
        assert len(pids) == len(set(pids))

    def test_rescues_concentrate_downtown(self, florence_small):
        """Fig. 4: most rescue requests appear in Region 3."""
        _, bundle = florence_small
        by_region = {}
        for r in bundle.rescues:
            by_region[r.region_id] = by_region.get(r.region_id, 0) + 1
        assert max(by_region, key=by_region.get) == 3

    def test_requests_peak_on_sep16(self, florence_small):
        """Section V-B: Sep 16 has the highest number of rescue requests."""
        scenario, bundle = florence_small
        sep16 = day_index(scenario.timeline, "Sep 16")
        counts = {
            d: len(bundle.requests_on_day(d)) for d in range(scenario.timeline.total_days)
        }
        assert counts[sep16] == max(counts.values())

    def test_no_requests_before_storm(self, florence_small):
        scenario, bundle = florence_small
        assert all(
            r.request_time_s >= scenario.timeline.storm_start_s for r in bundle.rescues
        )

    def test_factor_vectors_plausible(self, florence_small):
        _, bundle = florence_small
        for r in bundle.rescues:
            precip, wind, alt = r.factors
            assert precip >= 0.0
            assert wind >= 5.0
            assert 150.0 < alt < 260.0

    def test_trapped_people_sit_low(self, florence_small):
        """Trapped positions are in flood zones, hence low altitude."""
        scenario, bundle = florence_small
        alts = np.array([r.factors[2] for r in bundle.rescues])
        assert alts.mean() < 205.0


class TestCleaning:
    def test_report_accounts_for_everything(self, pipeline):
        _, bundle, clean, report, _ = pipeline
        assert report.input_fixes == len(bundle.trace)
        assert report.output_fixes == len(clean)
        assert report.dropped_out_of_range > 0
        assert report.dropped_duplicates > 0

    def test_clean_trace_in_range(self, pipeline):
        scenario, _, clean, _, _ = pipeline
        assert (clean.x >= 0).all() and (clean.x <= scenario.partition.width_m).all()
        assert (clean.y >= 0).all() and (clean.y <= scenario.partition.height_m).all()

    def test_clean_trace_sorted_unique(self, pipeline):
        _, _, clean, _, _ = pipeline
        key = clean.person_id.astype(np.int64) * 10**10 + (clean.t * 10).astype(np.int64)
        assert (np.diff(clean.person_id.astype(int)) >= 0).all()
        same = clean.person_id[1:] == clean.person_id[:-1]
        assert (clean.t[1:][same] > clean.t[:-1][same]).all()
        del key

    def test_speed_gate(self):
        # Two fixes 1 km apart 1 s apart: physically impossible, second drops.
        tr = GpsTrace(
            np.array([1, 1]),
            np.array([0.0, 1.0]),
            np.array([0.0, 1000.0]),
            np.zeros(2),
            np.zeros(2),
            np.zeros(2),
        )
        clean, report = clean_trace(tr, 10_000.0, 10_000.0)
        assert len(clean) == 1
        assert report.dropped_speed_gate == 1

    def test_empty_trace(self):
        clean, report = clean_trace(GpsTrace.empty(), 100.0, 100.0)
        assert len(clean) == 0
        assert report.input_fixes == 0


class TestMapMatch:
    def test_every_person_matched(self, pipeline):
        _, bundle, _, _, matched = pipeline
        assert len(matched.trajectories) == len(bundle.persons)

    def test_trajectories_are_time_ordered_landmarks(self, pipeline):
        scenario, _, _, _, matched = pipeline
        nodes = set(scenario.network.landmark_ids())
        for pid in matched.persons()[:40]:
            ts, traj = matched.trajectories[pid]
            assert (np.diff(ts) >= 0).all()
            assert set(int(n) for n in traj) <= nodes
            # consecutive duplicates collapsed
            assert (traj[1:] != traj[:-1]).all()

    def test_nodes_at_time(self, pipeline):
        _, _, _, _, matched = pipeline
        t = 20 * SECONDS_PER_DAY
        positions = matched.nodes_at_time(t)
        assert len(positions) > 0
        pid = next(iter(positions))
        ts, traj = matched.trajectories[pid]
        i = int(np.searchsorted(ts, t, side="right")) - 1
        assert positions[pid] == int(traj[i])

    def test_empty_trace(self, florence_small):
        scenario, _ = florence_small
        matched = map_match(GpsTrace.empty(), scenario.network)
        assert matched.trajectories == {}


class TestFlowRates:
    def test_reconstruction_recovers_most_traversals(self, pipeline):
        scenario, bundle, _, _, matched = pipeline
        rec = reconstruct_traversals(matched, scenario.network)
        assert 0.5 * len(bundle.traversals) < len(rec) < 1.5 * len(bundle.traversals)

    def test_flow_drops_during_disaster(self, florence_small):
        """Observation 2 / Fig. 5: flow collapses during the storm and is only
        partially restored after."""
        scenario, bundle = florence_small
        table = compute_flow_rates(
            bundle.traversals, scenario.network, scenario.total_hours
        )
        before = table.region_day_average(3, day_index(scenario.timeline, "Sep 10"))
        during = table.region_day_average(3, day_index(scenario.timeline, "Sep 14"))
        after = table.region_day_average(3, day_index(scenario.timeline, "Sep 18"))
        assert during < 0.5 * before
        assert during < after < before

    def test_flow_table_shapes(self, florence_small):
        scenario, bundle = florence_small
        table = compute_flow_rates(
            bundle.traversals, scenario.network, scenario.total_hours
        )
        assert table.num_hours == scenario.total_hours
        assert table.region_hourly(1).shape == (scenario.total_hours,)
        assert table.region_hour_of_day(3, 0).shape == (24,)
        assert table.segment_day_average(0).shape == (scenario.network.num_segments,)

    def test_region3_busiest_before_disaster(self, florence_small):
        scenario, bundle = florence_small
        table = compute_flow_rates(
            bundle.traversals, scenario.network, scenario.total_hours
        )
        day = day_index(scenario.timeline, "Sep 5")
        rates = {r: table.region_day_average(r, day) for r in scenario.partition.region_ids}
        assert max(rates, key=rates.get) == 3

    def test_total_conserved(self, florence_small):
        scenario, bundle = florence_small
        table = compute_flow_rates(
            bundle.traversals, scenario.network, scenario.total_hours
        )
        total = sum(
            table.segment_hourly(s).sum() for s in scenario.network.segment_ids()[:0]
        )  # cheap guard for API
        del total
        # Sum over the counts equals the number of traversal events.
        all_counts = np.array(
            [table.segment_hourly(s) for s in scenario.network.segment_ids()]
        )
        assert all_counts.sum() == pytest.approx(len(bundle.traversals))

    def test_invalid_hours(self, florence_small):
        scenario, bundle = florence_small
        with pytest.raises(ValueError):
            compute_flow_rates(bundle.traversals, scenario.network, 0)

"""Tests for evaluation: stats, tables, measurement suite, harness and the
paper-shape assertions for the dispatching experiments."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.eval.harness import ExperimentHarness, HarnessConfig
from repro.eval.experiments import DispatchExperiments, MeasurementSuite
from repro.eval.stats import cdf, cdf_at, pearson
from repro.eval.tables import format_cdf_quantiles, format_series, format_table


class TestStats:
    def test_cdf_basics(self):
        x, p = cdf(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_allclose(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(p, [1 / 3, 2 / 3, 1.0])

    def test_cdf_empty(self):
        x, p = cdf(np.zeros(0))
        assert x.size == p.size == 0

    def test_cdf_at(self):
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        assert cdf_at(vals, 2.5) == 0.5
        assert cdf_at(np.zeros(0), 1.0) == 0.0

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=50))
    def test_cdf_monotone(self, vals):
        x, p = cdf(np.array(vals))
        assert (np.diff(p) >= 0).all()
        assert (np.diff(x) >= 0).all()
        assert p[-1] == pytest.approx(1.0)

    def test_pearson_perfect(self):
        a = np.arange(10.0)
        assert pearson(a, 2 * a + 3) == pytest.approx(1.0)
        assert pearson(a, -a) == pytest.approx(-1.0)

    def test_pearson_validation(self):
        with pytest.raises(ValueError):
            pearson(np.arange(3.0), np.arange(4.0))
        with pytest.raises(ValueError):
            pearson(np.ones(5), np.arange(5.0))
        with pytest.raises(ValueError):
            pearson(np.array([1.0]), np.array([1.0]))


class TestTables:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in out

    def test_format_series_handles_nan(self):
        out = format_series("x", [1.0, float("nan")])
        assert "nan" in out

    def test_format_cdf_quantiles(self):
        out = format_cdf_quantiles("d", np.arange(100.0))
        assert "p50=" in out
        assert format_cdf_quantiles("e", np.zeros(0)).endswith("(empty)")


@pytest.fixture(scope="module")
def suite(florence_small):
    return MeasurementSuite(*florence_small)


class TestMeasurementSuite:
    def test_fig2_shapes_and_drop(self, suite):
        data = suite.fig2_flow_before_after()
        assert set(data) == {"R1 Aug 25", "R1 Sep 20", "R2 Aug 25", "R2 Sep 20"}
        for series in data.values():
            assert series.shape == (24,)
        # Fig 2's point: R2 (severe) drops much more than R1 (mild).
        drop_r1 = data["R1 Aug 25"].mean() - data["R1 Sep 20"].mean()
        drop_r2 = data["R2 Aug 25"].mean() - data["R2 Sep 20"].mean()
        assert drop_r2 > drop_r1

    def test_fig3_diff_nonnegative(self, suite):
        diffs = suite.fig3_flow_diff()
        assert (diffs >= 0).all()
        assert diffs.max() > 0

    def test_table1_signs_match_paper(self, suite):
        """Table I: precipitation and wind correlate negatively with flow,
        altitude positively; precipitation dominates."""
        corr = suite.table1_correlations()
        assert corr["precipitation"] < -0.5
        assert corr["wind"] < -0.3
        assert corr["altitude"] > 0.3
        assert abs(corr["precipitation"]) >= abs(corr["wind"])

    def test_fig4_downtown_dominates(self, suite):
        counts = suite.fig4_rescued_by_region()
        assert max(counts, key=counts.get) == 3

    def test_fig5_phase_ordering(self, suite):
        """Fig 5: flow collapses during the disaster and is not fully
        restored after.  (Our flood crests one day later than the paper's,
        so the Sep 17-19 'after' window is still partially suppressed and
        need not exceed 'during'; see EXPERIMENTS.md.)"""
        phases = suite.fig5_flow_phases()
        for rid, row in phases.items():
            assert row["during"] < 0.75 * row["before"]
            assert row["after"] < row["before"]
        r3 = phases[3]
        # "Before" (Sep 10-13) already includes the storm's first hours, so
        # the collapse ratio is measured against a partly suppressed base.
        assert r3["during"] < 0.5 * r3["before"]
        assert r3["after"] > 0.5 * r3["during"]

    def test_fig6_delivery_jump(self, suite):
        """Fig 6: deliveries per day jump from Sep 13 (start of impact)."""
        data = suite.fig6_deliveries_per_day()
        total = data["total"]
        before = total[10:17].mean()  # Sep 4-10
        disaster = total[20:24].mean()  # Sep 14-17
        assert disaster > 2.0 * before
        assert (data["rescued"] <= data["total"]).all()

    def test_fig6_rescued_track_requests(self, suite, florence_small):
        _, bundle = florence_small
        data = suite.fig6_deliveries_per_day()
        assert data["rescued"].sum() > 0.5 * len(bundle.rescues)


@pytest.fixture(scope="module")
def harness(florence_small, michael_small):
    return ExperimentHarness(
        florence_small,
        michael_small,
        HarnessConfig(mobirescue_episodes=2, num_teams=25),
    )


class TestHarness:
    def test_fleet_size_rule(self, florence_small, michael_small):
        h = ExperimentHarness(florence_small, michael_small, HarnessConfig())
        _, bundle = florence_small
        per_day = {}
        for r in bundle.rescues:
            d = int(r.request_time_s // 86_400)
            per_day[d] = per_day.get(d, 0) + 1
        assert h.num_teams() == max(per_day.values())

    def test_unknown_method(self, harness):
        with pytest.raises(ValueError):
            harness.make_dispatcher("Oracle")

    def test_runs_are_memoized(self, harness):
        a = harness.run_method("Nearest")
        b = harness.run_method("Nearest")
        assert a is b

    def test_paper_shape_served_and_timeliness(self, harness):
        """The headline orderings of Figs. 9 and 13 at small scale:
        MobiRescue serves at least as many requests as the IP baselines and
        is faster on timeliness."""
        runs = harness.run_all()
        mr = runs["MobiRescue"].metrics
        re_ = runs["Rescue"].metrics
        sc = runs["Schedule"].metrics
        assert mr.total_timely_served >= max(re_.total_timely_served, sc.total_timely_served)
        assert mr.result.num_served >= max(re_.result.num_served, sc.result.num_served) - 1
        assert mr.timeliness_values().mean() < re_.timeliness_values().mean()
        assert mr.timeliness_values().mean() < sc.timeliness_values().mean()

    def test_paper_shape_serving_teams(self, harness):
        """Fig 14: the baselines keep the whole fleet serving; MobiRescue
        adapts and uses fewer teams on average."""
        runs = harness.run_all()
        n = harness.num_teams()
        sched = [s for _, s in runs["Schedule"].result.serving_samples]
        resc = [s for _, s in runs["Rescue"].result.serving_samples]
        mobi = [s for _, s in runs["MobiRescue"].result.serving_samples]
        assert np.mean(sched) == pytest.approx(n, abs=1.0)
        assert np.mean(resc) == pytest.approx(n, abs=1.0)
        assert np.mean(mobi) < 0.9 * n


class TestDispatchExperiments:
    def test_figure_series_shapes(self, harness):
        de = DispatchExperiments(harness, methods=("MobiRescue", "Schedule"))
        for series in de.fig9_served_per_hour().values():
            assert series.shape == (24,)
        for series in de.fig14_serving_teams_per_hour().values():
            assert series.shape == (24,)
        per_team = de.fig10_served_per_team()
        assert all(len(v) == harness.num_teams() for v in per_team.values())

    def test_prediction_quality_orderings(self, harness):
        """Fig 16: MobiRescue's per-segment precision beats the time-series
        baseline (more segments with any correct prediction)."""
        de = DispatchExperiments(harness, methods=("MobiRescue", "Rescue"))
        quality = de.prediction_quality()
        mr, re_ = quality["MobiRescue"], quality["Rescue"]
        assert (mr.precisions > 0).mean() >= (re_.precisions > 0).mean()
        assert mr.accuracies.size > 0
        assert ((0 <= mr.accuracies) & (mr.accuracies <= 1)).all()

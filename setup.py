"""Setuptools shim.

This offline environment has no `wheel` package, so PEP-517 editable
installs fail with `invalid command 'bdist_wheel'`.  The shim lets
`pip install -e . --no-build-isolation --no-use-pep517` work via the legacy
setuptools develop path.  All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()

"""Ablation — reward weights of Eq. 5.

The gamma term is what makes MobiRescue minimize the number of serving
teams; with gamma = 0 the policy keeps more teams in the field.  The paper
sets the weights manually; this bench quantifies the trade-off.
"""

from conftest import emit

from dataclasses import replace

from repro.core.config import MobiRescueConfig
from repro.core.system import MobiRescueSystem
from repro.eval.tables import format_table
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics


def _run_variant(harness, config: MobiRescueConfig):
    system = MobiRescueSystem.train(
        harness.michael_scenario,
        harness.michael_bundle,
        config=config,
        episodes=3,
        num_teams=min(40, harness.num_teams()),
    )
    dispatcher = system.deploy(harness.florence_scenario, harness.florence_bundle)
    t0, t1 = harness.eval_window
    sim = RescueSimulator(
        harness.florence_scenario,
        harness.eval_requests(),
        dispatcher,
        SimulationConfig(t0_s=t0, t1_s=t1, num_teams=harness.num_teams(), seed=0),
    )
    result = sim.run()
    m = SimulationMetrics(result)
    serving = [n for _, n in result.serving_samples]
    return {
        "served": result.num_served,
        "timely": m.total_timely_served,
        "serving_avg": sum(serving) / len(serving),
    }


def test_ablation_reward_weights(benchmark, harness):
    base_cfg = harness.config.mobirescue_config
    variants = {
        "default": base_cfg,
        "gamma=0 (no fleet cost)": replace(base_cfg, gamma=0.0),
        "beta x4 (delay-averse)": replace(base_cfg, beta=base_cfg.beta * 4),
    }
    results = {name: _run_variant(harness, cfg) for name, cfg in variants.items()}
    benchmark(lambda: None)  # setup-dominated; the table below is the product

    rows = [
        [name, r["served"], r["timely"], f"{r['serving_avg']:.1f}"]
        for name, r in results.items()
    ]
    emit(
        "ablation_reward_weights",
        format_table(
            ["variant", "served", "timely", "avg serving teams"],
            rows,
            title=f"Reward-weight ablation (fleet={harness.num_teams()})",
        ),
    )

    # Removing the fleet-cost term must not shrink the fleet in use.
    assert (
        results["gamma=0 (no fleet cost)"]["serving_avg"]
        >= 0.9 * results["default"]["serving_avg"]
    )
    for r in results.values():
        assert r["served"] > 0

"""Fig. 12 — CDF of driving delays over all served requests.

Paper shape: MobiRescue's delay CDF sits left of (below) the baselines'.
"""

import numpy as np
from conftest import emit

from repro.eval.stats import cdf_at
from repro.eval.tables import format_cdf_quantiles


def test_fig12_delay_cdf(benchmark, dispatch_experiments):
    data = benchmark(dispatch_experiments.fig12_delay_values)

    lines = [format_cdf_quantiles(name, vals) for name, vals in data.items()]
    for bound in (300.0, 900.0, 1_800.0):
        fr = {name: f"{cdf_at(vals, bound):.2f}" for name, vals in data.items()}
        lines.append(f"P(delay <= {bound:.0f}s): {fr}")
    emit("fig12_delay_cdf", "\n".join(lines))

    mr, re_, sc = data["MobiRescue"], data["Rescue"], data["Schedule"]
    assert np.median(mr) < np.median(re_)
    assert np.median(mr) < np.median(sc)
    # More of MobiRescue's pickups happen within 15 minutes of response.
    assert cdf_at(mr, 900.0) > max(cdf_at(re_, 900.0), cdf_at(sc, 900.0))

"""Fig. 16 — CDF of per-road-segment prediction precision, MobiRescue vs
Rescue.

Paper shape: MobiRescue > Rescue across segments — the time series has no
notion of where the danger is, so it predicts at yesterday's (burned-out)
segments while the flood wave has moved on.
"""

import numpy as np
from conftest import emit

from repro.eval.tables import format_cdf_quantiles


def test_fig16_precision_cdf(benchmark, dispatch_experiments):
    data = benchmark(lambda: dispatch_experiments.fig16_precisions())

    lines = [format_cdf_quantiles(name, vals) for name, vals in data.items()]
    hit = {name: f"{(vals > 0).mean():.2f}" for name, vals in data.items()}
    lines.append(f"fraction of segments with any correct prediction: {hit}")
    emit("fig16_precision_cdf", "\n".join(lines))

    mr, re_ = data["MobiRescue"], data["Rescue"]
    assert (mr > 0).mean() > (re_ > 0).mean()
    assert mr.mean() >= re_.mean() * 0.9

"""Performance benchmarks of the substrates themselves.

Not a paper figure — these watch the cost of the operations the system runs
continuously: routing, dispatch-cycle building blocks, SVM training, DQN
updates and the stage-1 trace pipeline.
"""

import numpy as np
import pytest

from repro.geo.regions import charlotte_regions
from repro.ml.dqn import DQNAgent, DQNConfig
from repro.ml.svm import SVC
from repro.mobility.cleaning import clean_trace
from repro.mobility.mapmatch import map_match
from repro.roadnet.generator import RoadNetworkConfig, generate_road_network
from repro.roadnet.matrix import TravelTimeOracle
from repro.roadnet.routing import shortest_path, shortest_time_to


@pytest.fixture(scope="module")
def city():
    part = charlotte_regions(70_000.0, 45_000.0)
    return generate_road_network(part, RoadNetworkConfig())


def test_perf_dijkstra_point_to_point(benchmark, city):
    nodes = city.landmark_ids()
    rng = np.random.default_rng(0)
    pairs = [tuple(rng.choice(nodes, size=2, replace=False)) for _ in range(32)]

    def run():
        return sum(
            shortest_path(city, int(a), int(b)).travel_time_s for a, b in pairs
        )

    total = benchmark(run)
    assert total > 0


def test_perf_reverse_dijkstra(benchmark, city):
    result = benchmark(lambda: shortest_time_to(city, 0))
    assert len(result) == city.num_landmarks


def test_perf_travel_time_oracle_build(benchmark, city):
    oracle = benchmark(lambda: TravelTimeOracle(city))
    assert oracle.node_to_node_s(0, 1) > 0


def test_perf_svm_smo_fit(benchmark):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(400, 3))
    y = (x @ np.array([1.5, -1.0, 0.5]) + rng.normal(0, 0.3, 400) > 0).astype(int)

    clf = benchmark(lambda: SVC(kernel="rbf", gamma=0.5, c=2.0).fit(x, y))
    assert clf.is_fitted


def test_perf_dqn_learn_step(benchmark):
    cfg = DQNConfig(state_dim=27, num_actions=9, batch_size=64, seed=0)
    agent = DQNAgent(cfg)
    rng = np.random.default_rng(2)
    for _ in range(256):
        agent.remember(rng.normal(size=27), int(rng.integers(9)), 1.0,
                       rng.normal(size=27), False)

    loss = benchmark(agent.learn)
    assert loss is not None


def test_perf_stage1_pipeline(benchmark, florence_bench):
    """Cleaning + map matching of the full benchmark trace."""
    scenario, bundle = florence_bench

    def run():
        clean, _ = clean_trace(
            bundle.trace, scenario.partition.width_m, scenario.partition.height_m
        )
        return map_match(clean, scenario.network)

    matched = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(matched.trajectories) == len(bundle.persons)

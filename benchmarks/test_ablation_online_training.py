"""Ablation — online continual RL training (paper Section IV-C4).

The paper keeps training the RL model during deployment because the
historical disaster "may have different levels of impact".  This bench
deploys the same offline-trained model with and without online updates.
"""

from conftest import emit

from repro.eval.tables import format_table
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics


def _run(harness, online: bool):
    dispatcher = harness.system().deploy(
        harness.florence_scenario, harness.florence_bundle, online_training=online
    )
    t0, t1 = harness.eval_window
    sim = RescueSimulator(
        harness.florence_scenario,
        harness.eval_requests(),
        dispatcher,
        SimulationConfig(t0_s=t0, t1_s=t1, num_teams=harness.num_teams(), seed=0),
    )
    result = sim.run()
    return result, SimulationMetrics(result)


def test_ablation_online_training(benchmark, harness):
    results = {
        "online (paper)": _run(harness, True),
        "frozen": _run(harness, False),
    }
    benchmark(lambda: None)

    rows = [
        [name, r.num_served, m.total_timely_served]
        for name, (r, m) in results.items()
    ]
    emit(
        "ablation_online_training",
        format_table(
            ["variant", "served", "timely"],
            rows,
            title="Online continual training ablation",
        ),
    )

    online_served = results["online (paper)"][0].num_served
    frozen_served = results["frozen"][0].num_served
    # Online training must not collapse performance relative to frozen.
    assert online_served >= 0.8 * frozen_served

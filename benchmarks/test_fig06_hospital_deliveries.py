"""Fig. 6 — number of people delivered to hospitals per day.

Paper shape: a steep jump at the start of the hurricane impact (Sep 13),
sustained high deliveries through Sep 16, then decline.
"""

import numpy as np
from conftest import emit

from repro.eval.tables import format_series
from repro.weather.storms import day_label


def test_fig06_hospital_deliveries(benchmark, suite):
    data = benchmark(suite.fig6_deliveries_per_day)
    total, rescued = data["total"], data["rescued"]
    timeline = suite.scenario.timeline

    labels = [day_label(timeline, d) for d in range(timeline.total_days)]
    lines = [
        "day:      " + " ".join(f"{lbl.split()[1]:>4}" for lbl in labels),
        format_series("total", total, fmt="%4.0f"),
        format_series("rescued", rescued, fmt="%4.0f"),
    ]
    emit("fig06_hospital_deliveries", "\n".join(lines))

    before = total[8:17].mean()  # Sep 2-10 baseline
    disaster = total[20:24].mean()  # Sep 14-17
    assert disaster > 2.0 * before
    # The rescued series drives the jump.
    assert rescued[20:24].sum() > rescued[8:17].sum()
    assert int(np.argmax(rescued)) >= 19  # peak on/after Sep 13

"""Shared fixtures for the per-figure benchmarks.

Each benchmark regenerates one paper table/figure: heavy intermediates
(datasets, trained models, simulation runs) are built once per session in
fixtures; the benchmarked callable is the experiment's analysis step.  The
rendered rows/series are printed and appended to
``benchmarks/results/<figure>.txt`` so the paper-vs-measured comparison is
inspectable after a ``--benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.data import DatasetSpec, build_dataset
from repro.eval.experiments import DispatchExperiments, MeasurementSuite
from repro.eval.harness import ExperimentHarness, HarnessConfig

#: Scaled-down population (paper: 8,590).  Shapes are stable from roughly a
#: thousand people; full scale works but multiplies benchmark wall-clock.
BENCH_POPULATION = 1_500

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a figure's series and persist them under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")


@pytest.fixture(scope="session")
def florence_bench():
    return build_dataset(DatasetSpec(storm="florence", population_size=BENCH_POPULATION))


@pytest.fixture(scope="session")
def michael_bench():
    return build_dataset(DatasetSpec(storm="michael", population_size=BENCH_POPULATION))


@pytest.fixture(scope="session")
def suite(florence_bench) -> MeasurementSuite:
    s = MeasurementSuite(*florence_bench)
    # Materialize the shared pipeline products once.
    s.flow
    s.labeled_deliveries
    return s


@pytest.fixture(scope="session")
def harness(florence_bench, michael_bench) -> ExperimentHarness:
    h = ExperimentHarness(
        florence_bench, michael_bench, HarnessConfig(mobirescue_episodes=6)
    )
    h.run_all()  # simulate all three methods once
    return h


@pytest.fixture(scope="session")
def dispatch_experiments(harness) -> DispatchExperiments:
    return DispatchExperiments(harness)

"""Fig. 13 — CDF of the timeliness of rescuing (rescue time − request
time, including the dispatching method's computation delay).

Paper shape: MobiRescue << Schedule < Rescue — the trained RL model answers
in < 0.5 s while the integer programs take ~300 s (and Rescue's programs,
covering predicted demand too, are the biggest).
"""

import numpy as np
from conftest import emit

from repro.eval.tables import format_cdf_quantiles


def test_fig13_timeliness_cdf(benchmark, dispatch_experiments):
    data = benchmark(dispatch_experiments.fig13_timeliness_values)

    lines = [format_cdf_quantiles(name, vals) for name, vals in data.items()]
    means = {name: float(vals.mean()) for name, vals in data.items()}
    lines.append(
        "means (s): " + " ".join(f"{k}={v:.0f}" for k, v in means.items())
        + " (paper: MobiRescue << Schedule < Rescue)"
    )
    emit("fig13_timeliness_cdf", "\n".join(lines))

    assert means["MobiRescue"] < 0.7 * means["Schedule"]
    assert means["MobiRescue"] < 0.7 * means["Rescue"]
    assert np.median(data["MobiRescue"]) < np.median(data["Rescue"])

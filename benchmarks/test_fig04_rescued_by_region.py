"""Fig. 4 — region distribution of rescued people.

Paper shape: most rescue requests appear in Region 3 (downtown), the most
severely impacted region.
"""

from conftest import emit

from repro.eval.tables import format_table


def test_fig04_rescued_by_region(benchmark, suite):
    counts = benchmark(suite.fig4_rescued_by_region)

    total = sum(counts.values())
    rows = [
        [f"R{rid}", n, f"{100.0 * n / total:.1f}%"] for rid, n in sorted(counts.items())
    ]
    emit(
        "fig04_rescued_by_region",
        format_table(["region", "rescued", "share"], rows,
                     title="Region distribution of rescued people (paper: R3 hottest)"),
    )

    assert max(counts, key=counts.get) == 3
    assert counts[3] > 0.3 * total

"""Ablation — how much of MobiRescue's timeliness win is inference speed.

Fig. 13 credits MobiRescue's < 0.5 s inference against the baselines'
~300 s integer programs.  This bench handicaps the same trained MobiRescue
policy with a 300 s computation delay to isolate that factor.
"""

import numpy as np
from conftest import emit

from repro.eval.tables import format_table
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics


def _run_with_delay(harness, delay_s: float):
    dispatcher = harness.system().deploy(
        harness.florence_scenario, harness.florence_bundle
    )
    dispatcher.computation_delay_s = delay_s
    t0, t1 = harness.eval_window
    sim = RescueSimulator(
        harness.florence_scenario,
        harness.eval_requests(),
        dispatcher,
        SimulationConfig(t0_s=t0, t1_s=t1, num_teams=harness.num_teams(), seed=0),
    )
    result = sim.run()
    m = SimulationMetrics(result)
    tl = m.timeliness_values()
    return {
        "served": result.num_served,
        "timely": m.total_timely_served,
        "mean_timeliness_s": float(tl.mean()) if len(tl) else float("nan"),
    }


def test_ablation_computation_delay(benchmark, harness):
    results = {
        "0.4 s (RL inference)": _run_with_delay(harness, 0.4),
        "300 s (IP solve time)": _run_with_delay(harness, 300.0),
    }
    benchmark(lambda: None)

    rows = [
        [name, r["served"], r["timely"], f"{r['mean_timeliness_s']:.0f}"]
        for name, r in results.items()
    ]
    emit(
        "ablation_computation_delay",
        format_table(
            ["computation delay", "served", "timely", "mean timeliness (s)"],
            rows,
            title="Computation-delay ablation (same trained policy)",
        ),
    )

    fast = results["0.4 s (RL inference)"]
    slow = results["300 s (IP solve time)"]
    # The handicap costs timeliness but does not erase the policy's edge.
    assert fast["mean_timeliness_s"] <= slow["mean_timeliness_s"] + 60.0
    assert slow["served"] > 0

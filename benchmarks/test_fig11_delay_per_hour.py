"""Fig. 11 — average driving delay to requests per hour, by method.

Paper shape: MobiRescue < Rescue < Schedule during most hours (flood-aware
routing + proactive positioning shorten the drives).
"""

import numpy as np
from conftest import emit

from repro.eval.tables import format_series


def test_fig11_delay_per_hour(benchmark, dispatch_experiments):
    data = benchmark(dispatch_experiments.fig11_delay_per_hour)

    lines = [format_series(name, series, fmt="%5.0f") for name, series in data.items()]
    means = {name: float(np.nanmean(series)) for name, series in data.items()}
    lines.append(
        "hourly-mean of means (s): "
        + " ".join(f"{k}={v:.0f}" for k, v in means.items())
        + " (paper: MobiRescue lowest)"
    )
    emit("fig11_delay_per_hour", "\n".join(lines))

    assert means["MobiRescue"] < means["Rescue"]
    assert means["MobiRescue"] < means["Schedule"]

"""Extended evaluation — dispatching across the whole flood (beyond the
paper).

The paper evaluates one day (Sep 16).  This bench runs MobiRescue and
Schedule continuously over Sep 15-17 — rising flood, crest, and early
recession — checking that MobiRescue's advantage is not an artifact of the
single evaluation day.
"""

import numpy as np
from conftest import emit

from repro.eval.tables import format_table
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics
from repro.sim.requests import remap_to_operable, requests_from_rescues
from repro.weather.storms import SECONDS_PER_DAY, day_index


def _run(harness, name: str, t0: float, t1: float, requests):
    dispatcher = harness.make_dispatcher(name)
    sim = RescueSimulator(
        harness.florence_scenario,
        requests,
        dispatcher,
        SimulationConfig(t0_s=t0, t1_s=t1, num_teams=harness.num_teams(), seed=0),
    )
    result = sim.run()
    return result, SimulationMetrics(result)


def test_ext_multiday(benchmark, harness):
    scen = harness.florence_scenario
    d0 = day_index(scen.timeline, "Sep 15")
    t0, t1 = d0 * SECONDS_PER_DAY, (d0 + 3) * SECONDS_PER_DAY
    requests = remap_to_operable(
        requests_from_rescues(harness.florence_bundle.rescues, t0, t1),
        scen.network,
        scen.flood,
    )
    results = {
        name: _run(harness, name, t0, t1, requests)
        for name in ("MobiRescue", "Schedule")
    }
    benchmark(lambda: None)

    rows = []
    for name, (result, m) in results.items():
        tl = m.timeliness_values()
        rows.append([
            name,
            result.num_served,
            m.total_timely_served,
            f"{np.median(tl):.0f}" if len(tl) else "-",
        ])
    emit(
        "ext_multiday",
        format_table(
            ["method", "served", "timely", "median timeliness (s)"],
            rows,
            title=f"Sep 15-17 continuous run ({len(requests)} requests)",
        ),
    )

    mr, sc = results["MobiRescue"], results["Schedule"]
    assert mr[0].num_served >= sc[0].num_served
    assert mr[1].total_timely_served > sc[1].total_timely_served

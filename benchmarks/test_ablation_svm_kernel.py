"""Ablation — SVM kernel for the request predictor.

The paper motivates kernels by non-linear separability; this bench compares
RBF (default) against linear and polynomial on the rescue-decision training
distribution (held-out split).
"""

import numpy as np
from conftest import emit

from repro.core.predictor import RequestPredictor, TrainingSet, build_training_set
from repro.eval.tables import format_table


def test_ablation_svm_kernel(benchmark, michael_bench):
    scenario, bundle = michael_bench
    full = build_training_set(scenario, bundle, negatives_per_positive=4, seed=0)
    n = len(full.y)
    split = int(0.7 * n)
    train = TrainingSet(x=full.x[:split], y=full.y[:split])
    test = TrainingSet(x=full.x[split:], y=full.y[split:])

    def fit_all():
        out = {}
        for kernel in ("rbf", "linear", "poly"):
            p = RequestPredictor(scenario, kernel=kernel, c=8.0, gamma=0.5).fit(train)
            out[kernel] = p.evaluate(test)
        return out

    results = benchmark(fit_all)

    rows = [
        [k, c.accuracy, c.precision, c.recall, c.f1] for k, c in results.items()
    ]
    emit(
        "ablation_svm_kernel",
        format_table(
            ["kernel", "accuracy", "precision", "recall", "f1"],
            rows,
            title=f"SVM kernel ablation (train={split}, test={n - split})",
        ),
    )

    for counts in results.values():
        assert counts.accuracy > 0.6
    # The default kernel must be competitive with the best alternative.
    best = max(c.f1 for c in results.values())
    assert results["rbf"].f1 >= best - 0.1

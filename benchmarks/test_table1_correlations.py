"""Table I — Pearson correlation between disaster factors and vehicle flow.

Paper values: precipitation -0.897, wind speed -0.781, altitude +0.739,
with |precipitation| > |wind| > |altitude|.  We reproduce the signs, the
magnitudes' scale and precipitation's dominance.
"""

from conftest import emit

from repro.eval.tables import format_table


def test_table1_correlations(benchmark, suite):
    corr = benchmark(suite.table1_correlations)

    table = format_table(
        ["factor", "measured", "paper"],
        [
            ["precipitation", corr["precipitation"], -0.897],
            ["wind speed", corr["wind"], -0.781],
            ["altitude", corr["altitude"], 0.739],
        ],
        title="Correlation between disaster-related factors and vehicle flow rate",
    )
    emit("table1_correlations", table)

    assert corr["precipitation"] < -0.5
    assert corr["wind"] < -0.3
    assert corr["altitude"] > 0.3
    assert abs(corr["precipitation"]) >= abs(corr["wind"])

"""Fig. 15 — CDF of per-road-segment prediction accuracy, MobiRescue's SVM
vs Rescue's time-series.

Paper shape: MobiRescue's accuracy CDF sits right of Rescue's.  In this
reproduction the two accuracy distributions come out close (the sparse
time-series predictor earns many true negatives by predicting almost
nothing — see EXPERIMENTS.md); the decisive separation is precision
(Fig. 16).
"""

import numpy as np
from conftest import emit

from repro.eval.tables import format_cdf_quantiles


def test_fig15_accuracy_cdf(benchmark, dispatch_experiments):
    data = benchmark(lambda: dispatch_experiments.fig15_accuracies())

    lines = [format_cdf_quantiles(name, vals) for name, vals in data.items()]
    means = {name: float(vals.mean()) for name, vals in data.items()}
    lines.append("means: " + " ".join(f"{k}={v:.3f}" for k, v in means.items()))
    emit("fig15_accuracy_cdf", "\n".join(lines))

    mr = data["MobiRescue"]
    assert mr.size > 50
    assert ((0.0 <= mr) & (mr <= 1.0)).all()
    assert means["MobiRescue"] > 0.7
    # The distributions are close; MobiRescue must stay within a whisker.
    assert means["MobiRescue"] > means["Rescue"] - 0.08

"""Ablation — dispatching period.

The paper runs MobiRescue every 5 minutes; this bench compares 5 min
against a slower 15-minute cycle using the same trained models.
"""

import numpy as np
from conftest import emit

from repro.eval.tables import format_table
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics


def _run_with_period(harness, period_s: float):
    dispatcher = harness.system().deploy(
        harness.florence_scenario, harness.florence_bundle
    )
    t0, t1 = harness.eval_window
    sim = RescueSimulator(
        harness.florence_scenario,
        harness.eval_requests(),
        dispatcher,
        SimulationConfig(
            t0_s=t0,
            t1_s=t1,
            num_teams=harness.num_teams(),
            dispatch_period_s=period_s,
            seed=0,
        ),
    )
    result = sim.run()
    m = SimulationMetrics(result)
    tl = m.timeliness_values()
    return {
        "served": result.num_served,
        "timely": m.total_timely_served,
        "median_timeliness_s": float(np.median(tl)) if len(tl) else float("nan"),
    }


def test_ablation_dispatch_period(benchmark, harness):
    results = {
        "5 min (paper)": _run_with_period(harness, 300.0),
        "15 min": _run_with_period(harness, 900.0),
    }
    benchmark(lambda: None)

    rows = [
        [name, r["served"], r["timely"], f"{r['median_timeliness_s']:.0f}"]
        for name, r in results.items()
    ]
    emit(
        "ablation_dispatch_period",
        format_table(
            ["period", "served", "timely", "median timeliness (s)"],
            rows,
            title="Dispatch-period ablation",
        ),
    )

    # A slower cycle must not *improve* timely service.
    assert results["5 min (paper)"]["timely"] >= results["15 min"]["timely"] - 2

"""Fig. 9 — total timely served rescue requests per hour, by method.

Paper shape: MobiRescue > Rescue > Schedule in total served.
"""

from conftest import emit

from repro.eval.tables import format_series


def test_fig09_served_per_hour(benchmark, dispatch_experiments):
    data = benchmark(dispatch_experiments.fig9_served_per_hour)

    lines = [format_series(name, series, fmt="%3.0f") for name, series in data.items()]
    totals = {name: int(series.sum()) for name, series in data.items()}
    lines.append(f"totals: {totals} (paper: MobiRescue > Rescue > Schedule)")
    emit("fig09_served_per_hour", "\n".join(lines))

    assert totals["MobiRescue"] > totals["Rescue"]
    assert totals["MobiRescue"] > totals["Schedule"]

"""Fig. 10 — CDF of timely served requests per rescue team.

Paper shape: MobiRescue's per-team service counts stochastically dominate
the baselines' (its CDF sits to the right).
"""

from conftest import emit

from repro.eval.tables import format_cdf_quantiles


def test_fig10_served_cdf(benchmark, dispatch_experiments):
    data = benchmark(dispatch_experiments.fig10_served_per_team)

    lines = [format_cdf_quantiles(name, vals) for name, vals in data.items()]
    emit("fig10_served_cdf", "\n".join(lines))

    mr, re_, sc = data["MobiRescue"], data["Rescue"], data["Schedule"]
    assert mr.sum() > re_.sum()
    assert mr.sum() > sc.sum()
    # MobiRescue concentrates work on fewer, busier teams: its busiest team
    # serves at least as much as any baseline team.
    assert mr.max() >= max(re_.max(), sc.max())

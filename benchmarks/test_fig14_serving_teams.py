"""Fig. 14 — number of serving rescue teams per hour, by method.

Paper shape: Rescue = Schedule = constant (their IPs never minimize fleet
size); MobiRescue varies with demand and stays below.
"""

import numpy as np
from conftest import emit

from repro.eval.tables import format_series


def test_fig14_serving_teams(benchmark, dispatch_experiments):
    data = benchmark(dispatch_experiments.fig14_serving_teams_per_hour)

    lines = [format_series(name, series, fmt="%4.0f") for name, series in data.items()]
    emit("fig14_serving_teams", "\n".join(lines))

    n = dispatch_experiments.harness.num_teams()
    sched, resc, mobi = data["Schedule"], data["Rescue"], data["MobiRescue"]
    # Baselines pin the whole fleet, every hour.
    assert np.nanstd(sched) < 0.05 * n
    assert np.nanstd(resc) < 0.05 * n
    assert np.nanmean(sched) > 0.95 * n
    # MobiRescue adapts: fewer teams on average, and it actually varies.
    assert np.nanmean(mobi) < 0.8 * n
    assert np.nanstd(mobi) > np.nanstd(sched)

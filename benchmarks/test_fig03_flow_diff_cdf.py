"""Fig. 3 — CDF of per-segment flow-rate difference before vs after.

Paper shape: most segments show a substantial before/after difference, and
the differences spread over a wide range (heterogeneous impact).
"""

import numpy as np
from conftest import emit

from repro.eval.stats import cdf
from repro.eval.tables import format_cdf_quantiles


def test_fig03_flow_diff_cdf(benchmark, suite):
    diffs = benchmark(suite.fig3_flow_diff)
    x, p = cdf(diffs)

    lines = [
        format_cdf_quantiles("|before-after|", diffs),
        f"fraction of segments with nonzero difference: {(diffs > 0).mean():.2f}",
    ]
    emit("fig03_flow_diff_cdf", "\n".join(lines))

    assert x.shape == p.shape
    assert (diffs >= 0).all()
    # Heterogeneous impact: the top decile differs far more than the median.
    assert np.quantile(diffs, 0.9) > 2 * max(np.quantile(diffs, 0.5), 1e-9)

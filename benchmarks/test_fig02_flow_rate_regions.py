"""Fig. 2 — average vehicle flow rate of R1 vs R2, before vs after disaster.

Paper shape: R1's before/after difference is small; R2's is much larger
(R2 is lower and rainier, so the flooding hits its road use harder).
"""

from conftest import emit

from repro.eval.tables import format_series


def test_fig02_flow_rate_regions(benchmark, suite):
    data = benchmark(suite.fig2_flow_before_after)

    lines = [format_series(name, series) for name, series in data.items()]
    drop_r1 = data["R1 Aug 25"].mean() - data["R1 Sep 20"].mean()
    drop_r2 = data["R2 Aug 25"].mean() - data["R2 Sep 20"].mean()
    lines.append(
        f"day-mean drop: R1 {drop_r1:.3f}  R2 {drop_r2:.3f} (paper: R2 >> R1)"
    )
    emit("fig02_flow_rate_regions", "\n".join(lines))

    assert all(series.shape == (24,) for series in data.values())
    assert drop_r2 > drop_r1

"""Extended evaluation — fleet-size sensitivity (beyond the paper).

The paper fixes the fleet by its max-daily-requests rule.  This bench sweeps
the fleet to half and 1.5x that size and reports how MobiRescue's service
degrades/saturates — the capacity-planning curve a dispatch center would
actually consult.
"""

from conftest import emit

from repro.eval.tables import format_table
from repro.sim.engine import RescueSimulator, SimulationConfig
from repro.sim.metrics import SimulationMetrics


def _run_with_fleet(harness, num_teams: int):
    dispatcher = harness.system().deploy(
        harness.florence_scenario, harness.florence_bundle
    )
    t0, t1 = harness.eval_window
    sim = RescueSimulator(
        harness.florence_scenario,
        harness.eval_requests(),
        dispatcher,
        SimulationConfig(t0_s=t0, t1_s=t1, num_teams=num_teams, seed=0),
    )
    result = sim.run()
    m = SimulationMetrics(result)
    serving = [n for _, n in result.serving_samples]
    return {
        "served": result.num_served,
        "timely": m.total_timely_served,
        "serving_avg": sum(serving) / len(serving),
    }


def test_ext_fleet_size(benchmark, harness):
    base = harness.num_teams()
    fleets = {f"{frac:.0%} ({int(base * frac)})": int(base * frac)
              for frac in (0.5, 1.0, 1.5)}
    results = {name: _run_with_fleet(harness, n) for name, n in fleets.items()}
    benchmark(lambda: None)

    total = len(harness.eval_requests())
    rows = [
        [name, r["served"], r["timely"], f"{r['serving_avg']:.1f}"]
        for name, r in results.items()
    ]
    emit(
        "ext_fleet_size",
        format_table(
            ["fleet", "served", "timely", "avg serving"],
            rows,
            title=f"Fleet-size sensitivity ({total} requests; "
                  f"paper rule = {base} teams)",
        ),
    )

    served = [r["served"] for r in results.values()]
    # Service is monotone-ish in fleet size and saturates near the rule.
    assert served[0] <= served[1] + 3
    assert served[1] >= 0.75 * total

"""Fig. 5 — per-region vehicle flow before / during / after the disaster.

Paper shape: flow collapses during the disaster in every region (Region 3,
downtown, from the highest base), and the after-disaster level stays well
below the before level.
"""

from conftest import emit

from repro.eval.tables import format_table


def test_fig05_flow_phases(benchmark, suite):
    phases = benchmark(suite.fig5_flow_phases)

    rows = [
        [f"R{rid}", row["before"], row["during"], row["after"]]
        for rid, row in sorted(phases.items())
    ]
    emit(
        "fig05_flow_phases",
        format_table(
            ["region", "before (Sep10-13)", "during (Sep14-16)", "after (Sep17-19)"],
            rows,
            title="Average vehicle flow rate per phase (vehicles/hour)",
        ),
    )

    for row in phases.values():
        assert row["during"] < row["before"]
        assert row["after"] < row["before"]
    before = {rid: row["before"] for rid, row in phases.items()}
    assert max(before, key=before.get) == 3  # downtown busiest pre-disaster

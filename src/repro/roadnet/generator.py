"""Synthetic Charlotte-like road network generator.

Offline replacement for the paper's OpenStreetMap extract of Charlotte.
The generator produces a warped-grid street network on the local plane:

* a jittered grid of landmarks whose spacing shrinks toward the downtown
  seed (Region 3 sits at the plane center in the region partition), so the
  downtown is denser — the structural property the paper leans on when it
  notes Region 3 carries the most traffic and the most rescue requests;
* 4-neighbor street links, each materialized as two directed segments;
* arterial rows/columns with a higher speed limit, mimicking the major
  Charlotte corridors.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geo.regions import RegionPartition
from repro.roadnet.graph import Landmark, RoadNetwork, RoadSegment

MPH_TO_MPS = 0.44704


@dataclass(frozen=True)
class RoadNetworkConfig:
    """Tunables for the synthetic network.

    Defaults give a ~dozens-of-km city with a few hundred intersections —
    large enough for region structure and routing to matter, small enough
    that a full 24 h dispatching experiment runs in seconds.
    """

    grid_cols: int = 22
    grid_rows: int = 22
    #: Strength of grid warping toward the center (0 = uniform grid,
    #: values near 1 concentrate most intersections downtown).
    downtown_concentration: float = 0.45
    #: Positional jitter as a fraction of local grid spacing.
    jitter_fraction: float = 0.18
    #: Every ``arterial_every``-th row/column is an arterial.
    arterial_every: int = 4
    street_speed_mph: float = 35.0
    arterial_speed_mph: float = 60.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.grid_cols < 3 or self.grid_rows < 3:
            raise ValueError("grid must be at least 3x3")
        if not (0.0 <= self.downtown_concentration < 1.0):
            raise ValueError("downtown_concentration must be in [0, 1)")
        if not (0.0 <= self.jitter_fraction < 0.5):
            raise ValueError("jitter_fraction must be in [0, 0.5)")
        if self.arterial_every < 2:
            raise ValueError("arterial_every must be >= 2")


def _warp(u: np.ndarray, a: float) -> np.ndarray:
    """Monotone warp of [0, 1] that compresses spacing around 0.5.

    The derivative is ``1 + a*cos(2*pi*u)``: minimal (= 1 - a) at the
    center, so grid lines bunch up downtown, and maximal at the edges.
    """
    return u + a * np.sin(2.0 * np.pi * u) / (2.0 * np.pi)


def generate_road_network(
    partition: RegionPartition, config: RoadNetworkConfig | None = None
) -> RoadNetwork:
    """Generate the synthetic city road network on ``partition``'s plane."""
    cfg = config or RoadNetworkConfig()
    rng = np.random.default_rng(cfg.seed)
    net = RoadNetwork()

    margin = 0.03
    us = _warp(np.linspace(0.0, 1.0, cfg.grid_cols), cfg.downtown_concentration)
    vs = _warp(np.linspace(0.0, 1.0, cfg.grid_rows), cfg.downtown_concentration)
    xs = (margin + (1 - 2 * margin) * us) * partition.width_m
    ys = (margin + (1 - 2 * margin) * vs) * partition.height_m

    spacing_x = np.diff(xs).mean()
    spacing_y = np.diff(ys).mean()

    node_id = 0
    grid_to_node: dict[tuple[int, int], int] = {}
    for r in range(cfg.grid_rows):
        for c in range(cfg.grid_cols):
            jx = rng.uniform(-1.0, 1.0) * cfg.jitter_fraction * spacing_x
            jy = rng.uniform(-1.0, 1.0) * cfg.jitter_fraction * spacing_y
            x = float(np.clip(xs[c] + jx, 0.0, partition.width_m))
            y = float(np.clip(ys[r] + jy, 0.0, partition.height_m))
            net.add_landmark(Landmark(node_id, x, y))
            grid_to_node[(r, c)] = node_id
            node_id += 1

    def is_arterial(r: int, c: int, rr: int, cc: int) -> bool:
        if r == rr:  # horizontal link: arterial row
            return r % cfg.arterial_every == cfg.arterial_every // 2
        return c % cfg.arterial_every == cfg.arterial_every // 2

    street_mps = cfg.street_speed_mph * MPH_TO_MPS
    arterial_mps = cfg.arterial_speed_mph * MPH_TO_MPS

    seg_id = 0
    for r in range(cfg.grid_rows):
        for c in range(cfg.grid_cols):
            u = grid_to_node[(r, c)]
            for rr, cc in ((r, c + 1), (r + 1, c)):
                if rr >= cfg.grid_rows or cc >= cfg.grid_cols:
                    continue
                v = grid_to_node[(rr, cc)]
                lu, lv = net.landmark(u), net.landmark(v)
                length = max(1.0, math.hypot(lu.x - lv.x, lu.y - lv.y))
                speed = arterial_mps if is_arterial(r, c, rr, cc) else street_mps
                mid_x, mid_y = (lu.x + lv.x) / 2.0, (lu.y + lv.y) / 2.0
                region = partition.region_of(mid_x, mid_y)
                net.add_segment(RoadSegment(seg_id, u, v, length, speed, region))
                seg_id += 1
                net.add_segment(RoadSegment(seg_id, v, u, length, speed, region))
                seg_id += 1

    return net.freeze()

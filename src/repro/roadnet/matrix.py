"""All-pairs free-flow travel times.

Dispatchers need many travel-time *estimates* per cycle (cost matrices for
the IP baselines, candidate features for the RL policy).  Computing them
on demand would dominate runtime, so the full node-to-node matrix is built
once per network with scipy's sparse Dijkstra.  Actual driving in the
simulator still uses exact per-leg routing on the operable network — the
matrix is only the planners' mental map, which (deliberately, for the
flood-unaware baselines) ignores closures.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as sparse_dijkstra

from repro.roadnet.graph import RoadNetwork


class TravelTimeOracle:
    """Dense free-flow travel-time lookups between landmarks."""

    def __init__(self, network: RoadNetwork) -> None:
        self.network = network
        node_ids = network.landmark_ids()
        self._index = {n: i for i, n in enumerate(node_ids)}
        n = len(node_ids)
        rows, cols, vals = [], [], []
        for seg in network.segments():
            rows.append(self._index[seg.u])
            cols.append(self._index[seg.v])
            vals.append(seg.free_flow_time_s)
        graph = csr_matrix((vals, (rows, cols)), shape=(n, n))
        self._times = sparse_dijkstra(graph, directed=True).astype(np.float32)
        # Segment-end lookup: travel time to the end of segment e is time to
        # e.u plus e's own traversal time.
        seg_ids = network.segment_ids()
        self._seg_index = {s: i for i, s in enumerate(seg_ids)}
        self._seg_u = np.array([self._index[network.segment(s).u] for s in seg_ids])
        self._seg_time = np.array(
            [network.segment(s).free_flow_time_s for s in seg_ids], dtype=np.float32
        )

    def node_to_node_s(self, src: int, dst: int) -> float:
        """Free-flow travel time between two landmarks, seconds."""
        return float(self._times[self._index[src], self._index[dst]])

    def node_to_segment_end_s(self, src: int, segment_id: int) -> float:
        """Free-flow time from a landmark to the *end* of a segment (the
        paper's dispatch destination semantics)."""
        i = self._seg_index[segment_id]
        return float(self._times[self._index[src], self._seg_u[i]] + self._seg_time[i])

    def node_to_segments_s(self, src: int, segment_ids: list[int]) -> np.ndarray:
        """Vectorized :meth:`node_to_segment_end_s` for many segments."""
        idx = np.array([self._seg_index[s] for s in segment_ids])
        return self._times[self._index[src], self._seg_u[idx]] + self._seg_time[idx]


_ORACLE_CACHE: dict[int, TravelTimeOracle] = {}


def travel_time_oracle(network: RoadNetwork) -> TravelTimeOracle:
    """Per-network memoized oracle (the matrix takes ~a second to build)."""
    key = id(network)
    if key not in _ORACLE_CACHE:
        _ORACLE_CACHE[key] = TravelTimeOracle(network)  # repro: allow-fork-unsafe -- per-process memo; affects speed, never results
    return _ORACLE_CACHE[key]

"""Road network substrate: landmark graph, synthetic generator, routing.

The paper represents the Charlotte road network as a directed graph
``G = (E, V)`` whose vertices are landmarks (intersections / turning points)
and whose edges are road segments (Section III-A), obtained from
OpenStreetMap and cropped with NWS data.  Offline OSM data is not available,
so :mod:`repro.roadnet.generator` synthesizes a structurally comparable
city network (dense downtown, arterials, 7-region coverage).
"""

from repro.roadnet.graph import Landmark, RoadNetwork, RoadSegment
from repro.roadnet.generator import RoadNetworkConfig, generate_road_network
from repro.roadnet.routing import (
    Route,
    dijkstra_tree,
    shortest_path,
    shortest_time_from,
    shortest_time_to,
    route_to_segment,
)

__all__ = [
    "Landmark",
    "RoadNetwork",
    "RoadNetworkConfig",
    "RoadSegment",
    "Route",
    "dijkstra_tree",
    "generate_road_network",
    "route_to_segment",
    "shortest_path",
    "shortest_time_from",
    "shortest_time_to",
]

"""Shortest-path routing on the road network.

The paper routes rescue teams with "an existing routing algorithm (e.g.,
the Dijkstra algorithm)" over the remaining available network G̃ (Section
IV-C3).  ``closed`` carries G̃: any segment in that set is skipped.  Costs
are free-flow traversal times by default (``weight='time'``), which is what
the driving-delay metric sums, or segment lengths (``weight='length'``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.roadnet.graph import RoadNetwork, RoadSegment

_WEIGHTS = ("time", "length")


def _cost(segment: RoadSegment, weight: str) -> float:
    if weight == "time":
        return segment.free_flow_time_s
    return segment.length_m


@dataclass(frozen=True)
class Route:
    """A drivable route: the paper's Φ_kj = {p_mk, ..., e_j}."""

    nodes: tuple[int, ...]
    segment_ids: tuple[int, ...]
    travel_time_s: float
    length_m: float

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.segment_ids) + 1:
            raise ValueError("route must have exactly one more node than segments")

    @property
    def src(self) -> int:
        return self.nodes[0]

    @property
    def dst(self) -> int:
        return self.nodes[-1]

    @property
    def is_trivial(self) -> bool:
        return not self.segment_ids


def shortest_path(
    network: RoadNetwork,
    src: int,
    dst: int,
    closed: frozenset[int] = frozenset(),
    weight: str = "time",
) -> Route | None:
    """Dijkstra shortest path from node ``src`` to node ``dst``.

    Returns ``None`` when ``dst`` is unreachable through operable segments.
    """
    if weight not in _WEIGHTS:
        raise ValueError(f"weight must be one of {_WEIGHTS}")
    network.landmark(src)
    network.landmark(dst)
    if src == dst:
        return Route((src,), (), 0.0, 0.0)

    dist: dict[int, float] = {src: 0.0}
    prev_seg: dict[int, int] = {}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, src)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        if node == dst:
            break
        done.add(node)
        for seg in network.out_segments(node):
            if seg.segment_id in closed:
                continue
            nd = d + _cost(seg, weight)
            if nd < dist.get(seg.v, float("inf")):
                dist[seg.v] = nd
                prev_seg[seg.v] = seg.segment_id
                heapq.heappush(heap, (nd, seg.v))

    if dst not in prev_seg:
        return None
    seg_ids: list[int] = []
    node = dst
    while node != src:
        sid = prev_seg[node]
        seg_ids.append(sid)
        node = network.segment(sid).u
    seg_ids.reverse()
    return _route_from_segments(network, src, seg_ids)


def _route_from_segments(network: RoadNetwork, src: int, seg_ids: list[int]) -> Route:
    nodes = [src]
    time_s = 0.0
    length = 0.0
    for sid in seg_ids:
        seg = network.segment(sid)
        if seg.u != nodes[-1]:
            raise ValueError("discontinuous segment sequence")
        nodes.append(seg.v)
        time_s += seg.free_flow_time_s
        length += seg.length_m
    return Route(tuple(nodes), tuple(seg_ids), time_s, length)


def shortest_time_from(
    network: RoadNetwork,
    src: int,
    closed: frozenset[int] = frozenset(),
    weight: str = "time",
) -> dict[int, float]:
    """Single-source Dijkstra: cost from ``src`` to every reachable node.

    Used by the integer-programming baselines, which need full cost rows for
    their assignment matrices.
    """
    if weight not in _WEIGHTS:
        raise ValueError(f"weight must be one of {_WEIGHTS}")
    network.landmark(src)
    dist: dict[int, float] = {src: 0.0}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, src)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for seg in network.out_segments(node):
            if seg.segment_id in closed:
                continue
            nd = d + _cost(seg, weight)
            if nd < dist.get(seg.v, float("inf")):
                dist[seg.v] = nd
                heapq.heappush(heap, (nd, seg.v))
    return dist


def shortest_time_to(
    network: RoadNetwork,
    dst: int,
    closed: frozenset[int] = frozenset(),
    weight: str = "time",
) -> dict[int, float]:
    """Single-destination Dijkstra: cost from every node *to* ``dst``.

    Runs Dijkstra over reversed edges; used to build cost columns for
    team-to-request matching without one search per team.
    """
    if weight not in _WEIGHTS:
        raise ValueError(f"weight must be one of {_WEIGHTS}")
    network.landmark(dst)
    dist: dict[int, float] = {dst: 0.0}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, dst)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for seg in network.in_segments(node):
            if seg.segment_id in closed:
                continue
            nd = d + _cost(seg, weight)
            if nd < dist.get(seg.u, float("inf")):
                dist[seg.u] = nd
                heapq.heappush(heap, (nd, seg.u))
    return dist


def route_to_segment(
    network: RoadNetwork,
    src: int,
    segment_id: int,
    closed: frozenset[int] = frozenset(),
    weight: str = "time",
) -> Route | None:
    """Route from node ``src`` to the *end* of a destination segment.

    The paper dispatches a team to road segment e_j and measures delay to
    the end of e_j; the returned route therefore terminates with e_j itself
    (route to e_j's head landmark, then traverse e_j).  ``None`` if e_j is
    closed or unreachable.
    """
    seg = network.segment(segment_id)
    if segment_id in closed:
        return None
    head = shortest_path(network, src, seg.u, closed=closed, weight=weight)
    if head is None:
        return None
    return _route_from_segments(network, src, list(head.segment_ids) + [segment_id])

"""Shortest-path routing on the road network.

The paper routes rescue teams with "an existing routing algorithm (e.g.,
the Dijkstra algorithm)" over the remaining available network G̃ (Section
IV-C3).  ``closed`` carries G̃: any segment in that set is skipped.  Costs
are free-flow traversal times by default (``weight='time'``), which is what
the driving-delay metric sums, or segment lengths (``weight='length'``).

All public entry points (:func:`shortest_path`, :func:`shortest_time_from`,
:func:`shortest_time_to`, :func:`route_to_segment`) share one internal
Dijkstra, :func:`dijkstra_tree`, so the memoizing layer in
``repro.perf.routing_cache`` has a single routine to wrap and its results
are bit-identical to the direct calls by construction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.roadnet.graph import RoadNetwork

_WEIGHTS = ("time", "length")


@dataclass(frozen=True)
class Route:
    """A drivable route: the paper's Φ_kj = {p_mk, ..., e_j}."""

    nodes: tuple[int, ...]
    segment_ids: tuple[int, ...]
    travel_time_s: float
    length_m: float

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.segment_ids) + 1:
            raise ValueError("route must have exactly one more node than segments")

    @property
    def src(self) -> int:
        return self.nodes[0]

    @property
    def dst(self) -> int:
        return self.nodes[-1]

    @property
    def is_trivial(self) -> bool:
        return not self.segment_ids


def dijkstra_tree(
    network: RoadNetwork,
    root: int,
    closed: frozenset[int] = frozenset(),
    weight: str = "time",
    *,
    reverse: bool = False,
    target: int | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """One Dijkstra pass over the operable network.

    Returns ``(dist, prev_seg)``: cost from ``root`` to every settled node
    (from every node *to* ``root`` when ``reverse``), and the segment id
    through which each node's best path arrives.  With ``target`` the search
    stops as soon as the target is popped; the entries computed up to that
    point — in particular everything on the shortest ``root``→``target``
    path — are identical to a full run, because settled labels are final
    and later relaxations only update on a strict improvement.
    """
    if weight not in _WEIGHTS:
        raise ValueError(f"weight must be one of {_WEIGHTS}")
    network.landmark(root)
    adj = network.in_adjacency() if reverse else network.out_adjacency()
    wi = 2 if weight == "time" else 3
    dist: dict[int, float] = {root: 0.0}
    prev_seg: dict[int, int] = {}
    done: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, root)]
    inf = float("inf")
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        if target is not None and node == target:
            break
        done.add(node)
        for row in adj[node]:
            if row[0] in closed:
                continue
            nd = d + row[wi]
            other = row[1]
            if nd < dist.get(other, inf):
                dist[other] = nd
                prev_seg[other] = row[0]
                heapq.heappush(heap, (nd, other))
    return dist, prev_seg


def route_from_tree(
    network: RoadNetwork, src: int, dst: int, prev_seg: dict[int, int]
) -> Route | None:
    """Reconstruct the ``src``→``dst`` route from a *forward* Dijkstra tree
    rooted at ``src``.  ``None`` when ``dst`` was never reached."""
    if src == dst:
        return Route((src,), (), 0.0, 0.0)
    if dst not in prev_seg:
        return None
    seg_ids: list[int] = []
    node = dst
    while node != src:
        sid = prev_seg[node]
        seg_ids.append(sid)
        node = network.segment(sid).u
    seg_ids.reverse()
    return route_from_segments(network, src, seg_ids)


def shortest_path(
    network: RoadNetwork,
    src: int,
    dst: int,
    closed: frozenset[int] = frozenset(),
    weight: str = "time",
) -> Route | None:
    """Dijkstra shortest path from node ``src`` to node ``dst``.

    Returns ``None`` when ``dst`` is unreachable through operable segments.
    """
    if weight not in _WEIGHTS:
        raise ValueError(f"weight must be one of {_WEIGHTS}")
    network.landmark(src)
    network.landmark(dst)
    if src == dst:
        return Route((src,), (), 0.0, 0.0)
    _, prev_seg = dijkstra_tree(network, src, closed, weight, target=dst)
    return route_from_tree(network, src, dst, prev_seg)


def route_from_segments(network: RoadNetwork, src: int, seg_ids: list[int]) -> Route:
    """Build a :class:`Route` from a contiguous segment sequence.

    Travel time and length are re-summed from the segment records, so a
    route built from any search's segment walk carries exactly the floats
    a direct construction would.
    """
    nodes = [src]
    time_s = 0.0
    length = 0.0
    for sid in seg_ids:
        seg = network.segment(sid)
        if seg.u != nodes[-1]:
            raise ValueError("discontinuous segment sequence")
        nodes.append(seg.v)
        time_s += seg.free_flow_time_s
        length += seg.length_m
    return Route(tuple(nodes), tuple(seg_ids), time_s, length)


def append_segment(network: RoadNetwork, head: Route, segment_id: int) -> Route:
    """Extend a route that ends at a segment's head landmark with the
    segment itself (the paper's route-to-``e_j`` destination semantics)."""
    return route_from_segments(network, head.src, list(head.segment_ids) + [segment_id])


def shortest_time_from(
    network: RoadNetwork,
    src: int,
    closed: frozenset[int] = frozenset(),
    weight: str = "time",
) -> dict[int, float]:
    """Single-source Dijkstra: cost from ``src`` to every reachable node.

    Used by the integer-programming baselines, which need full cost rows for
    their assignment matrices.
    """
    dist, _ = dijkstra_tree(network, src, closed, weight)
    return dist


def shortest_time_to(
    network: RoadNetwork,
    dst: int,
    closed: frozenset[int] = frozenset(),
    weight: str = "time",
) -> dict[int, float]:
    """Single-destination Dijkstra: cost from every node *to* ``dst``.

    Runs Dijkstra over reversed edges; used to build cost columns for
    team-to-request matching without one search per team.
    """
    dist, _ = dijkstra_tree(network, dst, closed, weight, reverse=True)
    return dist


def route_to_segment(
    network: RoadNetwork,
    src: int,
    segment_id: int,
    closed: frozenset[int] = frozenset(),
    weight: str = "time",
) -> Route | None:
    """Route from node ``src`` to the *end* of a destination segment.

    The paper dispatches a team to road segment e_j and measures delay to
    the end of e_j; the returned route therefore terminates with e_j itself
    (route to e_j's head landmark, then traverse e_j).  ``None`` if e_j is
    closed or unreachable.
    """
    seg = network.segment(segment_id)
    if segment_id in closed:
        return None
    head = shortest_path(network, src, seg.u, closed=closed, weight=weight)
    if head is None:
        return None
    return append_segment(network, head, segment_id)

"""Directed landmark/road-segment graph (paper Section III-A, Def. 1).

``RoadNetwork`` is immutable once frozen: the disaster never changes the
graph structure, only which segments are *operable*.  Operability is
expressed as a set of closed segment ids, derived from the flood model; the
remaining available network G̃ of the paper is then ``(network, closed)``
pairs threaded through routing and dispatching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import cKDTree


@dataclass(frozen=True)
class Landmark:
    """A road-network vertex: an intersection or turning point."""

    node_id: int
    x: float
    y: float

    @property
    def xy(self) -> tuple[float, float]:
        return (self.x, self.y)


@dataclass(frozen=True)
class RoadSegment:
    """A directed road segment ``e_i`` between two landmarks.

    ``length_m`` is the driving length and ``speed_limit_mps`` the free-flow
    speed limit; together they give the segment's free-flow traversal time,
    the ``l_e / v_e`` term of the paper's driving-delay metric.
    """

    segment_id: int
    u: int
    v: int
    length_m: float
    speed_limit_mps: float
    region_id: int

    def __post_init__(self) -> None:
        if self.length_m <= 0:
            raise ValueError(f"segment {self.segment_id}: length must be positive")
        if self.speed_limit_mps <= 0:
            raise ValueError(f"segment {self.segment_id}: speed limit must be positive")
        if self.u == self.v:
            raise ValueError(f"segment {self.segment_id}: self-loops are not allowed")

    @property
    def free_flow_time_s(self) -> float:
        """Traversal time at the speed limit, seconds."""
        return self.length_m / self.speed_limit_mps


class RoadNetwork:
    """Directed road network G = (E, V) with spatial indexing.

    Build with :meth:`add_landmark` / :meth:`add_segment`, then call
    :meth:`freeze` before running queries; freezing builds the KD-tree and
    adjacency caches and makes the topology immutable.
    """

    def __init__(self) -> None:
        self._landmarks: dict[int, Landmark] = {}
        self._segments: dict[int, RoadSegment] = {}
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}
        self._by_endpoints: dict[tuple[int, int], int] = {}
        self._frozen = False
        self._kdtree: cKDTree | None = None
        self._node_ids_sorted: np.ndarray | None = None
        self._midpoint_tree: cKDTree | None = None
        self._segment_ids_sorted: np.ndarray | None = None
        #: Flat adjacency rows (segment_id, other_node, time_s, length_m)
        #: consumed by the Dijkstra hot loop; rebuilt lazily after topology
        #: changes so routing never pays per-call RoadSegment construction.
        self._adjacency: tuple[
            dict[int, list[tuple[int, int, float, float]]],
            dict[int, list[tuple[int, int, float, float]]],
        ] | None = None
        self._midpoints_sorted: np.ndarray | None = None

    # -- construction -----------------------------------------------------

    def add_landmark(self, landmark: Landmark) -> None:
        self._require_mutable()
        if landmark.node_id in self._landmarks:
            raise ValueError(f"duplicate landmark id {landmark.node_id}")
        self._landmarks[landmark.node_id] = landmark
        self._out[landmark.node_id] = []
        self._in[landmark.node_id] = []
        self._adjacency = None

    def add_segment(self, segment: RoadSegment) -> None:
        self._require_mutable()
        if segment.segment_id in self._segments:
            raise ValueError(f"duplicate segment id {segment.segment_id}")
        if segment.u not in self._landmarks or segment.v not in self._landmarks:
            raise ValueError(
                f"segment {segment.segment_id} references unknown landmark(s)"
            )
        if (segment.u, segment.v) in self._by_endpoints:
            raise ValueError(
                f"parallel segment between {segment.u} and {segment.v} not supported"
            )
        self._segments[segment.segment_id] = segment
        self._out[segment.u].append(segment.segment_id)
        self._in[segment.v].append(segment.segment_id)
        self._by_endpoints[(segment.u, segment.v)] = segment.segment_id
        self._adjacency = None

    def freeze(self) -> "RoadNetwork":
        """Finalize construction and build spatial indexes."""
        if self._frozen:
            return self
        if not self._landmarks:
            raise ValueError("cannot freeze an empty road network")
        node_ids = sorted(self._landmarks)
        pts = np.array([self._landmarks[i].xy for i in node_ids])
        self._kdtree = cKDTree(pts)
        self._node_ids_sorted = np.array(node_ids)
        if self._segments:
            seg_ids = sorted(self._segments)
            mids = np.array([self.segment_midpoint(s) for s in seg_ids])
            self._midpoint_tree = cKDTree(mids)
            self._segment_ids_sorted = np.array(seg_ids)
            self._midpoints_sorted = mids
        self._frozen = True
        return self

    def _require_mutable(self) -> None:
        if self._frozen:
            raise RuntimeError("road network is frozen; topology is immutable")

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError("freeze() the road network before spatial queries")

    # -- basic accessors ---------------------------------------------------

    @property
    def num_landmarks(self) -> int:
        return len(self._landmarks)

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def landmark(self, node_id: int) -> Landmark:
        try:
            return self._landmarks[node_id]
        except KeyError:
            raise KeyError(f"unknown landmark id {node_id}") from None

    def segment(self, segment_id: int) -> RoadSegment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise KeyError(f"unknown segment id {segment_id}") from None

    def landmark_ids(self) -> list[int]:
        return sorted(self._landmarks)

    def segment_ids(self) -> list[int]:
        return sorted(self._segments)

    def segments(self) -> list[RoadSegment]:
        return [self._segments[i] for i in self.segment_ids()]

    def out_segments(self, node_id: int) -> list[RoadSegment]:
        return [self._segments[s] for s in self._out[node_id]]

    def in_segments(self, node_id: int) -> list[RoadSegment]:
        return [self._segments[s] for s in self._in[node_id]]

    def segment_between(self, u: int, v: int) -> RoadSegment | None:
        sid = self._by_endpoints.get((u, v))
        return None if sid is None else self._segments[sid]

    # -- routing adjacency ---------------------------------------------------

    def _build_adjacency(self) -> tuple[
        dict[int, list[tuple[int, int, float, float]]],
        dict[int, list[tuple[int, int, float, float]]],
    ]:
        # Row order mirrors the insertion order of self._out / self._in so
        # tie-breaking in Dijkstra is identical to iterating out_segments().
        out: dict[int, list[tuple[int, int, float, float]]] = {}
        inn: dict[int, list[tuple[int, int, float, float]]] = {}
        for node, seg_ids in self._out.items():
            out[node] = [
                (s.segment_id, s.v, s.free_flow_time_s, s.length_m)
                for s in (self._segments[i] for i in seg_ids)
            ]
        for node, seg_ids in self._in.items():
            inn[node] = [
                (s.segment_id, s.u, s.free_flow_time_s, s.length_m)
                for s in (self._segments[i] for i in seg_ids)
            ]
        return out, inn

    def out_adjacency(self) -> dict[int, list[tuple[int, int, float, float]]]:
        """``node -> [(segment_id, v, time_s, length_m), ...]`` rows for the
        routing hot loop.  Treat the returned structure as read-only."""
        if self._adjacency is None:
            self._adjacency = self._build_adjacency()
        return self._adjacency[0]

    def in_adjacency(self) -> dict[int, list[tuple[int, int, float, float]]]:
        """``node -> [(segment_id, u, time_s, length_m), ...]`` reversed-edge
        rows.  Treat the returned structure as read-only."""
        if self._adjacency is None:
            self._adjacency = self._build_adjacency()
        return self._adjacency[1]

    # -- geometry ----------------------------------------------------------

    def segment_midpoint(self, segment_id: int) -> tuple[float, float]:
        seg = self.segment(segment_id)
        a, b = self._landmarks[seg.u], self._landmarks[seg.v]
        return ((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)

    def nearest_landmark(self, x: float, y: float) -> int:
        """Id of the landmark closest to a plane point."""
        self._require_frozen()
        assert self._kdtree is not None and self._node_ids_sorted is not None
        _, idx = self._kdtree.query([x, y])
        return int(self._node_ids_sorted[int(idx)])

    def nearest_segment(self, x: float, y: float) -> int:
        """Id of the segment whose midpoint is closest to a plane point."""
        self._require_frozen()
        if self._midpoint_tree is None or self._segment_ids_sorted is None:
            raise RuntimeError("network has no segments")
        _, idx = self._midpoint_tree.query([x, y])
        return int(self._segment_ids_sorted[int(idx)])

    def nearest_segments(self, x: float, y: float, k: int) -> list[int]:
        """Ids of the ``k`` segments with midpoints closest to a point,
        nearest first."""
        self._require_frozen()
        if self._midpoint_tree is None or self._segment_ids_sorted is None:
            raise RuntimeError("network has no segments")
        if k < 1:
            raise ValueError("k must be positive")
        k = min(k, len(self._segment_ids_sorted))
        _, idx = self._midpoint_tree.query([x, y], k=k)
        idx = np.atleast_1d(idx)
        return [int(self._segment_ids_sorted[int(i)]) for i in idx]

    def node_distance_m(self, a: int, b: int) -> float:
        la, lb = self.landmark(a), self.landmark(b)
        return math.hypot(la.x - lb.x, la.y - lb.y)

    # -- region / operability ----------------------------------------------

    def segments_in_region(self, region_id: int) -> list[RoadSegment]:
        return [s for s in self.segments() if s.region_id == region_id]

    def closed_segments(self, flood_model, t_seconds: float) -> frozenset[int]:
        """Segment ids destroyed/submerged at time ``t``.

        A directed segment is closed when its midpoint lies in a flood zone
        — the satellite-imaging crop of the paper's remaining available
        network G̃.
        """
        if self._midpoints_sorted is not None and self._segment_ids_sorted is not None:
            mids = self._midpoints_sorted
            ids = self._segment_ids_sorted
        else:
            mids = np.array([self.segment_midpoint(s) for s in self.segment_ids()])
            ids = np.array(self.segment_ids())
        flooded = flood_model.is_flooded_many(mids, t_seconds)
        return frozenset(int(i) for i in ids[flooded])

    def operable_segment_ids(self, closed: frozenset[int]) -> list[int]:
        """Segment ids of the remaining available network Ẽ."""
        return [s for s in self.segment_ids() if s not in closed]


@dataclass
class NetworkStats:
    """Summary statistics of a road network (used by docs/examples)."""

    num_landmarks: int
    num_segments: int
    total_length_km: float
    mean_segment_length_m: float
    segments_per_region: dict[int, int] = field(default_factory=dict)


def network_stats(network: RoadNetwork) -> NetworkStats:
    segs = network.segments()
    per_region: dict[int, int] = {}
    for s in segs:
        per_region[s.region_id] = per_region.get(s.region_id, 0) + 1
    total = sum(s.length_m for s in segs)
    return NetworkStats(
        num_landmarks=network.num_landmarks,
        num_segments=len(segs),
        total_length_km=total / 1000.0,
        mean_segment_length_m=total / len(segs) if segs else 0.0,
        segments_per_region=dict(sorted(per_region.items())),
    )

"""Hot-path performance layer.

``repro.perf`` makes the paper's headline latency claim reproducible at
scale without changing a single simulated outcome:

* :mod:`repro.perf.routing_cache` — closure-aware memoization of the
  road-network Dijkstra trees consulted by the simulation engine, the
  dispatchers and the mobility pipeline.  Results are bit-identical to the
  per-call seed implementation by construction (same routine, cached).
* :mod:`repro.perf.bench` — the ``repro bench`` microbenchmark suite:
  routing, batched prediction, full simulation ticks and training steps,
  emitted as a durable ``BENCH_<date>.json`` artifact.

Every optimized path ships with an equivalence proof in
``tests/test_perf_equivalence.py`` / ``tests/test_perf_routing_cache.py``;
see ``docs/PERFORMANCE.md`` for the design and invalidation rules.
"""

from repro.perf.routing_cache import (
    DirectRouter,
    Router,
    RoutingCache,
    clear_routing_caches,
    default_router,
    routing_cache,
    routing_cache_enabled,
    set_routing_cache_enabled,
)

__all__ = [
    "DirectRouter",
    "Router",
    "RoutingCache",
    "clear_routing_caches",
    "default_router",
    "routing_cache",
    "routing_cache_enabled",
    "set_routing_cache_enabled",
]

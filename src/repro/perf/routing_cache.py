"""Closure-aware routing cache over the landmark road network.

The simulation engine re-ran single-source Dijkstra for every team event:
one full search to find the nearest hospital, another to route there, one
more per dispatch command.  Within one dispatch cycle those searches repeat
the same ``(source, closed-set)`` pairs over and over, and across cycles
the closed set only changes when the flood front moves.

:class:`RoutingCache` memoizes whole Dijkstra *trees* — the ``(dist,
prev_seg)`` pair of :func:`repro.roadnet.routing.dijkstra_tree` — keyed by
``(closed-set, weight)`` and then by ``(root, direction)``.  Every query
kind (point-to-point route, route to a segment end, full cost row/column)
is answered from the same tree, so:

* a nearest-hospital scan followed by the route to that hospital costs one
  search instead of two;
* N teams at the same landmark share one tree;
* an unchanged flood front makes entire dispatch cycles allocation-free.

**Bit-identical by construction.**  The cache runs the seed Dijkstra
routine itself (not a reimplementation) and reconstructs routes with the
same tree-walk the seed ``shortest_path`` uses.  Early-terminated and full
runs agree on every settled label because Dijkstra labels are final when
popped and later relaxations only replace on strict improvement — the
property the golden-equivalence suite locks in.

**Invalidation.**  Keys carry the ``closed`` frozenset, so a moved flood
front is automatically a different cache line; stale trees age out of a
bounded LRU (no explicit invalidation hooks to forget).  Returned mappings
are the cache's own structures: treat them as read-only.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Protocol

from repro.roadnet.graph import RoadNetwork
from repro.roadnet.routing import (
    Route,
    append_segment,
    dijkstra_tree,
    route_from_tree,
    route_to_segment,
    shortest_path,
    shortest_time_from,
    shortest_time_to,
)

_WEIGHTS = ("time", "length")

#: (dist, prev_seg) of one Dijkstra pass.
Tree = tuple[dict[int, float], dict[int, int]]


class _ClosureLine:
    """Trees cached under one ``(closed, weight)`` snapshot.

    ``seen`` remembers roots that were queried once already: a root's
    first point-to-point query runs the same target-pruned search the seed
    path runs (a full tree would be pure overhead for a root never asked
    about again — team positions drift every tick), and only the second
    touch promotes the root to a cached full tree.
    """

    __slots__ = ("trees", "seen")

    def __init__(self) -> None:
        self.trees: OrderedDict[tuple[int, bool], Tree] = OrderedDict()
        self.seen: set[tuple[int, bool]] = set()


class Router(Protocol):
    """The routing interface consumed by the engine and dispatchers.

    Implemented by :class:`RoutingCache` (memoized) and
    :class:`DirectRouter` (per-call seed Dijkstra, the golden reference).
    """

    def route(
        self,
        src: int,
        dst: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> Route | None: ...

    def route_to_segment(
        self,
        src: int,
        segment_id: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> Route | None: ...

    def time_from(
        self,
        src: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> dict[int, float]: ...

    def time_to(
        self,
        dst: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> dict[int, float]: ...


class DirectRouter:
    """Per-call seed Dijkstra — zero caching, the equivalence baseline."""

    def __init__(self, network: RoadNetwork) -> None:
        self.network = network

    def route(
        self,
        src: int,
        dst: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> Route | None:
        return shortest_path(self.network, src, dst, closed=closed, weight=weight)

    def route_to_segment(
        self,
        src: int,
        segment_id: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> Route | None:
        return route_to_segment(
            self.network, src, segment_id, closed=closed, weight=weight
        )

    def time_from(
        self,
        src: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> dict[int, float]:
        return shortest_time_from(self.network, src, closed=closed, weight=weight)

    def time_to(
        self,
        dst: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> dict[int, float]:
        return shortest_time_to(self.network, dst, closed=closed, weight=weight)


class RoutingCache:
    """Memoized Dijkstra trees for one road network (see module docstring).

    ``max_closure_sets`` bounds how many distinct ``(closed, weight)``
    snapshots stay warm (the flood front plus the flood-unaware planners'
    empty set comfortably fit); ``max_trees_per_closure`` bounds roots per
    snapshot (team positions + hospitals + trip anchors).  Both evict LRU.
    """

    def __init__(
        self,
        network: RoadNetwork,
        max_closure_sets: int = 16,
        max_trees_per_closure: int = 8192,
    ) -> None:
        if max_closure_sets < 1 or max_trees_per_closure < 1:
            raise ValueError("cache bounds must be positive")
        self.network = network
        self.max_closure_sets = int(max_closure_sets)
        self.max_trees_per_closure = int(max_trees_per_closure)
        self._closures: OrderedDict[
            tuple[frozenset[int], str], _ClosureLine
        ] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- tree store ---------------------------------------------------------

    def _line(self, closed: frozenset[int], weight: str) -> _ClosureLine:
        if weight not in _WEIGHTS:
            raise ValueError(f"weight must be one of {_WEIGHTS}")
        ckey = (closed, weight)
        line = self._closures.get(ckey)
        if line is None:
            line = _ClosureLine()
            self._closures[ckey] = line
            while len(self._closures) > self.max_closure_sets:
                self._closures.popitem(last=False)
        else:
            self._closures.move_to_end(ckey)
        return line

    def _store(self, line: _ClosureLine, tkey: tuple[int, bool], tree: Tree) -> None:
        line.trees[tkey] = tree
        while len(line.trees) > self.max_trees_per_closure:
            line.trees.popitem(last=False)
        if len(line.seen) > 4 * self.max_trees_per_closure:
            line.seen.clear()

    def _tree(
        self, root: int, closed: frozenset[int], weight: str, reverse: bool
    ) -> Tree:
        """Full tree for ``root``, cached unconditionally."""
        line = self._line(closed, weight)
        tkey = (root, reverse)
        tree = line.trees.get(tkey)
        if tree is None:
            self.misses += 1
            tree = dijkstra_tree(
                self.network, root, closed, weight, reverse=reverse
            )
            self._store(line, tkey, tree)
        else:
            self.hits += 1
            line.trees.move_to_end(tkey)
        return tree

    def clear(self) -> None:
        self._closures.clear()

    @property
    def num_trees(self) -> int:
        return sum(len(line.trees) for line in self._closures.values())

    # -- Router interface ---------------------------------------------------

    def route(
        self,
        src: int,
        dst: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> Route | None:
        if weight not in _WEIGHTS:
            raise ValueError(f"weight must be one of {_WEIGHTS}")
        self.network.landmark(src)
        self.network.landmark(dst)
        if src == dst:
            return Route((src,), (), 0.0, 0.0)
        line = self._line(closed, weight)
        tkey = (src, False)
        tree = line.trees.get(tkey)
        if tree is not None:
            self.hits += 1
            line.trees.move_to_end(tkey)
        elif tkey in line.seen:
            # Second touch of this root: promote to a cached full tree.
            self.misses += 1
            tree = dijkstra_tree(self.network, src, closed, weight)
            self._store(line, tkey, tree)
        else:
            # First touch: the same target-pruned search the seed path
            # runs.  Settled labels of pruned and full runs are identical,
            # so the reconstructed route is bit-identical either way.
            line.seen.add(tkey)
            self.misses += 1
            tree = dijkstra_tree(self.network, src, closed, weight, target=dst)
        return route_from_tree(self.network, src, dst, tree[1])

    def route_to_segment(
        self,
        src: int,
        segment_id: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> Route | None:
        seg = self.network.segment(segment_id)
        if segment_id in closed:
            return None
        head = self.route(src, seg.u, closed=closed, weight=weight)
        if head is None:
            return None
        return append_segment(self.network, head, segment_id)

    def time_from(
        self,
        src: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> dict[int, float]:
        return self._tree(src, closed, weight, False)[0]

    def time_to(
        self,
        dst: int,
        closed: frozenset[int] = frozenset(),
        weight: str = "time",
    ) -> dict[int, float]:
        return self._tree(dst, closed, weight, True)[0]


# -- process-wide wiring -----------------------------------------------------

_ENABLED = True
_CACHES: dict[int, RoutingCache] = {}


def set_routing_cache_enabled(enabled: bool) -> bool:
    """Flip the process-wide cache switch; returns the previous setting.

    The golden-equivalence suite uses this to run the same scenario through
    the cached and the seed routing paths.
    """
    global _ENABLED  # repro: allow-fork-unsafe -- test-only switch; results identical either way
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def routing_cache_enabled() -> bool:
    return _ENABLED


def routing_cache(network: RoadNetwork) -> RoutingCache:
    """Per-network memoized cache (same lifetime contract as
    :func:`repro.roadnet.matrix.travel_time_oracle`)."""
    key = id(network)
    cache = _CACHES.get(key)
    if cache is None or cache.network is not network:
        cache = RoutingCache(network)
        _CACHES[key] = cache  # repro: allow-fork-unsafe -- per-process memo; affects speed, never results
    return cache


def clear_routing_caches() -> None:
    """Drop every per-network cache (tests and long-lived processes)."""
    _CACHES.clear()  # repro: allow-fork-unsafe -- per-process memo; affects speed, never results


def default_router(network: RoadNetwork) -> Router:
    """The router the hot paths should consult: the per-network cache, or
    the seed per-call implementation when the cache is disabled."""
    if _ENABLED:
        return routing_cache(network)
    return DirectRouter(network)

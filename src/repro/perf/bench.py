"""The ``repro bench`` microbenchmark suite.

Times the four hot paths the system leans on continuously — routing,
request prediction, full simulation ticks and DQN training steps — each
with its seed implementation next to its optimized one, and emits a
durable ``BENCH_<date>.json`` through the atomic artifact layer.

The suite is deliberately self-checking: the routing and full-tick
workloads assert on the fly that the cached path produced exactly the
results the seed path produced, so a benchmark run can never report a
speedup earned by changing the answer.

This module lives outside the deterministic-simulation reprolint scope:
wall-clock reads (``time.perf_counter``) and peak-RSS sampling are its
whole point and are legitimate *only* here and in the supervision layers.
"""

from __future__ import annotations

import datetime
import platform
import resource
import sys
import time
from typing import Any, Callable

import numpy as np

from repro.core.artifacts import atomic_write_json

BENCH_FORMAT = "repro-bench"
BENCH_VERSION = 1

#: Benchmarks whose regression the gate test guards (the optimized paths).
HOT_PATHS = (
    "routing_cached",
    "prediction_batched",
    "full_tick_cached",
    "full_tick_event",
    "training_step",
    "training_sentinel_overhead",
    "rollout_parallel_2w",
)

#: name -> (speedup key, seed benchmark, optimized benchmark)
_SPEEDUP_PAIRS = (
    ("routing", "routing_seed", "routing_cached"),
    ("prediction", "prediction_per_person", "prediction_batched"),
    ("full_tick", "full_tick_seed", "full_tick_cached"),
    ("event_kernel", "full_tick_cached", "full_tick_event"),
    # Inverted reading: sentinel-ON over sentinel-OFF learn steps, so
    # ~1.0 is ideal and the gate test caps it at 1.10x overhead.
    ("sentinel_overhead", "training_sentinel_overhead", "training_step_sentinel_off"),
)


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` runs of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _record(seconds_total: float, iterations: int) -> dict[str, float | int]:
    return {
        "iterations": int(iterations),
        "seconds_total": float(seconds_total),
        "seconds_per_op": float(seconds_total / max(1, iterations)),
    }


# -- individual benchmarks ---------------------------------------------------


def _bench_routing(quick: bool) -> dict[str, dict[str, float | int]]:
    """Seed per-call Dijkstra vs the closure-aware routing cache.

    The workload mirrors one engine dispatch cycle: a handful of team
    positions, each needing a full cost row (nearest hospital) plus
    point-to-point routes to many destinations, twice per closed-set.
    """
    from repro.perf.routing_cache import DirectRouter, RoutingCache
    from repro.roadnet.generator import RoadNetworkConfig, generate_road_network
    from repro.geo.regions import charlotte_regions

    part = charlotte_regions(70_000.0, 45_000.0)
    network = generate_road_network(part, RoadNetworkConfig())
    rng = np.random.default_rng(0)
    nodes = np.array(network.landmark_ids())
    seg_ids = np.array(network.segment_ids())
    closed = frozenset(
        int(s) for s in rng.choice(seg_ids, size=len(seg_ids) // 20, replace=False)
    )
    sources = [int(n) for n in rng.choice(nodes, size=6, replace=False)]
    n_dsts = 40 if quick else 200
    dsts = [int(n) for n in rng.choice(nodes, size=n_dsts)]

    def workload(router: Any) -> list[float]:
        out: list[float] = []
        for src in sources:
            row = router.time_from(src, closed=closed)
            out.append(float(sum(row.values())))
            for dst in dsts:
                r = router.route(src, dst, closed=closed)
                out.append(-1.0 if r is None else r.travel_time_s)
        return out

    queries = len(sources) * (1 + n_dsts)
    repeats = 2 if quick else 3
    seed_router = DirectRouter(network)
    seed_s = _best_of(lambda: workload(seed_router), repeats)
    expected = workload(seed_router)
    # Fresh cache per run: the measured time *includes* building the trees.
    cached_s = _best_of(lambda: workload(RoutingCache(network)), repeats)
    if workload(RoutingCache(network)) != expected:
        raise AssertionError("routing cache diverged from seed Dijkstra")
    return {
        "routing_seed": _record(seed_s, queries),
        "routing_cached": _record(cached_s, queries),
    }


def _bench_prediction(quick: bool) -> dict[str, dict[str, float | int]]:
    """Per-person SVM prediction vs one whole-population batched call."""
    from repro.ml.svm import SVC

    rng = np.random.default_rng(1)
    x = rng.normal(size=(400, 3))
    y = (x @ np.array([1.5, -1.0, 0.5]) + rng.normal(0, 0.3, 400) > 0).astype(int)
    clf = SVC(kernel="rbf", gamma=0.5, c=2.0).fit(x, y)
    n = 2_000 if quick else 10_000
    population = rng.normal(size=(n, 3))

    def per_person() -> np.ndarray:
        return np.concatenate([clf.predict(row) for row in population])

    def batched() -> np.ndarray:
        return clf.predict(population, block_rows=8_192)

    if not np.array_equal(per_person(), batched()):
        raise AssertionError("batched prediction diverged from per-person")
    repeats = 2 if quick else 3
    return {
        "prediction_per_person": _record(_best_of(per_person, repeats), n),
        "prediction_batched": _record(_best_of(batched, repeats), n),
    }


def _bench_full_tick(quick: bool) -> dict[str, Any]:
    """One evaluation window of the simulation engine, three ways: seed
    per-call routing, cached routing, and the event-driven kernel.

    The workload is the regime the event kernel exists for — the paper's
    100-team fleet stepped at sub-second fidelity — and it is
    self-checking: all three engines must produce bit-identical pickup
    and delivery traces or the benchmark raises.  Returns the per-tick
    records plus the ``events_per_sim_hour`` summary for the kernel run.
    """
    from repro.data.charlotte import build_charlotte_scenario
    from repro.dispatch.nearest import NearestDispatcher
    from repro.perf.routing_cache import DirectRouter, RoutingCache
    from repro.sim.engine import RescueSimulator, SimulationConfig
    from repro.sim.kernel import EventKernelSimulator
    from repro.sim.requests import RescueRequest
    from repro.weather.storms import FLORENCE

    scenario = build_charlotte_scenario(FLORENCE)
    network = scenario.network
    rng = np.random.default_rng(2)
    seg_ids = np.array(network.segment_ids())
    t0 = scenario.timeline.storm_start_s
    hours = 1.0 if quick else 2.0
    t1 = t0 + hours * 3_600.0
    requests = []
    for i, seg in enumerate(rng.choice(seg_ids, size=30 if quick else 80)):
        segment = network.segment(int(seg))
        requests.append(
            RescueRequest(
                request_id=i,
                person_id=i,
                time_s=float(t0 + rng.uniform(0.0, (t1 - t0) * 0.8)),
                segment_id=int(seg),
                node_id=segment.u,
            )
        )
    config = SimulationConfig(t0_s=t0, t1_s=t1, num_teams=100, seed=0, step_s=0.25)
    ticks = int((t1 - t0) / config.step_s) + 1

    def run(sim: RescueSimulator) -> tuple[Any, ...]:
        result = sim.run()
        return (
            tuple((p.request_id, p.team_id, p.t_s) for p in result.pickups),
            tuple((d.request_id, d.t_s) for d in result.deliveries),
            tuple(result.serving_samples),
        )

    def seed_sim(router: Any = None) -> RescueSimulator:
        return RescueSimulator(
            scenario, list(requests), NearestDispatcher(), config, router=router
        )

    expected = run(seed_sim(DirectRouter(network)))
    seed_s = _best_of(lambda: run(seed_sim(DirectRouter(network))), 1)
    cached_s = _best_of(lambda: run(seed_sim(RoutingCache(network))), 1)
    if run(seed_sim(RoutingCache(network))) != expected:
        raise AssertionError("cached full-tick run diverged from seed run")

    def kernel_sim() -> EventKernelSimulator:
        return EventKernelSimulator(
            scenario, list(requests), NearestDispatcher(), config
        )

    event_s = _best_of(lambda: run(kernel_sim()), 2 if quick else 3)
    kernel = kernel_sim()
    if run(kernel) != expected:
        raise AssertionError("event-kernel run diverged from seed run")
    return {
        "benchmarks": {
            "full_tick_seed": _record(seed_s, ticks),
            "full_tick_cached": _record(cached_s, ticks),
            "full_tick_event": _record(event_s, ticks),
        },
        "events_per_sim_hour": {
            "events": int(kernel.events_processed),
            "ticks_processed": int(kernel.ticks_processed),
            "grid_ticks": int(kernel.num_grid_ticks),
            "sim_hours": float(hours),
            "per_hour": float(kernel.events_processed / hours),
        },
    }


def _bench_training_step(quick: bool) -> dict[str, dict[str, float | int]]:
    """One DQN learn step over a warm replay buffer."""
    from repro.ml.dqn import DQNAgent, DQNConfig

    agent = DQNAgent(DQNConfig(state_dim=27, num_actions=9, batch_size=64, seed=0))
    rng = np.random.default_rng(3)
    for _ in range(256):
        agent.remember(
            rng.normal(size=27), int(rng.integers(9)), 1.0, rng.normal(size=27), False
        )
    steps = 50 if quick else 300

    def run() -> None:
        for _ in range(steps):
            agent.learn()

    return {"training_step": _record(_best_of(run, 2 if quick else 3), steps)}


def _bench_sentinel_overhead(quick: bool) -> dict[str, dict[str, float | int]]:
    """Sentinel-on vs sentinel-off DQN learn steps, self-checked.

    The training sentinel (``docs/TRAINING_HEALTH.md``) screens every
    learn step through the agent's observer hook; this pair of workloads
    prices that screen.  Self-checking: before timing, a fresh agent
    pair — one observed, one not — runs the same steps and must end
    bit-identical, so the measured overhead can never come from the
    sentinel changing what is learned.
    """
    from repro.ml.dqn import DQNAgent, DQNConfig
    from repro.training.health import SentinelConfig, TrainingSentinel

    def make_agent(observed: bool) -> "DQNAgent":
        agent = DQNAgent(DQNConfig(state_dim=27, num_actions=9, batch_size=64, seed=0))
        rng = np.random.default_rng(3)
        for _ in range(256):
            agent.remember(
                rng.normal(size=27), int(rng.integers(9)), 1.0,
                rng.normal(size=27), False,
            )
        if observed:
            sentinel = TrainingSentinel(SentinelConfig())
            sentinel.begin_attempt(0, 0)
            agent.q_net.grad_stats_enabled = True
            agent.observer = sentinel.observe
        return agent

    plain, observed = make_agent(False), make_agent(True)
    for _ in range(20):
        plain.learn()
        observed.learn()
    a, b = plain.get_state(), observed.get_state()
    if set(a) != set(b) or any(not np.array_equal(a[k], b[k]) for k in a):
        raise RuntimeError("sentinel-on learn steps diverged from sentinel-off")

    # The gate caps the on/off *ratio* at 1.10 — a ~5% measurement that
    # plain back-to-back timing cannot deliver on a noisy machine (CPU
    # frequency drift between the two blocks swamps the signal).  So the
    # two agents alternate single learn steps inside one loop: any drift
    # hits both sides of the ratio equally.  The per-step clock reads
    # cost ~100ns against a ~400us step.
    steps = 120 if quick else 300
    repeats = 6
    off_agent, on_agent = make_agent(False), make_agent(True)
    best = {"off": float("inf"), "on": float("inf")}
    for _ in range(repeats):
        total_off = total_on = 0.0
        for _ in range(steps):
            t0 = time.perf_counter()
            off_agent.learn()
            t1 = time.perf_counter()
            on_agent.learn()
            total_on += time.perf_counter() - t1
            total_off += t1 - t0
        best["off"] = min(best["off"], total_off)
        best["on"] = min(best["on"], total_on)
    return {
        "training_step_sentinel_off": _record(best["off"], steps),
        "training_sentinel_overhead": _record(best["on"], steps),
    }


def _bench_rollouts(quick: bool) -> dict[str, Any]:
    """Serial vs parallel episode rollouts over one evaluation window.

    Self-checking like the routing workloads: each parallel campaign's
    merged fingerprint must equal the serial one, so a reported
    throughput can never come from dropping or reordering episodes.
    Returns both the per-episode records and the ``episodes_per_minute``
    summary the bench artifact carries.
    """
    import os

    from repro.data.charlotte import build_charlotte_scenario
    from repro.rollouts.executor import (
        RolloutConfig,
        RolloutExecutor,
        run_rollouts_serial,
    )
    from repro.rollouts.spec import EpisodeSpec
    from repro.rollouts.tasks import EvalRolloutTask
    from repro.sim.requests import RescueRequest
    from repro.weather.storms import FLORENCE

    scenario = build_charlotte_scenario(FLORENCE)
    network = scenario.network
    rng = np.random.default_rng(4)
    seg_ids = np.array(network.segment_ids())
    t0 = scenario.timeline.storm_start_s
    t1 = t0 + (1.0 if quick else 2.0) * 3_600.0
    requests = []
    for i, seg in enumerate(rng.choice(seg_ids, size=30 if quick else 120)):
        segment = network.segment(int(seg))
        requests.append(
            RescueRequest(
                request_id=i,
                person_id=i,
                time_s=float(t0 + rng.uniform(0.0, (t1 - t0) * 0.8)),
                segment_id=int(seg),
                node_id=segment.u,
            )
        )
    task = EvalRolloutTask(
        scenario=scenario,
        requests=tuple(requests),
        t0_s=t0,
        t1_s=t1,
        num_teams=10,
    )
    episodes = 4 if quick else 8
    specs = [EpisodeSpec(i, task.kind, seed=0) for i in range(episodes)]
    n_workers = max(2, min(4, (os.cpu_count() or 2)))

    def run_parallel(workers: int) -> str:
        config = RolloutConfig(num_workers=workers, beat_interval_s=0.05)
        report = RolloutExecutor(task, config, seed=0).run(specs)
        return report.merged.fingerprint()

    t = time.perf_counter()
    expected = run_rollouts_serial(task, specs).merged.fingerprint()
    serial_s = time.perf_counter() - t
    t = time.perf_counter()
    fp_2w = run_parallel(2)
    par2_s = time.perf_counter() - t
    t = time.perf_counter()
    fp_nw = run_parallel(n_workers)
    parn_s = time.perf_counter() - t
    if fp_2w != expected or fp_nw != expected:
        raise AssertionError("parallel rollout diverged from serial path")
    return {
        "benchmarks": {
            "rollout_serial": _record(serial_s, episodes),
            "rollout_parallel_2w": _record(par2_s, episodes),
            "rollout_parallel_nw": _record(parn_s, episodes),
        },
        "episodes_per_minute": {
            "serial": float(episodes * 60.0 / serial_s),
            "workers_2": float(episodes * 60.0 / par2_s),
            "workers_n": float(episodes * 60.0 / parn_s),
            "n_workers": int(n_workers),
            "episodes": int(episodes),
        },
    }


# -- suite -------------------------------------------------------------------


def run_bench(quick: bool = False) -> dict[str, Any]:
    """Run the full microbenchmark suite; returns the BENCH payload."""
    benchmarks: dict[str, dict[str, float | int]] = {}
    benchmarks.update(_bench_routing(quick))
    benchmarks.update(_bench_prediction(quick))
    full_tick = _bench_full_tick(quick)
    benchmarks.update(full_tick["benchmarks"])
    benchmarks.update(_bench_training_step(quick))
    benchmarks.update(_bench_sentinel_overhead(quick))
    rollouts = _bench_rollouts(quick)
    benchmarks.update(rollouts["benchmarks"])
    speedups = {
        key: float(
            benchmarks[seed]["seconds_per_op"] / benchmarks[fast]["seconds_per_op"]
        )
        for key, seed, fast in _SPEEDUP_PAIRS
    }
    return {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "date": datetime.date.today().isoformat(),
        "quick": bool(quick),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "peak_rss_kib": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "benchmarks": benchmarks,
        "speedups": speedups,
        "episodes_per_minute": rollouts["episodes_per_minute"],
        "events_per_sim_hour": full_tick["events_per_sim_hour"],
    }


def validate_bench_payload(payload: Any) -> list[str]:
    """Schema check of a BENCH payload; returns a list of problems."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("format") != BENCH_FORMAT:
        problems.append(f"format must be {BENCH_FORMAT!r}")
    if payload.get("version") != BENCH_VERSION:
        problems.append(f"version must be {BENCH_VERSION}")
    for key in ("date", "python", "platform"):
        if not isinstance(payload.get(key), str):
            problems.append(f"{key} must be a string")
    if not isinstance(payload.get("quick"), bool):
        problems.append("quick must be a boolean")
    if not isinstance(payload.get("peak_rss_kib"), int) or (
        isinstance(payload.get("peak_rss_kib"), int) and payload["peak_rss_kib"] <= 0
    ):
        problems.append("peak_rss_kib must be a positive integer")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, dict) or not benchmarks:
        problems.append("benchmarks must be a non-empty object")
        benchmarks = {}
    for name, rec in benchmarks.items():
        if not isinstance(rec, dict):
            problems.append(f"benchmark {name} is not an object")
            continue
        for field in ("iterations", "seconds_total", "seconds_per_op"):
            value = rec.get(field)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"benchmark {name}.{field} must be positive")
    for name in HOT_PATHS:
        if name not in benchmarks:
            problems.append(f"hot path {name} missing from benchmarks")
    speedups = payload.get("speedups")
    if not isinstance(speedups, dict):
        problems.append("speedups must be an object")
    else:
        for key, _, _ in _SPEEDUP_PAIRS:
            value = speedups.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"speedups.{key} must be positive")
    epm = payload.get("episodes_per_minute")
    if not isinstance(epm, dict):
        problems.append("episodes_per_minute must be an object")
    else:
        for key in ("serial", "workers_2", "workers_n"):
            value = epm.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"episodes_per_minute.{key} must be positive")
        for key in ("n_workers", "episodes"):
            value = epm.get(key)
            if not isinstance(value, int) or value <= 0:
                problems.append(
                    f"episodes_per_minute.{key} must be a positive integer"
                )
    eph = payload.get("events_per_sim_hour")
    if not isinstance(eph, dict):
        problems.append("events_per_sim_hour must be an object")
    else:
        for key in ("events", "ticks_processed", "grid_ticks"):
            value = eph.get(key)
            if not isinstance(value, int) or value <= 0:
                problems.append(
                    f"events_per_sim_hour.{key} must be a positive integer"
                )
        for key in ("sim_hours", "per_hour"):
            value = eph.get(key)
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(f"events_per_sim_hour.{key} must be positive")
    return problems


def default_output_path(payload: dict[str, Any]) -> str:
    return f"BENCH_{payload['date']}.json"


def write_bench(payload: dict[str, Any], path: str) -> None:
    """Persist a BENCH payload through the durable artifact layer."""
    problems = validate_bench_payload(payload)
    if problems:
        raise ValueError("invalid BENCH payload: " + "; ".join(problems))
    atomic_write_json(path, payload)


def format_bench_table(payload: dict[str, Any]) -> str:
    """Human-readable summary of one BENCH payload."""
    lines = [
        f"repro bench — {payload['date']}  "
        f"(quick={payload['quick']}, python {payload['python']})",
        f"{'benchmark':<24} {'iters':>7} {'s/op':>12} {'total s':>9}",
    ]
    for name, rec in payload["benchmarks"].items():
        lines.append(
            f"{name:<24} {rec['iterations']:>7} "
            f"{rec['seconds_per_op']:>12.6f} {rec['seconds_total']:>9.3f}"
        )
    lines.append("")
    for key, seed, fast in _SPEEDUP_PAIRS:
        lines.append(
            f"speedup {key:<12} {payload['speedups'][key]:>7.1f}x  ({seed} -> {fast})"
        )
    epm = payload["episodes_per_minute"]
    lines.append(
        f"episodes/min: serial {epm['serial']:.0f}, "
        f"2 workers {epm['workers_2']:.0f}, "
        f"{epm['n_workers']} workers {epm['workers_n']:.0f}  "
        f"({epm['episodes']} episodes)"
    )
    eph = payload["events_per_sim_hour"]
    lines.append(
        f"event kernel: {eph['events']} events over {eph['sim_hours']:.1f} sim h "
        f"({eph['per_hour']:.0f} events/sim-h), "
        f"{eph['ticks_processed']}/{eph['grid_ticks']} grid ticks processed"
    )
    lines.append(f"peak RSS: {payload['peak_rss_kib'] / 1024.0:.1f} MiB")
    return "\n".join(lines)

"""The numeric-health sentinel: typed anomaly screens for DQN training.

Detection is split by where each failure mode is visible:

* **per learn step** (:meth:`TrainingSentinel.observe`, attached as the
  agent's observer tap): NaN/Inf loss, exploding gradients (via the
  MLP's opt-in ``last_grad_max`` diagnostic), and TD-error divergence —
  a windowed z-score over a deterministic ring of recent losses, gated
  by an absolute floor because episode boundaries legitimately shift the
  loss distribution by tens of sigmas at microscopic magnitudes;
* **every ``param_screen_every`` steps**: non-finite or exploding
  Q-network parameters (the screens between two consecutive full scans
  still catch a poisoned net, because NaN weights make the very next
  loss NaN);
* **per episode boundary**: replay-buffer integrity (non-finite rows,
  reward magnitudes beyond any physical dispatch reward) and rolling
  reward collapse across episodes.

Every screen only *reads* agent state and consumes no randomness, so a
sentinel-on fault-free run is bit-identical to a sentinel-off run — the
invariant the ``train-*`` chaos profiles assert.

Anomalies accumulate in a bounded :class:`IncidentRing` (oldest evicted,
eviction counted) and are drained per attempt by the recovery loop in
:mod:`repro.training.loop`.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

import numpy as np

from repro.ml.dqn import DQNAgent
from repro.ml.replay import ReplayBuffer

# -- anomaly taxonomy ---------------------------------------------------------

KIND_NAN_LOSS = "nan-loss"
KIND_NAN_PARAM = "nan-param"
KIND_GRAD_EXPLOSION = "grad-explosion"
KIND_Q_EXPLOSION = "q-explosion"
KIND_TD_DIVERGENCE = "td-divergence"
KIND_REWARD_COLLAPSE = "reward-collapse"
KIND_REPLAY_CORRUPT = "replay-corrupt"
KIND_REPLAY_REWARD_BOUND = "replay-reward-bound"
KIND_CHECKPOINT_BITROT = "checkpoint-bitrot"

ANOMALY_KINDS: tuple[str, ...] = (
    KIND_NAN_LOSS,
    KIND_NAN_PARAM,
    KIND_GRAD_EXPLOSION,
    KIND_Q_EXPLOSION,
    KIND_TD_DIVERGENCE,
    KIND_REWARD_COLLAPSE,
    KIND_REPLAY_CORRUPT,
    KIND_REPLAY_REWARD_BOUND,
    KIND_CHECKPOINT_BITROT,
)


@dataclass(frozen=True)
class Anomaly:
    """One confirmed health finding, pinned to where it was seen."""

    kind: str
    episode: int
    attempt: int
    #: Learn step within the attempt; -1 for boundary/rollback screens.
    step: int
    value: float
    detail: str

    def as_json(self) -> dict[str, object]:
        # NaN is not valid JSON; the journal and forensics bundle must
        # stay loadable by a plain json.load.
        value = self.value if math.isfinite(self.value) else None
        return {
            "kind": self.kind,
            "episode": self.episode,
            "attempt": self.attempt,
            "step": self.step,
            "value": value,
            "detail": self.detail,
        }


class TrainingAnomalyError(RuntimeError):
    """Raised where there is no recovery loop to hand anomalies to (the
    parallel-collection task): the executor treats the episode exactly
    like a poisoned payload and quarantines it."""

    def __init__(self, anomalies: list[Anomaly]) -> None:
        self.anomalies = list(anomalies)
        kinds = ", ".join(sorted({a.kind for a in anomalies}))
        super().__init__(
            f"training health screen failed ({len(anomalies)} anomalies: {kinds})"
        )


@dataclass(frozen=True)
class SentinelConfig:
    """Detector thresholds, tuned against golden fault-free traces.

    The defaults leave an order-of-magnitude margin above everything the
    seed trajectories produce (losses peak ~0.07 under the Huber head,
    |params| ~1.7, see tests/test_training_recovery.py) while
    sitting orders of magnitude below what any injected fault produces.
    """

    #: |gradient| component ceiling (Huber clips per-sample gradients,
    #: so anything near this is a genuine blow-up).
    grad_bound: float = 1.0e3
    #: |Q-network parameter| ceiling.
    param_bound: float = 1.0e2
    #: |stored reward| ceiling for the replay integrity screen.
    reward_bound: float = 1.0e4
    #: Loss ring capacity for the TD-divergence z-score.
    td_window: int = 64
    td_z_threshold: float = 8.0
    #: A loss must also exceed this floor to count as divergence: early
    #: windows have near-zero variance, so z alone false-positives on
    #: ordinary episode-boundary shifts.
    td_abs_floor: float = 50.0
    #: Reward-collapse detector: trailing window and minimum history.
    reward_window: int = 8
    reward_min_samples: int = 5
    reward_z_threshold: float = 4.0
    #: Full parameter scans run every this-many learn steps.
    param_screen_every: int = 4
    #: Incident ring capacity (oldest evicted beyond this).
    incident_capacity: int = 256

    def __post_init__(self) -> None:
        if min(self.grad_bound, self.param_bound, self.reward_bound) <= 0:
            raise ValueError("screen bounds must be positive")
        if self.td_window < 2 or self.reward_window < 2:
            raise ValueError("detector windows need at least two samples")
        if self.reward_min_samples < 2:
            raise ValueError("reward_min_samples must be at least 2")
        if self.param_screen_every < 1:
            raise ValueError("param_screen_every must be positive")
        if self.incident_capacity < 1:
            raise ValueError("incident_capacity must be positive")


class RingStats:
    """Deterministic fixed-capacity ring with windowed z-scores.

    Pure state machine over pushed floats — no clocks, no randomness —
    so two runs that push the same sequence compute identical scores.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 2:
            raise ValueError("ring capacity must be at least 2")
        self.capacity = int(capacity)
        self._values = np.zeros(capacity)
        self._count = 0
        self._head = 0
        # Running first/second moments keep zscore() O(1) on the learn
        # hot path.  Updated with plain float arithmetic, so the values
        # are still a pure function of the pushed sequence.
        self._sum = 0.0
        self._sumsq = 0.0

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    def push(self, x: float) -> None:
        if self._count >= self.capacity:
            old = float(self._values[self._head])
            self._sum -= old
            self._sumsq -= old * old
        self._values[self._head] = x
        self._sum += x
        self._sumsq += x * x
        self._head = (self._head + 1) % self.capacity
        self._count += 1

    def window(self) -> np.ndarray:
        n = len(self)
        if self._count <= self.capacity:
            return self._values[:n]
        return self._values  # full ring; order is irrelevant to the stats

    def zscore(self, x: float) -> float | None:
        """z of ``x`` against the current window; ``None`` until the
        window is full or when the window is degenerate (zero spread)."""
        if len(self) < self.capacity:
            return None
        n = self.capacity
        mean = self._sum / n
        # Cancellation can drive the variance epsilon-negative; that is
        # a degenerate (zero-spread) window, same as var == 0.
        var = self._sumsq / n - mean * mean
        if var <= 0.0 or not math.isfinite(var):
            return None
        return (x - mean) / math.sqrt(var)

    def clear(self) -> None:
        self._count = 0
        self._head = 0
        self._sum = 0.0
        self._sumsq = 0.0


class IncidentRing:
    """Bounded anomaly log: keeps the newest ``capacity`` incidents and
    counts evictions, so forensics can say "…and 312 more"."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("incident ring capacity must be positive")
        self.capacity = int(capacity)
        self._items: list[Anomaly] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, anomaly: Anomaly) -> None:
        self._items.append(anomaly)
        if len(self._items) > self.capacity:
            del self._items[0]
            self.dropped += 1

    def items(self) -> list[Anomaly]:
        return list(self._items)

    def as_json(self) -> dict[str, object]:
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "incidents": [a.as_json() for a in self._items],
        }


def replay_checksum(buffer: ReplayBuffer) -> str:
    """SHA-256 over the populated replay region (content + layout).

    Committed alongside checkpoints and forensics bundles so replay
    corruption between two snapshots is provable from the artifacts.
    """
    digest = hashlib.sha256()
    digest.update(f"{buffer.capacity}:{buffer.state_dim}:{len(buffer)}".encode())
    for name, arr in sorted(buffer.views().items()):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


class TrainingSentinel:
    """Observes one training run; screens are grouped per attempt.

    Wiring: ``agent.observer = sentinel.observe`` covers every learn
    step; the recovery loop calls :meth:`screen_replay` /
    :meth:`screen_rewards` at episode boundaries and :meth:`drain`\\ s
    confirmed anomalies per attempt.  Each anomaly *kind* is recorded at
    most once per attempt (a NaN net makes every subsequent loss NaN;
    one incident per cause, not thousands).
    """

    def __init__(self, config: SentinelConfig | None = None) -> None:
        self.config = config or SentinelConfig()
        self.incidents = IncidentRing(self.config.incident_capacity)
        self._episode = 0
        self._attempt = 0
        self._step = 0
        self._loss_ring = RingStats(self.config.td_window)
        self._seen_kinds: set[str] = set()
        self._pending: list[Anomaly] = []

    # -- lifecycle -----------------------------------------------------------

    def begin_attempt(self, episode: int, attempt: int) -> None:
        """Start screening one ``(episode, attempt)``; per-attempt state
        (step counter, loss ring, kind dedup) resets, the incident ring
        persists across the whole run."""
        self._episode = int(episode)
        self._attempt = int(attempt)
        self._step = 0
        self._loss_ring.clear()
        self._seen_kinds.clear()

    def record(
        self,
        kind: str,
        step: int,
        value: float,
        detail: str,
        dedup_key: str | None = None,
    ) -> None:
        """Confirm one anomaly (deduplicated per kind within an attempt;
        ``dedup_key`` widens that to per-kind-per-key, e.g. one incident
        per rotten checkpoint rather than per rollback)."""
        if kind not in ANOMALY_KINDS:
            raise ValueError(f"unknown anomaly kind {kind!r}")
        key = dedup_key if dedup_key is not None else kind
        if key in self._seen_kinds:
            return
        self._seen_kinds.add(key)
        anomaly = Anomaly(
            kind=kind,
            episode=self._episode,
            attempt=self._attempt,
            step=step,
            value=float(value),
            detail=detail,
        )
        self._pending.append(anomaly)
        self.incidents.push(anomaly)

    def drain(self) -> list[Anomaly]:
        """Anomalies confirmed since the last drain (the attempt verdict)."""
        pending, self._pending = self._pending, []
        return pending

    # -- per learn step ------------------------------------------------------

    def observe(self, agent: DQNAgent, loss: float) -> None:
        """The agent's post-``learn`` tap; must stay cheap and read-only."""
        self._step += 1
        step = self._step
        c = self.config
        if not math.isfinite(loss):
            self.record(KIND_NAN_LOSS, step, loss, "non-finite training loss")
        else:
            z = self._loss_ring.zscore(loss)
            if z is not None and z > c.td_z_threshold and loss > c.td_abs_floor:
                self.record(
                    KIND_TD_DIVERGENCE,
                    step,
                    loss,
                    f"loss {loss:.3g} is {z:.1f} sigma above its window",
                )
            self._loss_ring.push(loss)
        grad = agent.q_net.last_grad_max
        if not math.isfinite(grad):
            self.record(KIND_GRAD_EXPLOSION, step, grad, "non-finite gradient")
        elif grad > c.grad_bound:
            self.record(
                KIND_GRAD_EXPLOSION, step, grad,
                f"|grad| {grad:.3g} exceeds bound {c.grad_bound:.3g}",
            )
        if step % c.param_screen_every == 0:
            self.screen_params(agent)

    def screen_params(self, agent: DQNAgent) -> None:
        """Full Q-network parameter scan (online net; the target net is a
        periodic copy of it, so screening the source suffices)."""
        c = self.config
        for i, layer in enumerate(agent.q_net.layers):
            for tag, arr in (("w", layer.w), ("b", layer.b)):
                # |·| peak without the np.abs temporary; a NaN poisons
                # both reductions, so non-finite values still surface.
                peak = max(float(arr.max()), -float(arr.min()))
                if not math.isfinite(peak):
                    self.record(
                        KIND_NAN_PARAM, self._step, peak,
                        f"non-finite parameter in {tag}{i}",
                    )
                    return
                if peak > c.param_bound:
                    self.record(
                        KIND_Q_EXPLOSION, self._step, peak,
                        f"|{tag}{i}| peak {peak:.3g} exceeds bound {c.param_bound:.3g}",
                    )
                    return

    # -- per episode boundary ------------------------------------------------

    def screen_replay(self, buffer: ReplayBuffer) -> None:
        """Integrity screen over the populated replay region."""
        views = buffer.views()
        if len(buffer) == 0:
            return
        for name in ("states", "rewards", "next_states"):
            arr = views[name]
            if not bool(np.isfinite(arr).all()):
                self.record(
                    KIND_REPLAY_CORRUPT, -1, float("nan"),
                    f"non-finite values in replay {name}",
                )
                return
        peak = float(np.abs(views["rewards"]).max())
        if peak > self.config.reward_bound:
            self.record(
                KIND_REPLAY_REWARD_BOUND, -1, peak,
                f"|reward| peak {peak:.3g} exceeds bound {self.config.reward_bound:.3g}",
            )

    def screen_rewards(self, service_rates: list[float]) -> None:
        """Rolling reward-collapse detector over episode service rates.

        The newest rate is z-scored against the window of rates before
        it; a deeply negative z *and* an absolute halving versus the
        window mean is a collapse.  Inert until ``reward_min_samples``
        episodes exist — quick CI runs never reach it, training sweeps
        do.
        """
        c = self.config
        if len(service_rates) < c.reward_min_samples:
            return
        window = np.asarray(service_rates[-(c.reward_window + 1):-1])
        latest = float(service_rates[-1])
        std = float(window.std())
        mean = float(window.mean())
        if std == 0.0 or not math.isfinite(std):
            return
        z = (latest - mean) / std
        if z < -c.reward_z_threshold and latest < 0.5 * mean:
            self.record(
                KIND_REWARD_COLLAPSE, -1, latest,
                f"service rate {latest:.3g} is {-z:.1f} sigma below its window "
                f"(mean {mean:.3g})",
            )

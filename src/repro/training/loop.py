"""Self-healing training loop: sentinel screens + escalation ladder.

:func:`sentinel_training` drives the exact same episode primitive as
``repro.core.training`` (``run_training_episode``) but wraps every
attempt in the :class:`~repro.training.health.TrainingSentinel` and, on
a confirmed anomaly, climbs a four-rung escalation ladder:

0. **rollback** to the last healthy checkpoint and replay the episode;
1. rollback + **exploration re-perturbation** — the agent's action RNG
   is re-seeded from the registered ``(seed, STREAM_TRAIN_REPERTURB,
   anomaly_idx)`` stream so the replay explores a deterministically
   different trajectory;
2. rollback + **learning-rate back-off** (multiplicative, journaled);
3. **abort** with a forensics bundle — agent/optimizer/replay/RNG state
   plus the bounded incident ring, committed through the atomic
   artifact layer.

The rung resets to 0 after ``reset_after_clean`` cleanly committed
episodes, so isolated transient faults are always absorbed by a pure
rollback, and only repeated failures without progress escalate.

Everything the ladder decides is journaled (atomically) *before* it
acts, and checkpoints only commit after a clean attempt verdict — which
is what makes a SIGKILL at any point resumable and keeps anomalies out
of committed checkpoints by construction.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import shutil
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.artifacts import (
    ArtifactError,
    atomic_savez,
    atomic_write_json,
    fsync_dir,
    write_manifest,
)
from repro.core.config import MobiRescueConfig
from repro.core.runner import RetryPolicy, Supervisor
from repro.core.streams import STREAM_TRAIN_REPERTURB
from repro.core.training import (
    TrainedMobiRescue,
    TrainingSetup,
    prepare_training,
    run_training_episode,
    setup_from_checkpoint,
)
from repro.data.charlotte import CharlotteScenario
from repro.faults.models import NULL_TRAINING_PLAN, TrainingFaultInjector, TrainingFaultPlan
from repro.mobility.generator import TraceBundle
from repro.training.health import (
    KIND_CHECKPOINT_BITROT,
    Anomaly,
    SentinelConfig,
    TrainingSentinel,
    replay_checksum,
)

JOURNAL_FILENAME = "sentinel-journal.json"
JOURNAL_FORMAT = "repro-train-journal"
FORENSICS_FORMAT = "repro-train-forensics"
_CKPT_NAME_RE = re.compile(r"ckpt-(\d{6})")


@dataclass(frozen=True)
class LadderConfig:
    """Escalation-ladder policy."""

    #: Rung at which the loop stops retrying and writes forensics.
    abort_level: int = 3
    #: Cleanly committed episodes that reset the rung to 0.
    reset_after_clean: int = 1
    #: Multiplicative learning-rate back-off at rung 2+.
    lr_backoff: float = 0.5

    def __post_init__(self) -> None:
        if self.abort_level < 1:
            raise ValueError("abort_level must be at least 1")
        if self.reset_after_clean < 1:
            raise ValueError("reset_after_clean must be at least 1")
        if not (0.0 < self.lr_backoff < 1.0):
            raise ValueError("lr_backoff must be in (0, 1)")


@dataclass
class SentinelTrainingResult:
    """Outcome of one self-healing training run.

    ``aborted`` instead of an exception: the supervisor retries generic
    exceptions, and a ladder abort is a *verdict*, not a transient."""

    trained: TrainedMobiRescue | None
    anomalies: list[dict[str, object]]
    applied: list[dict[str, object]]
    recoveries: list[dict[str, object]]
    aborted: bool
    forensics_path: pathlib.Path | None
    journal: dict[str, object]
    checkpoint_dir: pathlib.Path

    @property
    def ok(self) -> bool:
        return not self.aborted and self.trained is not None


def _fresh_journal(seed: int) -> dict:
    return {
        "format": JOURNAL_FORMAT,
        "version": 1,
        "seed": int(seed),
        "attempts": {},
        "anomaly_count": 0,
        "level": 0,
        "clean_streak": 0,
        "lr_scale": 1.0,
        "bitrotted": [],
        "anomalies": [],
        "recoveries": [],
        "aborted": False,
    }


def _load_journal(checkpoint_dir: pathlib.Path) -> dict | None:
    path = checkpoint_dir / JOURNAL_FILENAME
    if not path.exists():
        return None
    with open(path, encoding="utf-8") as fh:
        journal = json.load(fh)
    if journal.get("format") != JOURNAL_FORMAT:
        raise ArtifactError(f"{path} is not a {JOURNAL_FORMAT} artifact")
    return journal


def _write_journal(checkpoint_dir: pathlib.Path, journal: dict) -> None:
    atomic_write_json(checkpoint_dir / JOURNAL_FILENAME, journal)


class _StepTap:
    """Per-attempt observer chain: fault application, then screening.

    Faults mutate agent state exactly at their planned learn step —
    *before* the sentinel's screens run for that step — so detection
    latency is measured honestly.  With a null plan the tap degenerates
    to the bare sentinel screen (and applies nothing)."""

    def __init__(
        self,
        plan: TrainingFaultPlan,
        sentinel: TrainingSentinel,
        applied: list[dict[str, object]],
        episode: int,
        attempt: int,
    ) -> None:
        self.plan = plan
        self.sentinel = sentinel
        self.applied = applied
        self.episode = episode
        self.attempt = attempt
        self.step = 0

    def _record(self, kind: str, step: int, **extra: object) -> None:
        record: dict[str, object] = {
            "kind": kind,
            "episode": self.episode,
            "attempt": self.attempt,
            "step": step,
        }
        record.update(extra)
        self.applied.append(record)

    def __call__(self, agent, loss: float) -> None:  # noqa: ANN001 - DQNAgent
        self.step += 1
        plan = self.plan
        if not plan.is_null:
            if plan.nan_at_step == self.step:
                # Poison one weight component; matmul spreads the NaN to
                # every output on the next forward pass.
                agent.q_net.layers[0].w[0, 0] = np.nan
                self._record("nan-gradient", self.step)
            views = agent.buffer.views()
            n = len(agent.buffer)
            if plan.corrupt_replay_at_step == self.step and n > 0:
                rows = min(plan.corrupt_rows, n)
                views["states"][:rows] = np.nan
                self._record("corrupt-replay", self.step, rows=rows)
            if plan.reward_spike_at_step == self.step and n > 0:
                rows = min(plan.spike_rows, n)
                views["rewards"][:rows] = plan.spike_magnitude
                self._record("reward-spike", self.step, rows=rows)
        self.sentinel.observe(agent, loss)


def _flip_checkpoint_byte(path: pathlib.Path) -> None:
    """Rot one byte of a committed checkpoint's state archive in place."""
    state = path / "state.npz"
    raw = bytearray(state.read_bytes())
    raw[len(raw) // 2] ^= 0x01
    # Deliberately NOT atomic: bitrot is supposed to corrupt in place.
    with open(state, "wb") as fh:  # repro: allow-unsafe-write -- fault injection
        fh.write(raw)
        fh.flush()
        os.fsync(fh.fileno())


def _checkpoint_episode(message: str) -> int:
    """Episode count encoded in a checkpoint name inside ``message``."""
    match = _CKPT_NAME_RE.search(message)
    return int(match.group(1)) if match else -1


def write_forensics(
    checkpoint_dir: pathlib.Path,
    setup: TrainingSetup,
    service_rates: list[float],
    journal: dict,
    sentinel: TrainingSentinel,
    reason: str,
) -> pathlib.Path:
    """Commit a forensics bundle: full agent/optimizer/replay/RNG state
    plus the incident ring, manifest-sealed like any other artifact."""
    bundle = checkpoint_dir / f"forensics-{int(journal['anomaly_count']):03d}"
    if bundle.exists():
        # A killed abort retries idempotently: rebuild from scratch.
        shutil.rmtree(bundle)
    bundle.mkdir(parents=True)
    agent = setup.agent
    atomic_savez(bundle / "agent_state.npz", **agent.get_state())
    atomic_write_json(
        bundle / "incidents.json",
        {
            "format": FORENSICS_FORMAT,
            "version": 1,
            "reason": reason,
            "seed": setup.cfg.seed,
            "level": journal["level"],
            "lr_scale": journal["lr_scale"],
            "epsilon": agent.epsilon,
            "learn_steps": agent.learn_steps,
            "service_rates": list(service_rates),
            "replay_checksum": replay_checksum(agent.buffer),
            "anomalies": list(journal["anomalies"]),
            "recoveries": list(journal["recoveries"]),
            "incident_ring": sentinel.incidents.as_json(),
        },
    )
    write_manifest(bundle, version=1, meta={"kind": FORENSICS_FORMAT})
    fsync_dir(checkpoint_dir)
    return bundle


def _last_reperturb_idx(journal: dict, episode: int) -> int | None:
    """Anomaly index of the newest re-perturbation recorded for
    ``episode``, applied idempotently at every attempt start (a resumed
    process must re-derive in-memory recovery state from the journal)."""
    idx = None
    for rec in journal["recoveries"]:
        if rec["episode"] == episode and "reperturb" in rec["actions"]:
            idx = int(rec["anomaly_idx"])
    return idx


def sentinel_training(
    scenario: CharlotteScenario,
    bundle: TraceBundle,
    config: MobiRescueConfig | None = None,
    *,
    episodes: int = 6,
    num_teams: int = 40,
    team_capacity: int = 5,
    checkpoint_dir: str | pathlib.Path,
    keep_checkpoints: int = 3,
    sentinel_config: SentinelConfig | None = None,
    ladder: LadderConfig | None = None,
    injector: TrainingFaultInjector | None = None,
    progress: Callable[[str], None] | None = None,
) -> SentinelTrainingResult:
    """Train with the sentinel attached; resume-aware and self-healing.

    Fault-free, this produces models bit-identical to
    ``train_mobirescue`` with the same arguments (the sentinel only
    reads).  ``injector`` is the chaos hook: planned training faults are
    applied mid-episode through the same observer tap that screens them.

    The directory is the unit of resumption: an initial ``ckpt-000000``
    commits before episode 0, every clean episode commits a checkpoint,
    and the ladder journal persists next to them — re-invoking after any
    SIGKILL continues (and re-runs any recovery) deterministically.
    """
    if episodes < 1:
        raise ValueError("episodes must be positive")
    checkpoint_root = pathlib.Path(checkpoint_dir)
    checkpoint_root.mkdir(parents=True, exist_ok=True)
    sc = sentinel_config or SentinelConfig()
    lad = ladder or LadderConfig()
    sentinel = TrainingSentinel(sc)
    applied: list[dict[str, object]] = []
    say = progress or (lambda _msg: None)

    # Lazy import everywhere else in the tree, but this module is never
    # on the fork path, so a top-level persistence import would also be
    # fine; keep the established pattern.
    from repro.core import persistence

    def note_quarantine(kind: str, message: str) -> None:
        rotten = _checkpoint_episode(message)
        sentinel.record(
            KIND_CHECKPOINT_BITROT, -1, float(rotten), message,
            dedup_key=f"{KIND_CHECKPOINT_BITROT}:{rotten}",
        )

    journal = _load_journal(checkpoint_root)
    found = persistence.find_latest_valid_checkpoint(
        checkpoint_root, on_incident=note_quarantine
    )
    if journal is None:
        journal = _fresh_journal((config or MobiRescueConfig()).seed)
    if journal.get("aborted"):
        # A completed abort is terminal; re-running must not retrain.
        return SentinelTrainingResult(
            trained=None,
            anomalies=list(journal["anomalies"]),
            applied=applied,
            recoveries=list(journal["recoveries"]),
            aborted=True,
            forensics_path=_latest_forensics(checkpoint_root),
            journal=journal,
            checkpoint_dir=checkpoint_root,
        )

    if found is not None:
        checkpoint, _path = found
        setup = setup_from_checkpoint(checkpoint, scenario, bundle)
        service_rates = list(checkpoint.service_rates)
        ep = checkpoint.episodes_done
        say(f"resuming from episode {ep}")
    else:
        setup = prepare_training(scenario, bundle, config)
        service_rates = []
        ep = 0
        persistence.save_checkpoint(
            checkpoint_root,
            persistence.checkpoint_from_training(
                setup.agent, setup.predictor, setup.cfg, 0, []
            ),
        )
    _write_journal(checkpoint_root, journal)

    agent = setup.agent
    base_lr = agent.config.learning_rate
    agent.q_net.grad_stats_enabled = True

    def abort(reason: str) -> SentinelTrainingResult:
        forensics = write_forensics(
            checkpoint_root, setup, service_rates, journal, sentinel, reason
        )
        journal["aborted"] = True
        _write_journal(checkpoint_root, journal)
        say(f"ABORT: {reason} (forensics at {forensics})")
        return SentinelTrainingResult(
            trained=None,
            anomalies=list(journal["anomalies"]),
            applied=applied,
            recoveries=list(journal["recoveries"]),
            aborted=True,
            forensics_path=forensics,
            journal=journal,
            checkpoint_dir=checkpoint_root,
        )

    while ep < episodes:
        attempt = int(journal["attempts"].get(str(ep), 0))
        journal["attempts"][str(ep)] = attempt + 1
        _write_journal(checkpoint_root, journal)

        # Idempotent recovery-state application (no-ops on a clean run):
        # the journal, not process memory, is the source of truth, so a
        # resumed process re-derives exactly what a live one holds.
        agent.q_net.learning_rate = base_lr * float(journal["lr_scale"])
        reperturb_idx = _last_reperturb_idx(journal, ep)
        if reperturb_idx is not None:
            agent.rng = np.random.default_rng(
                [setup.cfg.seed, STREAM_TRAIN_REPERTURB, reperturb_idx]
            )

        plan = injector.plan(ep, attempt) if injector is not None else NULL_TRAINING_PLAN
        sentinel.begin_attempt(ep, attempt)
        tap = _StepTap(plan, sentinel, applied, ep, attempt)
        agent.observer = tap
        try:
            rate = run_training_episode(
                scenario, bundle, setup, ep,
                num_teams=num_teams, team_capacity=team_capacity,
            )
        finally:
            agent.observer = None

        candidate_rates = service_rates + ([rate] if rate is not None else [])
        # Boundary screens: a fault landing on the attempt's *last* learn
        # step has no later step to betray itself on, so the attempt
        # verdict always re-scans parameters and replay in full.
        sentinel.screen_params(agent)
        sentinel.screen_replay(agent.buffer)
        sentinel.screen_rewards(candidate_rates)
        anomalies = sentinel.drain()

        if not anomalies:
            service_rates = candidate_rates
            path = persistence.save_checkpoint(
                checkpoint_root,
                persistence.checkpoint_from_training(
                    agent, setup.predictor, setup.cfg, ep + 1, service_rates
                ),
            )
            if (
                injector is not None
                and injector.bitrot(ep)
                and ep not in journal["bitrotted"]
            ):
                _flip_checkpoint_byte(path)
                journal["bitrotted"].append(ep)
                applied.append({
                    "kind": "checkpoint-bitrot",
                    "episode": ep,
                    "attempt": attempt,
                    "step": -1,
                    "checkpoint": ep + 1,
                })
            persistence.prune_checkpoints(checkpoint_root, keep=keep_checkpoints)
            journal["clean_streak"] = int(journal["clean_streak"]) + 1
            if journal["clean_streak"] >= lad.reset_after_clean:
                journal["level"] = 0
            ep += 1
            _write_journal(checkpoint_root, journal)
            continue

        # -- confirmed anomaly: climb the ladder -----------------------------
        journal["anomalies"].extend(a.as_json() for a in anomalies)
        anomaly_idx = int(journal["anomaly_count"])
        journal["anomaly_count"] = anomaly_idx + 1
        level = int(journal["level"])
        journal["clean_streak"] = 0
        kinds = ",".join(sorted({a.kind for a in anomalies}))
        say(f"episode {ep} attempt {attempt}: anomaly [{kinds}] at ladder level {level}")

        if level >= lad.abort_level:
            return abort(
                f"ladder exhausted at level {level} "
                f"(episode {ep}, attempt {attempt}: {kinds})"
            )

        actions = ["rollback"]
        if level >= 1:
            actions.append("reperturb")
        if level >= 2:
            actions.append("lr-backoff")
            journal["lr_scale"] = float(journal["lr_scale"]) * lad.lr_backoff
        journal["recoveries"].append({
            "episode": ep,
            "attempt": attempt,
            "level": level,
            "actions": actions,
            "anomaly_idx": anomaly_idx,
            "kinds": kinds,
        })
        journal["level"] = level + 1
        _write_journal(checkpoint_root, journal)

        found = persistence.find_latest_valid_checkpoint(
            checkpoint_root, on_incident=note_quarantine
        )
        rollback_anomalies = sentinel.drain()
        journal["anomalies"].extend(a.as_json() for a in rollback_anomalies)
        if rollback_anomalies:
            _write_journal(checkpoint_root, journal)
        if found is None:
            return abort("no valid checkpoint left to roll back to")
        checkpoint, _path = found
        agent.set_state(checkpoint.agent_state)
        service_rates = list(checkpoint.service_rates)
        ep = checkpoint.episodes_done
        say(f"rolled back to episode {ep} ({'+'.join(actions)})")

    # -- final checkpoint-integrity sweep -------------------------------------
    # Bitrot on a checkpoint nothing rolled back through would otherwise
    # go unnoticed until some future resume; sweep so every rotten
    # artifact is quarantined (and counted) before the run reports ok.
    for path in persistence.list_checkpoints(checkpoint_root):
        try:
            persistence.load_checkpoint(path)
        except ArtifactError as exc:
            rotten = _checkpoint_episode(path.name)
            sentinel.record(
                KIND_CHECKPOINT_BITROT,
                -1,
                float(rotten),
                f"final sweep: checkpoint {path.name} rejected: {exc}",
                dedup_key=f"{KIND_CHECKPOINT_BITROT}:final:{rotten}",
            )
            persistence.quarantine_checkpoint(path, str(exc))
    sweep_anomalies = sentinel.drain()
    if sweep_anomalies:
        journal["anomalies"].extend(a.as_json() for a in sweep_anomalies)
        _write_journal(checkpoint_root, journal)

    agent.q_net.grad_stats_enabled = False
    trained = TrainedMobiRescue(
        agent=agent,
        predictor=setup.predictor,
        config=setup.cfg,
        episodes_run=len(service_rates),
        episode_service_rates=service_rates,
    )
    return SentinelTrainingResult(
        trained=trained,
        anomalies=list(journal["anomalies"]),
        applied=applied,
        recoveries=list(journal["recoveries"]),
        aborted=False,
        forensics_path=_latest_forensics(checkpoint_root),
        journal=journal,
        checkpoint_dir=checkpoint_root,
    )


def _latest_forensics(checkpoint_root: pathlib.Path) -> pathlib.Path | None:
    bundles = sorted(checkpoint_root.glob("forensics-*"))
    return bundles[-1] if bundles else None


def supervised_sentinel_training(
    scenario: CharlotteScenario,
    bundle: TraceBundle,
    config: MobiRescueConfig | None = None,
    *,
    episodes: int = 6,
    num_teams: int = 40,
    team_capacity: int = 5,
    checkpoint_dir: str | pathlib.Path,
    keep_checkpoints: int = 3,
    sentinel_config: SentinelConfig | None = None,
    ladder: LadderConfig | None = None,
    injector: TrainingFaultInjector | None = None,
    supervisor: Supervisor | None = None,
    policy: RetryPolicy | None = None,
    progress: Callable[[str], None] | None = None,
) -> SentinelTrainingResult:
    """:func:`sentinel_training` under the crash supervisor.

    Process-level failures (OOM kill leftovers, torn filesystems
    surfacing as exceptions) are retried with backoff; each retry
    resumes from the journal + checkpoints, so supervision composes
    with — rather than duplicates — the anomaly ladder, which handles
    *numeric* failures and reports an abort as a result, not a raise.
    """
    cfg_seed = (config or MobiRescueConfig()).seed
    sup = supervisor or Supervisor(
        policy=policy or RetryPolicy(max_attempts=3),
        name="train-sentinel",
        seed=cfg_seed,
    )

    def attempt(_attempt_index: int) -> SentinelTrainingResult:
        return sentinel_training(
            scenario,
            bundle,
            config,
            episodes=episodes,
            num_teams=num_teams,
            team_capacity=team_capacity,
            checkpoint_dir=checkpoint_dir,
            keep_checkpoints=keep_checkpoints,
            sentinel_config=sentinel_config,
            ladder=ladder,
            injector=injector,
            progress=progress,
        )

    result = sup.run(attempt)
    result.journal["supervisor_incidents"] = [
        {"kind": i.kind, "message": i.message, "attempt": i.attempt}
        for i in sup.incidents
    ]
    return result

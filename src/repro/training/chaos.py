"""Training chaos harness: fault-composed self-healing runs, judged.

``repro chaos --profile train-*`` runs, per seed:

1. a **baseline** — plain ``train_mobirescue``, sentinel off;
2. a **clean sentinel run** — must be *bit-identical* to the baseline
   (weights, Adam state, replay buffer, RNG state, reward trace);
3. a **chaos run** — the profile's training faults injected mid-episode
   through the same observer tap that screens them.

The chaos run is then held to the harness invariants:

* **detection**: every applied fault has a matching anomaly in the same
  ``(episode, attempt)`` window (bitrot: matched per rotten checkpoint,
  detected by rollback quarantine or the final sweep);
* **recovery floor**: a recovered (non-aborted) run's mean service rate
  stays within ``recovery_floor`` of the baseline's;
* **checkpoint hygiene**: every checkpoint still committed after the
  run loads cleanly and passes the full sentinel screens — no anomaly
  ever escapes into a committed artifact;
* **blackout**: a persistent-fault profile must *abort* with a
  manifest-complete forensics bundle instead of committing progress.
"""

from __future__ import annotations

import pathlib
import tempfile
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.artifacts import atomic_write_json, verify_artifact_dir
from repro.core.config import MobiRescueConfig
from repro.core.training import TrainedMobiRescue, train_mobirescue
from repro.data import DatasetSpec, build_dataset
from repro.data.charlotte import CharlotteScenario
from repro.faults.models import TrainingFaultInjector
from repro.faults.profiles import get_train_profile
from repro.mobility.generator import TraceBundle
from repro.training.health import (
    KIND_CHECKPOINT_BITROT,
    SentinelConfig,
    TrainingSentinel,
)
from repro.training.loop import (
    FORENSICS_FORMAT,
    LadderConfig,
    SentinelTrainingResult,
    sentinel_training,
)

#: Which anomaly kinds legitimately betray each injected fault family.
#: (A NaN weight shows up as a NaN loss *or* a NaN parameter scan; a
#: reward spike as a replay-bound hit or the divergence it seeds.)
DETECTION_MAP: dict[str, tuple[str, ...]] = {
    "nan-gradient": ("nan-loss", "nan-param", "grad-explosion", "q-explosion"),
    "corrupt-replay": ("replay-corrupt", "nan-loss", "nan-param", "grad-explosion"),
    "reward-spike": (
        "replay-reward-bound", "td-divergence", "q-explosion", "grad-explosion",
    ),
}


@dataclass(frozen=True)
class TrainChaosConfig:
    """One training-chaos campaign."""

    profile: str = "train-severe"
    seeds: tuple[int, ...] = (0,)
    episodes: int = 3
    population_size: int = 300
    num_teams: int = 10
    team_capacity: int = 5
    storm: str = "michael"
    #: Mean chaos service rate must reach this fraction of baseline.
    recovery_floor: float = 0.5
    #: Persist run directories (checkpoints, journals, forensics) under
    #: this path instead of a throwaway tempdir — CI uploads them.
    work_dir: str | None = None

    def __post_init__(self) -> None:
        get_train_profile(self.profile)  # raises on unknown names
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.episodes < 1:
            raise ValueError("episodes must be positive")
        if self.population_size < 1 or self.num_teams < 1 or self.team_capacity < 1:
            raise ValueError("population/teams/capacity must be positive")
        if not (0.0 < self.recovery_floor <= 1.0):
            raise ValueError("recovery_floor must be in (0, 1]")


@dataclass
class TrainSeedVerdict:
    """Everything the judge measured for one seed."""

    seed: int
    profile: str
    clean_identical: bool = False
    aborted: bool = False
    forensics_complete: bool | None = None
    applied: list[dict] = field(default_factory=list)
    anomalies: list[dict] = field(default_factory=list)
    recoveries: list[dict] = field(default_factory=list)
    baseline_rates: list[float] = field(default_factory=list)
    chaos_rates: list[float] = field(default_factory=list)
    committed_checkpoints: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_json(self) -> dict:
        kinds: dict[str, int] = {}
        for a in self.anomalies:
            kinds[str(a["kind"])] = kinds.get(str(a["kind"]), 0) + 1
        return {
            "seed": self.seed,
            "profile": self.profile,
            "ok": self.ok,
            "clean_identical": self.clean_identical,
            "aborted": self.aborted,
            "forensics_complete": self.forensics_complete,
            "applied": self.applied,
            "applied_count": len(self.applied),
            "anomalies": self.anomalies,
            "anomaly_kinds": kinds,
            "recoveries": self.recoveries,
            "baseline_rates": self.baseline_rates,
            "chaos_rates": self.chaos_rates,
            "committed_checkpoints": self.committed_checkpoints,
            "violations": self.violations,
        }


def _agent_states_equal(a: dict[str, np.ndarray], b: dict[str, np.ndarray]) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


def _matches(applied: dict, anomaly: dict) -> bool:
    if applied["kind"] == "checkpoint-bitrot":
        return (
            anomaly["kind"] == KIND_CHECKPOINT_BITROT
            and anomaly["value"] == float(applied["checkpoint"])
        )
    return (
        anomaly["kind"] in DETECTION_MAP[str(applied["kind"])]
        and anomaly["episode"] == applied["episode"]
        and anomaly["attempt"] == applied["attempt"]
    )


class TrainChaosHarness:
    """Builds one small world, then judges each seed against it."""

    def __init__(
        self,
        config: TrainChaosConfig,
        dataset: tuple[CharlotteScenario, TraceBundle] | None = None,
    ) -> None:
        self.config = config
        if dataset is None:
            dataset = build_dataset(
                DatasetSpec(storm=config.storm, population_size=config.population_size)
            )
        self.scenario, self.bundle = dataset
        self.profile = get_train_profile(config.profile)

    # -- per-seed runs --------------------------------------------------------

    def _baseline(self, seed: int) -> TrainedMobiRescue:
        c = self.config
        return train_mobirescue(
            self.scenario,
            self.bundle,
            MobiRescueConfig(seed=seed),
            episodes=c.episodes,
            num_teams=c.num_teams,
            team_capacity=c.team_capacity,
        )

    def _sentinel_run(
        self,
        seed: int,
        checkpoint_dir: pathlib.Path,
        injector: TrainingFaultInjector | None,
    ) -> SentinelTrainingResult:
        c = self.config
        return sentinel_training(
            self.scenario,
            self.bundle,
            MobiRescueConfig(seed=seed),
            episodes=c.episodes,
            num_teams=c.num_teams,
            team_capacity=c.team_capacity,
            checkpoint_dir=checkpoint_dir,
            # Nothing may be pruned away before the hygiene sweep judges it.
            keep_checkpoints=c.episodes + 2,
            injector=injector,
        )

    # -- invariants -----------------------------------------------------------

    def _check_detection(self, verdict: TrainSeedVerdict) -> None:
        for applied in verdict.applied:
            if not any(_matches(applied, a) for a in verdict.anomalies):
                verdict.violations.append(
                    f"undetected fault: {applied['kind']} at episode "
                    f"{applied['episode']} attempt {applied['attempt']}"
                )

    def _check_recovery_floor(self, verdict: TrainSeedVerdict) -> None:
        floor = self.config.recovery_floor
        base = float(np.mean(verdict.baseline_rates)) if verdict.baseline_rates else 0.0
        if base <= 0.0:
            return
        chaos = float(np.mean(verdict.chaos_rates)) if verdict.chaos_rates else 0.0
        if chaos < floor * base:
            verdict.violations.append(
                f"recovered service rate {chaos:.3f} below floor "
                f"{floor:.2f} x baseline {base:.3f}"
            )

    def _check_checkpoint_hygiene(
        self, verdict: TrainSeedVerdict, checkpoint_dir: pathlib.Path
    ) -> None:
        """Every *surviving* checkpoint must load and pass full screens."""
        from repro.core import persistence
        from repro.core.rl_dispatcher import make_agent

        paths = persistence.list_checkpoints(checkpoint_dir)
        verdict.committed_checkpoints = len(paths)
        for path in paths:
            try:
                checkpoint = persistence.load_checkpoint(path)
            except Exception as exc:  # repro: allow-broad-except -- any load failure is a violation
                verdict.violations.append(
                    f"committed checkpoint {path.name} does not load: {exc}"
                )
                continue
            agent = make_agent(checkpoint.config)
            agent.set_state(checkpoint.agent_state)
            probe = TrainingSentinel(SentinelConfig())
            probe.begin_attempt(-1, -1)
            probe.screen_params(agent)
            probe.screen_replay(agent.buffer)
            leaked = probe.drain()
            for anomaly in leaked:
                verdict.violations.append(
                    f"anomaly escaped into {path.name}: {anomaly.kind} "
                    f"({anomaly.detail})"
                )

    def _check_forensics(
        self, verdict: TrainSeedVerdict, result: SentinelTrainingResult
    ) -> None:
        path = result.forensics_path
        if path is None:
            verdict.forensics_complete = False
            verdict.violations.append("aborted without a forensics bundle")
            return
        try:
            verify_artifact_dir(path)
        except Exception as exc:  # repro: allow-broad-except -- any defect fails the bundle
            verdict.forensics_complete = False
            verdict.violations.append(f"forensics bundle incomplete: {exc}")
            return
        import json

        with open(path / "incidents.json", encoding="utf-8") as fh:
            payload = json.load(fh)
        agent_state_ok = (path / "agent_state.npz").exists()
        if payload.get("format") != FORENSICS_FORMAT or not agent_state_ok:
            verdict.forensics_complete = False
            verdict.violations.append("forensics bundle malformed")
            return
        verdict.forensics_complete = True

    # -- the judge ------------------------------------------------------------

    def _judge(self, seed: int, work: pathlib.Path) -> TrainSeedVerdict:
        c = self.config
        verdict = TrainSeedVerdict(seed=seed, profile=c.profile)
        expect_abort = self.profile.nan_gradient.persistent

        baseline = self._baseline(seed)
        verdict.baseline_rates = list(baseline.episode_service_rates)

        clean = self._sentinel_run(seed, work / "clean", injector=None)
        if clean.trained is None:
            verdict.violations.append("clean sentinel run did not produce a model")
        else:
            verdict.clean_identical = _agent_states_equal(
                baseline.agent.get_state(), clean.trained.agent.get_state()
            ) and (
                baseline.episode_service_rates
                == clean.trained.episode_service_rates
            )
            if not verdict.clean_identical:
                verdict.violations.append(
                    "clean sentinel run diverged from sentinel-off baseline"
                )
        if clean.anomalies:
            verdict.violations.append(
                f"clean run raised {len(clean.anomalies)} false anomalies"
            )

        injector = TrainingFaultInjector(self.profile, seed=seed)
        chaos_dir = work / "chaos"
        chaos = self._sentinel_run(seed, chaos_dir, injector=injector)
        verdict.aborted = chaos.aborted
        verdict.applied = list(chaos.applied)
        verdict.anomalies = list(chaos.anomalies)
        verdict.recoveries = list(chaos.recoveries)
        if chaos.trained is not None:
            verdict.chaos_rates = list(chaos.trained.episode_service_rates)

        self._check_detection(verdict)
        self._check_checkpoint_hygiene(verdict, chaos_dir)
        if expect_abort:
            if not chaos.aborted:
                verdict.violations.append(
                    "persistent-fault profile completed instead of aborting"
                )
            self._check_forensics(verdict, chaos)
        else:
            if chaos.aborted:
                verdict.violations.append("transient-fault profile aborted")
            else:
                self._check_recovery_floor(verdict)
        return verdict

    def run(self, progress: Callable[[str], None] | None = None) -> dict:
        say = progress or (lambda _msg: None)
        c = self.config
        verdicts = []
        for seed in c.seeds:
            say(f"seed {seed}: baseline + clean + {c.profile} chaos "
                f"({c.episodes} episodes)")
            if c.work_dir is not None:
                work = pathlib.Path(c.work_dir) / f"seed-{seed}"
                work.mkdir(parents=True, exist_ok=True)
                verdict = self._judge(seed, work)
            else:
                with tempfile.TemporaryDirectory(prefix="train-chaos-") as tmp:
                    verdict = self._judge(seed, pathlib.Path(tmp))
            state = "ok" if verdict.ok else f"VIOLATIONS: {verdict.violations}"
            say(
                f"seed {seed}: {len(verdict.applied)} faults applied, "
                f"{len(verdict.anomalies)} anomalies, "
                f"{len(verdict.recoveries)} recoveries, {state}"
            )
            verdicts.append(verdict)
        violations = [
            f"seed {v.seed}: {violation}"
            for v in verdicts
            for violation in v.violations
        ]
        return {
            "profile": c.profile,
            "seeds": list(c.seeds),
            "episodes": c.episodes,
            "population_size": c.population_size,
            "num_teams": c.num_teams,
            "recovery_floor": c.recovery_floor,
            "applied_total": sum(len(v.applied) for v in verdicts),
            "anomaly_total": sum(len(v.anomalies) for v in verdicts),
            "ok": not violations,
            "violations": violations,
            "runs": [v.as_json() for v in verdicts],
        }


def run_train_chaos(
    config: TrainChaosConfig,
    out_path: str | pathlib.Path | None = None,
    progress: Callable[[str], None] | None = None,
    dataset: tuple[CharlotteScenario, TraceBundle] | None = None,
) -> dict:
    """Run a training-chaos campaign; optionally persist the report."""
    report = TrainChaosHarness(config, dataset=dataset).run(progress)
    if out_path is not None:
        atomic_write_json(out_path, report)
    return report

"""Self-healing training: numeric-health sentinel + divergence recovery.

The learning loop is treated like the long-running service it is (see
ROADMAP.md's week-long sweep arcs): a :class:`TrainingSentinel` screens
every optimization step and episode boundary for numeric disasters —
NaN/Inf losses, exploding gradients and Q-magnitudes, TD-error
divergence, reward collapse, corrupted replay rows — and on a confirmed
anomaly :func:`sentinel_training` climbs an escalation ladder: rollback
to the last healthy checkpoint and replay; rollback plus deterministic
exploration re-perturbation; learning-rate back-off; finally abort with
a forensics bundle.  A fault-free sentinel run is bit-identical to plain
``train_mobirescue`` (the sentinel only ever *reads* training state),
which the ``repro chaos --profile train-*`` harness asserts along with
detection, recovery-floor and checkpoint-hygiene invariants.

See docs/TRAINING_HEALTH.md.
"""

from repro.training.chaos import (
    TrainChaosConfig,
    TrainChaosHarness,
    TrainSeedVerdict,
    run_train_chaos,
)
from repro.training.health import (
    ANOMALY_KINDS,
    Anomaly,
    IncidentRing,
    RingStats,
    SentinelConfig,
    TrainingAnomalyError,
    TrainingSentinel,
    replay_checksum,
)
from repro.training.loop import (
    FORENSICS_FORMAT,
    JOURNAL_FILENAME,
    LadderConfig,
    SentinelTrainingResult,
    sentinel_training,
    supervised_sentinel_training,
)

__all__ = [
    "ANOMALY_KINDS",
    "Anomaly",
    "FORENSICS_FORMAT",
    "IncidentRing",
    "JOURNAL_FILENAME",
    "LadderConfig",
    "RingStats",
    "SentinelConfig",
    "SentinelTrainingResult",
    "TrainChaosConfig",
    "TrainChaosHarness",
    "TrainSeedVerdict",
    "TrainingAnomalyError",
    "TrainingSentinel",
    "replay_checksum",
    "run_train_chaos",
    "sentinel_training",
    "supervised_sentinel_training",
]

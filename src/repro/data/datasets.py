"""Dataset builders for the two hurricanes.

Florence (Sep 2018) is the paper's measurement and evaluation dataset;
Michael (Oct 2018), which also impacted the Charlotte area, trains the SVM
and RL models (Section V-B).  Builders are memoized by their full spec so
the (expensive) trace generation runs once per process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.charlotte import CharlotteScenario, build_charlotte_scenario
from repro.mobility.generator import MobilityTraceGenerator, TraceBundle, TraceConfig
from repro.mobility.population import PopulationConfig, generate_population
from repro.roadnet.generator import RoadNetworkConfig
from repro.weather.storms import FLORENCE, MICHAEL, StormTimeline


@dataclass(frozen=True)
class DatasetSpec:
    """Full specification of a synthetic dataset build."""

    storm: str  # "florence" | "michael"
    population_size: int = 8_590
    population_seed: int = 11
    trace_seed: int = 37
    network_config: RoadNetworkConfig | None = None

    def timeline(self) -> StormTimeline:
        if self.storm == "florence":
            return FLORENCE
        if self.storm == "michael":
            return MICHAEL
        raise ValueError(f"unknown storm {self.storm!r}")


_SCENARIO_CACHE: dict[tuple, CharlotteScenario] = {}
_DATASET_CACHE: dict[DatasetSpec, TraceBundle] = {}


def scenario_for(spec: DatasetSpec) -> CharlotteScenario:
    key = (spec.storm, spec.network_config)
    if key not in _SCENARIO_CACHE:
        _SCENARIO_CACHE[key] = build_charlotte_scenario(
            spec.timeline(), spec.network_config
        )
    return _SCENARIO_CACHE[key]


def build_dataset(spec: DatasetSpec) -> tuple[CharlotteScenario, TraceBundle]:
    """Build (or return the memoized) scenario + trace bundle for a spec."""
    scenario = scenario_for(spec)
    if spec not in _DATASET_CACHE:
        persons = generate_population(
            scenario.network,
            scenario.partition,
            PopulationConfig(size=spec.population_size),
            seed=spec.population_seed,
            excluded_nodes=frozenset(h.node_id for h in scenario.hospitals),
        )
        generator = MobilityTraceGenerator(
            scenario.network,
            scenario.partition,
            scenario.terrain,
            scenario.weather_field,
            scenario.flood,
            scenario.hospitals,
            TraceConfig(seed=spec.trace_seed),
        )
        _DATASET_CACHE[spec] = generator.generate(persons)
    return scenario, _DATASET_CACHE[spec]


def build_florence_dataset(
    population_size: int = 8_590, **kwargs
) -> tuple[CharlotteScenario, TraceBundle]:
    """The Florence measurement/evaluation dataset."""
    return build_dataset(
        DatasetSpec(storm="florence", population_size=population_size, **kwargs)
    )


def build_michael_dataset(
    population_size: int = 8_590, **kwargs
) -> tuple[CharlotteScenario, TraceBundle]:
    """The Michael training dataset."""
    return build_dataset(
        DatasetSpec(storm="michael", population_size=population_size, **kwargs)
    )

"""Scenario and dataset assembly.

``CharlotteScenario`` wires together every substrate for one storm (road
network, regions, terrain, hospitals, weather, flood model); the dataset
builders generate the Florence evaluation trace and the Michael training
trace, memoized so experiments can share them.
"""

from repro.data.charlotte import CharlotteScenario, build_charlotte_scenario
from repro.data.datasets import (
    DatasetSpec,
    build_dataset,
    build_florence_dataset,
    build_michael_dataset,
)

__all__ = [
    "CharlotteScenario",
    "DatasetSpec",
    "build_charlotte_scenario",
    "build_dataset",
    "build_florence_dataset",
    "build_michael_dataset",
]

"""The Charlotte scenario: all substrates wired for one storm."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.coords import CHARLOTTE_BBOX, BoundingBox, LocalProjection
from repro.geo.flood import FloodModel
from repro.geo.regions import RegionPartition, charlotte_regions
from repro.geo.terrain import TerrainField
from repro.hospitals.hospitals import Hospital, place_hospitals
from repro.roadnet.generator import RoadNetworkConfig, generate_road_network
from repro.roadnet.graph import RoadNetwork
from repro.weather.fields import RegionWeatherField
from repro.weather.service import WeatherService
from repro.weather.storms import StormTimeline


@dataclass
class CharlotteScenario:
    """Everything static about the city plus one storm's dynamics."""

    bbox: BoundingBox
    projection: LocalProjection
    partition: RegionPartition
    terrain: TerrainField
    network: RoadNetwork
    hospitals: list[Hospital]
    timeline: StormTimeline
    weather_field: RegionWeatherField
    flood: FloodModel
    weather: WeatherService

    @property
    def total_hours(self) -> int:
        return int(self.timeline.total_days * 24)


def build_charlotte_scenario(
    timeline: StormTimeline,
    network_config: RoadNetworkConfig | None = None,
) -> CharlotteScenario:
    """Build the Charlotte scenario for a given storm timeline.

    Deterministic: the city (network, terrain, hospitals) depends only on
    the network config's seed, the dynamics only on the timeline.
    """
    projection = LocalProjection(CHARLOTTE_BBOX)
    partition = charlotte_regions(projection.width_m, projection.height_m)
    terrain = TerrainField(partition)
    network = generate_road_network(partition, network_config)
    hospitals = place_hospitals(network, partition)
    weather_field = RegionWeatherField(partition, timeline)
    flood = FloodModel(terrain, weather_field.severity_fn())
    weather = WeatherService(weather_field, terrain, flood)
    return CharlotteScenario(
        bbox=CHARLOTTE_BBOX,
        projection=projection,
        partition=partition,
        terrain=terrain,
        network=network,
        hospitals=hospitals,
        timeline=timeline,
        weather_field=weather_field,
        flood=flood,
        weather=weather,
    )

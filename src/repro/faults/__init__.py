"""Disaster-grade fault injection for the dispatch pipeline.

MobiRescue operates *inside* a disaster, where the infrastructure the
dispatch center depends on is itself degraded: cellphone GPS feeds go
stale (paper Section IV-C5), radio links to teams drop, vehicles break
down mid-rescue, roads close beyond what the flood model predicts, and
the dispatch software itself can crash or blow its compute budget.

This package provides deterministic, seeded fault models for all five
failure families plus named severity profiles (``none``, ``mild``,
``severe``, ``blackout``) so robustness experiments are reproducible:
the same seed and profile always produce bit-identical fault schedules,
independent of query order.

Typical use::

    from repro.faults import make_injector
    from repro.sim.kernel import build_simulator

    injector = make_injector("severe", t0_s, t1_s, seed=0)
    sim = build_simulator(scenario, requests, dispatcher, config,
                          faults=injector)
"""

from repro.faults.models import (
    CheckpointBitrotFault,
    CommLossFault,
    DispatcherFailureFault,
    CorruptReplaySampleFault,
    FaultInjector,
    FaultModel,
    GpsDropoutFault,
    HotShardSkewFault,
    InjectedDispatcherFault,
    NaNGradientFault,
    NULL_TRAINING_PLAN,
    RewardSpikeFault,
    OutageWindow,
    RoadClosureFault,
    ShardFaultInjector,
    ShardFaultProfile,
    ShardKillFault,
    ShardStallFault,
    TeamBreakdownFault,
    TrainingFaultInjector,
    TrainingFaultPlan,
    TrainingFaultProfile,
    WorkerCorruptResultFault,
    WorkerCrashFault,
    WorkerFaultInjector,
    WorkerFaultPlan,
    WorkerFaultProfile,
    WorkerStallFault,
    sample_windows,
)
from repro.faults.profiles import (
    PROFILES,
    SHARD_PROFILES,
    TRAIN_PROFILES,
    WORKER_PROFILES,
    FaultProfile,
    get_profile,
    get_shard_profile,
    get_train_profile,
    get_worker_profile,
    make_injector,
)

__all__ = [
    "CheckpointBitrotFault",
    "CommLossFault",
    "CorruptReplaySampleFault",
    "DispatcherFailureFault",
    "FaultInjector",
    "FaultModel",
    "FaultProfile",
    "GpsDropoutFault",
    "HotShardSkewFault",
    "InjectedDispatcherFault",
    "NaNGradientFault",
    "NULL_TRAINING_PLAN",
    "OutageWindow",
    "PROFILES",
    "RewardSpikeFault",
    "RoadClosureFault",
    "SHARD_PROFILES",
    "ShardFaultInjector",
    "ShardFaultProfile",
    "ShardKillFault",
    "ShardStallFault",
    "TeamBreakdownFault",
    "TRAIN_PROFILES",
    "TrainingFaultInjector",
    "TrainingFaultPlan",
    "TrainingFaultProfile",
    "WORKER_PROFILES",
    "WorkerCorruptResultFault",
    "WorkerCrashFault",
    "WorkerFaultInjector",
    "WorkerFaultPlan",
    "WorkerFaultProfile",
    "WorkerStallFault",
    "get_profile",
    "get_shard_profile",
    "get_train_profile",
    "get_worker_profile",
    "make_injector",
    "sample_windows",
]

"""Named fault profiles for reproducible robustness experiments.

A profile bundles one parameterisation of every fault family.  The four
shipped severities:

``none``
    Every family disabled.  The engine skips the fault layer entirely, so
    results are bit-identical to a run without an injector.

``mild``
    Early-disaster degradation: scattered GPS outages, occasional radio
    drops, a rare breakdown.  Dispatching should degrade by a few percent.

``severe``
    Peak-disaster degradation: a third of phones dark for hours, frequent
    radio loss, breakdowns and surprise closures, the dispatch software
    failing one cycle in twenty.

``blackout``
    Infrastructure collapse: most phones dark, most radio traffic lost
    with heavy latency, widespread closures, the dispatcher failing every
    fifth cycle.  A stress ceiling, not a realistic operating point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.models import (
    CheckpointBitrotFault,
    CommLossFault,
    ComponentFaultProfile,
    CorruptRecordFault,
    CorruptReplaySampleFault,
    DispatcherFailureFault,
    FaultInjector,
    GpsDropoutFault,
    HotShardSkewFault,
    NaNGradientFault,
    PolicyLatencyFault,
    PredictorExceptionFault,
    RewardSpikeFault,
    RoadClosureFault,
    ShardFaultProfile,
    ShardKillFault,
    ShardStallFault,
    TeamBreakdownFault,
    TrainingFaultProfile,
    WorkerCorruptResultFault,
    WorkerCrashFault,
    WorkerFaultProfile,
    WorkerStallFault,
)


@dataclass(frozen=True)
class FaultProfile:
    """One parameterisation of all five fault families."""

    name: str
    gps: GpsDropoutFault = field(default_factory=GpsDropoutFault)
    comm: CommLossFault = field(default_factory=CommLossFault)
    breakdown: TeamBreakdownFault = field(default_factory=TeamBreakdownFault)
    closure: RoadClosureFault = field(default_factory=RoadClosureFault)
    dispatcher: DispatcherFailureFault = field(default_factory=DispatcherFailureFault)

    @property
    def is_null(self) -> bool:
        return not (
            self.gps.enabled
            or self.comm.enabled
            or self.breakdown.enabled
            or self.closure.enabled
            or self.dispatcher.enabled
        )


PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "mild": FaultProfile(
        name="mild",
        gps=GpsDropoutFault(p_affected=0.10, outages_per_person=1.0, mean_outage_s=2 * 3_600.0),
        comm=CommLossFault(p_affected=0.10, outages_per_team=1.0, mean_outage_s=1 * 3_600.0),
        breakdown=TeamBreakdownFault(
            p_affected=0.05, breakdowns_per_team=1.0, mean_repair_s=0.5 * 3_600.0
        ),
        closure=RoadClosureFault(
            p_affected=0.02, closures_per_segment=1.0, mean_closure_s=3 * 3_600.0
        ),
        dispatcher=DispatcherFailureFault(p_fail_per_cycle=0.01),
    ),
    "severe": FaultProfile(
        name="severe",
        gps=GpsDropoutFault(p_affected=0.35, outages_per_person=1.5, mean_outage_s=5 * 3_600.0),
        comm=CommLossFault(
            p_affected=0.30,
            outages_per_team=2.0,
            mean_outage_s=2 * 3_600.0,
            extra_latency_s=30.0,
        ),
        breakdown=TeamBreakdownFault(
            p_affected=0.15, breakdowns_per_team=1.0, mean_repair_s=1.5 * 3_600.0
        ),
        closure=RoadClosureFault(
            p_affected=0.08, closures_per_segment=1.5, mean_closure_s=5 * 3_600.0
        ),
        dispatcher=DispatcherFailureFault(p_fail_per_cycle=0.05),
    ),
    "blackout": FaultProfile(
        name="blackout",
        gps=GpsDropoutFault(p_affected=0.80, outages_per_person=2.0, mean_outage_s=10 * 3_600.0),
        comm=CommLossFault(
            p_affected=0.70,
            outages_per_team=3.0,
            mean_outage_s=4 * 3_600.0,
            extra_latency_s=120.0,
        ),
        breakdown=TeamBreakdownFault(
            p_affected=0.30, breakdowns_per_team=1.5, mean_repair_s=2 * 3_600.0
        ),
        closure=RoadClosureFault(
            p_affected=0.20, closures_per_segment=2.0, mean_closure_s=8 * 3_600.0
        ),
        dispatcher=DispatcherFailureFault(p_fail_per_cycle=0.20),
    ),
}


#: Component-level fault severities mirroring the environment profiles.
#: The chaos harness composes one of these with the matching environment
#: :data:`PROFILES` entry: ``none`` keeps the service loop bit-identical
#: to a plain engine run; ``severe`` trips every breaker repeatedly.
COMPONENT_PROFILES: dict[str, ComponentFaultProfile] = {
    "none": ComponentFaultProfile(name="none"),
    "mild": ComponentFaultProfile(
        name="mild",
        predictor=PredictorExceptionFault(p_fail_per_cycle=0.02),
        policy_latency=PolicyLatencyFault(p_spike_per_cycle=0.02, spike_s=10.0),
        corrupt_records=CorruptRecordFault(p_storm_per_cycle=0.05, corrupt_fraction=0.10),
    ),
    "severe": ComponentFaultProfile(
        name="severe",
        predictor=PredictorExceptionFault(p_fail_per_cycle=0.15),
        policy_latency=PolicyLatencyFault(p_spike_per_cycle=0.10, spike_s=30.0),
        corrupt_records=CorruptRecordFault(p_storm_per_cycle=0.25, corrupt_fraction=0.50),
    ),
    "blackout": ComponentFaultProfile(
        name="blackout",
        predictor=PredictorExceptionFault(p_fail_per_cycle=0.40),
        policy_latency=PolicyLatencyFault(p_spike_per_cycle=0.30, spike_s=120.0),
        corrupt_records=CorruptRecordFault(p_storm_per_cycle=0.50, corrupt_fraction=0.90),
    ),
}


#: Shard-level fault severities for the sharded ingest topology.  Names
#: are prefixed ``shard-`` so the chaos CLI can route them to the shard
#: harness; ``shard-blackout`` composes every family at once and is the
#: profile the failover acceptance gate runs under.
SHARD_PROFILES: dict[str, ShardFaultProfile] = {
    "shard-none": ShardFaultProfile(name="shard-none"),
    "shard-kill": ShardFaultProfile(
        name="shard-kill",
        kill=ShardKillFault(p_affected=1.0, kills_per_shard=1.0, mean_dead_s=3_600.0),
    ),
    "shard-stall": ShardFaultProfile(
        name="shard-stall",
        stall=ShardStallFault(
            p_affected=1.0,
            stalls_per_shard=1.0,
            mean_stall_window_s=3_600.0,
            stall_s=30.0,
        ),
    ),
    "shard-skew": ShardFaultProfile(
        name="shard-skew",
        skew=HotShardSkewFault(
            p_affected=1.0,
            skews_per_shard=1.0,
            mean_skew_s=2 * 3_600.0,
            capacity_divisor=64,
        ),
    ),
    "shard-blackout": ShardFaultProfile(
        name="shard-blackout",
        kill=ShardKillFault(p_affected=0.75, kills_per_shard=1.0, mean_dead_s=2_700.0),
        stall=ShardStallFault(
            p_affected=0.50,
            stalls_per_shard=1.5,
            mean_stall_window_s=2_700.0,
            stall_s=30.0,
        ),
        skew=HotShardSkewFault(
            p_affected=0.50,
            skews_per_shard=1.0,
            mean_skew_s=2 * 3_600.0,
            capacity_divisor=64,
        ),
    ),
}


#: Rollout-worker fault severities.  Names are prefixed ``worker-`` so
#: the chaos CLI can route them to the rollout harness.  ``worker-kill``
#: is the acceptance profile: real process deaths mid-episode, a slice of
#: poison episodes that must be quarantined, and zero lost episodes.
WORKER_PROFILES: dict[str, WorkerFaultProfile] = {
    "worker-none": WorkerFaultProfile(name="worker-none"),
    "worker-kill": WorkerFaultProfile(
        name="worker-kill",
        crash=WorkerCrashFault(
            p_affected=0.5, max_crashes=1, p_poison=0.2, crash_after_beats=3
        ),
    ),
    "worker-stall": WorkerFaultProfile(
        name="worker-stall",
        stall=WorkerStallFault(p_affected=0.5, max_stalls=1, stall_s=5.0),
    ),
    "worker-blackout": WorkerFaultProfile(
        name="worker-blackout",
        crash=WorkerCrashFault(
            p_affected=0.4, max_crashes=1, p_poison=0.1, crash_after_beats=3
        ),
        stall=WorkerStallFault(p_affected=0.3, max_stalls=1, stall_s=5.0),
        corrupt=WorkerCorruptResultFault(p_affected=0.3, max_corruptions=1),
    ),
}


#: Training fault profiles exercise the self-healing loop
#: (docs/TRAINING_HEALTH.md).  ``train-mild`` throws only transient
#: single-attempt faults — a pure rollback-and-replay must absorb every
#: one.  ``train-severe`` repeats faults across attempts (climbing the
#: re-perturbation and learning-rate rungs) and rots checkpoints on
#: disk.  ``train-blackout`` blows up on *every* attempt: the only
#: correct outcome is an abort with a forensics bundle.
TRAIN_PROFILES: dict[str, TrainingFaultProfile] = {
    "train-none": TrainingFaultProfile(name="train-none"),
    "train-mild": TrainingFaultProfile(
        name="train-mild",
        nan_gradient=NaNGradientFault(p_affected=0.4, max_attempts=1),
        corrupt_replay=CorruptReplaySampleFault(p_affected=0.25, max_attempts=1),
        reward_spike=RewardSpikeFault(p_affected=0.3, max_attempts=1),
    ),
    "train-severe": TrainingFaultProfile(
        name="train-severe",
        nan_gradient=NaNGradientFault(p_affected=0.5, max_attempts=2),
        corrupt_replay=CorruptReplaySampleFault(p_affected=0.4, max_attempts=2),
        reward_spike=RewardSpikeFault(p_affected=0.4, max_attempts=3),
        checkpoint_bitrot=CheckpointBitrotFault(p_affected=0.35),
    ),
    "train-blackout": TrainingFaultProfile(
        name="train-blackout",
        nan_gradient=NaNGradientFault(p_affected=1.0, max_attempts=1, persistent=True),
    ),
}


def get_train_profile(name: str) -> TrainingFaultProfile:
    """Look up a shipped training fault profile by name."""
    try:
        return TRAIN_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(TRAIN_PROFILES))
        raise ValueError(
            f"unknown training-fault profile {name!r} (choose from: {known})"
        ) from None


def get_worker_profile(name: str) -> WorkerFaultProfile:
    """Look up a shipped rollout-worker fault profile by name."""
    try:
        return WORKER_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(WORKER_PROFILES))
        raise ValueError(
            f"unknown worker-fault profile {name!r} (choose from: {known})"
        ) from None


def get_shard_profile(name: str) -> ShardFaultProfile:
    """Look up a shipped shard-fault profile by name."""
    try:
        return SHARD_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(SHARD_PROFILES))
        raise ValueError(
            f"unknown shard-fault profile {name!r} (choose from: {known})"
        ) from None


def get_component_profile(name: str) -> ComponentFaultProfile:
    """Look up a shipped component-fault profile by name."""
    try:
        return COMPONENT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(COMPONENT_PROFILES))
        raise ValueError(
            f"unknown component-fault profile {name!r} (choose from: {known})"
        ) from None


def get_profile(name: str) -> FaultProfile:
    """Look up a shipped profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown fault profile {name!r} (choose from: {known})") from None


def make_injector(
    profile: str | FaultProfile, t0_s: float, t1_s: float, seed: int = 0
) -> FaultInjector | None:
    """Build an injector for a profile, or ``None`` for a null profile.

    Returning ``None`` for ``none`` keeps the engine's fault layer
    zero-cost when disabled — the hot loop never even branches on it.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    if profile.is_null:
        return None
    return FaultInjector(profile, t0_s, t1_s, seed=seed)

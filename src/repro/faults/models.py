"""Composable, seeded fault models and the injection oracle.

Each fault family is a frozen dataclass of parameters implementing the
:class:`FaultModel` protocol: given a per-entity random generator and the
simulation window, it samples that entity's outage windows.  The
:class:`FaultInjector` answers the engine's point queries ("is team 7's
radio down at t?", "which extra segments are closed now?") from those
schedules.

Determinism is the load-bearing property.  Every random draw comes from a
generator keyed by ``(seed, family tag, entity id)``, so an entity's
schedule depends only on the seed — never on how many other entities
exist, which order queries arrive in, or what the dispatcher happens to
do.  Two runs with the same seed and profile see bit-identical faults.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

# Stream tags keep each family's random substream independent: the
# generator for (seed, tag, entity) never collides across families.
# All tags live in the central registry (repro.core.streams); the
# REP6xx project lint proves no other subsystem reuses them.
from repro.core.streams import (
    STREAM_FAULT_BREAKDOWN,
    STREAM_FAULT_CLOSURE,
    STREAM_FAULT_COMM,
    STREAM_FAULT_CORRUPT_RECORD,
    STREAM_FAULT_DISPATCHER,
    STREAM_FAULT_GPS,
    STREAM_FAULT_POLICY_LATENCY,
    STREAM_FAULT_PREDICTOR,
    STREAM_SHARD_KILL,
    STREAM_SHARD_SKEW,
    STREAM_SHARD_STALL,
    STREAM_TRAIN_CKPT_BITROT,
    STREAM_TRAIN_CORRUPT_REPLAY,
    STREAM_TRAIN_NAN_GRAD,
    STREAM_TRAIN_REWARD_SPIKE,
    STREAM_WORKER_CORRUPT,
    STREAM_WORKER_CRASH,
    STREAM_WORKER_STALL,
)

if TYPE_CHECKING:
    from repro.faults.profiles import FaultProfile

logger = logging.getLogger("repro.faults")


class InjectedDispatcherFault(RuntimeError):
    """Raised (conceptually) by a failing dispatch center; the engine's
    guard converts it into a fallback activation."""


class InjectedPredictorFault(RuntimeError):
    """Raised by a chaos-injected prediction-stage failure; the service's
    predictor breaker converts it into a last-known-good fallback."""


@dataclass(frozen=True)
class OutageWindow:
    """One half-open fault interval ``[start_s, end_s)``."""

    start_s: float
    end_s: float

    def covers(self, t_s: float) -> bool:
        return self.start_s <= t_s < self.end_s


def _merge(spans: list[tuple[float, float]]) -> tuple[OutageWindow, ...]:
    """Sort and coalesce overlapping spans into disjoint windows."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(spans):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(OutageWindow(s, e) for s, e in merged)


def sample_windows(
    rng: np.random.Generator,
    t0_s: float,
    t1_s: float,
    p_affected: float,
    events_per_entity: float,
    mean_duration_s: float,
) -> tuple[OutageWindow, ...]:
    """Sample one entity's outage windows over ``[t0, t1]``.

    With probability ``p_affected`` the entity suffers at least one
    outage; the outage count is Poisson around ``events_per_entity`` and
    each duration is exponential around ``mean_duration_s``, clipped to
    the window.  Overlaps are merged.
    """
    if p_affected <= 0.0 or rng.random() >= p_affected:
        return ()
    n = max(1, int(rng.poisson(max(events_per_entity, 1e-9))))
    spans = []
    for _ in range(n):
        start = float(rng.uniform(t0_s, t1_s))
        duration = float(rng.exponential(mean_duration_s))
        spans.append((start, min(t1_s, start + duration)))
    return _merge(spans)


@runtime_checkable
class FaultModel(Protocol):
    """One composable fault family.

    ``enabled`` lets the injector skip a family entirely (the ``none``
    profile must be zero-cost); ``windows_for`` samples one entity's
    outage schedule from a generator private to that entity.
    """

    @property
    def enabled(self) -> bool: ...

    def windows_for(
        self, rng: np.random.Generator, t0_s: float, t1_s: float
    ) -> tuple[OutageWindow, ...]: ...


@dataclass(frozen=True)
class GpsDropoutFault:
    """A fraction of the population loses GPS fixes for sampled windows.

    While a person is inside an outage window the dispatch center sees no
    fresh fix for them: the position feed falls back to their historical
    hour-of-day estimate (Section IV-C5) when available, or withholds the
    person entirely.
    """

    p_affected: float = 0.0
    outages_per_person: float = 1.0
    mean_outage_s: float = 4 * 3_600.0

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0

    def windows_for(self, rng, t0_s, t1_s):
        return sample_windows(
            rng, t0_s, t1_s, self.p_affected, self.outages_per_person, self.mean_outage_s
        )


@dataclass(frozen=True)
class CommLossFault:
    """Dispatch commands to a team are lost during radio outages.

    A command whose apply time falls inside an affected team's outage
    window never reaches the vehicle: the team keeps executing its last
    command (or holds position).  ``extra_latency_s`` additionally delays
    *every* command's application, modelling a congested disaster
    network.
    """

    p_affected: float = 0.0
    outages_per_team: float = 1.0
    mean_outage_s: float = 2 * 3_600.0
    extra_latency_s: float = 0.0

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0 or self.extra_latency_s > 0.0

    def windows_for(self, rng, t0_s, t1_s):
        return sample_windows(
            rng, t0_s, t1_s, self.p_affected, self.outages_per_team, self.mean_outage_s
        )


@dataclass(frozen=True)
class TeamBreakdownFault:
    """A team becomes inoperable mid-leg for a repair duration.

    The vehicle stops where it is; onboard passengers are stranded until
    the repair completes, after which the team resumes (delivering
    passengers first if it carries any).
    """

    p_affected: float = 0.0
    breakdowns_per_team: float = 1.0
    mean_repair_s: float = 1 * 3_600.0

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0

    def windows_for(self, rng, t0_s, t1_s):
        return sample_windows(
            rng, t0_s, t1_s, self.p_affected, self.breakdowns_per_team, self.mean_repair_s
        )


@dataclass(frozen=True)
class RoadClosureFault:
    """Operable segments close beyond the flood model (debris, collapse).

    Affected segments are treated exactly like flooded ones: routing
    avoids them, teams driving into one detour, pending requests anchored
    on one are re-anchored to the water's edge.
    """

    p_affected: float = 0.0
    closures_per_segment: float = 1.0
    mean_closure_s: float = 6 * 3_600.0

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0

    def windows_for(self, rng, t0_s, t1_s):
        return sample_windows(
            rng, t0_s, t1_s, self.p_affected, self.closures_per_segment, self.mean_closure_s
        )


@dataclass(frozen=True)
class DispatcherFailureFault:
    """The dispatch software fails on a fraction of cycles.

    A failing cycle behaves as if the dispatcher raised: the engine's
    guard activates the fallback policy (teams retain their current
    commands; idle teams hold position) and records the incident.
    """

    p_fail_per_cycle: float = 0.0

    @property
    def enabled(self) -> bool:
        return self.p_fail_per_cycle > 0.0

    def windows_for(self, rng, t0_s, t1_s):  # pragma: no cover - not window-based
        return ()

    def fails(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.p_fail_per_cycle)


@dataclass(frozen=True)
class PredictorExceptionFault:
    """The SVM prediction stage raises on a fraction of cycles.

    Models a diverged or crashing learned component; the service's
    predictor breaker converts the exception into a fallback to the
    last-known-good ``ñ_e``.
    """

    p_fail_per_cycle: float = 0.0

    @property
    def enabled(self) -> bool:
        return self.p_fail_per_cycle > 0.0

    def fails(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.p_fail_per_cycle)


@dataclass(frozen=True)
class PolicyLatencyFault:
    """The RL policy's decision latency spikes on a fraction of cycles.

    A spike adds ``spike_s`` to the policy stage's apparent compute time
    — enough to blow its deadline slice and trip the policy breaker onto
    the nearest-team heuristic.  Under the service's deterministic clock
    the spike advances simulated compute time; no real sleeping happens.
    """

    p_spike_per_cycle: float = 0.0
    spike_s: float = 10.0

    @property
    def enabled(self) -> bool:
        return self.p_spike_per_cycle > 0.0 and self.spike_s > 0.0

    def spike(self, rng: np.random.Generator) -> float:
        return self.spike_s if rng.random() < self.p_spike_per_cycle else 0.0


@dataclass(frozen=True)
class CorruptRecordFault:
    """Bursts of malformed GPS records hit the ingest stage.

    During a storm cycle, ``corrupt_fraction`` of the incoming fixes are
    corrupted (NaN coordinates, bogus timestamps, unknown person ids).
    The ingest guard must quarantine every one of them; none may reach
    the predictor.
    """

    p_storm_per_cycle: float = 0.0
    corrupt_fraction: float = 0.25

    @property
    def enabled(self) -> bool:
        return self.p_storm_per_cycle > 0.0 and self.corrupt_fraction > 0.0

    def storm_fraction(self, rng: np.random.Generator) -> float:
        return self.corrupt_fraction if rng.random() < self.p_storm_per_cycle else 0.0


@dataclass(frozen=True)
class ComponentFaultProfile:
    """One parameterisation of the service-level component faults."""

    name: str
    predictor: PredictorExceptionFault = PredictorExceptionFault()
    policy_latency: PolicyLatencyFault = PolicyLatencyFault()
    corrupt_records: CorruptRecordFault = CorruptRecordFault()

    @property
    def is_null(self) -> bool:
        return not (
            self.predictor.enabled
            or self.policy_latency.enabled
            or self.corrupt_records.enabled
        )


class ComponentFaultInjector:
    """Deterministic per-cycle oracle for component-level faults.

    Keyed exactly like :class:`FaultInjector`: every draw comes from a
    generator seeded ``(seed, family tag, cycle index)``, so a cycle's
    faults depend only on the seed — never on query order or on which
    other faults fired.
    """

    def __init__(self, profile: ComponentFaultProfile, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.profile = profile
        self.seed = int(seed)

    def _rng(self, tag: int, cycle_index: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, tag, int(cycle_index)])

    @property
    def is_null(self) -> bool:
        return self.profile.is_null

    def predictor_fails(self, cycle_index: int) -> bool:
        model = self.profile.predictor
        if not model.enabled:
            return False
        return model.fails(self._rng(STREAM_FAULT_PREDICTOR, cycle_index))

    def policy_spike_s(self, cycle_index: int) -> float:
        model = self.profile.policy_latency
        if not model.enabled:
            return 0.0
        return model.spike(self._rng(STREAM_FAULT_POLICY_LATENCY, cycle_index))

    def corrupt_fraction(self, cycle_index: int) -> float:
        model = self.profile.corrupt_records
        if not model.enabled:
            return 0.0
        return model.storm_fraction(self._rng(STREAM_FAULT_CORRUPT_RECORD, cycle_index))

    def mutation_rng(self, cycle_index: int) -> np.random.Generator:
        """Generator for *which* records a storm corrupts and *how*.

        A separate substream from the storm draw itself, so adding a
        mutation never shifts whether the storm fires.
        """
        return np.random.default_rng(
            [self.seed, STREAM_FAULT_CORRUPT_RECORD, int(cycle_index), 1]
        )


@dataclass(frozen=True)
class ShardKillFault:
    """An ingest shard's process dies for sampled windows.

    While dead the shard accepts nothing, drains nothing, and stamps no
    heartbeat; whatever it had queued is lost with the process.  The
    supervisor must detect the missing beats and fail the shard's
    keyspace over to a neighbour.
    """

    p_affected: float = 0.0
    kills_per_shard: float = 1.0
    mean_dead_s: float = 1_800.0

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0

    def windows_for(self, rng, t0_s, t1_s):
        return sample_windows(
            rng, t0_s, t1_s, self.p_affected, self.kills_per_shard, self.mean_dead_s
        )


@dataclass(frozen=True)
class ShardStallFault:
    """An ingest shard beats late (GC pauses, hot locks) for windows.

    The shard stays alive and keeps draining, but every heartbeat inside
    a stall window carries ``stall_s`` of delay.  Sustained stalls past
    the supervisor's tolerance trigger a failover *with* queue transfer
    — the process is reachable, so its backlog moves with the keyspace.
    """

    p_affected: float = 0.0
    stalls_per_shard: float = 1.0
    mean_stall_window_s: float = 1_800.0
    stall_s: float = 30.0

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0 and self.stall_s > 0.0

    def windows_for(self, rng, t0_s, t1_s):
        return sample_windows(
            rng,
            t0_s,
            t1_s,
            self.p_affected,
            self.stalls_per_shard,
            self.mean_stall_window_s,
        )


@dataclass(frozen=True)
class HotShardSkewFault:
    """One region runs hot: a shard's effective queue capacity shrinks.

    Models skewed load (an evacuation corridor funnelling a city into
    one geohash): during a skew window the shard's usable queue is
    ``max_queue // capacity_divisor``, so sustained pressure must shed
    oldest-first — never raise, never stop beating.
    """

    p_affected: float = 0.0
    skews_per_shard: float = 1.0
    mean_skew_s: float = 3_600.0
    capacity_divisor: int = 8

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0 and self.capacity_divisor > 1

    def windows_for(self, rng, t0_s, t1_s):
        return sample_windows(
            rng, t0_s, t1_s, self.p_affected, self.skews_per_shard, self.mean_skew_s
        )


@dataclass(frozen=True)
class ShardFaultProfile:
    """One parameterisation of the shard-level fault families."""

    name: str
    kill: ShardKillFault = ShardKillFault()
    stall: ShardStallFault = ShardStallFault()
    skew: HotShardSkewFault = HotShardSkewFault()

    @property
    def is_null(self) -> bool:
        return not (self.kill.enabled or self.stall.enabled or self.skew.enabled)


class ShardFaultInjector:
    """Deterministic per-shard oracle for kill / stall / skew faults.

    Keyed exactly like :class:`FaultInjector`: each shard's schedule for
    each family comes from a generator seeded ``(seed, family tag,
    shard id)``, sampled lazily and cached, so a shard's faults depend
    only on the seed — never on how many shards exist or in which order
    they are queried.
    """

    def __init__(
        self, profile: ShardFaultProfile, t0_s: float, t1_s: float, seed: int = 0
    ) -> None:
        if t1_s <= t0_s:
            raise ValueError("need t0 < t1")
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.profile = profile
        self.t0_s = float(t0_s)
        self.t1_s = float(t1_s)
        self.seed = int(seed)
        self._kill: dict[int, tuple[OutageWindow, ...]] = {}
        self._stall: dict[int, tuple[OutageWindow, ...]] = {}
        self._skew: dict[int, tuple[OutageWindow, ...]] = {}

    def _rng(self, tag: int, shard_id: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, tag, int(shard_id)])

    def _windows(
        self,
        model: FaultModel,
        tag: int,
        shard_id: int,
        cache: dict[int, tuple[OutageWindow, ...]],
    ) -> tuple[OutageWindow, ...]:
        if not model.enabled:
            return ()
        if shard_id not in cache:
            cache[shard_id] = model.windows_for(
                self._rng(tag, shard_id), self.t0_s, self.t1_s
            )
        return cache[shard_id]

    @property
    def is_null(self) -> bool:
        return self.profile.is_null

    def killed(self, shard_id: int, t_s: float) -> bool:
        windows = self._windows(
            self.profile.kill, STREAM_SHARD_KILL, shard_id, self._kill
        )
        return any(w.covers(t_s) for w in windows)

    def stall_s(self, shard_id: int, t_s: float) -> float:
        windows = self._windows(
            self.profile.stall, STREAM_SHARD_STALL, shard_id, self._stall
        )
        if any(w.covers(t_s) for w in windows):
            return self.profile.stall.stall_s
        return 0.0

    def capacity_divisor(self, shard_id: int, t_s: float) -> int:
        windows = self._windows(
            self.profile.skew, STREAM_SHARD_SKEW, shard_id, self._skew
        )
        if any(w.covers(t_s) for w in windows):
            return self.profile.skew.capacity_divisor
        return 1


class FaultInjector:
    """Deterministic fault oracle for one simulation window.

    Built from a :class:`~repro.faults.profiles.FaultProfile`, a seed and
    the window ``[t0, t1]``.  Per-entity schedules are sampled lazily and
    cached; closure schedules are sampled eagerly when the engine binds
    the segment universe via :meth:`bind_segments`.
    """

    def __init__(
        self, profile: "FaultProfile", t0_s: float, t1_s: float, seed: int = 0
    ) -> None:
        if t1_s <= t0_s:
            raise ValueError("need t0 < t1")
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.profile = profile
        self.t0_s = float(t0_s)
        self.t1_s = float(t1_s)
        self.seed = int(seed)
        self._gps: dict[int, tuple[OutageWindow, ...]] = {}
        self._comm: dict[int, tuple[OutageWindow, ...]] = {}
        self._breakdown: dict[int, tuple[OutageWindow, ...]] = {}
        #: segment -> closure windows; populated by :meth:`bind_segments`.
        self._closures: dict[int, tuple[OutageWindow, ...]] = {}
        self._segments_bound = False

    # -- plumbing -----------------------------------------------------------

    def _rng(self, tag: int, entity: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, tag, int(entity)])

    def _windows(
        self,
        model: FaultModel,
        tag: int,
        entity: int,
        cache: dict[int, tuple[OutageWindow, ...]],
    ) -> tuple[OutageWindow, ...]:
        if not model.enabled:
            return ()
        if entity not in cache:
            cache[entity] = model.windows_for(self._rng(tag, entity), self.t0_s, self.t1_s)
        return cache[entity]

    @staticmethod
    def _covering(windows: tuple[OutageWindow, ...], t_s: float) -> OutageWindow | None:
        for w in windows:
            if w.covers(t_s):
                return w
        return None

    @property
    def is_null(self) -> bool:
        """True when no fault family is active (the ``none`` profile)."""
        return self.profile.is_null

    # -- GPS ----------------------------------------------------------------

    def gps_stale(self, person_id: int, t_s: float) -> bool:
        """Is this person's GPS fix unavailable right now?"""
        windows = self._windows(self.profile.gps, STREAM_FAULT_GPS, person_id, self._gps)
        return self._covering(windows, t_s) is not None

    # -- communication ------------------------------------------------------

    def comm_blocked(self, team_id: int, t_s: float) -> bool:
        """Is this team's radio link down right now?"""
        windows = self._windows(self.profile.comm, STREAM_FAULT_COMM, team_id, self._comm)
        return self._covering(windows, t_s) is not None

    @property
    def comm_latency_s(self) -> float:
        """Extra network latency applied to every command's apply time."""
        return self.profile.comm.extra_latency_s

    # -- breakdowns ---------------------------------------------------------

    def breakdown_window(self, team_id: int, t_s: float) -> OutageWindow | None:
        """The breakdown window covering ``t``, if the team is broken down."""
        return self._covering(self.breakdown_windows(team_id), t_s)

    def breakdown_windows(self, team_id: int) -> tuple[OutageWindow, ...]:
        """This team's full breakdown schedule (sorted, disjoint windows).

        The same lazily-sampled cache :meth:`breakdown_window` reads, so an
        event-driven consumer that schedules from the whole list sees
        exactly the windows a per-tick poller would."""
        return self._windows(
            self.profile.breakdown, STREAM_FAULT_BREAKDOWN, team_id, self._breakdown
        )

    # -- road closures ------------------------------------------------------

    def bind_segments(self, segment_ids: list[int]) -> None:
        """Sample the closure schedule over the network's segments.

        Idempotent; called once by the engine.  Per-segment schedules are
        keyed by segment id, so they do not depend on the list's order.
        """
        if self._segments_bound or not self.profile.closure.enabled:
            self._segments_bound = True
            return
        model = self.profile.closure
        for seg in segment_ids:
            windows = model.windows_for(self._rng(STREAM_FAULT_CLOSURE, seg), self.t0_s, self.t1_s)
            if windows:
                self._closures[int(seg)] = windows
        self._segments_bound = True
        logger.info(
            "fault closures bound: %d/%d segments affected",
            len(self._closures),
            len(segment_ids),
        )

    def closure_windows(self) -> dict[int, tuple[OutageWindow, ...]]:
        """Segment -> closure windows, for event-driven closure tracking.

        Valid after :meth:`bind_segments`; the same eager cache
        :meth:`closed_segments` polls, exposed so a consumer can recompute
        the closed set only when ``t`` crosses a window boundary."""
        return self._closures

    def closed_segments(self, t_s: float) -> frozenset[int]:
        """Extra segments closed by injected faults at ``t`` (beyond flood)."""
        if not self._closures:
            return frozenset()
        return frozenset(
            seg
            for seg, windows in self._closures.items()
            if self._covering(windows, t_s) is not None
        )

    # -- dispatcher ---------------------------------------------------------

    def dispatcher_fails(self, cycle_index: int) -> bool:
        """Does the dispatch software fail on this cycle?"""
        model = self.profile.dispatcher
        if not model.enabled:
            return False
        return model.fails(self._rng(STREAM_FAULT_DISPATCHER, cycle_index))


# -- rollout worker faults ----------------------------------------------------


@dataclass(frozen=True)
class WorkerCrashFault:
    """A rollout worker process dies mid-episode (real process death).

    ``p_affected`` episodes crash the worker on their first
    ``max_crashes`` attempts and then succeed; ``p_poison`` episodes
    crash on *every* attempt — the executor must quarantine them after
    two kills instead of burning its retry budget.  The crash fires
    after a per-episode number of in-episode heartbeats (uniform in
    ``[0, crash_after_beats]``), so the death lands genuinely
    mid-episode, not at the dispatch boundary.
    """

    p_affected: float = 0.0
    max_crashes: int = 1
    p_poison: float = 0.0
    crash_after_beats: int = 3

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0 or self.p_poison > 0.0


@dataclass(frozen=True)
class WorkerStallFault:
    """A rollout worker stops heartbeating (GC pause, livelock, swap).

    Affected episodes make the worker sleep ``stall_s`` of real time
    before running, on their first ``max_stalls`` attempts.  A stall
    longer than the supervisor's heartbeat timeout is indistinguishable
    from death: the coordinator must kill the worker and requeue the
    episode.
    """

    p_affected: float = 0.0
    max_stalls: int = 1
    stall_s: float = 3.0

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0 and self.stall_s > 0.0


@dataclass(frozen=True)
class WorkerCorruptResultFault:
    """A worker returns a bit-flipped result payload.

    Affected episodes have their result envelope's payload mutated
    after the checksum is computed, on their first ``max_corruptions``
    attempts.  The coordinator must detect the digest mismatch, discard
    the result, and re-run the episode — never merge it.
    """

    p_affected: float = 0.0
    max_corruptions: int = 1

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0


@dataclass(frozen=True)
class WorkerFaultProfile:
    """One parameterisation of the rollout-worker fault families."""

    name: str
    crash: WorkerCrashFault = WorkerCrashFault()
    stall: WorkerStallFault = WorkerStallFault()
    corrupt: WorkerCorruptResultFault = WorkerCorruptResultFault()

    @property
    def is_null(self) -> bool:
        return not (
            self.crash.enabled or self.stall.enabled or self.corrupt.enabled
        )


@dataclass(frozen=True)
class WorkerFaultPlan:
    """What the injector orders a worker to do for one episode attempt.

    Precedence when several families hit the same attempt: a stall wins
    (the supervisor kills the worker before the episode runs), then a
    crash, then a corrupt result.  The plan is a pure function of
    ``(seed, episode id, attempt)`` — never of the worker that happens
    to run the attempt.
    """

    crash_after_beats: int | None = None
    stall_s: float = 0.0
    corrupt_result: bool = False
    poisoned: bool = False

    @property
    def is_null(self) -> bool:
        return (
            self.crash_after_beats is None
            and self.stall_s <= 0.0
            and not self.corrupt_result
        )


#: The do-nothing plan, shared so the hot worker loop allocates nothing.
NULL_WORKER_PLAN = WorkerFaultPlan()


class WorkerFaultInjector:
    """Deterministic per-episode oracle for rollout-worker faults.

    Keyed exactly like :class:`FaultInjector`: each episode's fate for
    each family comes from a generator seeded ``(seed, family tag,
    episode id)``, sampled lazily and cached — so an episode's faults
    depend only on the seed and its id, never on which worker runs it,
    in which order episodes are queried, or how many attempts other
    episodes needed.
    """

    def __init__(self, profile: WorkerFaultProfile, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.profile = profile
        self.seed = int(seed)
        #: episode id -> (n_crash_attempts, poisoned, crash_after_beats)
        self._crash: dict[int, tuple[int, bool, int]] = {}
        #: episode id -> n_stall_attempts
        self._stall: dict[int, int] = {}
        #: episode id -> n_corrupt_attempts
        self._corrupt: dict[int, int] = {}

    @property
    def is_null(self) -> bool:
        return self.profile.is_null

    def _rng(self, tag: int, episode_id: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, tag, int(episode_id)])

    def _crash_fate(self, episode_id: int) -> tuple[int, bool, int]:
        model = self.profile.crash
        if not model.enabled:
            return (0, False, 0)
        if episode_id not in self._crash:
            rng = self._rng(STREAM_WORKER_CRASH, episode_id)
            affected = bool(rng.random() < model.p_affected)
            poisoned = bool(rng.random() < model.p_poison)
            beats = int(rng.integers(0, model.crash_after_beats + 1))
            n = model.max_crashes if affected else 0
            self._crash[episode_id] = (n, poisoned, beats)
        return self._crash[episode_id]

    def _stall_fate(self, episode_id: int) -> int:
        model = self.profile.stall
        if not model.enabled:
            return 0
        if episode_id not in self._stall:
            rng = self._rng(STREAM_WORKER_STALL, episode_id)
            affected = bool(rng.random() < model.p_affected)
            self._stall[episode_id] = model.max_stalls if affected else 0
        return self._stall[episode_id]

    def _corrupt_fate(self, episode_id: int) -> int:
        model = self.profile.corrupt
        if not model.enabled:
            return 0
        if episode_id not in self._corrupt:
            rng = self._rng(STREAM_WORKER_CORRUPT, episode_id)
            affected = bool(rng.random() < model.p_affected)
            self._corrupt[episode_id] = model.max_corruptions if affected else 0
        return self._corrupt[episode_id]

    def poisoned(self, episode_id: int) -> bool:
        """Does this episode crash its worker on every attempt?"""
        return self._crash_fate(episode_id)[1]

    def plan(self, episode_id: int, attempt: int) -> WorkerFaultPlan:
        """The fault plan for one ``(episode, attempt)`` pair."""
        if self.profile.is_null:
            return NULL_WORKER_PLAN
        n_crash, poisoned, beats = self._crash_fate(episode_id)
        n_stall = self._stall_fate(episode_id)
        n_corrupt = self._corrupt_fate(episode_id)
        stall_s = 0.0
        crash_after: int | None = None
        # Stalls occupy the earliest attempts, crashes the next ones:
        # disjoint attempt ranges keep every planned fault observable and
        # the per-episode kill count an exact, predictable function of
        # the plan (stall-kills + crash-kills).
        if attempt < n_stall:
            stall_s = self.profile.stall.stall_s
        elif poisoned or attempt < n_stall + n_crash:
            crash_after = beats
        corrupt = not poisoned and (
            n_stall + n_crash <= attempt < n_stall + n_crash + n_corrupt
        )
        if stall_s <= 0.0 and crash_after is None and not corrupt:
            return NULL_WORKER_PLAN if not poisoned else WorkerFaultPlan()
        return WorkerFaultPlan(
            crash_after_beats=crash_after,
            stall_s=stall_s,
            corrupt_result=corrupt,
            poisoned=poisoned,
        )

    def faulted_attempts(self, episode_id: int) -> int:
        """Attempts this episode sacrifices to non-poison faults.

        The executor's retry budget must exceed this for the episode to
        complete; the chaos harness uses it to prove zero episodes are
        lost by construction, not luck.
        """
        n_crash, poisoned, _ = self._crash_fate(episode_id)
        if poisoned:
            return -1
        return self._stall_fate(episode_id) + n_crash + self._corrupt_fate(episode_id)


# -- training faults ----------------------------------------------------------


@dataclass(frozen=True)
class NaNGradientFault:
    """A numeric blow-up poisons the Q-network mid-episode.

    Affected episodes have one weight component of the online network
    overwritten with NaN at a sampled learn step, on their first
    ``max_attempts`` recovery attempts (``persistent`` episodes blow up
    on *every* attempt — the sentinel must eventually abort rather than
    retry forever).  NaN then propagates through every subsequent
    forward pass, exactly like a real fp overflow in the optimizer.
    """

    p_affected: float = 0.0
    max_attempts: int = 1
    persistent: bool = False
    #: Faults fire at a learn step uniform in ``[1, max_step]``.
    max_step: int = 40

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0


@dataclass(frozen=True)
class CorruptReplaySampleFault:
    """Replay-buffer rows are overwritten with NaN garbage (bad memory,
    a torn write in a future mmap'd buffer).  The sentinel's replay
    integrity screen must catch it before the episode commits."""

    p_affected: float = 0.0
    max_attempts: int = 1
    rows: int = 4
    max_step: int = 40

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0 and self.rows > 0


@dataclass(frozen=True)
class RewardSpikeFault:
    """Stored rewards are corrupted to an absurd magnitude (sensor glitch,
    unit mix-up) — the classic silent divergence seed: Q-targets explode
    a few steps later."""

    p_affected: float = 0.0
    max_attempts: int = 1
    rows: int = 2
    magnitude: float = 1.0e6
    max_step: int = 40

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0 and self.rows > 0


@dataclass(frozen=True)
class CheckpointBitrotFault:
    """A committed checkpoint rots on disk (cosmic ray, bad sector).

    Affected episodes have one byte of their committed ``state.npz``
    flipped after the commit.  Detection happens where it matters: the
    manifest verification in ``find_latest_valid_checkpoint`` must
    quarantine the rotten checkpoint during rollback, or the final
    integrity sweep must flag it — either way it never restores.
    """

    p_affected: float = 0.0

    @property
    def enabled(self) -> bool:
        return self.p_affected > 0.0


@dataclass(frozen=True)
class TrainingFaultProfile:
    """One parameterisation of the training fault families."""

    name: str
    nan_gradient: NaNGradientFault = NaNGradientFault()
    corrupt_replay: CorruptReplaySampleFault = CorruptReplaySampleFault()
    reward_spike: RewardSpikeFault = RewardSpikeFault()
    checkpoint_bitrot: CheckpointBitrotFault = CheckpointBitrotFault()

    @property
    def is_null(self) -> bool:
        return not (
            self.nan_gradient.enabled
            or self.corrupt_replay.enabled
            or self.reward_spike.enabled
            or self.checkpoint_bitrot.enabled
        )


@dataclass(frozen=True)
class TrainingFaultPlan:
    """What the injector does to one ``(episode, attempt)`` of training.

    Each field is the learn step at which that family fires (``None``
    when it does not).  The plan is a pure function of ``(seed, episode
    id, attempt)``: recovery attempts beyond a family's ``max_attempts``
    get a clean plan, which is exactly what lets a rollback-and-replay
    converge — unless the episode is ``persistent``, in which case the
    sentinel's ladder must end in an abort.
    """

    nan_at_step: int | None = None
    corrupt_replay_at_step: int | None = None
    corrupt_rows: int = 0
    reward_spike_at_step: int | None = None
    spike_rows: int = 0
    spike_magnitude: float = 0.0
    persistent: bool = False

    @property
    def is_null(self) -> bool:
        return (
            self.nan_at_step is None
            and self.corrupt_replay_at_step is None
            and self.reward_spike_at_step is None
        )


#: The do-nothing plan, shared so the learn-step tap allocates nothing.
NULL_TRAINING_PLAN = TrainingFaultPlan()


class TrainingFaultInjector:
    """Deterministic per-episode oracle for training faults.

    Keyed exactly like :class:`WorkerFaultInjector`: each episode's fate
    for each family comes from a generator seeded ``(seed, family tag,
    episode id)``, sampled lazily and cached — independent of query
    order and of how many recovery attempts the sentinel makes.
    """

    def __init__(self, profile: TrainingFaultProfile, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError("seed must be non-negative")
        self.profile = profile
        self.seed = int(seed)
        #: episode id -> (n_faulted_attempts, persistent, learn step)
        self._nan: dict[int, tuple[int, bool, int]] = {}
        #: episode id -> (n_faulted_attempts, learn step)
        self._replay: dict[int, tuple[int, int]] = {}
        self._spike: dict[int, tuple[int, int]] = {}
        #: episode id -> rots?
        self._bitrot: dict[int, bool] = {}

    @property
    def is_null(self) -> bool:
        return self.profile.is_null

    def _rng(self, tag: int, episode_id: int) -> np.random.Generator:
        return np.random.default_rng([self.seed, tag, int(episode_id)])

    def _nan_fate(self, episode_id: int) -> tuple[int, bool, int]:
        model = self.profile.nan_gradient
        if not model.enabled:
            return (0, False, 0)
        if episode_id not in self._nan:
            rng = self._rng(STREAM_TRAIN_NAN_GRAD, episode_id)
            affected = bool(rng.random() < model.p_affected)
            step = int(rng.integers(1, model.max_step + 1))
            n = model.max_attempts if affected else 0
            self._nan[episode_id] = (n, model.persistent and affected, step)
        return self._nan[episode_id]

    def _replay_fate(self, episode_id: int) -> tuple[int, int]:
        model = self.profile.corrupt_replay
        if not model.enabled:
            return (0, 0)
        if episode_id not in self._replay:
            rng = self._rng(STREAM_TRAIN_CORRUPT_REPLAY, episode_id)
            affected = bool(rng.random() < model.p_affected)
            step = int(rng.integers(1, model.max_step + 1))
            self._replay[episode_id] = (model.max_attempts if affected else 0, step)
        return self._replay[episode_id]

    def _spike_fate(self, episode_id: int) -> tuple[int, int]:
        model = self.profile.reward_spike
        if not model.enabled:
            return (0, 0)
        if episode_id not in self._spike:
            rng = self._rng(STREAM_TRAIN_REWARD_SPIKE, episode_id)
            affected = bool(rng.random() < model.p_affected)
            step = int(rng.integers(1, model.max_step + 1))
            self._spike[episode_id] = (model.max_attempts if affected else 0, step)
        return self._spike[episode_id]

    def persistent(self, episode_id: int) -> bool:
        """Does this episode blow up on every recovery attempt?"""
        return self._nan_fate(episode_id)[1]

    def plan(self, episode_id: int, attempt: int) -> TrainingFaultPlan:
        """The training fault plan for one ``(episode, attempt)`` pair."""
        if self.profile.is_null:
            return NULL_TRAINING_PLAN
        n_nan, persistent, nan_step = self._nan_fate(episode_id)
        n_replay, replay_step = self._replay_fate(episode_id)
        n_spike, spike_step = self._spike_fate(episode_id)
        nan_at = nan_step if (persistent or attempt < n_nan) else None
        replay_at = replay_step if attempt < n_replay else None
        spike_at = spike_step if attempt < n_spike else None
        if nan_at is None and replay_at is None and spike_at is None:
            return NULL_TRAINING_PLAN
        return TrainingFaultPlan(
            nan_at_step=nan_at,
            corrupt_replay_at_step=replay_at,
            corrupt_rows=self.profile.corrupt_replay.rows,
            reward_spike_at_step=spike_at,
            spike_rows=self.profile.reward_spike.rows,
            spike_magnitude=self.profile.reward_spike.magnitude,
            persistent=persistent,
        )

    def bitrot(self, episode_id: int) -> bool:
        """Does the checkpoint committed for this episode rot on disk?"""
        model = self.profile.checkpoint_bitrot
        if not model.enabled:
            return False
        if episode_id not in self._bitrot:
            rng = self._rng(STREAM_TRAIN_CKPT_BITROT, episode_id)
            self._bitrot[episode_id] = bool(rng.random() < model.p_affected)
        return self._bitrot[episode_id]

    def faulted_attempts(self, episode_id: int) -> int:
        """Recovery attempts this episode sacrifices to transient faults
        (-1 when persistent: no retry budget ever suffices)."""
        n_nan, persistent, _ = self._nan_fate(episode_id)
        if persistent:
            return -1
        return max(n_nan, self._replay_fate(episode_id)[0], self._spike_fate(episode_id)[0])

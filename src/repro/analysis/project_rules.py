"""Whole-program rules: architecture, RNG streams, fork safety.

These rules see the :class:`~repro.analysis.project.ProjectContext` —
the full tree parsed once — instead of one file at a time:

=======  =========================  ==========================================
Rule     Pragma                     Invariant
=======  =========================  ==========================================
REP501   allow-layering             module-scope imports follow the layer DAG
REP502   allow-layering             no module-level import cycles
REP503   allow-layering             every package is declared in the layer spec
REP504   allow-layering             forbidden layers stay transitively apart
REP601   allow-stream-tag           one subsystem per RNG stream tag
REP602   allow-stream-tag           every literal tag is in the registry
REP603   allow-stream-tag           tags must be statically resolvable
REP701   allow-fork-unsafe          no post-import writes to module globals
                                    in the fork closure
REP702   allow-fork-unsafe          no lambdas across the process boundary
REP703   allow-fork-unsafe          sync primitives only in sanctioned modules
=======  =========================  ==========================================

Layering judges **static module-scope** imports only: a lazy
function-scope import is a deliberate cycle-breaker and stays legal
(the fork-safety walk still follows it, because a forked worker will
execute it).  Every rule suppresses with a per-line pragma, audited by
the same REP001/REP002 machinery as the per-file rules.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.project import ImportEdge, ProjectContext, SpawnSite
from repro.analysis.rules import dotted_name

LAYER_PRAGMA = "allow-layering"
STREAM_PRAGMA = "allow-stream-tag"
FORK_PRAGMA = "allow-fork-unsafe"


@dataclass(frozen=True)
class ProjectRule:
    """One whole-program invariant checker."""

    rule_id: str
    name: str
    pragma: str
    description: str

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=path,
            line=line,
            col=col,
            rule=self.rule_id,
            message=message,
            pragma=self.pragma,
        )


# -- REP5xx: architecture ------------------------------------------------------


@dataclass(frozen=True)
class LayerEdgeRule(ProjectRule):
    """REP501: a module-scope import crosses layers the spec forbids."""

    rule_id: str = "REP501"
    name: str = "architecture/layer-violation"
    pragma: str = LAYER_PRAGMA
    description: str = (
        "a module-scope import targets a package the layer spec in "
        "[tool.reprolint.layers] does not allow for the importing package"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        layers = project.config.layers
        shared = set(project.config.shared_modules)
        for edge in sorted(
            project.edges(include_lazy=False),
            key=lambda e: (e.src, e.line),
        ):
            src_pkg = project.package_of(edge.src)
            dst_pkg = project.package_of(edge.target)
            if src_pkg is None or dst_pkg is None or src_pkg == dst_pkg:
                continue
            if edge.target in shared:
                continue
            if src_pkg not in layers or dst_pkg not in layers:
                continue  # REP503's problem, not a spurious edge finding
            if dst_pkg in layers[src_pkg]:
                continue
            ctx = project.by_module[edge.src]
            yield self.finding(
                ctx.path,
                edge.line,
                1,
                f"layer violation: `{src_pkg}` may not import `{dst_pkg}` "
                f"({edge.src} -> {edge.target}); allowed from `{src_pkg}`: "
                f"{', '.join(layers[src_pkg]) or '(nothing)'}",
            )


@dataclass(frozen=True)
class ImportCycleRule(ProjectRule):
    """REP502: the module-scope import graph must stay acyclic.

    Runs over the static graph **including ancestor-package edges**
    (importing ``a.b.c`` executes ``a/__init__`` and ``a/b/__init__``
    first), which is precisely how real circular-import crashes happen
    even when no explicit pair of modules imports each other.
    """

    rule_id: str = "REP502"
    name: str = "architecture/import-cycle"
    pragma: str = LAYER_PRAGMA
    description: str = (
        "module-level import cycle; break it with a lazy function-scope "
        "import or by moving the shared piece below both modules"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.static_graph(ancestors=True)
        adjacency = {
            src: sorted({e.target for e in edges})
            for src, edges in graph.items()
        }
        for component in _tarjan_sccs(adjacency):
            cycle = sorted(component)
            anchor = cycle[0]
            edge = next(
                (
                    e
                    for e in sorted(graph[anchor], key=lambda e: e.line)
                    if e.target in component
                ),
                None,
            )
            ctx = project.by_module[anchor]
            chain = _cycle_chain(anchor, component, adjacency)
            yield self.finding(
                ctx.path,
                edge.line if edge else 1,
                1,
                f"import cycle: {' -> '.join(chain)}",
            )


def _tarjan_sccs(adjacency: dict[str, list[str]]) -> list[set[str]]:
    """Strongly connected components with >1 node (or a self-loop),
    iteratively, in deterministic node order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = 0
    components: list[set[str]] = []

    for root in sorted(adjacency):
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = adjacency.get(node, [])
            for i in range(child_index, len(children)):
                child = children[i]
                if child not in index:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) > 1 or node in adjacency.get(node, []):
                    components.append(component)
    return components


def _cycle_chain(
    start: str, component: set[str], adjacency: dict[str, list[str]]
) -> list[str]:
    """A concrete closed walk through the component, for the message."""
    chain = [start]
    seen = {start}
    node = start
    while True:
        successors = [
            t for t in adjacency.get(node, []) if t in component
        ]
        nxt = next((t for t in successors if t not in seen), None)
        if nxt is None:
            closing = next((t for t in successors if t == start), start)
            chain.append(closing)
            return chain
        chain.append(nxt)
        seen.add(nxt)
        node = nxt


@dataclass(frozen=True)
class UndeclaredPackageRule(ProjectRule):
    """REP503: every top-level package must appear in the layer spec."""

    rule_id: str = "REP503"
    name: str = "architecture/undeclared-package"
    pragma: str = LAYER_PRAGMA
    description: str = (
        "a package under the root has no entry in [tool.reprolint.layers]; "
        "an undeclared package is invisible to the layer check"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        if not project.config.layers:
            return
        seen: set[str] = set()
        for ctx in project.files:
            package = project.package_of(ctx.module)
            if package is None or package in project.config.layers:
                continue
            if package in seen:
                continue
            seen.add(package)
            yield self.finding(
                ctx.path,
                1,
                1,
                f"package `{package}` (module {ctx.module}) is not declared "
                "in [tool.reprolint.layers]",
            )


@dataclass(frozen=True)
class ForbiddenReachRule(ProjectRule):
    """REP504: forbidden package pairs stay *transitively* unreachable.

    Direct edges are REP501's job; this rule walks the static graph and
    reports the full offending chain, so `sim` can never smuggle a
    dependency on `service` through three intermediaries.
    """

    rule_id: str = "REP504"
    name: str = "architecture/forbidden-reach"
    pragma: str = LAYER_PRAGMA
    description: str = (
        "a package listed in forbidden-reach can transitively reach its "
        "forbidden target through module-scope imports"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        graph = project.static_graph()
        shared = set(project.config.shared_modules)
        for src_pkg, dst_pkg in project.config.forbidden_reach:
            found = self._shortest_reach(project, graph, shared, src_pkg, dst_pkg)
            if found is None:
                continue
            chain, first_edge = found
            if len(chain) <= 2:
                continue  # a direct edge is REP501's finding
            ctx = project.by_module[chain[0]]
            yield self.finding(
                ctx.path,
                first_edge.line,
                1,
                f"forbidden reach: `{src_pkg}` -> `{dst_pkg}` via "
                f"{' -> '.join(chain)}",
            )

    def _shortest_reach(
        self,
        project: ProjectContext,
        graph: dict[str, list[ImportEdge]],
        shared: set[str],
        src_pkg: str,
        dst_pkg: str,
    ) -> tuple[list[str], ImportEdge] | None:
        sources = sorted(
            m for m in project.by_module if project.package_of(m) == src_pkg
        )
        parent: dict[str, str] = {}
        queue = list(sources)
        seen = set(sources)
        target: str | None = None
        while queue and target is None:
            module = queue.pop(0)
            if (
                project.package_of(module) == dst_pkg
                and module not in shared
            ):
                target = module
                break
            for edge in sorted(graph.get(module, []), key=lambda e: e.target):
                if edge.target in seen or edge.target in shared:
                    continue
                seen.add(edge.target)
                parent[edge.target] = module
                queue.append(edge.target)
        if target is None:
            return None
        chain = [target]
        while chain[-1] in parent:
            chain.append(parent[chain[-1]])
        chain.reverse()
        first_edge = next(
            e for e in graph[chain[0]] if e.target == chain[1]
        )
        return chain, first_edge


# -- REP6xx: RNG stream keys ---------------------------------------------------


@dataclass(frozen=True)
class DuplicateStreamTagRule(ProjectRule):
    """REP601: a stream tag value may belong to exactly one subsystem."""

    rule_id: str = "REP601"
    name: str = "streams/duplicate-tag"
    pragma: str = STREAM_PRAGMA
    description: str = (
        "the same RNG stream tag is spawned by more than one subsystem "
        "(or registered twice): overlapping keys draw correlated "
        "randomness and silently break parallel == serial bit-identity"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        streams_module = project.config.streams_module
        for first, duplicate, value in project.registry_duplicates():
            ctx = project.by_module[streams_module]
            yield self.finding(
                ctx.path,
                project.constant_line(streams_module, duplicate),
                1,
                f"registry collision: `{duplicate}` reuses tag {value} "
                f"already registered as `{first}`",
            )
        by_value: dict[int, dict[str, list[SpawnSite]]] = {}
        for site in project.spawn_sites:
            if site.tags is None:
                continue
            subsystem = project.package_of(site.module) or site.module
            for value in site.tags:
                by_value.setdefault(value, {}).setdefault(
                    subsystem, []
                ).append(site)
        for value in sorted(by_value):
            owners = by_value[value]
            if len(owners) < 2:
                continue
            names = sorted(owners)
            for subsystem in names:
                others = ", ".join(n for n in names if n != subsystem)
                for site in owners[subsystem]:
                    yield self.finding(
                        site.path,
                        site.line,
                        site.col,
                        f"stream tag {value} is spawned by `{subsystem}` "
                        f"and also by: {others}",
                    )


@dataclass(frozen=True)
class UnregisteredStreamTagRule(ProjectRule):
    """REP602: every resolved tag must exist in the central registry."""

    rule_id: str = "REP602"
    name: str = "streams/unregistered-tag"
    pragma: str = STREAM_PRAGMA
    description: str = (
        "a default_rng list key uses a tag missing from the stream "
        "registry (streams-module); register it first so collisions "
        "stay impossible by construction"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        registry = project.registry_values()
        if registry is None:
            return  # registry outside the linted tree; nothing to judge
        for site in project.spawn_sites:
            if site.tags is None:
                continue
            missing = [v for v in site.tags if v not in registry]
            if missing:
                yield self.finding(
                    site.path,
                    site.line,
                    site.col,
                    f"unregistered stream tag(s) {missing} in "
                    f"default_rng key (tag expression `{site.tag_text}`); "
                    f"register in {project.config.streams_module}",
                )


@dataclass(frozen=True)
class UnresolvedStreamTagRule(ProjectRule):
    """REP603: a tag the analyzer cannot resolve defeats the audit."""

    rule_id: str = "REP603"
    name: str = "streams/unresolved-tag"
    pragma: str = STREAM_PRAGMA
    description: str = (
        "a default_rng list key's tag position is not statically "
        "resolvable to registry constants; an unauditable tag can "
        "collide with any other stream"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for site in project.spawn_sites:
            if site.tags is None:
                yield self.finding(
                    site.path,
                    site.line,
                    site.col,
                    f"stream tag `{site.tag_text}` is not statically "
                    "resolvable; use a registered constant from "
                    f"{project.config.streams_module or 'the stream registry'}",
                )


# -- REP7xx: fork safety -------------------------------------------------------

#: Methods that mutate a dict/list/set in place.
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "clear",
        "pop",
        "popitem",
        "remove",
        "discard",
    }
)

#: Constructors of mutable containers at module scope.
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)

#: Cross-process/thread coordination primitives (REP703).
_SYNC_PRIMITIVES = frozenset(
    {
        "Queue",
        "SimpleQueue",
        "JoinableQueue",
        "LifoQueue",
        "PriorityQueue",
        "Lock",
        "RLock",
        "Semaphore",
        "BoundedSemaphore",
        "Condition",
        "Event",
        "Barrier",
        "Process",
        "Pool",
        "Manager",
    }
)

_SYNC_MODULES = ("multiprocessing", "threading", "queue")


def _module_level_bindings(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(all module-level names, names bound to mutable containers)."""
    names: set[str] = set()
    mutable: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            names.add(target.id)
            if _is_mutable_container(value):
                mutable.add(target.id)
    return names, mutable


def _is_mutable_container(value: ast.expr | None) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in _MUTABLE_FACTORIES
    return False


def _function_locals(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally in a function (params + plain assignments),
    excluding names it declares ``global``."""
    bound = {a.arg for a in func.args.posonlyargs + func.args.args + func.args.kwonlyargs}
    if func.args.vararg:
        bound.add(func.args.vararg.arg)
    if func.args.kwarg:
        bound.add(func.args.kwarg.arg)
    global_names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            global_names.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
    return bound - global_names


@dataclass(frozen=True)
class ForkMutableGlobalRule(ProjectRule):
    """REP701: module globals written after import, in the fork closure.

    A forked worker inherits a *copy* of module state at fork time;
    anything the parent (or another code path) writes afterwards
    silently diverges between processes — the exact bug class the
    rollout layer's bit-identity gate exists to exclude.
    """

    rule_id: str = "REP701"
    name: str = "fork-safety/mutable-global"
    pragma: str = FORK_PRAGMA
    description: str = (
        "a module-level global in the fork closure is rebound (`global`) "
        "or mutated in place after import; per-process divergence breaks "
        "parallel == serial"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        closure, parents = project.fork_closure()
        for module in sorted(closure):
            ctx = project.by_module[module]
            module_names, mutable = _module_level_bindings(ctx.tree)
            chain = " -> ".join(project.import_chain(module, parents))
            for func in self._top_functions(ctx.tree):
                local = _function_locals(func)
                for node in ast.walk(func):
                    finding = self._judge(
                        node, module_names, mutable, local, ctx.path, chain
                    )
                    if finding is not None:
                        yield finding

    def _top_functions(
        self, tree: ast.Module
    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _judge(
        self,
        node: ast.AST,
        module_names: set[str],
        mutable: set[str],
        local: set[str],
        path: str,
        chain: str,
    ) -> Finding | None:
        if isinstance(node, ast.Global):
            hits = [n for n in node.names if n in module_names]
            if hits:
                return self.finding(
                    path,
                    node.lineno,
                    node.col_offset + 1,
                    f"`global {', '.join(hits)}` rebinds module state in "
                    f"the fork closure (reached via {chain})",
                )
            return None
        target: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, (ast.AugAssign, ast.Delete)):
            target = (
                node.target
                if isinstance(node, ast.AugAssign)
                else (node.targets[0] if node.targets else None)
            )
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in mutable
            and target.value.id not in local
        ):
            return self.finding(
                path,
                node.lineno,
                node.col_offset + 1,
                f"in-place write to module-level `{target.value.id}` in "
                f"the fork closure (reached via {chain})",
            )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in mutable
            and node.func.value.id not in local
        ):
            return self.finding(
                path,
                node.lineno,
                node.col_offset + 1,
                f"`{node.func.value.id}.{node.func.attr}(...)` mutates a "
                f"module-level container in the fork closure (reached via "
                f"{chain})",
            )
        return None


@dataclass(frozen=True)
class ForkClosureCaptureRule(ProjectRule):
    """REP702: lambdas/closures must not cross the process boundary."""

    rule_id: str = "REP702"
    name: str = "fork-safety/closure-over-boundary"
    pragma: str = FORK_PRAGMA
    description: str = (
        "a lambda is passed through a task queue or as a Process target; "
        "closures capture parent state and may not even pickle — send "
        "plain data and resolve behaviour on the worker side"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        closure, _ = project.fork_closure()
        for module in sorted(closure):
            scanner = project.scanner(module)
            ctx = project.by_module[module]
            for call, _scope in scanner.calls:
                yield from self._judge_call(call, ctx.path)

    def _judge_call(self, call: ast.Call, path: str) -> Iterator[Finding]:
        func = call.func
        is_put = isinstance(func, ast.Attribute) and func.attr in (
            "put",
            "put_nowait",
        )
        is_process = (
            isinstance(func, ast.Attribute) and func.attr == "Process"
        ) or (isinstance(func, ast.Name) and func.id == "Process")
        if not (is_put or is_process):
            return
        boundary = "task queue" if is_put else "Process"
        exprs: list[ast.expr] = list(call.args)
        exprs.extend(k.value for k in call.keywords)
        for expr in exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Lambda):
                    yield self.finding(
                        path,
                        node.lineno,
                        node.col_offset + 1,
                        f"lambda crosses the process boundary via {boundary}",
                    )


@dataclass(frozen=True)
class ForkSyncPrimitiveRule(ProjectRule):
    """REP703: queues/locks only where the supervisor pattern lives."""

    rule_id: str = "REP703"
    name: str = "fork-safety/unsanctioned-primitive"
    pragma: str = FORK_PRAGMA
    description: str = (
        "a multiprocessing/threading primitive is constructed in a fork-"
        "closure module outside fork-sanctioned; ad-hoc queues and locks "
        "bypass the supervised worker lifecycle"
    )

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        closure, _ = project.fork_closure()
        sanctioned = set(project.config.fork_sanctioned)
        for module in sorted(closure - sanctioned):
            scanner = project.scanner(module)
            ctx = project.by_module[module]
            contexts = self._mp_context_names(ctx.tree, scanner.aliases)
            for call, _scope in scanner.calls:
                dotted = (
                    ast.unparse(call.func)
                    if isinstance(call.func, (ast.Name, ast.Attribute))
                    else ""
                )
                name = self._primitive_name(call, scanner.aliases, contexts)
                if name is None:
                    continue
                yield self.finding(
                    ctx.path,
                    call.lineno,
                    call.col_offset + 1,
                    f"`{dotted or name}` constructs a sync primitive in "
                    f"fork-closure module {module}; only fork-sanctioned "
                    "modules may own worker plumbing",
                )

    def _mp_context_names(
        self, tree: ast.Module, aliases: dict[str, str]
    ) -> set[str]:
        """Local names bound from ``multiprocessing.get_context(...)``."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            dotted = dotted_name(node.value.func, aliases)
            if dotted in ("multiprocessing.get_context",):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _primitive_name(
        self,
        call: ast.Call,
        aliases: dict[str, str],
        contexts: set[str],
    ) -> str | None:
        func = call.func
        dotted = dotted_name(func, aliases)
        if dotted is not None:
            parts = dotted.split(".")
            if parts[0] in _SYNC_MODULES and parts[-1] in _SYNC_PRIMITIVES:
                return parts[-1]
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SYNC_PRIMITIVES
            and isinstance(func.value, ast.Name)
            and func.value.id in contexts
        ):
            return func.attr
        return None


DEFAULT_PROJECT_RULES: tuple[ProjectRule, ...] = (
    LayerEdgeRule(),
    ImportCycleRule(),
    UndeclaredPackageRule(),
    ForbiddenReachRule(),
    DuplicateStreamTagRule(),
    UnregisteredStreamTagRule(),
    UnresolvedStreamTagRule(),
    ForkMutableGlobalRule(),
    ForkClosureCaptureRule(),
    ForkSyncPrimitiveRule(),
)

PROJECT_RULE_INDEX: dict[str, ProjectRule] = {
    r.rule_id: r for r in DEFAULT_PROJECT_RULES
}

__all__ = [
    "DEFAULT_PROJECT_RULES",
    "PROJECT_RULE_INDEX",
    "ProjectRule",
    "FORK_PRAGMA",
    "LAYER_PRAGMA",
    "STREAM_PRAGMA",
]

"""reprolint: AST-based enforcement of the reproduction's invariants.

The dispatch loop's bit-reproducibility, the artifact layer's crash
atomicity and the fault pipeline's exception discipline are conventions
no off-the-shelf linter knows about.  This package turns them into a
static gate: :mod:`repro.analysis.rules` holds the rule catalogue,
:mod:`repro.analysis.engine` runs it over source trees with per-line
pragma escape hatches (:mod:`repro.analysis.pragmas`), and
:mod:`repro.analysis.cli` is the ``repro lint`` front end.

Programmatic use::

    from repro.analysis import lint_paths

    report = lint_paths(["src/repro"])
    assert report.clean, [f.format_text() for f in report.findings]
"""

from repro.analysis.engine import (
    LintReport,
    default_target,
    lint_paths,
    lint_source,
    module_name_for,
)
from repro.analysis.findings import Finding, count_by_rule
from repro.analysis.pragmas import KNOWN_PRAGMAS, PragmaTable, parse_pragmas
from repro.analysis.rules import (
    DEFAULT_RULES,
    RULE_CATALOGUE,
    RULE_INDEX,
    Rule,
    RuleDoc,
)

__all__ = [
    "DEFAULT_RULES",
    "Finding",
    "KNOWN_PRAGMAS",
    "LintReport",
    "PragmaTable",
    "RULE_CATALOGUE",
    "RULE_INDEX",
    "Rule",
    "RuleDoc",
    "count_by_rule",
    "default_target",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "parse_pragmas",
]

"""reprolint: AST-based enforcement of the reproduction's invariants.

The dispatch loop's bit-reproducibility, the artifact layer's crash
atomicity and the fault pipeline's exception discipline are conventions
no off-the-shelf linter knows about.  This package turns them into a
static gate: :mod:`repro.analysis.rules` holds the per-file rule
catalogue, :mod:`repro.analysis.project` builds the whole-program view
(import graph, stream-tag index, fork closure) that the
:mod:`repro.analysis.project_rules` REP5xx-7xx rules judge,
:mod:`repro.analysis.engine` runs both passes over source trees with
per-line pragma escape hatches (:mod:`repro.analysis.pragmas`),
:mod:`repro.analysis.sarif` serializes reports for code scanning, and
:mod:`repro.analysis.cli` is the ``repro lint`` front end.

Programmatic use::

    from repro.analysis import lint_paths

    report = lint_paths(["src/repro"])
    assert report.clean, [f.format_text() for f in report.findings]
"""

from repro.analysis.engine import (
    LintReport,
    default_target,
    lint_paths,
    lint_source,
    module_name_for,
)
from repro.analysis.findings import Finding, count_by_rule
from repro.analysis.pragmas import (
    KNOWN_PRAGMAS,
    PROJECT_PRAGMAS,
    PragmaTable,
    parse_pragmas,
)
from repro.analysis.project import (
    ProjectConfig,
    ProjectConfigError,
    ProjectContext,
    find_project_config,
    load_project_config,
)
from repro.analysis.project_rules import (
    DEFAULT_PROJECT_RULES,
    PROJECT_RULE_INDEX,
    ProjectRule,
)
from repro.analysis.rules import (
    DEFAULT_RULES,
    RULE_CATALOGUE,
    RULE_INDEX,
    Rule,
    RuleDoc,
)
from repro.analysis.sarif import report_as_sarif, report_as_sarif_json

__all__ = [
    "DEFAULT_PROJECT_RULES",
    "DEFAULT_RULES",
    "Finding",
    "KNOWN_PRAGMAS",
    "LintReport",
    "PROJECT_PRAGMAS",
    "PROJECT_RULE_INDEX",
    "PragmaTable",
    "ProjectConfig",
    "ProjectConfigError",
    "ProjectContext",
    "ProjectRule",
    "RULE_CATALOGUE",
    "RULE_INDEX",
    "Rule",
    "RuleDoc",
    "find_project_config",
    "load_project_config",
    "report_as_sarif",
    "report_as_sarif_json",
    "count_by_rule",
    "default_target",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "parse_pragmas",
]

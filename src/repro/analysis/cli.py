"""``repro lint`` — the reprolint command-line front end.

Exit codes follow the convention CI expects: ``0`` clean, ``1`` findings,
``2`` usage or I/O errors.  ``--format json`` emits a stable document
(version, per-rule counts, findings) so dashboards can diff finding
counts across PRs; ``--format sarif`` emits SARIF 2.1.0 for GitHub code
scanning.  ``--select`` narrows to specific rule ids; ``--project``
adds the whole-program pass (REP5xx architecture, REP6xx RNG streams,
REP7xx fork safety) configured from the nearest ``[tool.reprolint]``
table; ``--jobs`` fans the per-file pass over a process pool with
byte-identical output.  Fixture trees that are *supposed* to violate
rules are linted with the same engine the gate uses, so the self-tests
and the gate can never drift apart.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Sequence

from repro.analysis.engine import LintReport, default_target, lint_paths
from repro.analysis.findings import count_by_rule
from repro.analysis.project import (
    ProjectConfig,
    ProjectConfigError,
    find_project_config,
    load_project_config,
)
from repro.analysis.project_rules import (
    DEFAULT_PROJECT_RULES,
    PROJECT_RULE_INDEX,
    ProjectRule,
)
from repro.analysis.rules import DEFAULT_RULES, RULE_CATALOGUE, RULE_INDEX, Rule

#: Bumped when the JSON document shape changes.
JSON_FORMAT_VERSION = 1


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="finding output format (json/sarif are machine-readable and stable)",
    )
    parser.add_argument(
        "--select",
        type=str,
        default="",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--no-strict-pragmas",
        action="store_true",
        help="do not flag pragmas that suppress nothing (REP001)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "also run the whole-program pass (REP5xx/6xx/7xx) using the "
            "nearest pyproject.toml [tool.reprolint] configuration"
        ),
    )
    parser.add_argument(
        "--config",
        type=str,
        default="",
        help="explicit pyproject.toml for --project (default: walk up from paths)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="process-pool width for the per-file pass (0 = one per CPU)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="report wall time and pass composition on stderr",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def _select_rules(
    select: str,
) -> tuple[Sequence[Rule], Sequence[ProjectRule], list[str]]:
    """Resolve ``--select`` into rule instances; returns
    (file rules, project rules, unknown ids)."""
    if not select:
        return DEFAULT_RULES, DEFAULT_PROJECT_RULES, []
    wanted = [s.strip().upper() for s in select.split(",") if s.strip()]
    unknown = [
        s for s in wanted if s not in RULE_INDEX and s not in PROJECT_RULE_INDEX
    ]
    # De-duplicate while preserving catalogue order (REP102/REP103 share a
    # checker instance).
    chosen: list[Rule] = []
    for rule in DEFAULT_RULES:
        if rule in (RULE_INDEX[s] for s in wanted if s in RULE_INDEX):
            chosen.append(rule)
    chosen_project = [
        rule
        for rule in DEFAULT_PROJECT_RULES
        if rule.rule_id in wanted
    ]
    return chosen, chosen_project, unknown


def _print_catalogue() -> None:
    for doc in RULE_CATALOGUE:
        pragma = f"# repro: {doc.pragma}" if doc.pragma else "(no pragma)"
        print(f"{doc.rule_id}  {doc.name}  [{pragma}]")
        print(f"    {doc.description}")
        if doc.scope:
            print(f"    scope: {', '.join(doc.scope)}")
        if doc.exempt:
            print(f"    exempt: {', '.join(doc.exempt)}")
    for rule in DEFAULT_PROJECT_RULES:
        print(f"{rule.rule_id}  {rule.name}  [# repro: {rule.pragma}]")
        print(f"    {rule.description}")
        print("    scope: whole-program (--project)")


def report_as_json(report: LintReport) -> str:
    document = {
        "version": JSON_FORMAT_VERSION,
        "files_checked": report.files_checked,
        "counts": count_by_rule(report.findings),
        "total": len(report.findings),
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _resolve_project_config(
    args: argparse.Namespace, paths: Sequence[str]
) -> ProjectConfig | None:
    """The ``--project`` configuration, or ``None`` => exit 2 upstream."""
    if args.config:
        return load_project_config(args.config)
    located = find_project_config(list(paths))
    if located is None:
        raise ProjectConfigError(
            "no pyproject.toml with a [tool.reprolint] table found above "
            f"{', '.join(str(p) for p in paths)}; pass --config"
        )
    return load_project_config(located)


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_catalogue()
        return 0
    rules, project_rules, unknown = _select_rules(args.select)
    if unknown:
        print(f"unknown rule ids: {', '.join(unknown)}", file=sys.stderr)
        return 2
    paths = [str(p) for p in (args.paths or [default_target()])]
    jobs = args.jobs
    if jobs <= 0:
        import os

        jobs = os.cpu_count() or 1
    project_config: ProjectConfig | None = None
    if args.project:
        try:
            project_config = _resolve_project_config(args, paths)
        except (ProjectConfigError, OSError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
    started = time.perf_counter()
    try:
        report = lint_paths(
            paths,
            rules=rules,
            strict_pragmas=not args.no_strict_pragmas,
            jobs=jobs,
            project_rules=project_rules if args.project else (),
            project_config=project_config,
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    if args.verbose:
        passes = "file+project" if report.project_pass else "file"
        print(
            f"reprolint: {report.files_checked} file(s), {passes} pass, "
            f"jobs={jobs}, {elapsed:.2f}s wall",
            file=sys.stderr,
        )
    if args.format == "json":
        print(report_as_json(report))
    elif args.format == "sarif":
        from repro.analysis.sarif import report_as_sarif_json

        print(report_as_sarif_json(report))
    else:
        for finding in report.findings:
            print(finding.format_text())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_checked} file(s)"
            if report.findings
            else f"clean: {report.files_checked} file(s) checked"
        )
        print(summary, file=sys.stderr)
    return 1 if report.findings else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint", description="repo-invariant static analysis"
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())

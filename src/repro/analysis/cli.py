"""``repro lint`` — the reprolint command-line front end.

Exit codes follow the convention CI expects: ``0`` clean, ``1`` findings,
``2`` usage or I/O errors.  ``--format json`` emits a stable document
(version, per-rule counts, findings) so dashboards can diff finding
counts across PRs; ``--select`` narrows to specific rule ids; fixture
trees that are *supposed* to violate rules are linted with the same
engine the gate uses, so the self-tests and the gate can never drift
apart.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.analysis.engine import LintReport, default_target, lint_paths
from repro.analysis.findings import count_by_rule
from repro.analysis.rules import DEFAULT_RULES, RULE_CATALOGUE, RULE_INDEX, Rule

#: Bumped when the JSON document shape changes.
JSON_FORMAT_VERSION = 1


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output format (json is machine-readable and stable)",
    )
    parser.add_argument(
        "--select",
        type=str,
        default="",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--no-strict-pragmas",
        action="store_true",
        help="do not flag pragmas that suppress nothing (REP001)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def _select_rules(select: str) -> tuple[Sequence[Rule], list[str]]:
    """Resolve ``--select`` into rule instances; returns (rules, unknown)."""
    if not select:
        return DEFAULT_RULES, []
    wanted = [s.strip().upper() for s in select.split(",") if s.strip()]
    unknown = [s for s in wanted if s not in RULE_INDEX]
    # De-duplicate while preserving catalogue order (REP102/REP103 share a
    # checker instance).
    chosen: list[Rule] = []
    for rule in DEFAULT_RULES:
        if rule in (RULE_INDEX[s] for s in wanted if s in RULE_INDEX):
            chosen.append(rule)
    return chosen, unknown


def _print_catalogue() -> None:
    for doc in RULE_CATALOGUE:
        pragma = f"# repro: {doc.pragma}" if doc.pragma else "(no pragma)"
        print(f"{doc.rule_id}  {doc.name}  [{pragma}]")
        print(f"    {doc.description}")
        if doc.scope:
            print(f"    scope: {', '.join(doc.scope)}")
        if doc.exempt:
            print(f"    exempt: {', '.join(doc.exempt)}")


def report_as_json(report: LintReport) -> str:
    document = {
        "version": JSON_FORMAT_VERSION,
        "files_checked": report.files_checked,
        "counts": count_by_rule(report.findings),
        "total": len(report.findings),
        "findings": [f.to_dict() for f in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_catalogue()
        return 0
    rules, unknown = _select_rules(args.select)
    if unknown:
        print(f"unknown rule ids: {', '.join(unknown)}", file=sys.stderr)
        return 2
    paths = args.paths or [default_target()]
    try:
        report = lint_paths(
            paths, rules=rules, strict_pragmas=not args.no_strict_pragmas
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.format == "json":
        print(report_as_json(report))
    else:
        for finding in report.findings:
            print(finding.format_text())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_checked} file(s)"
            if report.findings
            else f"clean: {report.files_checked} file(s) checked"
        )
        print(summary, file=sys.stderr)
    return 1 if report.findings else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint", description="repo-invariant static analysis"
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())

"""Pragma escape hatches: ``# repro: allow-<rule-category>``.

Every reprolint rule can be suppressed *per line* with an in-source
pragma, the way ``# noqa`` works for flake8 — but scoped to the
repo-specific invariant categories, and strict by default:

* a pragma suppresses findings of its category **on its own physical
  line only** (the line the flagged AST node starts on);
* unknown pragma names are findings themselves (``REP002``), so typos
  never silently disable a rule;
* pragmas that suppress nothing are findings too (``REP001``) unless
  strict-pragma checking is turned off — a stale escape hatch is a hole
  in the gate.

Syntax::

    do_risky_thing()  # repro: allow-broad-except -- guard converts crashes
    other_thing()     # repro: allow-wallclock, allow-unsafe-write

    # repro: allow-wallclock -- a pragma on its own line applies to the
    # next source line (continuation comments are skipped)
    start = time.perf_counter()

Everything after ``--`` is a free-form justification and is ignored by
the parser (but encouraged for readers).
"""

from __future__ import annotations

import io
import re
import tokenize
from collections.abc import Iterable
from dataclasses import dataclass, field

#: Pragmas only the whole-program pass (``repro lint --project``) can
#: judge: a per-file run must not flag them as unused (REP001), because
#: it never runs the rules they suppress.
PROJECT_PRAGMAS = frozenset(
    {
        "allow-layering",
        "allow-stream-tag",
        "allow-fork-unsafe",
    }
)

#: The full set of recognized pragma tokens; rules reference these by name.
KNOWN_PRAGMAS = PROJECT_PRAGMAS | frozenset(
    {
        "allow-nondeterminism",
        "allow-wallclock",
        "allow-unsafe-write",
        "allow-bare-except",
        "allow-broad-except",
        "allow-service-swallow",
        "allow-unsorted-set",
        "allow-unordered-merge",
        "allow-worker-ident",
    }
)

# Anchored at the start of the comment: prose that merely *mentions*
# ``# repro: ...`` (docs, docstring-style ``#:`` comments) is not a pragma.
_PRAGMA_RE = re.compile(r"^#\s*repro:\s*(?P<body>[^#]*)")
_TOKEN_RE = re.compile(r"[A-Za-z][A-Za-z0-9-]*")


@dataclass
class PragmaTable:
    """Per-line pragma tokens for one source file, with usage tracking."""

    #: line -> set of pragma tokens declared on that line.
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: (line, token) pairs with a token outside :data:`KNOWN_PRAGMAS`.
    unknown: list[tuple[int, str]] = field(default_factory=list)
    #: (line, token) pairs consumed by at least one suppression.
    _used: set[tuple[int, str]] = field(default_factory=set)

    def suppresses(self, line: int, pragma: str) -> bool:
        """True when ``pragma`` is declared on ``line`` (and mark it used)."""
        if pragma in self.by_line.get(line, ()):
            self._used.add((line, pragma))
            return True
        return False

    def mark_used(self, pairs: Iterable[tuple[int, str]]) -> None:
        """Replay suppressions recorded elsewhere (a parallel lint worker
        runs the rules in its own process and ships the used pairs back)."""
        self._used.update(pairs)

    def used_pairs(self) -> list[tuple[int, str]]:
        """The (line, token) pairs that suppressed something, sorted."""
        return sorted(self._used)

    def unused(
        self, skip: frozenset[str] = frozenset()
    ) -> list[tuple[int, str]]:
        """Declared-but-never-suppressing (line, token) pairs, sorted.

        ``skip`` names pragma tokens exempt from the audit — the
        project-only pragmas when no project pass ran.
        """
        declared = {
            (line, token)
            for line, tokens in self.by_line.items()
            for token in tokens
            if token in KNOWN_PRAGMAS and token not in skip
        }
        return sorted(declared - self._used)


_NON_CODE_TOKENS = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENDMARKER,
    }
)


def parse_pragmas(source: str) -> PragmaTable:
    """Extract the pragma table from one file's source text.

    A pragma trailing code applies to that line; a pragma on a
    comment-only line applies to the next line holding code.
    Tokenization errors are swallowed (the AST parse reports real syntax
    problems); pragmas found up to the error still count.
    """
    table = PragmaTable()
    lines = source.splitlines()
    #: (declaration line, standalone?, tokens) triples, resolved below.
    declared: list[tuple[int, bool, list[str]]] = []
    code_lines: set[int] = set()
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type not in _NON_CODE_TOKENS:
                for ln in range(tok.start[0], tok.end[0] + 1):
                    code_lines.add(ln)
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            line = tok.start[0]
            standalone = lines[line - 1][: tok.start[1]].strip() == ""
            body = match.group("body").split("--", 1)[0]
            tokens = _TOKEN_RE.findall(body)
            if not tokens:
                table.unknown.append((line, body.strip() or "<empty>"))
                continue
            declared.append((line, standalone, tokens))
    except tokenize.TokenError:
        pass
    for line, standalone, tokens in declared:
        target = line
        if standalone:
            after = [ln for ln in code_lines if ln > line]
            target = min(after) if after else line
        for token in tokens:
            if token in KNOWN_PRAGMAS:
                table.by_line.setdefault(target, set()).add(token)
            else:
                table.unknown.append((line, token))
    return table

"""SARIF 2.1.0 output for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the document as an artifact of the CI lint
job renders findings as inline annotations on the PR diff.  The
emitter maps the reprolint vocabulary directly:

* every rule in the catalogue (per-file and project) becomes a
  ``reportingDescriptor`` under the tool driver, so viewers can show
  the invariant's description next to each result;
* every finding becomes a ``result`` with a ``physicalLocation``
  (repo-relative URI, 1-based line/column region);
* parse failures (``REP000``) ride along as ordinary results, so a
  syntactically broken file is visible in the same view.

Only the stable subset of SARIF the consumers actually read is
emitted; the document validates against the 2.1.0 schema.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.analysis.project_rules import DEFAULT_PROJECT_RULES
from repro.analysis.rules import RULE_CATALOGUE

if TYPE_CHECKING:
    from repro.analysis.engine import LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: reprolint's stable tool identity in emitted documents.
TOOL_NAME = "reprolint"
TOOL_VERSION = "1.0.0"


def _rule_descriptors() -> list[dict[str, Any]]:
    """One ``reportingDescriptor`` per rule id the engine can emit."""
    descriptors: dict[str, dict[str, Any]] = {}
    for doc in RULE_CATALOGUE:
        descriptors[doc.rule_id] = {
            "id": doc.rule_id,
            "name": doc.name,
            "shortDescription": {"text": doc.description},
            "defaultConfiguration": {"level": "error"},
        }
    for rule in DEFAULT_PROJECT_RULES:
        descriptors[rule.rule_id] = {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": "error"},
        }
    descriptors.setdefault(
        "REP000",
        {
            "id": "REP000",
            "name": "engine/parse-failure",
            "shortDescription": {
                "text": "the file could not be read or parsed"
            },
            "defaultConfiguration": {"level": "error"},
        },
    )
    return [descriptors[k] for k in sorted(descriptors)]


def report_as_sarif(report: "LintReport") -> dict[str, Any]:
    """A SARIF 2.1.0 document (as a plain dict) for one lint report."""
    descriptors = _rule_descriptors()
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    results: list[dict[str, Any]] = []
    for finding in report.findings:
        result: dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": TOOL_VERSION,
                        "rules": descriptors,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def report_as_sarif_json(report: "LintReport") -> str:
    """The SARIF document serialized stably (sorted keys, 2-space indent)."""
    return json.dumps(report_as_sarif(report), indent=2, sort_keys=True)

"""The reprolint rule catalogue.

Each rule enforces one repo invariant that ordinary linters cannot see
(see ``docs/STATIC_ANALYSIS.md`` for the rationale behind each):

=======  =========================  ==========================================
Rule     Pragma                     Invariant
=======  =========================  ==========================================
REP001   (none)                     pragmas must suppress something
REP002   (none)                     pragma names must be known
REP101   allow-nondeterminism       no ``random`` stdlib module
REP102   allow-nondeterminism       no ``np.random`` global-state calls
REP103   allow-nondeterminism       no unseeded ``np.random.default_rng()``
REP104   allow-wallclock            no wall-clock reads in deterministic code
REP201   allow-unsafe-write         file writes go through ``core.artifacts``
REP301   allow-bare-except          no bare ``except:``
REP302   allow-broad-except         ``except Exception`` needs a pragma
REP303   allow-service-swallow      service ``except`` re-raises or records
REP401   allow-unsorted-set         no bare-``set`` iteration in hot paths
REP402   allow-unordered-merge      shard merges fold in deterministic order
=======  =========================  ==========================================

Rules are syntactic: they resolve import aliases (``import numpy as np``,
``from datetime import datetime``) but do no type inference.  The escape
hatch for the inevitable false positive is the per-line pragma — which is
itself audited (REP001/REP002).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

from repro.analysis.findings import Finding

#: Packages whose dispatch-loop determinism the paper's reproduction
#: depends on: every random draw must come from an explicitly plumbed
#: ``np.random.Generator`` and no decision may read the wall clock.
#: Wall-clock is legitimate only in the supervision/measurement layers
#: (``repro.core.runner``, ``repro.eval.harness``), which sit outside
#: this scope.
DETERMINISTIC_SCOPE = (
    "repro.sim",
    "repro.ml",
    "repro.mobility",
    "repro.dispatch",
    "repro.faults",
)

#: Hot paths where set-iteration order feeds numeric results.
ORDERING_SCOPE = (
    "repro.sim",
    "repro.ml",
    "repro.core",
    "repro.dispatch",
)

#: The sharding layer, whose merge/reduce steps must stay order-
#: insensitive so the merged snapshot is a pure function of the *set*
#: of per-shard results (the clean-path bit-identity gate depends on it).
MERGE_SCOPE = ("repro.service.sharding",)

#: The one module allowed to perform raw file writes: the atomic,
#: manifest-verified artifact layer from PR 2.
ARTIFACT_LAYER = ("repro.core.artifacts",)

#: The parallel-rollout layer, where episode results must be pure
#: functions of episode specs: worker identity (pids, worker indices)
#: and wall-clock values must never flow into seeds or merged results,
#: or parallel runs stop being bit-identical to the serial path.
ROLLOUT_SCOPE = ("repro.rollouts",)

#: ``np.random`` attributes that are *constructors* of explicit
#: generators — the sanctioned API.  Everything else on ``np.random``
#: touches the hidden global ``RandomState`` and is banned.
_NP_RANDOM_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
        "RandomState",  # explicit legacy object; still seedable and local
    }
)

#: Canonical dotted names that read the wall clock (or a monotonic clock
#: whose value depends on when the process runs — equally unreproducible).
_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Canonical dotted names of raw persistence entry points that bypass the
#: atomic artifact layer (``repro.core.artifacts``).
_RAW_WRITE_CALLS = frozenset(
    {
        "numpy.save",
        "numpy.savez",
        "numpy.savez_compressed",
        "numpy.savetxt",
        "json.dump",
        "pickle.dump",
        "pickle.dumps",  # usually feeds a raw write right after
        "shutil.copyfile",
        "shutil.copy",
        "shutil.copy2",
    }
)

#: Attribute calls that write files regardless of receiver type.
_RAW_WRITE_METHODS = frozenset({"write_text", "write_bytes"})

#: ``open`` modes that create or mutate files.
_WRITE_MODE_CHARS = frozenset("wax+")


def module_matches(module: str, prefixes: tuple[str, ...]) -> bool:
    """True when ``module`` is one of ``prefixes`` or nested inside one."""
    return any(
        module == p or module.startswith(p + ".") for p in prefixes
    )


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to canonical dotted origins, from import statements.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``; star imports and
    relative imports are ignored (reprolint rules target absolute stdlib /
    numpy names only).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".", 1)[0]
                canonical = name.name if name.asname else name.name.split(".", 1)[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def dotted_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a Name/Attribute chain, or ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = aliases.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class Rule:
    """One invariant checker: metadata plus a ``check`` entry point."""

    rule_id: str
    name: str
    pragma: str
    description: str
    #: Module prefixes the rule applies to (``None`` = entire tree).
    scope: tuple[str, ...] | None = None
    #: Module prefixes exempt from the rule.
    exempt: tuple[str, ...] = ()

    def applies_to(self, module: str) -> bool:
        if self.exempt and module_matches(module, self.exempt):
            return False
        if self.scope is None:
            return True
        return module_matches(module, self.scope)

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
            pragma=self.pragma,
        )


# -- determinism ---------------------------------------------------------------


@dataclass(frozen=True)
class ImportRandomRule(Rule):
    """REP101: the stdlib ``random`` module hides global mutable state."""

    rule_id: str = "REP101"
    name: str = "determinism/import-random"
    pragma: str = "allow-nondeterminism"
    description: str = (
        "the stdlib `random` module draws from hidden global state; use an "
        "explicitly plumbed np.random.Generator instead"
    )

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.name.split(".", 1)[0] == "random":
                        yield self.finding(
                            path, node, "import of the stdlib `random` module"
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module and node.module.split(".", 1)[0] == "random":
                    yield self.finding(
                        path, node, "import from the stdlib `random` module"
                    )


@dataclass(frozen=True)
class NumpyGlobalRandomRule(Rule):
    """REP102/REP103: np.random global-state calls and unseeded rng."""

    rule_id: str = "REP102"
    name: str = "determinism/np-random-global"
    pragma: str = "allow-nondeterminism"
    description: str = (
        "np.random.<fn>() draws from the hidden global RandomState; "
        "construct and plumb an np.random.Generator; "
        "np.random.default_rng() without a seed is unreproducible"
    )

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name is None or not name.startswith("numpy.random."):
                continue
            tail = name[len("numpy.random."):]
            attr = tail.split(".", 1)[0]
            if attr not in _NP_RANDOM_CONSTRUCTORS:
                yield self.finding(
                    path,
                    node,
                    f"`{name}` uses numpy's global RandomState; plumb an "
                    "explicit np.random.Generator",
                )
            elif tail == "default_rng" and not node.args and not node.keywords:
                yield Finding(
                    path=path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule="REP103",
                    message=(
                        "np.random.default_rng() without a seed is entropy-"
                        "seeded and unreproducible; pass an explicit seed"
                    ),
                    pragma=self.pragma,
                )


@dataclass(frozen=True)
class WallClockRule(Rule):
    """REP104: no wall-clock reads inside the deterministic core."""

    rule_id: str = "REP104"
    name: str = "determinism/wall-clock"
    pragma: str = "allow-wallclock"
    description: str = (
        "wall-clock/monotonic reads make the 5-minute dispatch loop "
        "unreproducible; simulation time is the only clock here (wall-clock "
        "belongs to core.runner / eval.harness)"
    )
    scope: tuple[str, ...] | None = DETERMINISTIC_SCOPE

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name in _WALLCLOCK_CALLS:
                yield self.finding(
                    path, node, f"wall-clock read `{name}()` in deterministic code"
                )


# -- durability ----------------------------------------------------------------


def _literal_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open(...)`` call, when statically known."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@dataclass(frozen=True)
class UnsafeWriteRule(Rule):
    """REP201: raw file writes bypass the atomic artifact layer."""

    rule_id: str = "REP201"
    name: str = "durability/unsafe-write"
    pragma: str = "allow-unsafe-write"
    description: str = (
        "raw writes (open-for-write, np.savez, json.dump, Path.write_text, "
        "...) can tear on crash and silently rename (.npz); route them "
        "through repro.core.artifacts"
    )
    exempt: tuple[str, ...] = ARTIFACT_LAYER

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name in _RAW_WRITE_CALLS:
                yield self.finding(
                    path,
                    node,
                    f"`{name}` bypasses the atomic artifact layer "
                    "(repro.core.artifacts)",
                )
                continue
            if name == "open" or name == "io.open":
                mode = _literal_mode(node)
                if mode is None or any(c in _WRITE_MODE_CHARS for c in mode):
                    shown = "?" if mode is None else mode
                    yield self.finding(
                        path,
                        node,
                        f"`open(..., {shown!r})` writes outside "
                        "repro.core.artifacts; use atomic_write_bytes / "
                        "atomic_write_json / atomic_savez",
                    )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _RAW_WRITE_METHODS
            ):
                yield self.finding(
                    path,
                    node,
                    f"`.{node.func.attr}()` writes outside "
                    "repro.core.artifacts; use atomic_write_bytes/"
                    "atomic_write_json",
                )


# -- exception hygiene ---------------------------------------------------------


def _names_in_handler(handler_type: ast.expr | None) -> list[ast.expr]:
    if handler_type is None:
        return []
    if isinstance(handler_type, ast.Tuple):
        return list(handler_type.elts)
    return [handler_type]


@dataclass(frozen=True)
class BareExceptRule(Rule):
    """REP301: bare ``except:`` swallows KeyboardInterrupt and SystemExit."""

    rule_id: str = "REP301"
    name: str = "exceptions/bare-except"
    pragma: str = "allow-bare-except"
    description: str = (
        "bare `except:` catches KeyboardInterrupt/SystemExit; name the "
        "exception types"
    )

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(path, node, "bare `except:`")


@dataclass(frozen=True)
class BroadExceptRule(Rule):
    """REP302: broad catches are only legitimate at degradation points."""

    rule_id: str = "REP302"
    name: str = "exceptions/broad-except"
    pragma: str = "allow-broad-except"
    description: str = (
        "`except Exception` hides bugs unless the site is a sanctioned "
        "degradation point (DispatchGuard, the supervisor's retry loop); "
        "narrow the types or add the pragma with a justification"
    )

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            # Cleanup-and-reraise handlers cannot swallow anything: a bare
            # ``raise`` in the handler body re-raises the original.
            if any(
                isinstance(stmt, ast.Raise) and stmt.exc is None
                for stmt in node.body
            ):
                continue
            for expr in _names_in_handler(node.type):
                if isinstance(expr, ast.Name) and expr.id in (
                    "Exception",
                    "BaseException",
                ):
                    yield self.finding(
                        path,
                        node,
                        f"broad `except {expr.id}` without a "
                        "`# repro: allow-broad-except` pragma",
                    )
                    break


#: Packages forming the resilient dispatch service: every swallowed
#: exception there must leave an observable trace.
SERVICE_SCOPE = ("repro.service",)

#: Method/function names whose call makes a swallowed exception
#: observable: the service's sanctioned incident recorders.
_SERVICE_RECORDERS = frozenset(
    {
        "record_failure",
        "record_incident",
        "quarantine",
        "record_violation",
    }
)


@dataclass(frozen=True)
class ServiceExceptionRule(Rule):
    """REP303: the service may degrade, but never silently."""

    rule_id: str = "REP303"
    name: str = "exceptions/service-swallow"
    pragma: str = "allow-service-swallow"
    description: str = (
        "an `except` in repro.service that neither re-raises nor records "
        "an incident (record_failure / record_incident / quarantine / "
        "record_violation) turns a failure into silence; degraded service "
        "must always leave an observable trace"
    )
    scope: tuple[str, ...] | None = SERVICE_SCOPE

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._leaves_a_trace(node):
                continue
            yield self.finding(
                path,
                node,
                "service `except` handler neither re-raises nor calls an "
                "incident recorder "
                "(record_failure/record_incident/quarantine/record_violation)",
            )

    @staticmethod
    def _leaves_a_trace(handler: ast.ExceptHandler) -> bool:
        """Syntactic: any raise, or any call to a sanctioned recorder,
        anywhere in the handler body (nested statements included)."""
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if isinstance(node, ast.Call):
                    func = node.func
                    name = (
                        func.attr
                        if isinstance(func, ast.Attribute)
                        else func.id
                        if isinstance(func, ast.Name)
                        else None
                    )
                    if name in _SERVICE_RECORDERS:
                        return True
        return False


# -- ordering hazards ----------------------------------------------------------

#: Calls through which set-iteration order cannot leak (order-insensitive
#: consumers).  A comprehension that is a *direct argument* of one of
#: these is sanctioned.
_ORDER_INSENSITIVE_SINKS = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "len", "any", "all"}
)

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "AbstractSet"})


def _is_set_expr(
    node: ast.expr, aliases: dict[str, str], set_names: frozenset[str] = frozenset()
) -> bool:
    """Syntactic check: does this expression produce a ``set``?

    ``set_names`` carries the module-level inference of
    :func:`_infer_set_names`: local names whose every binding is a set
    expression (or a ``set``/``frozenset`` annotation).
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        name = dotted_name(node.func, aliases)
        if name in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _is_set_expr(node.func.value, aliases, set_names)
        ):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, aliases, set_names) or _is_set_expr(
            node.right, aliases, set_names
        )
    return False


def _is_set_annotation(node: ast.expr) -> bool:
    if isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATIONS


def _infer_set_names(tree: ast.Module, aliases: dict[str, str]) -> frozenset[str]:
    """Names provably set-typed: every binding is a set expression.

    Flow- and scope-insensitive on purpose — one non-set binding anywhere
    in the file demotes the name, so the inference can only under-report.
    """
    evidence: dict[str, list[bool]] = {}
    demoted: set[str] = set()

    def bind(target: ast.expr, is_set: bool) -> None:
        if isinstance(target, ast.Name):
            evidence.setdefault(target.id, []).append(is_set)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                bind(el, False)
        # Attribute/Subscript targets carry no local-name evidence.

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target, _is_set_expr(node.value, aliases))
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _is_set_annotation(node.annotation):
                bind(node.target, True)
            elif node.value is not None:
                bind(node.target, _is_set_expr(node.value, aliases))
            else:
                bind(node.target, False)
        elif isinstance(node, ast.NamedExpr):
            bind(node.target, _is_set_expr(node.value, aliases))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target, False)
        elif isinstance(node, ast.comprehension):
            bind(node.target, False)
        elif isinstance(node, ast.arg):
            demoted.add(node.arg)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            bind(node.optional_vars, False)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            demoted.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                demoted.add((alias.asname or alias.name).split(".", 1)[0])
        elif isinstance(node, ast.Global) or isinstance(node, ast.Nonlocal):
            demoted.update(node.names)
    return frozenset(
        name
        for name, seen in evidence.items()
        if name not in demoted and seen and all(seen)
    )


@dataclass(frozen=True)
class UnsortedSetIterationRule(Rule):
    """REP401: bare-set iteration order is a cross-run reproducibility
    hazard in numeric hot paths."""

    rule_id: str = "REP401"
    name: str = "ordering/unsorted-set-iteration"
    pragma: str = "allow-unsorted-set"
    description: str = (
        "iterating a bare set in a numeric hot path makes results depend "
        "on hash-iteration order; wrap the set in sorted() or feed it to "
        "an order-insensitive reducer"
    )
    scope: tuple[str, ...] | None = ORDERING_SCOPE

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        set_names = _infer_set_names(tree, aliases)
        sanctioned: set[ast.AST] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func, aliases)
                if name in _ORDER_INSENSITIVE_SINKS:
                    sanctioned.update(node.args)
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, aliases, set_names):
                    yield self.finding(
                        path,
                        node.iter,
                        "iteration over a bare set; wrap in sorted()",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                if node in sanctioned:
                    continue
                for gen in node.generators:
                    if _is_set_expr(gen.iter, aliases, set_names):
                        yield self.finding(
                            path,
                            gen.iter,
                            "comprehension over a bare set; wrap in sorted() "
                            "or feed the comprehension to an order-"
                            "insensitive reducer",
                        )


_DICT_VIEW_METHODS = frozenset({"items", "keys", "values"})

#: Function-name markers that identify shard reducers.  The rule keys on
#: the *name* because merge/reduce steps are where per-shard results fold
#: into one artefact — the exact spot where iteration order leaks into
#: the output.
_MERGE_NAME_MARKERS = ("merge", "reduce")


def _is_dict_view_call(node: ast.expr) -> bool:
    """Syntactic check: a zero-argument ``.items()/.keys()/.values()`` call."""
    return (
        isinstance(node, ast.Call)
        and not node.args
        and not node.keywords
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _DICT_VIEW_METHODS
    )


@dataclass(frozen=True)
class OrderSensitiveMergeRule(Rule):
    """REP402: shard merge/reduce steps must not fold in hash order."""

    rule_id: str = "REP402"
    name: str = "ordering/order-sensitive-merge"
    pragma: str = "allow-unordered-merge"
    description: str = (
        "merge/reduce code iterating a dict view or bare set folds "
        "per-shard results in hash order; iterate sorted(...) or feed "
        "the view to an order-insensitive reducer"
    )
    scope: tuple[str, ...] | None = MERGE_SCOPE

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        set_names = _infer_set_names(tree, aliases)
        sanctioned: set[ast.AST] = set()
        merge_funcs: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func, aliases)
                if name in _ORDER_INSENSITIVE_SINKS:
                    sanctioned.update(node.args)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                lowered = node.name.lower()
                if any(marker in lowered for marker in _MERGE_NAME_MARKERS):
                    merge_funcs.append(node)
        seen: set[ast.AST] = set()

        def unordered(expr: ast.expr) -> bool:
            return _is_dict_view_call(expr) or _is_set_expr(
                expr, aliases, set_names
            )

        for func in merge_funcs:
            for node in ast.walk(func):
                if node in seen:
                    continue
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if unordered(node.iter):
                        seen.add(node)
                        yield self.finding(
                            path,
                            node.iter,
                            "merge/reduce loop over an unordered view; "
                            "iterate sorted(...) instead",
                        )
                elif isinstance(
                    node,
                    (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                ):
                    if node in sanctioned:
                        continue
                    for gen in node.generators:
                        if unordered(gen.iter):
                            seen.add(node)
                            yield self.finding(
                                path,
                                gen.iter,
                                "merge/reduce comprehension over an "
                                "unordered view; iterate sorted(...) or "
                                "feed it to an order-insensitive reducer",
                            )
                            break


#: Calls whose value identifies the executing worker/process — exactly
#: what must never influence an episode's seed or payload.
_WORKER_IDENT_CALLS = frozenset(
    {
        "os.getpid",
        "os.getppid",
        "multiprocessing.current_process",
        "threading.get_ident",
        "threading.get_native_id",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Variable/attribute names that carry worker identity; a
#: ``default_rng`` spawn key containing one makes episode randomness
#: depend on worker assignment.
_WORKER_IDENT_NAMES = frozenset(
    {
        "worker_id",
        "worker_index",
        "worker_idx",
        "worker_rank",
        "pid",
        "ppid",
        "process_id",
    }
)


@dataclass(frozen=True)
class WorkerIdentityRule(Rule):
    """REP403: worker identity must not leak into rollout determinism."""

    rule_id: str = "REP403"
    name: str = "ordering/worker-identity"
    pragma: str = "allow-worker-ident"
    description: str = (
        "rollout episode seeds and results must be pure functions of the "
        "episode spec: no os.getpid()/worker-index values in default_rng "
        "spawn keys, and no wall-clock reads — worker identity in either "
        "breaks parallel-vs-serial bit-identity"
    )
    scope: tuple[str, ...] | None = ROLLOUT_SCOPE

    def check(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[Finding]:
        aliases = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name in _WORKER_IDENT_CALLS:
                yield self.finding(
                    path,
                    node,
                    f"worker-identity read `{name}()` in rollout code; "
                    "episode results must depend only on the episode spec",
                )
                continue
            if name in _WALLCLOCK_CALLS:
                yield self.finding(
                    path,
                    node,
                    f"wall-clock read `{name}()` in rollout code; inject "
                    "a clock reference instead of calling one inline",
                )
                continue
            if name == "numpy.random.default_rng":
                ident = self._ident_in_args(node)
                if ident is not None:
                    yield self.finding(
                        path,
                        node,
                        f"default_rng spawn key contains worker identity "
                        f"`{ident}`; key episode streams by "
                        "(seed, tag, episode_id) only",
                    )

    @staticmethod
    def _ident_in_args(call: ast.Call) -> str | None:
        for arg in [*call.args, *(kw.value for kw in call.keywords)]:
            for sub in ast.walk(arg):
                if (
                    isinstance(sub, ast.Name)
                    and sub.id in _WORKER_IDENT_NAMES
                ):
                    return sub.id
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr in _WORKER_IDENT_NAMES
                ):
                    return sub.attr
        return None


#: The default rule set, in catalogue order.
DEFAULT_RULES: tuple[Rule, ...] = (
    ImportRandomRule(),
    NumpyGlobalRandomRule(),
    WallClockRule(),
    UnsafeWriteRule(),
    BareExceptRule(),
    BroadExceptRule(),
    ServiceExceptionRule(),
    UnsortedSetIterationRule(),
    OrderSensitiveMergeRule(),
    WorkerIdentityRule(),
)

#: rule_id -> producing Rule, for ``--select``.  REP103 is emitted by the
#: REP102 checker; REP001/REP002 are engine-level pragma audits.
RULE_INDEX: dict[str, Rule] = {r.rule_id: r for r in DEFAULT_RULES}
RULE_INDEX["REP103"] = RULE_INDEX["REP102"]


@dataclass(frozen=True)
class RuleDoc:
    """Catalogue row for ``repro lint --list-rules`` and the docs."""

    rule_id: str
    name: str
    pragma: str
    description: str
    scope: tuple[str, ...] | None = None
    exempt: tuple[str, ...] = ()


#: Documentation entries for every rule id the engine can emit (includes
#: the engine-level pragma audit rules and REP103).
RULE_CATALOGUE: tuple[RuleDoc, ...] = (
    RuleDoc(
        "REP001",
        "pragmas/unused-pragma",
        "",
        "a `# repro: allow-*` pragma that suppresses nothing is a stale "
        "hole in the gate; remove it",
    ),
    RuleDoc(
        "REP002",
        "pragmas/unknown-pragma",
        "",
        "unknown pragma name (typo?); known pragmas: see "
        "repro.analysis.pragmas.KNOWN_PRAGMAS",
    ),
    RuleDoc(
        "REP103",
        "determinism/unseeded-default-rng",
        "allow-nondeterminism",
        "np.random.default_rng() with no seed is entropy-seeded and "
        "unreproducible",
    ),
    *(
        RuleDoc(r.rule_id, r.name, r.pragma, r.description, r.scope, r.exempt)
        for r in DEFAULT_RULES
    ),
)

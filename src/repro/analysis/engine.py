"""The reprolint engine: file discovery, scoping, pragma filtering.

The engine maps each ``.py`` file to its dotted module name (so rules can
scope themselves to ``repro.sim``, exempt ``repro.core.artifacts``, ...),
parses it once, runs every applicable rule over the AST, and filters the
raw findings through the file's pragma table.  Pragmas are audited in the
same pass: unknown pragma names become ``REP002`` findings and — in
strict-pragma mode, the default — pragmas that suppressed nothing become
``REP001`` findings.

Module names are derived from the path by walking up to the nearest
package root (the highest directory chain with ``__init__.py`` files).
Files outside any package — linter fixtures, scripts — can pin their
module identity with a directive comment on any line::

    # reprolint: module=repro.sim.fixture

which is how the self-test fixtures exercise scoped rules.
"""

from __future__ import annotations

import ast
import pathlib
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.pragmas import PragmaTable, parse_pragmas
from repro.analysis.rules import DEFAULT_RULES, Rule

_MODULE_DIRECTIVE_RE = re.compile(
    r"^\s*#\s*reprolint:\s*module\s*=\s*([A-Za-z_][\w.]*)\s*$", re.MULTILINE
)


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files that failed to parse, as (path, error) — reported as findings
    #: too (rule ``REP000``), but kept separately for programmatic use.
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module name for ``path``, from the enclosing package chain.

    Walks parents while ``__init__.py`` exists, so ``src/repro/sim/engine.py``
    maps to ``repro.sim.engine`` regardless of the working directory.  A
    file outside any package maps to its stem.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def discover_files(paths: Sequence[str | pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[pathlib.Path, None] = {}
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen.setdefault(f.resolve(), None)
        elif p.is_file() and p.suffix == ".py":
            seen.setdefault(p.resolve(), None)
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return sorted(seen)


def _pragma_audit(
    path: str, table: PragmaTable, strict_pragmas: bool
) -> Iterable[Finding]:
    for line, token in table.unknown:
        yield Finding(
            path=path,
            line=line,
            col=1,
            rule="REP002",
            message=f"unknown reprolint pragma `{token}`",
        )
    if strict_pragmas:
        for line, token in table.unused():
            yield Finding(
                path=path,
                line=line,
                col=1,
                rule="REP001",
                message=f"pragma `{token}` suppresses no finding; remove it",
            )


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    rules: Sequence[Rule] = DEFAULT_RULES,
    strict_pragmas: bool = True,
) -> list[Finding]:
    """Lint one source text; the core primitive behind :func:`lint_paths`.

    ``module`` defaults to an in-file ``# reprolint: module=...`` directive
    when present, else the path stem.
    """
    if module is None:
        directive = _MODULE_DIRECTIVE_RE.search(source)
        module = directive.group(1) if directive else pathlib.Path(path).stem
    tree = ast.parse(source, filename=path)
    table = parse_pragmas(source)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for f in rule.check(tree, module, path):
            if f.pragma and table.suppresses(f.line, f.pragma):
                continue
            findings.append(f)
    findings.extend(_pragma_audit(path, table, strict_pragmas))
    findings.sort()
    return findings


def lint_paths(
    paths: Sequence[str | pathlib.Path],
    *,
    rules: Sequence[Rule] = DEFAULT_RULES,
    strict_pragmas: bool = True,
) -> LintReport:
    """Lint files and directory trees into one :class:`LintReport`."""
    report = LintReport()
    for file in discover_files(paths):
        rel = _display_path(file)
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.errors.append((rel, str(exc)))
            report.findings.append(
                Finding(rel, 1, 1, "REP000", f"unreadable file: {exc}")
            )
            continue
        try:
            findings = lint_source(
                source,
                path=rel,
                module=_module_for_source(file, source),
                rules=rules,
                strict_pragmas=strict_pragmas,
            )
        except SyntaxError as exc:
            report.errors.append((rel, str(exc)))
            report.findings.append(
                Finding(rel, exc.lineno or 1, 1, "REP000", f"syntax error: {exc.msg}")
            )
            continue
        report.files_checked += 1
        report.findings.extend(findings)
    report.findings.sort()
    return report


def _module_for_source(file: pathlib.Path, source: str) -> str:
    directive = _MODULE_DIRECTIVE_RE.search(source)
    if directive:
        return directive.group(1)
    return module_name_for(file)


def _display_path(file: pathlib.Path) -> str:
    """Repo-relative path when possible, keeping CI output stable."""
    try:
        return str(file.relative_to(pathlib.Path.cwd()))
    except ValueError:
        return str(file)


def default_target() -> pathlib.Path:
    """The installed ``repro`` package tree — what ``repro lint`` checks
    when invoked with no paths."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parent

"""The reprolint engine: discovery, scoping, pragma filtering, passes.

The engine runs up to two passes.  The **per-file pass** maps each
``.py`` file to its dotted module name (so rules can scope themselves to
``repro.sim``, exempt ``repro.core.artifacts``, ...), parses it once,
runs every applicable rule over the AST, and filters the raw findings
through the file's pragma table.  The **project pass** (``--project``)
additionally builds a :class:`~repro.analysis.project.ProjectContext`
— import graph, symbol index, RNG spawn sites — over the whole tree and
runs the REP5xx/6xx/7xx rules on it.

Pragmas are audited once, after every pass that ran: unknown pragma
names become ``REP002`` findings and — in strict-pragma mode, the
default — pragmas that suppressed nothing become ``REP001`` findings.
The project-only pragmas (``allow-layering`` & co.) are exempt from the
unused audit when only the per-file pass ran, since the rules they
suppress never executed.

The per-file pass can fan out over a process pool (``jobs > 1``):
workers lint whole files and ship findings plus the pragma suppressions
they consumed back to the parent, which replays them into its own
tables — so the audit, the project pass, and the final ordering are
identical to a serial run.  Any pool failure degrades to the serial
path rather than failing the lint.

Module names are derived from the path by walking up to the nearest
package root (the highest directory chain with ``__init__.py`` files).
Files outside any package — linter fixtures, scripts — can pin their
module identity with a directive comment on any line::

    # reprolint: module=repro.sim.fixture

which is how the self-test fixtures exercise scoped rules.
"""

from __future__ import annotations

import ast
import concurrent.futures
import concurrent.futures.process
import io
import pathlib
import pickle
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.pragmas import (
    PROJECT_PRAGMAS,
    PragmaTable,
    parse_pragmas,
)
from repro.analysis.project import FileContext, ProjectConfig, ProjectContext
from repro.analysis.project_rules import ProjectRule
from repro.analysis.rules import DEFAULT_RULES, Rule

_MODULE_DIRECTIVE_RE = re.compile(
    r"^#\s*reprolint:\s*module\s*=\s*([A-Za-z_][\w.]*)\s*$"
)


def _module_directive(source: str) -> str | None:
    """The ``# reprolint: module=...`` directive, from real comment
    tokens only — a directive *quoted* in a docstring must not re-point
    the quoting file's module identity."""
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                match = _MODULE_DIRECTIVE_RE.match(tok.string)
                if match:
                    return match.group(1)
    except tokenize.TokenError:
        pass
    return None


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files that failed to parse, as (path, error) — reported as findings
    #: too (rule ``REP000``), but kept separately for programmatic use.
    errors: list[tuple[str, str]] = field(default_factory=list)
    #: True when the whole-program (REP5xx-7xx) pass ran.
    project_pass: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings


def module_name_for(path: pathlib.Path) -> str:
    """Dotted module name for ``path``, from the enclosing package chain.

    Walks parents while ``__init__.py`` exists, so ``src/repro/sim/engine.py``
    maps to ``repro.sim.engine`` regardless of the working directory.  A
    file outside any package maps to its stem.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def discover_files(paths: Sequence[str | pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: dict[pathlib.Path, None] = {}
    for raw in paths:
        p = pathlib.Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                seen.setdefault(f.resolve(), None)
        elif p.is_file() and p.suffix == ".py":
            seen.setdefault(p.resolve(), None)
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return sorted(seen)


def _pragma_audit(
    path: str,
    table: PragmaTable,
    strict_pragmas: bool,
    skip: frozenset[str] = frozenset(),
) -> Iterable[Finding]:
    for line, token in table.unknown:
        yield Finding(
            path=path,
            line=line,
            col=1,
            rule="REP002",
            message=f"unknown reprolint pragma `{token}`",
        )
    if strict_pragmas:
        for line, token in table.unused(skip):
            yield Finding(
                path=path,
                line=line,
                col=1,
                rule="REP001",
                message=f"pragma `{token}` suppresses no finding; remove it",
            )


def _check_file_rules(
    tree: ast.Module,
    module: str,
    path: str,
    rules: Sequence[Rule],
    table: PragmaTable,
) -> list[Finding]:
    """Run the per-file rules over one tree, pragma-suppressed, unaudited."""
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for f in rule.check(tree, module, path):
            if f.pragma and table.suppresses(f.line, f.pragma):
                continue
            findings.append(f)
    return findings


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    rules: Sequence[Rule] = DEFAULT_RULES,
    strict_pragmas: bool = True,
) -> list[Finding]:
    """Lint one source text; the per-file primitive behind :func:`lint_paths`.

    ``module`` defaults to an in-file ``# reprolint: module=...`` directive
    when present, else the path stem.  Project-only pragmas are exempt
    from the unused audit here — a single file cannot judge them.
    """
    if module is None:
        module = _module_directive(source) or pathlib.Path(path).stem
    tree = ast.parse(source, filename=path)
    table = parse_pragmas(source)
    findings = _check_file_rules(tree, module, path, rules, table)
    findings.extend(
        _pragma_audit(path, table, strict_pragmas, skip=PROJECT_PRAGMAS)
    )
    findings.sort()
    return findings


# -- process-pool plumbing -----------------------------------------------------
#
# Workers are handed (absolute path, display path, module, rules) and do
# the whole read/parse/check cycle in their own process.  They return
# raw findings *plus* the (line, pragma) suppressions they consumed, so
# the parent can replay usage into its own tables and run the audit with
# full knowledge — identical output to the serial path, in any order.

_PoolJob = tuple[str, str, str, tuple[Rule, ...]]
_PoolResult = tuple[
    str,
    list[Finding],
    list[tuple[int, str]],
    tuple[int, str] | None,
]

#: Failures that make the pool unusable; anything else propagates —
#: a rule crash should fail the lint loudly, not silently degrade.
_POOL_ERRORS = (
    OSError,
    pickle.PicklingError,
    concurrent.futures.process.BrokenProcessPool,
)


def _pool_lint_file(job: _PoolJob) -> _PoolResult:
    """Worker entry: lint one file, return findings + used pragma pairs."""
    file_path, display, module, rules = job
    try:
        source = pathlib.Path(file_path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return display, [], [], (1, f"unreadable file: {exc}")
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return display, [], [], (exc.lineno or 1, f"syntax error: {exc.msg}")
    table = parse_pragmas(source)
    findings = _check_file_rules(tree, module, display, rules, table)
    return display, findings, table.used_pairs(), None


def _run_file_pass(
    contexts: Sequence[FileContext],
    files: Sequence[pathlib.Path],
    rules: Sequence[Rule],
    jobs: int,
) -> list[Finding]:
    """Per-file rules over already-parsed contexts, serial or pooled."""
    if jobs > 1 and len(contexts) > 1:
        jobs_payload: list[_PoolJob] = [
            (str(f), ctx.path, ctx.module, tuple(rules))
            for f, ctx in zip(files, contexts)
        ]
        by_path = {ctx.path: ctx for ctx in contexts}
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(jobs, len(contexts))
            ) as pool:
                results = list(
                    pool.map(
                        _pool_lint_file,
                        jobs_payload,
                        chunksize=max(1, len(jobs_payload) // (jobs * 4)),
                    )
                )
        except _POOL_ERRORS:
            results = None
        if results is not None:
            findings: list[Finding] = []
            for display, file_findings, used, _error in results:
                findings.extend(file_findings)
                by_path[display].pragmas.mark_used(used)
            return findings
    findings = []
    for ctx in contexts:
        findings.extend(
            _check_file_rules(ctx.tree, ctx.module, ctx.path, rules, ctx.pragmas)
        )
    return findings


# -- the entry point -----------------------------------------------------------


def lint_paths(
    paths: Sequence[str | pathlib.Path],
    *,
    rules: Sequence[Rule] = DEFAULT_RULES,
    strict_pragmas: bool = True,
    jobs: int = 1,
    project_rules: Sequence[ProjectRule] = (),
    project_config: ProjectConfig | None = None,
) -> LintReport:
    """Lint files and directory trees into one :class:`LintReport`.

    With ``project_rules`` (and their ``project_config``), the whole-
    program pass runs after the per-file pass over the same parsed tree;
    findings from both passes share pragma suppression and one audit.
    ``jobs > 1`` fans the per-file pass over a process pool; output is
    byte-identical to the serial path.
    """
    if project_rules and project_config is None:
        raise ValueError("project_rules need a project_config")
    report = LintReport(project_pass=bool(project_rules))
    contexts: list[FileContext] = []
    parsed_files: list[pathlib.Path] = []
    for file in discover_files(paths):
        rel = _display_path(file)
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.errors.append((rel, str(exc)))
            report.findings.append(
                Finding(rel, 1, 1, "REP000", f"unreadable file: {exc}")
            )
            continue
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as exc:
            report.errors.append((rel, str(exc)))
            report.findings.append(
                Finding(rel, exc.lineno or 1, 1, "REP000", f"syntax error: {exc.msg}")
            )
            continue
        contexts.append(
            FileContext(
                path=rel,
                module=_module_for_source(file, source),
                source=source,
                tree=tree,
                pragmas=parse_pragmas(source),
            )
        )
        parsed_files.append(file)
        report.files_checked += 1

    report.findings.extend(_run_file_pass(contexts, parsed_files, rules, jobs))

    if project_rules and project_config is not None:
        project = ProjectContext(contexts, project_config)
        tables = {ctx.path: ctx.pragmas for ctx in contexts}
        for rule in project_rules:
            for f in rule.check(project):
                table = tables.get(f.path)
                if (
                    f.pragma
                    and table is not None
                    and table.suppresses(f.line, f.pragma)
                ):
                    continue
                report.findings.append(f)

    skip = frozenset() if project_rules else PROJECT_PRAGMAS
    for ctx in contexts:
        report.findings.extend(
            _pragma_audit(ctx.path, ctx.pragmas, strict_pragmas, skip=skip)
        )
    report.findings.sort()
    return report


def _module_for_source(file: pathlib.Path, source: str) -> str:
    return _module_directive(source) or module_name_for(file)


def _display_path(file: pathlib.Path) -> str:
    """Repo-relative path when possible, keeping CI output stable."""
    try:
        return str(file.relative_to(pathlib.Path.cwd()))
    except ValueError:
        return str(file)


def default_target() -> pathlib.Path:
    """The installed ``repro`` package tree — what ``repro lint`` checks
    when invoked with no paths."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parent

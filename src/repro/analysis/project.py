"""Whole-program context for the reprolint project pass.

The per-file rules (REP1xx-4xx) see one AST at a time; the invariants
that PR 6/7 rest on — disjoint RNG stream keys across subsystems,
acyclic layering, fork-safe worker closures — are only visible with the
whole tree in hand.  This module builds that view once per run:

* a **module import graph** distinguishing static module-scope edges
  (what layering judges), lazy function-scope edges (what a forked
  worker will eventually pull in), and ``TYPE_CHECKING``-guarded edges
  (invisible at runtime, ignored by both);
* a **symbol index** of module-level integer constants, including the
  ``NAME = _register(value, ...)`` form the stream registry uses, so
  tags can be chased across modules through import aliases;
* every ``default_rng([seed, <tag>, ...])`` **spawn site**, with the
  tag expression resolved through constants, imports, and — when the
  tag is a function parameter, as in the fault injectors — through the
  module's own call sites.

The project pass is configured from ``[tool.reprolint]`` in
``pyproject.toml`` (layer adjacency, forbidden reaches, the streams
module, fork entry points).  Python 3.10 has no ``tomllib``, so a
dependency-free parser for exactly the subset those tables use backs
it up.
"""

from __future__ import annotations

import ast
import pathlib
import re
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.analysis.pragmas import PragmaTable
from repro.analysis.rules import dotted_name, import_aliases

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.10 CI
    tomllib = None  # type: ignore[assignment]


class ProjectConfigError(ValueError):
    """The ``[tool.reprolint]`` configuration is missing or malformed."""


# -- configuration -------------------------------------------------------------


@dataclass(frozen=True)
class ProjectConfig:
    """The declared architecture the project pass enforces.

    ``layers`` maps each top-level package (the component right under
    ``root_package``) to the packages its module-scope imports may
    target.  ``forbidden_reach`` pairs must stay unreachable even
    transitively.  ``shared_modules`` are dependency-free leaf modules
    (the stream registry) importable from any layer.
    """

    layers: dict[str, tuple[str, ...]] = field(default_factory=dict)
    forbidden_reach: tuple[tuple[str, str], ...] = ()
    streams_module: str = ""
    shared_modules: tuple[str, ...] = ()
    fork_entry_points: tuple[str, ...] = ()
    fork_sanctioned: tuple[str, ...] = ()
    root_package: str = "repro"


def _parse_toml_subset(text: str) -> dict[str, dict[str, object]]:
    """Parse just the ``[tool.reprolint*]`` tables from a TOML document.

    Supports the value shapes those tables use: bare strings and arrays
    of strings (single- or multi-line).  Every other table in the file
    is skipped wholesale, so the rest of ``pyproject.toml`` can use any
    TOML feature it likes.
    """
    tables: dict[str, dict[str, object]] = {}
    section = ""
    pending_key = ""
    pending = ""
    for raw in text.splitlines():
        line = raw.strip()
        if pending_key:
            pending += " " + line
            if "]" not in line:
                continue
            tables[section][pending_key] = _parse_string_array(pending)
            pending_key = ""
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            section = line.strip("[]").strip().strip('"')
            if section.startswith("tool.reprolint"):
                tables.setdefault(section, {})
            continue
        if not section.startswith("tool.reprolint") or "=" not in line:
            continue
        key, _, value = line.partition("=")
        key = key.strip().strip('"')
        value = value.strip()
        if value.startswith("["):
            if "]" not in value:
                pending_key, pending = key, value
                continue
            tables[section][key] = _parse_string_array(value)
        elif value.startswith('"'):
            tables[section][key] = value.split("#", 1)[0].strip().strip('"')
    return tables


def _parse_string_array(text: str) -> list[str]:
    return re.findall(r'"([^"]*)"', text)


def _reprolint_tables(path: pathlib.Path) -> dict[str, dict[str, object]]:
    text = path.read_text(encoding="utf-8")
    if tomllib is not None:
        data = tomllib.loads(text)
        tool = data.get("tool", {}).get("reprolint")
        if tool is None:
            return {}
        tables: dict[str, dict[str, object]] = {"tool.reprolint": {}}
        for key, value in tool.items():
            if isinstance(value, dict):
                tables[f"tool.reprolint.{key}"] = dict(value)
            else:
                tables["tool.reprolint"][key] = value
        return tables
    return _parse_toml_subset(text)


def _string_tuple(value: object, key: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise ProjectConfigError(f"[tool.reprolint] {key} must be a string array")
    return tuple(value)


def load_project_config(path: str | pathlib.Path) -> ProjectConfig:
    """Load :class:`ProjectConfig` from a ``pyproject.toml``."""
    pyproject = pathlib.Path(path)
    tables = _reprolint_tables(pyproject)
    if "tool.reprolint" not in tables:
        raise ProjectConfigError(f"no [tool.reprolint] table in {pyproject}")
    main = tables["tool.reprolint"]
    layers: dict[str, tuple[str, ...]] = {}
    for pkg, allowed in tables.get("tool.reprolint.layers", {}).items():
        layers[pkg] = _string_tuple(allowed, f"layers.{pkg}")
    reach: list[tuple[str, str]] = []
    for entry in _string_tuple(main.get("forbidden-reach", []), "forbidden-reach"):
        src, arrow, dst = entry.partition("->")
        if not arrow or not src.strip() or not dst.strip():
            raise ProjectConfigError(
                f"forbidden-reach entry {entry!r} is not of the form 'src -> dst'"
            )
        reach.append((src.strip(), dst.strip()))
    streams = main.get("streams-module", "")
    root = main.get("root-package", "repro")
    if not isinstance(streams, str) or not isinstance(root, str):
        raise ProjectConfigError(
            "[tool.reprolint] streams-module/root-package must be strings"
        )
    return ProjectConfig(
        layers=layers,
        forbidden_reach=tuple(reach),
        streams_module=streams,
        shared_modules=_string_tuple(
            main.get("shared-modules", []), "shared-modules"
        ),
        fork_entry_points=_string_tuple(
            main.get("fork-entry-points", []), "fork-entry-points"
        ),
        fork_sanctioned=_string_tuple(
            main.get("fork-sanctioned", []), "fork-sanctioned"
        ),
        root_package=root,
    )


def find_project_config(
    paths: Sequence[str | pathlib.Path],
) -> pathlib.Path | None:
    """The nearest ``pyproject.toml`` with a ``[tool.reprolint]`` table,
    walking up from each lint path in turn."""
    for raw in paths:
        probe = pathlib.Path(raw).resolve()
        if probe.is_file():
            probe = probe.parent
        for candidate in (probe, *probe.parents):
            pyproject = candidate / "pyproject.toml"
            if not pyproject.is_file():
                continue
            try:
                if _reprolint_tables(pyproject):
                    return pyproject
            except (OSError, ValueError):
                continue
    return None


# -- per-file facts ------------------------------------------------------------


@dataclass
class FileContext:
    """One parsed source file plus everything rules need to judge it."""

    path: str
    module: str
    source: str
    tree: ast.Module
    pragmas: PragmaTable


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, located and classified."""

    src: str
    target: str
    line: int
    #: Function-scope import: invisible to layering, but real at runtime
    #: (a forked worker will execute it), so the fork closure keeps it.
    lazy: bool
    #: Guarded by ``if TYPE_CHECKING:`` — never executed; ignored by both.
    type_checking: bool


@dataclass(frozen=True)
class SpawnSite:
    """One ``default_rng([seed, <tag>, ...])`` call with a list key."""

    path: str
    module: str
    line: int
    col: int
    #: Statically resolved tag values (usually one; several when the tag
    #: is a parameter fed from several call sites), or ``None`` when the
    #: tag defeats resolution.
    tags: tuple[int, ...] | None
    tag_text: str


def _is_type_checking_test(node: ast.expr) -> bool:
    return (isinstance(node, ast.Name) and node.id == "TYPE_CHECKING") or (
        isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING"
    )


class _ModuleScanner(ast.NodeVisitor):
    """Single AST walk collecting imports, spawn sites, and call sites."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.aliases = import_aliases(ctx.tree)
        self.edges: list[ImportEdge] = []
        self.spawns: list[tuple[ast.Call, _Scope]] = []
        #: (call node, enclosing scope) for every plain/self call.
        self.calls: list[tuple[ast.Call, _Scope]] = []
        #: (class name or "", function name) -> def node.
        self.functions: dict[tuple[str, str], ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self._class = ""
        self._func_depth = 0
        self._func: ast.FunctionDef | ast.AsyncFunctionDef | None = None
        self._type_checking = False

    # -- scope tracking --------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        prev = self._class
        if self._func_depth == 0:
            self._class = node.name
        self.generic_visit(node)
        self._class = prev

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if self._func_depth == 0:
            self.functions[(self._class, node.name)] = node
        prev = self._func
        self._func_depth += 1
        if self._func_depth == 1:
            self._func = node
        self.generic_visit(node)
        self._func_depth -= 1
        self._func = prev if self._func_depth else None
        if self._func_depth == 0:
            self._func = None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            prev = self._type_checking
            self._type_checking = True
            for stmt in node.body:
                self.visit(stmt)
            self._type_checking = prev
            for stmt in node.orelse:
                self.visit(stmt)
            return
        self.generic_visit(node)

    # -- collection ------------------------------------------------------------

    def _edge(self, target: str, line: int) -> None:
        self.edges.append(
            ImportEdge(
                src=self.ctx.module,
                target=target,
                line=line,
                lazy=self._func_depth > 0,
                type_checking=self._type_checking,
            )
        )

    def visit_Import(self, node: ast.Import) -> None:
        for name in node.names:
            self._edge(name.name, node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            parts = self.ctx.module.split(".")
            # A module's level-1 base is its package; a package __init__'s
            # is itself, which module naming already collapses to.
            anchor = parts[: len(parts) - node.level]
            base = ".".join(anchor + ([node.module] if node.module else []))
        if base:
            for name in node.names:
                if name.name == "*":
                    self._edge(base, node.lineno)
                else:
                    self._edge(f"{base}.{name.name}", node.lineno)

    def visit_Call(self, node: ast.Call) -> None:
        scope = _Scope(self._class, self._func)
        dotted = dotted_name(node.func, self.aliases)
        if dotted == "numpy.random.default_rng":
            self.spawns.append((node, scope))
        self.calls.append((node, scope))
        self.generic_visit(node)


@dataclass(frozen=True)
class _Scope:
    """Innermost enclosing (class, function) of a node, for param chasing."""

    class_name: str
    func: ast.FunctionDef | ast.AsyncFunctionDef | None


def _int_literal(node: ast.expr) -> int | None:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and type(node.operand.value) is int
    ):
        return -node.operand.value
    return None


def _constant_value(node: ast.expr) -> int | None:
    """An int from a module-level assignment — a literal, or the registry
    form ``NAME = _register(value, ...)``."""
    direct = _int_literal(node)
    if direct is not None:
        return direct
    if isinstance(node, ast.Call) and node.args:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name == "_register":
            return _int_literal(node.args[0])
    return None


def module_int_constants(tree: ast.Module) -> dict[str, int]:
    """Module-level ``NAME = <int>`` bindings (including registry calls)."""
    consts: dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value = stmt.value
            targets = [stmt.target] if isinstance(stmt.target, ast.Name) else []
        else:
            continue
        resolved = _constant_value(value)
        if resolved is not None:
            for target in targets:
                consts[target.id] = resolved
    return consts


# -- the project context -------------------------------------------------------


class ProjectContext:
    """Everything the REP5xx/6xx/7xx rules need, built in one pass."""

    def __init__(
        self, files: Sequence[FileContext], config: ProjectConfig
    ) -> None:
        self.config = config
        self.files = sorted(files, key=lambda f: f.module)
        self.by_module: dict[str, FileContext] = {
            f.module: f for f in self.files
        }
        self._scanners: dict[str, _ModuleScanner] = {}
        self._constants: dict[str, dict[str, int]] = {}
        for ctx in self.files:
            scanner = _ModuleScanner(ctx)
            scanner.visit(ctx.tree)
            self._scanners[ctx.module] = scanner
            self._constants[ctx.module] = module_int_constants(ctx.tree)
        self.spawn_sites: list[SpawnSite] = []
        for ctx in self.files:
            self.spawn_sites.extend(self._spawn_sites_for(ctx))
        self.spawn_sites.sort(key=lambda s: (s.path, s.line, s.col))

    # -- import graph ----------------------------------------------------------

    def _project_target(self, target: str) -> str | None:
        """Collapse an import target onto a module in this project."""
        parts = target.split(".")
        for i in range(len(parts), 0, -1):
            candidate = ".".join(parts[:i])
            if candidate in self.by_module:
                return candidate
        return None

    def edges(
        self, *, include_lazy: bool, ancestors: bool = False
    ) -> Iterator[ImportEdge]:
        """Project-internal import edges.

        ``ancestors`` additionally emits edges to each target's enclosing
        packages: importing ``a.b.c`` executes ``a/__init__`` and
        ``a/b/__init__`` first, which is exactly how real circular-import
        crashes arise, so the cycle check wants those edges too.
        Packages that also enclose the *importing* module are skipped —
        a submodule importing a sibling does not re-enter its own
        package's ``__init__``.
        """
        for scanner in self._scanners.values():
            for edge in scanner.edges:
                if edge.type_checking or (edge.lazy and not include_lazy):
                    continue
                target = self._project_target(edge.target)
                if target is None or target == edge.src:
                    continue
                yield ImportEdge(
                    edge.src, target, edge.line, edge.lazy, False
                )
                if not ancestors:
                    continue
                parts = target.split(".")
                for i in range(1, len(parts)):
                    package = ".".join(parts[:i])
                    if package not in self.by_module or package == edge.src:
                        continue
                    if edge.src.startswith(package + "."):
                        continue
                    yield ImportEdge(
                        edge.src, package, edge.line, edge.lazy, False
                    )

    def static_graph(
        self, *, ancestors: bool = False
    ) -> dict[str, list[ImportEdge]]:
        """Module-scope import adjacency (what layering and cycles judge)."""
        graph: dict[str, list[ImportEdge]] = {m: [] for m in self.by_module}
        for edge in self.edges(include_lazy=False, ancestors=ancestors):
            graph[edge.src].append(edge)
        return graph

    def runtime_graph(self) -> dict[str, list[ImportEdge]]:
        """Static plus lazy edges — what a forked worker can execute."""
        graph: dict[str, list[ImportEdge]] = {m: [] for m in self.by_module}
        for edge in self.edges(include_lazy=True):
            graph[edge.src].append(edge)
        return graph

    def package_of(self, module: str) -> str | None:
        """The layer a module belongs to: the path component right under
        the root package (``repro.sim.engine`` -> ``sim``)."""
        root = self.config.root_package
        if module == root or not module.startswith(root + "."):
            return None
        return module.split(".")[1]

    def fork_closure(self) -> tuple[set[str], dict[str, str]]:
        """Modules reachable from the fork entry points, with one witness
        predecessor per module for readable finding messages."""
        graph = self.runtime_graph()
        entries = [
            m for m in self.config.fork_entry_points if m in self.by_module
        ]
        seen: set[str] = set()
        parent: dict[str, str] = {}
        queue = list(entries)
        for entry in entries:
            seen.add(entry)
        while queue:
            module = queue.pop(0)
            for edge in graph.get(module, []):
                if edge.target not in seen:
                    seen.add(edge.target)
                    parent[edge.target] = module
                    queue.append(edge.target)
        return seen, parent

    def import_chain(self, module: str, parent: dict[str, str]) -> list[str]:
        """Entry-to-module chain reconstructed from BFS witnesses."""
        chain = [module]
        while chain[-1] in parent:
            chain.append(parent[chain[-1]])
        return list(reversed(chain))

    # -- symbol index ----------------------------------------------------------

    def constant(self, module: str, name: str, depth: int = 4) -> int | None:
        """Resolve ``module.name`` to an int, chasing re-export aliases."""
        if depth <= 0 or module not in self.by_module:
            return None
        value = self._constants[module].get(name)
        if value is not None:
            return value
        alias = self._scanners[module].aliases.get(name)
        if alias is None:
            return None
        return self.dotted_constant(alias, depth - 1)

    def dotted_constant(self, dotted: str, depth: int = 4) -> int | None:
        owner, _, attr = dotted.rpartition(".")
        if not owner or not attr:
            return None
        target = self._project_target(owner)
        if target is None:
            return None
        return self.constant(target, attr, depth)

    def registry_values(self) -> dict[int, str] | None:
        """value -> constant name from the streams module, or ``None``
        when the registry is outside the linted tree (REP6xx then skip
        the registration check — a partial lint can't judge it)."""
        module = self.config.streams_module
        if not module or module not in self.by_module:
            return None
        values: dict[int, str] = {}
        for name, value in self._constants[module].items():
            values.setdefault(value, name)
        return values

    def registry_duplicates(self) -> list[tuple[str, str, int]]:
        """(first name, duplicate name, value) for registry collisions."""
        module = self.config.streams_module
        if not module or module not in self.by_module:
            return []
        first: dict[int, str] = {}
        duplicates: list[tuple[str, str, int]] = []
        for name, value in self._constants[module].items():
            if value in first:
                duplicates.append((first[value], name, value))
            else:
                first[value] = name
        return duplicates

    def constant_line(self, module: str, name: str) -> int:
        ctx = self.by_module.get(module)
        if ctx is None:
            return 1
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.lineno
        return 1

    # -- spawn-site resolution -------------------------------------------------

    def _spawn_sites_for(self, ctx: FileContext) -> list[SpawnSite]:
        scanner = self._scanners[ctx.module]
        sites: list[SpawnSite] = []
        for call, scope in scanner.spawns:
            if not call.args or not isinstance(call.args[0], ast.List):
                continue
            key = call.args[0]
            if len(key.elts) < 2:
                continue
            tag_expr = key.elts[1]
            values = self._resolve_tag(tag_expr, scope, ctx.module, depth=6)
            sites.append(
                SpawnSite(
                    path=ctx.path,
                    module=ctx.module,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    tags=tuple(sorted(values)) if values else None,
                    tag_text=ast.unparse(tag_expr),
                )
            )
        return sites

    def _resolve_tag(
        self, expr: ast.expr, scope: _Scope, module: str, depth: int
    ) -> set[int] | None:
        """Resolve a tag expression to concrete int values, or ``None``.

        Chases, in order: int literals, module-level constants (local and
        imported), and — when the tag is a parameter of the enclosing
        function — the arguments at that function's own call sites, which
        is how the fault injectors' ``self._rng(tag, entity)`` helpers
        resolve back to registry constants.
        """
        if depth <= 0:
            return None
        literal = _int_literal(expr)
        if literal is not None:
            return {literal}
        scanner = self._scanners[module]
        if isinstance(expr, (ast.Name, ast.Attribute)):
            dotted = dotted_name(expr, scanner.aliases)
            if isinstance(expr, ast.Name):
                value = self.constant(module, expr.id)
                if value is not None:
                    return {value}
            if dotted is not None:
                value = self.dotted_constant(dotted)
                if value is not None:
                    return {value}
        if isinstance(expr, ast.Name) and scope.func is not None:
            return self._resolve_param(expr.id, scope, module, depth)
        return None

    def _resolve_param(
        self, name: str, scope: _Scope, module: str, depth: int
    ) -> set[int] | None:
        func = scope.func
        if func is None:
            return None
        params = [a.arg for a in func.args.posonlyargs + func.args.args]
        if name not in params:
            return None
        index = params.index(name)
        is_method = scope.class_name != "" and index > 0 and params[0] in (
            "self",
            "cls",
        )
        scanner = self._scanners[module]
        resolved: set[int] = set()
        found_site = False
        for call, call_scope in scanner.calls:
            if is_method and call_scope.class_name != scope.class_name:
                continue
            arg = self._call_argument(call, func.name, name, index, is_method)
            if arg is None:
                continue
            found_site = True
            if call_scope.func is func:
                # Self-recursion contributes nothing new.
                continue
            values = self._resolve_tag(arg, call_scope, module, depth - 1)
            if values is None:
                return None
            resolved.update(values)
        return resolved if found_site and resolved else None

    def _call_argument(
        self,
        call: ast.Call,
        func_name: str,
        param: str,
        index: int,
        is_method: bool,
    ) -> ast.expr | None:
        """The expression this call passes for ``param``, if it is a call
        to the scoped function (``f(...)`` or ``self.f(...)``)."""
        func = call.func
        if is_method:
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == func_name
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
            ):
                return None
            positional = index - 1
        else:
            if not (isinstance(func, ast.Name) and func.id == func_name):
                return None
            positional = index
        for keyword in call.keywords:
            if keyword.arg == param:
                return keyword.value
        if 0 <= positional < len(call.args):
            arg = call.args[positional]
            return None if isinstance(arg, ast.Starred) else arg
        return None

    # -- fork-safety facts -----------------------------------------------------

    def scanner(self, module: str) -> _ModuleScanner:
        return self._scanners[module]

    def aliases(self, module: str) -> dict[str, str]:
        return self._scanners[module].aliases

"""The machine-readable finding format shared by every reprolint rule.

A finding pins one invariant violation to a file, line and column, names
the rule that produced it and carries a human-readable message plus the
pragma that would suppress it.  Findings serialize to stable dicts (for
``repro lint --format json``) and to the classic ``file:line:col`` text
form, so CI jobs and dashboards can diff counts across PRs without
parsing prose.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    #: The ``# repro: <pragma>`` token that suppresses this finding.
    pragma: str = ""

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def count_by_rule(findings: list[Finding]) -> dict[str, int]:
    """Per-rule finding counts (sorted by rule id for stable output)."""
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return dict(sorted(counts.items()))

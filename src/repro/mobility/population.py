"""Synthetic population generation.

Homes are drawn region-weighted (downtown and its surroundings are denser,
matching the Charlotte structure the paper leans on: Region 3 is the
central downtown with the heaviest traffic).  Work places are biased toward
downtown, and points-of-interest come from a shared city-wide pool of
popular landmarks — which is also what makes the trip-route cache effective.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.regions import RegionPartition
from repro.mobility.person import Person
from repro.roadnet.graph import RoadNetwork


@dataclass(frozen=True)
class PopulationConfig:
    """Tunables for the synthetic population.

    The paper's dataset tracks 8,590 people; that is the default size.
    Tests and quick experiments pass a smaller ``size``.
    """

    size: int = 8_590
    #: Relative home-density weight per region id.  Region 3 (downtown) and
    #: its lowland neighbours are denser.
    region_weights: dict[int, float] = field(
        default_factory=lambda: {1: 0.9, 2: 1.3, 3: 2.2, 4: 0.9, 5: 1.2, 6: 0.8, 7: 1.0}
    )
    #: Probability that a person's work place is downtown (Region 3).
    downtown_work_share: float = 0.45
    num_pois_per_person: int = 2
    #: Size of the shared pool of popular POI landmarks.
    poi_pool_size: int = 120
    #: GPS sampling interval range, seconds (paper: 0.5-2 hours).
    gps_interval_range_s: tuple[float, float] = (1_800.0, 7_200.0)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("population size must be positive")
        if not (0.0 <= self.downtown_work_share <= 1.0):
            raise ValueError("downtown_work_share must be in [0, 1]")
        lo, hi = self.gps_interval_range_s
        if not (0 < lo <= hi):
            raise ValueError("gps interval range must satisfy 0 < lo <= hi")


def _nodes_by_region(
    network: RoadNetwork, partition: RegionPartition, excluded: frozenset[int]
) -> dict[int, np.ndarray]:
    ids = np.array([n for n in network.landmark_ids() if n not in excluded])
    xy = np.array([network.landmark(int(i)).xy for i in ids])
    regions = partition.region_of_many(xy)
    return {rid: ids[regions == rid] for rid in partition.region_ids}


def generate_population(
    network: RoadNetwork,
    partition: RegionPartition,
    config: PopulationConfig | None = None,
    seed: int = 11,
    excluded_nodes: frozenset[int] = frozenset(),
) -> list[Person]:
    """Generate a deterministic synthetic population on the road network.

    ``excluded_nodes`` keeps anchors off special landmarks — nobody lives or
    shops inside a hospital, and home-at-hospital anchors would pollute the
    hospital-dwell delivery detection.
    """
    cfg = config or PopulationConfig()
    rng = np.random.default_rng(seed)
    by_region = _nodes_by_region(network, partition, excluded_nodes)
    region_ids = [r for r in partition.region_ids if by_region[r].size > 0]
    weights = np.array([cfg.region_weights.get(r, 1.0) for r in region_ids], dtype=float)
    weights /= weights.sum()

    all_nodes = np.array([n for n in network.landmark_ids() if n not in excluded_nodes])
    poi_pool = rng.choice(all_nodes, size=min(cfg.poi_pool_size, all_nodes.size), replace=False)
    downtown_nodes = by_region.get(3, all_nodes)
    if downtown_nodes.size == 0:
        downtown_nodes = all_nodes

    lo, hi = cfg.gps_interval_range_s
    persons: list[Person] = []
    home_regions = rng.choice(region_ids, size=cfg.size, p=weights)
    for pid in range(cfg.size):
        home = int(rng.choice(by_region[int(home_regions[pid])]))
        if rng.random() < cfg.downtown_work_share:
            work = int(rng.choice(downtown_nodes))
        else:
            work = int(rng.choice(all_nodes))
        if work == home:
            work = int(rng.choice(all_nodes))
        pois = tuple(int(n) for n in rng.choice(poi_pool, size=cfg.num_pois_per_person))
        persons.append(
            Person(
                person_id=pid,
                home_node=home,
                work_node=work,
                poi_nodes=pois,
                gps_interval_s=float(rng.uniform(lo, hi)),
            )
        )
    return persons

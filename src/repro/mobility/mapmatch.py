"""Map matching: GPS fixes -> trajectories in landmarks (paper Def. 1).

Each cleaned fix is snapped to its nearest road-network landmark; a
person's trajectory is then the time-ordered landmark sequence with
consecutive repeats collapsed.  Road-segment traversals are reconstructed
by routing between consecutive distinct landmarks that are close in time —
this is what turns sparse cellphone fixes into the per-segment vehicle flow
rates of Section III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mobility.cleaning import validate_trace
from repro.mobility.routes import RouteCache
from repro.mobility.trace import GpsTrace, TraversalLog
from repro.roadnet.graph import RoadNetwork


@dataclass
class MatchedTrajectories:
    """Per-person landmark trajectories.

    ``trajectories`` maps person_id -> (times, node_ids) arrays, both
    time-ordered, with consecutive duplicate nodes collapsed.
    """

    trajectories: dict[int, tuple[np.ndarray, np.ndarray]]
    dropped_far_fixes: int

    def persons(self) -> list[int]:
        return sorted(self.trajectories)

    def nodes_at_time(self, t_seconds: float) -> dict[int, int]:
        """Last-known landmark of every person at time ``t``.

        People whose first fix is later than ``t`` are absent from the
        result — the dispatch center cannot see them yet.
        """
        out: dict[int, int] = {}
        for pid, (ts, nodes) in self.trajectories.items():
            i = int(np.searchsorted(ts, t_seconds, side="right")) - 1
            if i >= 0:
                out[pid] = int(nodes[i])
        return out


def map_match(
    trace: GpsTrace,
    network: RoadNetwork,
    max_snap_m: float = 2_500.0,
) -> MatchedTrajectories:
    """Snap a cleaned, sorted trace onto the landmark graph.

    The input contract is a *cleaned* trace: finite values and per-person
    monotonic timestamps.  Violations raise
    :class:`~repro.mobility.cleaning.MalformedTraceError` here rather
    than silently producing scrambled trajectories — corruption must not
    propagate past the stage that can still name the offending record.
    """
    if len(trace) == 0:
        return MatchedTrajectories({}, 0)
    validate_trace(trace, require_monotonic=True)
    node_ids = np.array(network.landmark_ids())
    from scipy.spatial import cKDTree

    tree = cKDTree(np.array([network.landmark(int(n)).xy for n in node_ids]))
    pts = np.column_stack([trace.x.astype(np.float64), trace.y.astype(np.float64)])
    dist, idx = tree.query(pts)
    ok = dist <= max_snap_m
    dropped = int((~ok).sum())

    pid = trace.person_id[ok]
    ts = trace.t[ok]
    nodes = node_ids[idx[ok]]

    order = np.lexsort((ts, pid))
    pid, ts, nodes = pid[order], ts[order], nodes[order]

    trajectories: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    if len(pid):
        boundaries = np.nonzero(np.diff(pid))[0] + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(pid)]])
        for s, e in zip(starts, ends):
            p_ts, p_nodes = ts[s:e], nodes[s:e]
            keep = np.ones(len(p_nodes), dtype=bool)
            keep[1:] = p_nodes[1:] != p_nodes[:-1]
            trajectories[int(pid[s])] = (p_ts[keep], p_nodes[keep])
    return MatchedTrajectories(trajectories, dropped)


def reconstruct_traversals(
    matched: MatchedTrajectories,
    network: RoadNetwork,
    max_gap_s: float = 1_800.0,
    route_cache: RouteCache | None = None,
) -> TraversalLog:
    """Infer road-segment traversal events from landmark trajectories.

    Consecutive distinct landmarks observed within ``max_gap_s`` are assumed
    connected by the shortest route; traversal times are spread across that
    route proportionally to segment free-flow times.
    """
    cache = route_cache or RouteCache(network)
    ts_parts: list[np.ndarray] = []
    seg_parts: list[np.ndarray] = []
    for _, (ts, nodes) in sorted(matched.trajectories.items()):
        for i in range(len(nodes) - 1):
            dt = ts[i + 1] - ts[i]
            if dt > max_gap_s or dt <= 0:
                continue
            route = cache.route(int(nodes[i]), int(nodes[i + 1]))
            if route is None or route.is_trivial:
                continue
            seg_times = np.array(
                [network.segment(s).free_flow_time_s for s in route.segment_ids]
            )
            total = seg_times.sum()
            if total <= 0:
                continue
            offsets = np.concatenate([[0.0], np.cumsum(seg_times)[:-1]]) / total
            ts_parts.append(ts[i] + offsets * dt)
            seg_parts.append(np.array(route.segment_ids, dtype=np.int32))
    if not ts_parts:
        return TraversalLog.empty()
    return TraversalLog(np.concatenate(ts_parts), np.concatenate(seg_parts))

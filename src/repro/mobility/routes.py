"""Route cache for trip generation.

Hundreds of thousands of trips flow between a much smaller set of anchor
pairs (homes, work places, a shared POI pool), so shortest-path routes are
memoized by (src, dst).  Routes are computed on the full network: people
plan with their normal mental map, and disaster slowdowns are applied at
traversal time, not at planning time.
"""

from __future__ import annotations

from repro.perf.routing_cache import default_router
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.routing import Route


class RouteCache:
    """Memoized shortest-path lookup, keyed by (src, dst).

    Misses are resolved through :func:`repro.perf.routing_cache
    .default_router`, so many destinations reached from one anchor (a home,
    a workplace) share a single Dijkstra tree instead of one search each.
    """

    def __init__(self, network: RoadNetwork, weight: str = "time") -> None:
        self.network = network
        self.weight = weight
        self._cache: dict[tuple[int, int], Route | None] = {}
        self.hits = 0
        self.misses = 0

    def route(self, src: int, dst: int) -> Route | None:
        key = (src, dst)
        if key in self._cache:
            self.hits += 1
            return self._cache[key]
        self.misses += 1
        r = default_router(self.network).route(src, dst, weight=self.weight)
        self._cache[key] = r
        return r

    def __len__(self) -> int:
        return len(self._cache)

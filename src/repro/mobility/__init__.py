"""Human mobility substrate.

Synthesizes the city-scale cellphone GPS dataset the paper obtained from
X-Mode (8,590 people in Charlotte, 15 days around Hurricane Florence) and
implements the paper's stage-1 pipeline on top of it: data cleaning,
map-matching onto the landmark road network, trajectory derivation and
vehicle-flow-rate measurement (Sections III-A and IV-A).
"""

from repro.mobility.person import Person
from repro.mobility.population import PopulationConfig, generate_population
from repro.mobility.trace import GpsTrace, RescueRecord, TraversalLog
from repro.mobility.generator import MobilityTraceGenerator, TraceBundle, TraceConfig
from repro.mobility.cleaning import CleaningReport, clean_trace
from repro.mobility.mapmatch import MatchedTrajectories, map_match
from repro.mobility.flow import FlowRateTable, compute_flow_rates

__all__ = [
    "CleaningReport",
    "FlowRateTable",
    "GpsTrace",
    "MatchedTrajectories",
    "MobilityTraceGenerator",
    "Person",
    "PopulationConfig",
    "RescueRecord",
    "TraceBundle",
    "TraceConfig",
    "TraversalLog",
    "clean_trace",
    "compute_flow_rates",
    "generate_population",
    "map_match",
]

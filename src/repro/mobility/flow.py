"""Vehicle flow rates (paper Def. 2).

The vehicle flow rate of a road segment is the number of vehicles driving
through it per hour; a region's flow rate is the average over its
segments.  Flow is counted from segment traversal events — either ground
truth from the generator, or events reconstructed by map matching.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.trace import TraversalLog
from repro.roadnet.graph import RoadNetwork
from repro.weather.storms import SECONDS_PER_HOUR


class FlowRateTable:
    """Per-segment per-hour vehicle counts over the scenario window."""

    def __init__(self, counts: np.ndarray, segment_ids: np.ndarray, network: RoadNetwork) -> None:
        if counts.shape[0] != len(segment_ids):
            raise ValueError("counts rows must match segment_ids")
        self._counts = counts
        self._segment_ids = segment_ids
        self._seg_index = {int(s): i for i, s in enumerate(segment_ids)}
        self.network = network
        #: region id -> row indices, built once per region on first use.
        self._region_rows: dict[int, list[int]] = {}

    @property
    def num_hours(self) -> int:
        return self._counts.shape[1]

    def segment_rate(self, segment_id: int, hour: int) -> float:
        """Vehicles/hour on one segment during one scenario hour."""
        return float(self._counts[self._seg_index[segment_id], hour])

    def segment_hourly(self, segment_id: int) -> np.ndarray:
        return self._counts[self._seg_index[segment_id]].copy()

    def region_hourly(self, region_id: int) -> np.ndarray:
        """Region flow rate per hour: average over the region's segments."""
        rows = self._region_rows.get(region_id)
        if rows is None:
            rows = [
                self._seg_index[s.segment_id]
                for s in self.network.segments_in_region(region_id)
                if s.segment_id in self._seg_index
            ]
            self._region_rows[region_id] = rows
        if not rows:
            return np.zeros(self.num_hours)
        return self._counts[rows].mean(axis=0)

    def region_day_average(self, region_id: int, day: int) -> float:
        """Region flow rate averaged over the 24 hours of one day."""
        h0 = day * 24
        h1 = min(h0 + 24, self.num_hours)
        if h0 >= self.num_hours:
            raise ValueError(f"day {day} outside the table window")
        return float(self.region_hourly(region_id)[h0:h1].mean())

    def region_hour_of_day(self, region_id: int, day: int) -> np.ndarray:
        """Region flow rate for each of the 24 hours of one day."""
        h0 = day * 24
        h1 = min(h0 + 24, self.num_hours)
        return self.region_hourly(region_id)[h0:h1]

    def segment_day_average(self, day: int) -> np.ndarray:
        """Per-segment flow rate averaged over one day (vehicles/hour),
        aligned with :meth:`segment_ids`."""
        h0 = day * 24
        h1 = min(h0 + 24, self.num_hours)
        return self._counts[:, h0:h1].mean(axis=1)

    def segment_ids(self) -> np.ndarray:
        return self._segment_ids.copy()


def compute_flow_rates(
    traversals: TraversalLog,
    network: RoadNetwork,
    total_hours: int,
) -> FlowRateTable:
    """Bin traversal events into per-segment hourly counts."""
    if total_hours <= 0:
        raise ValueError("total_hours must be positive")
    seg_ids = np.array(network.segment_ids())
    counts = np.zeros((len(seg_ids), total_hours), dtype=np.float32)
    if len(traversals):
        hours = np.clip(
            (traversals.t // SECONDS_PER_HOUR).astype(int), 0, total_hours - 1
        )
        # seg_ids is sorted, so the dict lookup per event vectorizes to one
        # searchsorted over the whole log; bincount over the flattened
        # (row, hour) index replaces the scattered np.add.at.
        rows = np.searchsorted(seg_ids, traversals.segment_id)
        valid = (rows < len(seg_ids)) & (
            seg_ids[np.minimum(rows, len(seg_ids) - 1)] == traversals.segment_id
        )
        if not np.all(valid):
            bad = np.asarray(traversals.segment_id)[~valid][0]
            raise KeyError(int(bad))
        flat = rows.astype(np.int64) * total_hours + hours
        counts += np.bincount(
            flat, minlength=len(seg_ids) * total_hours
        ).reshape(len(seg_ids), total_hours)
    return FlowRateTable(counts, seg_ids, network)

"""Synthetic city-scale mobility trace generator.

Replaces the paper's proprietary X-Mode dataset.  For every person the
generator simulates a continuous timeline over the scenario window:

* stays at anchors, emitting GPS fixes at the person's 0.5-2 h interval;
* trips between anchors (commute/leisure, disaster-suppressed), emitting
  denser in-motion fixes plus ground-truth road-segment traversal events
  (the source of vehicle flow rates);
* the flooding ground-truth process: a person is trapped when the rising
  flood depth over their position first exceeds their personal depth
  tolerance; trapped people stop moving, raise a rescue request, and in
  the historical trace are delivered to the nearest hospital where they
  dwell for >= 2 h.

The depth-threshold form makes the rescue decision a (mostly)
deterministic function of position and regional weather — precisely the
structure the paper's SVM recovers from the factor vector (precipitation,
wind, altitude) — while the waterline's progression makes demand a moving
wave that defeats history-based prediction, the paper's Figs. 15-16 story.

Raw output is deliberately dirty (position noise, out-of-bbox outliers,
duplicated fixes) so the paper's Data Cleaning stage has real work to do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geo.flood import FloodModel
from repro.geo.regions import RegionPartition
from repro.geo.terrain import TerrainField
from repro.hospitals.hospitals import Hospital
from repro.mobility.person import Person
from repro.mobility.routes import RouteCache
from repro.mobility.trace import GpsTrace, RescueRecord, TraversalLog
from repro.mobility.trips import PlannedTrip, TripModel, TripModelConfig
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.routing import Route
from repro.weather.fields import RegionWeatherField
from repro.weather.storms import SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class TraceConfig:
    """Tunables of the synthetic trace process."""

    #: GPS fix interval while driving, seconds.
    trip_fix_interval_s: float = 300.0
    gps_noise_sigma_m: float = 25.0
    altitude_noise_sigma_m: float = 3.0
    #: Fraction of fixes duplicated and fraction replaced far out of range —
    #: the dirt the cleaning stage removes.
    duplicate_rate: float = 0.004
    outlier_rate: float = 0.008
    #: Driving speed multiplier at full flood level (1 - slowdown).
    storm_slowdown: float = 0.5
    #: Trapping ground truth: a person is trapped when the flood depth at
    #: their position first exceeds their personal depth tolerance, drawn
    #: uniformly from ``depth_tolerance_range_m`` (people in sturdy or
    #: multi-storey housing tolerate more water).  At each hourly crossing
    #: check the trap fires with probability ``trap_probability`` (some
    #: people self-evacuate in time).  Because trapping tracks the rising
    #: waterline, requests form a progressive wave that peaks at the river
    #: crest (Sep 16, paper Section V-B) and never revisits a burned-out
    #: depth band — which is exactly why history-based demand prediction
    #: fails in the paper (Figs. 15-16) while factor-based prediction works.
    depth_tolerance_range_m: tuple[float, float] = (0.3, 2.5)
    trap_probability: float = 0.75
    request_delay_range_s: tuple[float, float] = (300.0, 2_400.0)
    delivery_delay_range_s: tuple[float, float] = (3_600.0, 6.0 * 3_600.0)
    hospital_stay_range_s: tuple[float, float] = (2.5 * 3_600.0, 20.0 * 3_600.0)
    #: Ordinary (non-rescue) hospital visits: per-person per-day probability
    #: and dwell range.  Some dwell longer than the 2 h detection threshold,
    #: exercising the rescued/not-rescued labeling.
    normal_hospital_visit_prob: float = 0.015
    normal_hospital_stay_range_s: tuple[float, float] = (1_800.0, 4.0 * 3_600.0)
    trip_model: TripModelConfig = field(default_factory=TripModelConfig)
    seed: int = 37


@dataclass
class TraceBundle:
    """Everything the generator knows about the synthetic dataset.

    ``trace`` is the raw (noisy) GPS data handed to the stage-1 pipeline;
    ``traversals`` and ``rescues`` are ground truth used for calibration,
    evaluation and as the request stream of dispatching experiments.
    """

    trace: GpsTrace
    traversals: TraversalLog
    rescues: list[RescueRecord]
    persons: list[Person]

    def requests_on_day(self, day: int) -> list[RescueRecord]:
        """Rescue requests whose request time falls on a scenario day."""
        t0, t1 = day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY
        return [r for r in self.rescues if t0 <= r.request_time_s < t1]


class _Buffers:
    """Column accumulators for fixes and traversals."""

    def __init__(self) -> None:
        self.pid: list[np.ndarray] = []
        self.t: list[np.ndarray] = []
        self.x: list[np.ndarray] = []
        self.y: list[np.ndarray] = []
        self.alt: list[np.ndarray] = []
        self.speed: list[np.ndarray] = []
        self.trav_t: list[np.ndarray] = []
        self.trav_seg: list[np.ndarray] = []

    def add_fixes(self, pid, t, x, y, alt, speed) -> None:
        n = len(t)
        if n == 0:
            return
        self.pid.append(np.full(n, pid, dtype=np.int32))
        self.t.append(np.asarray(t, dtype=np.float64))
        self.x.append(np.asarray(x, dtype=np.float32))
        self.y.append(np.asarray(y, dtype=np.float32))
        self.alt.append(np.asarray(alt, dtype=np.float32))
        self.speed.append(np.asarray(speed, dtype=np.float32))

    def add_traversals(self, t, seg) -> None:
        if len(t) == 0:
            return
        self.trav_t.append(np.asarray(t, dtype=np.float64))
        self.trav_seg.append(np.asarray(seg, dtype=np.int32))


class MobilityTraceGenerator:
    """Simulates the population over a storm scenario window."""

    def __init__(
        self,
        network: RoadNetwork,
        partition: RegionPartition,
        terrain: TerrainField,
        weather: RegionWeatherField,
        flood: FloodModel,
        hospitals: list[Hospital],
        config: TraceConfig | None = None,
    ) -> None:
        if not hospitals:
            raise ValueError("at least one hospital is required")
        self.network = network
        self.partition = partition
        self.terrain = terrain
        self.weather = weather
        self.flood = flood
        self.hospitals = hospitals
        self.config = config or TraceConfig()
        self.timeline = weather.timeline
        self.route_cache = RouteCache(network)
        self.trip_model = TripModel(
            self._node_severity, self.config.trip_model, self.timeline.intensity
        )
        self._precompute_tables()

    # -- precomputed lookup tables ------------------------------------------

    def _precompute_tables(self) -> None:
        net = self.network
        node_ids = net.landmark_ids()
        self._node_index = {n: i for i, n in enumerate(node_ids)}
        self._node_ids = np.array(node_ids)
        self._node_xy = np.array([net.landmark(n).xy for n in node_ids])
        self._node_alt = self.terrain.altitude_many(self._node_xy)
        self._node_region = self.partition.region_of_many(self._node_xy)
        self._node_segment = np.array(
            [net.nearest_segment(*net.landmark(n).xy) for n in node_ids]
        )

        hours = int(self.timeline.total_days * 24) + 1
        rids = self.partition.region_ids
        rindex = {r: i for i, r in enumerate(rids)}
        precip = np.zeros((len(rids), hours))
        wind = np.zeros((len(rids), hours))
        waterline = np.zeros((len(rids), hours))
        for h in range(hours):
            t = h * SECONDS_PER_HOUR
            for r in rids:
                i = rindex[r]
                precip[i, h] = self.weather.factor_precipitation_mm_per_h(r, t)
                wind[i, h] = self.weather.factor_wind_mph(r, t)
                waterline[i, h] = self.flood.waterline_m(r, t)
        self._rindex = rindex
        self._precip = precip
        self._wind = wind
        self._hours = hours

        node_r = np.array([rindex[int(r)] for r in self._node_region])
        flooded = waterline[node_r, :] >= self._node_alt[:, None]  # (nodes, hours)
        self._node_flooded = flooded
        #: Water depth over each landmark per hour, meters (0 when dry).
        self._node_depth = np.maximum(0.0, waterline[node_r, :] - self._node_alt[:, None])
        self._node_ever_flooded = flooded.any(axis=1)
        any_flood_hours = np.nonzero(flooded.any(axis=0))[0]
        if any_flood_hours.size:
            self._flood_window = (
                float(any_flood_hours[0]) * SECONDS_PER_HOUR,
                float(any_flood_hours[-1] + 1) * SECONDS_PER_HOUR,
            )
        else:
            self._flood_window = (float("inf"), float("-inf"))

        sev = np.zeros((len(rids), hours))
        for h in range(hours):
            for r in rids:
                sev[rindex[r], h] = self.weather.severity(r, h * SECONDS_PER_HOUR)
        self._severity = sev

    def _hour(self, t: float) -> int:
        return min(self._hours - 1, max(0, int(t // SECONDS_PER_HOUR)))

    def _node_severity(self, node: int, t: float) -> float:
        i = self._node_index[node]
        return float(self._severity[self._rindex[int(self._node_region[i])], self._hour(t)])

    def node_factor_vector(self, node: int, t: float) -> tuple[float, float, float]:
        """Disaster-related factors (P, W, A) at a landmark and time."""
        i = self._node_index[node]
        r = self._rindex[int(self._node_region[i])]
        h = self._hour(t)
        return (
            float(self._precip[r, h]),
            float(self._wind[r, h]),
            float(self._node_alt[i]),
        )

    # -- emission helpers ----------------------------------------------------

    def _emit_stay(
        self,
        pid: int,
        t0: float,
        t1: float,
        node: int,
        interval_s: float,
        rng: np.random.Generator,
        out: _Buffers,
    ) -> None:
        if t1 <= t0:
            return
        ts = np.arange(t0, t1, interval_s)
        if ts.size == 0:
            return
        i = self._node_index[node]
        cfg = self.config
        n = ts.size
        x = self._node_xy[i, 0] + rng.normal(0.0, cfg.gps_noise_sigma_m, n)
        y = self._node_xy[i, 1] + rng.normal(0.0, cfg.gps_noise_sigma_m, n)
        alt = self._node_alt[i] + rng.normal(0.0, cfg.altitude_noise_sigma_m, n)
        speed = np.abs(rng.normal(0.0, 0.3, n))
        out.add_fixes(pid, ts, x, y, alt, speed)

    def _speed_multiplier(self, t: float) -> float:
        return 1.0 - self.config.storm_slowdown * self.timeline.flood_level(t)

    def _emit_move(
        self,
        pid: int,
        t0: float,
        route: Route,
        rng: np.random.Generator,
        out: _Buffers,
    ) -> float:
        """Drive ``route`` starting at ``t0``; returns arrival time."""
        mult = max(0.2, self._speed_multiplier(t0))
        seg_times = np.array(
            [self.network.segment(s).free_flow_time_s / mult for s in route.segment_ids]
        )
        entries = t0 + np.concatenate([[0.0], np.cumsum(seg_times)[:-1]])
        arrival = t0 + float(seg_times.sum())
        out.add_traversals(entries, np.array(route.segment_ids))

        cfg = self.config
        ts = np.arange(t0, arrival, cfg.trip_fix_interval_s)
        if ts.size:
            node_times = t0 + np.concatenate([[0.0], np.cumsum(seg_times)])
            nxy = np.array([self.network.landmark(n).xy for n in route.nodes])
            x = np.interp(ts, node_times, nxy[:, 0]) + rng.normal(
                0.0, cfg.gps_noise_sigma_m, ts.size
            )
            y = np.interp(ts, node_times, nxy[:, 1]) + rng.normal(
                0.0, cfg.gps_noise_sigma_m, ts.size
            )
            alt = self.terrain.altitude_many(np.column_stack([x, y]))
            seg_speed = np.array(
                [self.network.segment(s).speed_limit_mps * mult for s in route.segment_ids]
            )
            idx = np.clip(np.searchsorted(node_times, ts, side="right") - 1, 0, len(seg_speed) - 1)
            speed = seg_speed[idx] + rng.normal(0.0, 0.5, ts.size)
            out.add_fixes(pid, ts, x, y, alt, np.abs(speed))
        return arrival

    # -- trapping ground truth -----------------------------------------------

    def _first_trap(
        self,
        node: int,
        t0: float,
        t1: float,
        depth_tolerance_m: float,
        rng: np.random.Generator,
    ) -> float | None:
        """First trapping time during a stay at ``node`` over [t0, t1].

        The person is trapped the first hour the flood depth over their
        position exceeds their personal tolerance (with escape probability
        ``1 - trap_probability`` per crossing hour).
        """
        w0, w1 = self._flood_window
        lo, hi = max(t0, w0), min(t1, w1)
        if hi <= lo:
            return None
        i = self._node_index[node]
        if not self._node_ever_flooded[i]:
            return None
        h0, h1 = int(lo // SECONDS_PER_HOUR), int(math.ceil(hi / SECONDS_PER_HOUR))
        for h in range(h0, min(h1, self._hours)):
            if self._node_depth[i, h] >= depth_tolerance_m:
                if rng.random() >= self.config.trap_probability:
                    continue  # got out in time this hour; water keeps rising
                trap = max(lo, h * SECONDS_PER_HOUR + rng.uniform(0.0, SECONDS_PER_HOUR))
                if trap < hi:
                    return trap
        return None

    def _nearest_hospital_node(self, node: int) -> int:
        i = self._node_index[node]
        xy = self._node_xy[i]
        best, best_d = self.hospitals[0].node_id, float("inf")
        for h in self.hospitals:
            j = self._node_index[h.node_id]
            d = float(np.hypot(*(self._node_xy[j] - xy)))
            if d < best_d:
                best, best_d = h.node_id, d
        return best

    def _handle_rescue(
        self,
        person: Person,
        node: int,
        stay_start: float,
        trap_t: float,
        rng: np.random.Generator,
        out: _Buffers,
        rescues: list[RescueRecord],
    ) -> float:
        """Emit the trapped-stay / hospital-delivery / return-home sequence.

        Returns the time the person is back home (end of the sequence).
        """
        cfg = self.config
        pid = person.person_id
        request_t = trap_t + rng.uniform(*cfg.request_delay_range_s)
        delivery_target = request_t + rng.uniform(*cfg.delivery_delay_range_s)
        hosp_node = self._nearest_hospital_node(node)
        ride = self.route_cache.route(node, hosp_node)

        i = self._node_index[node]
        end = self.timeline.duration_s

        if ride is None or ride.is_trivial:
            ride_depart = min(delivery_target, end)
            self._emit_stay(pid, stay_start, ride_depart, node, person.gps_interval_s, rng, out)
            delivered = ride_depart
        else:
            ride_depart = max(request_t, delivery_target - ride.travel_time_s)
            self._emit_stay(pid, stay_start, ride_depart, node, person.gps_interval_s, rng, out)
            delivered = self._emit_move(pid, ride_depart, ride, rng, out)

        rescues.append(
            RescueRecord(
                person_id=pid,
                trap_time_s=trap_t,
                request_time_s=request_t,
                trap_node=node,
                trap_segment=int(self._node_segment[i]),
                region_id=int(self._node_region[i]),
                factors=self.node_factor_vector(node, trap_t),
                hospital_node=hosp_node,
                delivery_time_s=delivered,
            )
        )

        discharge = min(delivered + rng.uniform(*cfg.hospital_stay_range_s), end)
        self._emit_stay(pid, delivered, discharge, hosp_node, person.gps_interval_s, rng, out)
        if discharge >= end:
            return end
        home_ride = self.route_cache.route(hosp_node, person.home_node)
        if home_ride is None or home_ride.is_trivial:
            return discharge
        return self._emit_move(pid, discharge, home_ride, rng, out)

    # -- per-person simulation -------------------------------------------------

    def _plan_day(
        self, person: Person, day: int, rng: np.random.Generator
    ) -> list[PlannedTrip]:
        trips = self.trip_model.plan_day(person, day, rng)
        cfg = self.config
        if rng.random() < cfg.normal_hospital_visit_prob:
            depart = (day + rng.uniform(18.0, 22.0) / 24.0) * SECONDS_PER_DAY
            hosp = self.hospitals[int(rng.integers(len(self.hospitals)))].node_id
            if hosp != person.home_node:
                stay = rng.uniform(*cfg.normal_hospital_stay_range_s)
                trips = trips + [
                    PlannedTrip(depart, person.home_node, hosp),
                    PlannedTrip(depart + stay, hosp, person.home_node),
                ]
        return trips

    def _simulate_person(
        self, person: Person, out: _Buffers, rescues: list[RescueRecord]
    ) -> None:
        # Pre-registry key layout, frozen for bit-compatibility: the
        # per-person stream keys (seed, person id) with no family tag.
        # repro: allow-stream-tag -- seed-era layout; retagging would reshuffle every golden trace
        rng = np.random.default_rng([self.config.seed, person.person_id])
        t = 0.0
        cur = person.home_node
        pid = person.person_id
        rescued = False
        end = self.timeline.duration_s
        tolerance = rng.uniform(*self.config.depth_tolerance_range_m)

        for day in range(self.timeline.total_days):
            for trip in self._plan_day(person, day, rng):
                if trip.depart_s <= t or trip.src != cur:
                    continue
                if not rescued:
                    trap_t = self._first_trap(cur, t, trip.depart_s, tolerance, rng)
                    if trap_t is not None:
                        t = self._handle_rescue(person, cur, t, trap_t, rng, out, rescues)
                        cur = person.home_node
                        rescued = True
                        continue
                self._emit_stay(pid, t, trip.depart_s, cur, person.gps_interval_s, rng, out)
                route = self.route_cache.route(trip.src, trip.dst)
                if route is None or route.is_trivial:
                    t = trip.depart_s
                    continue
                t = self._emit_move(pid, trip.depart_s, route, rng, out)
                cur = trip.dst

        if not rescued:
            trap_t = self._first_trap(cur, t, end - 12.0 * SECONDS_PER_HOUR, tolerance, rng)
            if trap_t is not None:
                self._handle_rescue(person, cur, t, trap_t, rng, out, rescues)
                return
        self._emit_stay(pid, t, end, cur, person.gps_interval_s, rng, out)

    # -- public API --------------------------------------------------------------

    def generate(self, persons: list[Person]) -> TraceBundle:
        """Simulate all persons and assemble the raw dataset."""
        out = _Buffers()
        rescues: list[RescueRecord] = []
        for person in persons:
            self._simulate_person(person, out, rescues)

        trace = GpsTrace(
            np.concatenate(out.pid) if out.pid else np.zeros(0),
            np.concatenate(out.t) if out.t else np.zeros(0),
            np.concatenate(out.x) if out.x else np.zeros(0),
            np.concatenate(out.y) if out.y else np.zeros(0),
            np.concatenate(out.alt) if out.alt else np.zeros(0),
            np.concatenate(out.speed) if out.speed else np.zeros(0),
        )
        trace = self._dirty(trace)
        traversals = TraversalLog(
            np.concatenate(out.trav_t) if out.trav_t else np.zeros(0),
            np.concatenate(out.trav_seg) if out.trav_seg else np.zeros(0),
        )
        rescues.sort(key=lambda r: r.request_time_s)
        return TraceBundle(trace=trace, traversals=traversals, rescues=rescues, persons=persons)

    def _dirty(self, trace: GpsTrace) -> GpsTrace:
        """Inject duplicates and out-of-range outliers into a clean trace."""
        # Lazy: a module-level import of repro.core from here closes a
        # cycle (core.predictor -> data.charlotte -> this module).  The
        # mobility layer sits below core, so only this leaf constants
        # module may be reached, and only lazily.
        from repro.core.streams import STREAM_MOBILITY_DIRTY

        cfg = self.config
        n = len(trace)
        if n == 0:
            return trace
        rng = np.random.default_rng([cfg.seed, STREAM_MOBILITY_DIRTY])
        n_dup = int(cfg.duplicate_rate * n)
        n_out = int(cfg.outlier_rate * n)
        parts = [trace]
        if n_dup:
            idx = rng.integers(0, n, n_dup)
            parts.append(trace.select(idx))
        if n_out:
            idx = rng.integers(0, n, n_out)
            bad = trace.select(idx)
            width = self.partition.width_m
            bad = GpsTrace(
                bad.person_id,
                bad.t,
                bad.x + np.float32(3.0 * width),
                bad.y,
                bad.altitude,
                bad.speed,
            )
            parts.append(bad)
        return GpsTrace.concatenate(parts)

"""Daily trip planning with disaster suppression.

Normal-day behaviour is a simple commute + leisure model; during the
disaster each planned trip survives only with probability
``1 - suppression * severity(home region, depart time)``.  This is the
mechanism that reproduces the paper's Observation 2 (vehicle flow collapses
during the storm and recovers only partially afterwards) — trips simply
stop happening where and when the disaster is severe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.mobility.person import Person
from repro.weather.storms import SECONDS_PER_DAY, SECONDS_PER_HOUR

#: ``severity_fn(node_id, t_seconds) -> float`` — severity at a landmark.
NodeSeverityFn = Callable[[int, float], float]

#: ``intensity_fn(t_seconds) -> float`` — city-wide storm intensity in [0, 1].
StormIntensityFn = Callable[[float], float]


@dataclass(frozen=True)
class PlannedTrip:
    """One planned trip of a person's day: depart at ``depart_s`` (absolute
    scenario seconds) from ``src`` to ``dst`` landmarks."""

    depart_s: float
    src: int
    dst: int


@dataclass(frozen=True)
class TripModelConfig:
    commute_probability: float = 0.72
    leisure_probability: float = 0.55
    #: How strongly severity suppresses trips (1 = a fully severe region
    #: produces no trips at all).
    suppression: float = 0.92
    #: Severity response sharpness: effective severity is
    #: ``min(1, severity * sharpness)``, so even moderately flooded regions
    #: lose most trips — the paper's Fig. 5 shows flow dropping to almost
    #: zero during the storm.
    severity_sharpness: float = 1.6
    morning_window_h: tuple[float, float] = (6.5, 9.5)
    evening_window_h: tuple[float, float] = (16.0, 19.5)
    leisure_window_h: tuple[float, float] = (10.0, 21.0)

    def __post_init__(self) -> None:
        for p in (self.commute_probability, self.leisure_probability, self.suppression):
            if not (0.0 <= p <= 1.0):
                raise ValueError("probabilities must lie in [0, 1]")


class TripModel:
    """Samples a person's trips for one day."""

    def __init__(
        self,
        node_severity: NodeSeverityFn,
        config: TripModelConfig | None = None,
        storm_intensity: StormIntensityFn | None = None,
    ) -> None:
        self.node_severity = node_severity
        self.config = config or TripModelConfig()
        self.storm_intensity = storm_intensity or (lambda t: 0.0)

    def _survives(self, person: Person, depart_s: float, rng: np.random.Generator) -> bool:
        """A planned trip survives both the local flood suppression and the
        city-wide shelter-in-place effect of an active hurricane."""
        cfg = self.config
        sev = min(1.0, cfg.severity_sharpness * self.node_severity(person.home_node, depart_s))
        effect = max(sev, self.storm_intensity(depart_s))
        return rng.random() >= cfg.suppression * effect

    def plan_day(
        self, person: Person, day: int, rng: np.random.Generator
    ) -> list[PlannedTrip]:
        """Plan (possibly zero) trips for ``person`` on scenario day ``day``.

        Returned trips are time-ordered and chained: each trip departs from
        where the previous one ended.
        """
        cfg = self.config
        day0 = day * SECONDS_PER_DAY
        trips: list[PlannedTrip] = []
        cur = person.home_node

        if rng.random() < cfg.commute_probability:
            m0, m1 = cfg.morning_window_h
            depart = day0 + rng.uniform(m0, m1) * SECONDS_PER_HOUR
            if self._survives(person, depart, rng) and person.work_node != cur:
                trips.append(PlannedTrip(depart, cur, person.work_node))
                cur = person.work_node
            e0, e1 = cfg.evening_window_h
            depart = day0 + rng.uniform(e0, e1) * SECONDS_PER_HOUR
            if cur != person.home_node and self._survives(person, depart, rng):
                trips.append(PlannedTrip(depart, cur, person.home_node))
                cur = person.home_node

        if person.poi_nodes and rng.random() < cfg.leisure_probability:
            l0, l1 = cfg.leisure_window_h
            depart = day0 + rng.uniform(l0, l1) * SECONDS_PER_HOUR
            poi = int(rng.choice(person.poi_nodes))
            if poi != cur and self._survives(person, depart, rng):
                trips.append(PlannedTrip(depart, cur, poi))
                back = depart + rng.uniform(1.0, 3.0) * SECONDS_PER_HOUR
                trips.append(PlannedTrip(back, poi, person.home_node))

        trips.sort(key=lambda tr: tr.depart_s)
        return _dechain_conflicts(trips)


def _dechain_conflicts(trips: list[PlannedTrip]) -> list[PlannedTrip]:
    """Drop trips whose source no longer matches where the person actually
    is after sorting (leisure inserted between commute legs, etc.)."""
    out: list[PlannedTrip] = []
    cur: int | None = None
    for tr in trips:
        if cur is not None and tr.src != cur:
            continue
        out.append(tr)
        cur = tr.dst
    return out

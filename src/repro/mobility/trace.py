"""Columnar containers for the mobility dataset.

The raw dataset is millions of GPS fixes, so fixes live in parallel numpy
arrays (struct-of-arrays) rather than per-point objects; the dataclasses
here are the record-level views used at API boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class GpsTrace:
    """A set of GPS fixes in columnar form.

    Columns: ``person_id`` (int32), ``t`` (float64 seconds from scenario
    start), ``x``/``y`` (float32 plane meters), ``altitude`` (float32 m),
    ``speed`` (float32 m/s).  Rows are kept sorted by (person_id, t) after
    :meth:`sort`.
    """

    COLUMNS = ("person_id", "t", "x", "y", "altitude", "speed")

    def __init__(
        self,
        person_id: np.ndarray,
        t: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        altitude: np.ndarray,
        speed: np.ndarray,
    ) -> None:
        n = len(person_id)
        for name, col in zip(self.COLUMNS, (person_id, t, x, y, altitude, speed)):
            if len(col) != n:
                raise ValueError(f"column {name} has length {len(col)}, expected {n}")
        self.person_id = np.asarray(person_id, dtype=np.int32)
        self.t = np.asarray(t, dtype=np.float64)
        self.x = np.asarray(x, dtype=np.float32)
        self.y = np.asarray(y, dtype=np.float32)
        self.altitude = np.asarray(altitude, dtype=np.float32)
        self.speed = np.asarray(speed, dtype=np.float32)

    def __len__(self) -> int:
        return len(self.person_id)

    @classmethod
    def empty(cls) -> "GpsTrace":
        z = np.zeros(0)
        return cls(z, z, z, z, z, z)

    @classmethod
    def concatenate(cls, parts: list["GpsTrace"]) -> "GpsTrace":
        if not parts:
            return cls.empty()
        return cls(
            np.concatenate([p.person_id for p in parts]),
            np.concatenate([p.t for p in parts]),
            np.concatenate([p.x for p in parts]),
            np.concatenate([p.y for p in parts]),
            np.concatenate([p.altitude for p in parts]),
            np.concatenate([p.speed for p in parts]),
        )

    def select(self, mask: np.ndarray) -> "GpsTrace":
        """New trace containing only rows where ``mask`` is True."""
        return GpsTrace(
            self.person_id[mask],
            self.t[mask],
            self.x[mask],
            self.y[mask],
            self.altitude[mask],
            self.speed[mask],
        )

    def sort(self) -> "GpsTrace":
        """New trace sorted by (person_id, t)."""
        order = np.lexsort((self.t, self.person_id))
        return self.select(order)

    def person_slice(self, person_id: int) -> "GpsTrace":
        """Fixes of one person (trace must be sorted for efficiency-critical
        callers; this method itself works on any ordering)."""
        return self.select(self.person_id == person_id)


class TraversalLog:
    """Ground-truth road-segment traversal events: (t, segment_id) pairs.

    One row per vehicle entering a segment; this is what vehicle flow rates
    are counted from (paper Def. 2).
    """

    def __init__(self, t: np.ndarray, segment_id: np.ndarray) -> None:
        if len(t) != len(segment_id):
            raise ValueError("t and segment_id must have equal length")
        self.t = np.asarray(t, dtype=np.float64)
        self.segment_id = np.asarray(segment_id, dtype=np.int32)

    def __len__(self) -> int:
        return len(self.t)

    @classmethod
    def empty(cls) -> "TraversalLog":
        return cls(np.zeros(0), np.zeros(0))

    @classmethod
    def concatenate(cls, parts: list["TraversalLog"]) -> "TraversalLog":
        if not parts:
            return cls.empty()
        return cls(
            np.concatenate([p.t for p in parts]),
            np.concatenate([p.segment_id for p in parts]),
        )


@dataclass(frozen=True)
class RescueRecord:
    """Ground truth for one person who was trapped and rescued.

    In the historical trace the person is delivered to a hospital by the
    real-world rescue operation; during dispatching experiments the
    ``request_time_s``/``trap_segment`` pair becomes a rescue request fed to
    the simulator.
    """

    person_id: int
    trap_time_s: float
    request_time_s: float
    trap_node: int
    trap_segment: int
    region_id: int
    #: Disaster-related factor vector (precipitation, wind, altitude) at the
    #: trap position and time.
    factors: tuple[float, float, float]
    hospital_node: int
    delivery_time_s: float

    def __post_init__(self) -> None:
        if self.request_time_s < self.trap_time_s:
            raise ValueError("request cannot precede trapping")
        if self.delivery_time_s < self.request_time_s:
            raise ValueError("delivery cannot precede the request")

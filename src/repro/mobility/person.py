"""Synthetic persons: anchors and identity.

Each person has a home landmark, a work landmark and a couple of
points-of-interest; daily trips move between these anchors.  The anchors
are landmarks (road-network vertices), which matches the paper's
representation of trajectories as sequences of landmarks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Person:
    """One tracked individual of the mobility dataset."""

    person_id: int
    home_node: int
    work_node: int
    poi_nodes: tuple[int, ...]
    #: Base GPS sampling interval for this person, seconds.  The paper's
    #: dataset samples each person every 0.5-2 hours.
    gps_interval_s: float

    def __post_init__(self) -> None:
        if self.person_id < 0:
            raise ValueError("person_id must be non-negative")
        if self.gps_interval_s <= 0:
            raise ValueError("gps_interval_s must be positive")

    @property
    def anchors(self) -> tuple[int, ...]:
        """All anchor landmarks this person's trips move between."""
        return (self.home_node, self.work_node, *self.poi_nodes)

"""Data Cleaning — stage 1 of the MobiRescue pipeline (Fig. 7).

The paper filters out positions outside the city's actual range and
redundant positions.  We additionally gate physically impossible jumps
(fixes implying super-highway teleportation), a standard step for
cellphone GPS data.

Cleaning *filters* plausible-but-useless fixes; it must never paper over
*malformed* ones.  A non-finite coordinate is not noise — it is
corruption (a broken collector, a truncated file) that would otherwise
propagate NaNs into map matching and the SVM features, so
:func:`clean_trace` rejects such traces loudly with a typed
:class:`MalformedTraceError` carrying the offending record.  Cleaned
traces additionally guarantee per-person monotonic timestamps;
:func:`validate_trace` enforces that contract at the downstream
consumers (map matching), and the same reason codes back the
record-level validator that the online dispatch service's ingest guard
(``repro.service.ingest``) applies to every incoming fix.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mobility.trace import GpsTrace

#: Reason codes shared between trace-level validation and the service's
#: per-record ingest guard.
REASON_NON_FINITE = "non_finite_value"
REASON_NON_MONOTONIC = "non_monotonic_timestamp"


class MalformedTraceError(ValueError):
    """A trace record is corrupt, with the record's context attached."""

    def __init__(
        self, reason: str, index: int, person_id: int, detail: str
    ) -> None:
        self.reason = reason
        self.index = index
        self.person_id = person_id
        self.detail = detail
        super().__init__(
            f"malformed trace record #{index} (person {person_id}): "
            f"{detail} [{reason}]"
        )


def fix_reason(t_s: float, x: float, y: float) -> str | None:
    """Validate one GPS fix's physical well-formedness.

    Returns a reason code (:data:`REASON_NON_FINITE`) or ``None`` when the
    fix is well-formed.  Range/ordering checks need context (partition
    bounds, the person's previous fix) and live with the callers; this is
    the shared record-level core reused by the service ingest guard.
    """
    if not (math.isfinite(t_s) and math.isfinite(x) and math.isfinite(y)):
        return REASON_NON_FINITE
    return None


def find_malformed(
    trace: GpsTrace, require_monotonic: bool = True
) -> tuple[int, str, str] | None:
    """First corrupt record as ``(index, reason, detail)``, or ``None``.

    Checks every fix for non-finite time/coordinates, and — when
    ``require_monotonic`` — every adjacent same-person pair for a
    backwards timestamp.  Monotonicity is the contract of *cleaned*
    traces: raw multi-collector merges arrive unordered by design
    (sorting is cleaning's job), so callers validating raw input pass
    ``require_monotonic=False``.  Vectorized: two boolean passes.
    """
    n = len(trace)
    if n == 0:
        return None
    bad = ~(np.isfinite(trace.t) & np.isfinite(trace.x) & np.isfinite(trace.y))
    if bad.any():
        i = int(np.argmax(bad))
        return (
            i,
            REASON_NON_FINITE,
            f"t={trace.t[i]!r} x={trace.x[i]!r} y={trace.y[i]!r}",
        )
    if require_monotonic and n > 1:
        backwards = (trace.person_id[1:] == trace.person_id[:-1]) & (
            np.diff(trace.t) < 0.0
        )
        if backwards.any():
            i = int(np.argmax(backwards)) + 1
            return (
                i,
                REASON_NON_MONOTONIC,
                f"t={trace.t[i]:.3f} after t={trace.t[i - 1]:.3f}",
            )
    return None


def validate_trace(trace: GpsTrace, require_monotonic: bool = True) -> None:
    """Raise :class:`MalformedTraceError` on the first corrupt record."""
    found = find_malformed(trace, require_monotonic=require_monotonic)
    if found is not None:
        index, reason, detail = found
        raise MalformedTraceError(
            reason, index, int(trace.person_id[index]), detail
        )


@dataclass(frozen=True)
class CleaningReport:
    """What cleaning removed, for observability and tests."""

    input_fixes: int
    dropped_out_of_range: int
    dropped_duplicates: int
    dropped_speed_gate: int

    @property
    def output_fixes(self) -> int:
        return (
            self.input_fixes
            - self.dropped_out_of_range
            - self.dropped_duplicates
            - self.dropped_speed_gate
        )


def clean_trace(
    trace: GpsTrace,
    width_m: float,
    height_m: float,
    max_speed_mps: float = 60.0,
) -> tuple[GpsTrace, CleaningReport]:
    """Clean a raw trace: range filter, de-duplication, speed gate.

    Returns the cleaned trace sorted by (person_id, t) plus a report.
    Corrupt input (non-finite times or coordinates) raises
    :class:`MalformedTraceError` instead of being silently filtered —
    corruption upstream must fail loudly, not shrink the dataset.  Raw
    input may arrive unordered (collectors append late batches), so
    ordering is *established* here rather than required; downstream
    stages (:func:`repro.mobility.mapmatch.map_match`) enforce the
    monotonic contract on cleaned traces.
    """
    n_in = len(trace)
    if n_in == 0:
        return trace, CleaningReport(0, 0, 0, 0)
    validate_trace(trace, require_monotonic=False)

    in_range = (
        (trace.x >= 0.0)
        & (trace.x <= width_m)
        & (trace.y >= 0.0)
        & (trace.y <= height_m)
    )
    n_range = int(n_in - in_range.sum())
    trace = trace.select(in_range).sort()

    # Redundant positions: identical (person, t) rows keep only the first.
    same = np.zeros(len(trace), dtype=bool)
    if len(trace) > 1:
        same[1:] = (trace.person_id[1:] == trace.person_id[:-1]) & (
            trace.t[1:] == trace.t[:-1]
        )
    n_dup = int(same.sum())
    trace = trace.select(~same)

    # Speed gate: drop a fix when reaching it from the previous fix of the
    # same person would require an impossible speed.
    keep = np.ones(len(trace), dtype=bool)
    if len(trace) > 1:
        dt = np.diff(trace.t)
        dx = np.diff(trace.x.astype(np.float64))
        dy = np.diff(trace.y.astype(np.float64))
        same_person = trace.person_id[1:] == trace.person_id[:-1]
        with np.errstate(divide="ignore", invalid="ignore"):
            v = np.hypot(dx, dy) / np.maximum(dt, 1e-9)
        keep[1:] = ~(same_person & (v > max_speed_mps))
    n_gate = int((~keep).sum())
    trace = trace.select(keep)

    return trace, CleaningReport(n_in, n_range, n_dup, n_gate)

"""Data Cleaning — stage 1 of the MobiRescue pipeline (Fig. 7).

The paper filters out positions outside the city's actual range and
redundant positions.  We additionally gate physically impossible jumps
(fixes implying super-highway teleportation), a standard step for
cellphone GPS data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mobility.trace import GpsTrace


@dataclass(frozen=True)
class CleaningReport:
    """What cleaning removed, for observability and tests."""

    input_fixes: int
    dropped_out_of_range: int
    dropped_duplicates: int
    dropped_speed_gate: int

    @property
    def output_fixes(self) -> int:
        return (
            self.input_fixes
            - self.dropped_out_of_range
            - self.dropped_duplicates
            - self.dropped_speed_gate
        )


def clean_trace(
    trace: GpsTrace,
    width_m: float,
    height_m: float,
    max_speed_mps: float = 60.0,
) -> tuple[GpsTrace, CleaningReport]:
    """Clean a raw trace: range filter, de-duplication, speed gate.

    Returns the cleaned trace sorted by (person_id, t) plus a report.
    """
    n_in = len(trace)
    if n_in == 0:
        return trace, CleaningReport(0, 0, 0, 0)

    in_range = (
        (trace.x >= 0.0)
        & (trace.x <= width_m)
        & (trace.y >= 0.0)
        & (trace.y <= height_m)
    )
    n_range = int(n_in - in_range.sum())
    trace = trace.select(in_range).sort()

    # Redundant positions: identical (person, t) rows keep only the first.
    same = np.zeros(len(trace), dtype=bool)
    if len(trace) > 1:
        same[1:] = (trace.person_id[1:] == trace.person_id[:-1]) & (
            trace.t[1:] == trace.t[:-1]
        )
    n_dup = int(same.sum())
    trace = trace.select(~same)

    # Speed gate: drop a fix when reaching it from the previous fix of the
    # same person would require an impossible speed.
    keep = np.ones(len(trace), dtype=bool)
    if len(trace) > 1:
        dt = np.diff(trace.t)
        dx = np.diff(trace.x.astype(np.float64))
        dy = np.diff(trace.y.astype(np.float64))
        same_person = trace.person_id[1:] == trace.person_id[:-1]
        with np.errstate(divide="ignore", invalid="ignore"):
            v = np.hypot(dx, dy) / np.maximum(dt, 1e-9)
        keep[1:] = ~(same_person & (v > max_speed_mps))
    n_gate = int((~keep).sum())
    trace = trace.select(keep)

    return trace, CleaningReport(n_in, n_range, n_dup, n_gate)

"""The central RNG stream-key registry.

Every deterministic subsystem draws its randomness from generators
spawned as ``np.random.default_rng([seed, TAG, entity...])``.  The
*tag* is what keeps substreams independent: two subsystems spawning
with the same tag and overlapping entity ids would draw **correlated**
randomness — faults that track episode boundaries, load jitter that
mirrors shard kills — silently corrupting every comparison the paper's
fig09-fig16 reproduction rests on.

This module is therefore the single source of truth for stream tags.
The rules:

* every tag is a module-level integer constant here, named
  ``STREAM_<SUBSYSTEM>_<PURPOSE>``;
* a tag value may appear exactly once (``_register`` raises on
  collision at import time, and the REP601 project lint proves it
  statically);
* spawn sites elsewhere in the tree must reference these constants —
  a literal tag that is not registered here is a REP602 finding, and a
  tag the analyzer cannot resolve to an integer is REP603;
* adding a subsystem means adding its tags *here first*, then
  importing them (see ``docs/STATIC_ANALYSIS.md``, "stream-tag
  registry workflow").

Tag values are frozen: they are part of the bit-identity contract
(changing one reshuffles every draw keyed by it and invalidates every
golden test).  New tags take fresh values; old values are never
recycled.
"""

from __future__ import annotations

from typing import Final, NamedTuple


class StreamTag(NamedTuple):
    """Registry metadata for one tag value."""

    value: int
    name: str
    #: Top-level ``repro.<subsystem>`` package whose spawn sites own
    #: the tag.  One owner per tag: cross-subsystem reuse is exactly
    #: the collision REP601 exists to prevent.
    subsystem: str


#: value -> metadata for every registered tag (see :func:`tag_info`).
REGISTRY: dict[int, StreamTag] = {}

_NAMES_SEEN: set[str] = set()


def _register(value: int, name: str, subsystem: str) -> int:
    """Register one tag; loud on any collision.

    Runs at import time, so a duplicated value or name can never reach
    a simulation — the module fails to import first.
    """
    if value < 0:
        raise ValueError(f"stream tag {name} must be non-negative, got {value}")
    if value in REGISTRY:
        raise ValueError(
            f"stream tag collision: {name} and {REGISTRY[value].name} "
            f"both claim value {value}"
        )
    if name in _NAMES_SEEN:
        raise ValueError(f"stream tag name {name!r} registered twice")
    _NAMES_SEEN.add(name)  # repro: allow-fork-unsafe -- written at import time only, before any fork
    REGISTRY[value] = StreamTag(value, name, subsystem)  # repro: allow-fork-unsafe -- written at import time only, before any fork
    return value


# -- fault families (repro.faults, PR 1/5/6/7) --------------------------------
# Environment faults key per entity: (seed, tag, person/team/segment id).

STREAM_FAULT_GPS: Final = _register(101, "fault-gps", "faults")
STREAM_FAULT_COMM: Final = _register(102, "fault-comm", "faults")
STREAM_FAULT_BREAKDOWN: Final = _register(103, "fault-breakdown", "faults")
STREAM_FAULT_CLOSURE: Final = _register(104, "fault-closure", "faults")
STREAM_FAULT_DISPATCHER: Final = _register(105, "fault-dispatcher", "faults")

# Component faults key per dispatch cycle: (seed, tag, cycle index).
STREAM_FAULT_PREDICTOR: Final = _register(106, "fault-predictor", "faults")
STREAM_FAULT_POLICY_LATENCY: Final = _register(107, "fault-policy-latency", "faults")
STREAM_FAULT_CORRUPT_RECORD: Final = _register(108, "fault-corrupt-record", "faults")

# Shard faults key per shard: (seed, tag, shard id).
STREAM_SHARD_KILL: Final = _register(109, "shard-kill", "faults")
STREAM_SHARD_STALL: Final = _register(110, "shard-stall", "faults")
STREAM_SHARD_SKEW: Final = _register(111, "shard-skew", "faults")

# Worker faults key per episode: (seed, tag, episode id).
STREAM_WORKER_CRASH: Final = _register(112, "worker-crash", "faults")
STREAM_WORKER_STALL: Final = _register(113, "worker-stall", "faults")
STREAM_WORKER_CORRUPT: Final = _register(114, "worker-corrupt", "faults")

# -- parallel rollouts (repro.rollouts, PR 7) ---------------------------------
# Episode streams key (seed, tag, episode id); backoff jitter keys
# (seed, tag, episode id, attempt).  Worker identity never appears.

STREAM_ROLLOUT_EPISODE: Final = _register(115, "rollout-episode", "rollouts")
STREAM_ROLLOUT_BACKOFF: Final = _register(116, "rollout-backoff", "rollouts")

# -- training faults (repro.faults, PR 10) ------------------------------------
# Training faults key per episode: (seed, tag, episode id).  The sampled
# fate decides both whether the episode is affected and at which learn
# step the fault fires, so a schedule is bit-identical across reruns and
# independent of how many recovery attempts the sentinel makes.

STREAM_TRAIN_NAN_GRAD: Final = _register(117, "train-fault-nan-gradient", "faults")
STREAM_TRAIN_CORRUPT_REPLAY: Final = _register(118, "train-fault-corrupt-replay", "faults")
STREAM_TRAIN_REWARD_SPIKE: Final = _register(119, "train-fault-reward-spike", "faults")
STREAM_TRAIN_CKPT_BITROT: Final = _register(120, "train-fault-checkpoint-bitrot", "faults")

# -- training health (repro.training, PR 10) ----------------------------------
# Escalation rung 1 re-perturbs exploration after a rollback: the agent's
# action stream is re-seeded (seed, tag, anomaly idx) so a replay that
# diverged once explores a deterministically *different* trajectory.

STREAM_TRAIN_REPERTURB: Final = _register(121, "train-recovery-perturb", "training")

# -- load generation (repro.service.sharding.loadgen, PR 6) -------------------
# Home placement keys (seed, tag); per-tick jitter keys (seed, tag, tick).

STREAM_LOADGEN_HOMES: Final = _register(201, "loadgen-homes", "service")
STREAM_LOADGEN_JITTER: Final = _register(202, "loadgen-jitter", "service")

# -- mobility generation (repro.mobility.generator, seed-era) -----------------
# The trace-dirtying stream predates the registry; its value is frozen
# by every golden mobility test.  (Per-person streams in the generator
# key (seed, person id) with no tag — a pragma'd pre-registry layout.)

STREAM_MOBILITY_DIRTY: Final = _register(999_983, "mobility-dirty-trace", "mobility")


def tag_info(value: int) -> StreamTag:
    """Metadata for a registered tag value; raises ``KeyError`` when
    unregistered (an unregistered spawn is a lint violation, REP602)."""
    return REGISTRY[value]


def registered_values() -> frozenset[int]:
    """Every registered tag value, for auditing and the lint engine."""
    return frozenset(REGISTRY)


def registry_table() -> list[StreamTag]:
    """The registry sorted by value — stable order for docs and reports."""
    return sorted(REGISTRY.values())

"""Saving and loading trained MobiRescue models.

A disaster-response system trains ahead of time (on previous disasters) and
deploys under pressure; the trained artifacts — the SVM request predictor
and the DQN policy — must survive process boundaries.  Everything is packed
into a single ``.npz`` archive: numpy arrays directly, configuration as a
JSON sidecar string.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.config import MobiRescueConfig
from repro.core.predictor import RequestPredictor
from repro.core.rl_dispatcher import make_agent
from repro.core.training import TrainedMobiRescue
from repro.data.charlotte import CharlotteScenario

FORMAT_VERSION = 1


def _config_to_json(config: MobiRescueConfig) -> str:
    d = {
        k: (list(v) if isinstance(v, tuple) else v)
        for k, v in config.__dict__.items()
    }
    return json.dumps(d)


def _config_from_json(payload: str) -> MobiRescueConfig:
    d = json.loads(payload)
    for key in ("hidden_sizes",):
        if key in d:
            d[key] = tuple(d[key])
    return MobiRescueConfig(**d)


def save_trained(trained: TrainedMobiRescue, path: str | pathlib.Path) -> None:
    """Serialize a trained system to a ``.npz`` archive."""
    svm = trained.predictor.svm
    if not svm.is_fitted:
        raise ValueError("cannot save an unfitted system")
    scaler = trained.predictor.scaler
    arrays: dict[str, np.ndarray] = {
        "version": np.array([FORMAT_VERSION]),
        "config_json": np.array([_config_to_json(trained.config)]),
        "episode_service_rates": np.array(trained.episode_service_rates),
        # -- SVM --
        "svm_alpha": svm._alpha,
        "svm_b": np.array([svm._b]),
        "svm_sv_x": svm._sv_x,
        "svm_sv_y": svm._sv_y,
        "svm_params": np.array(
            [svm.kernel_name, str(svm.gamma), str(svm.degree), str(svm.c)]
        ),
        "scaler_mean": scaler.mean_,
        "scaler_std": scaler.std_,
        # -- DQN --
        "epsilon": np.array([trained.agent.epsilon]),
        "learn_steps": np.array([trained.agent.learn_steps]),
    }
    for i, (w, b) in enumerate(trained.agent.q_net.get_weights()):
        arrays[f"q_w{i}"] = w
        arrays[f"q_b{i}"] = b
    np.savez(path, **arrays)


def load_trained(
    path: str | pathlib.Path, scenario: CharlotteScenario
) -> TrainedMobiRescue:
    """Load a trained system, re-anchoring its predictor to ``scenario``.

    The scenario supplies node tables and the weather/flood feeds; the
    learned decision surfaces (SVM, Q-network) come from the archive.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported archive version {version}")
        config = _config_from_json(str(data["config_json"][0]))

        kernel, gamma, degree, c = data["svm_params"]
        predictor = RequestPredictor(
            scenario,
            kernel=str(kernel),
            c=float(c),
            gamma=float(gamma),
        )
        predictor.svm.gamma = float(gamma)
        predictor.svm.degree = int(degree)
        predictor.svm._alpha = data["svm_alpha"]
        predictor.svm._b = float(data["svm_b"][0])
        predictor.svm._sv_x = data["svm_sv_x"]
        predictor.svm._sv_y = data["svm_sv_y"]
        predictor.scaler.mean_ = data["scaler_mean"]
        predictor.scaler.std_ = data["scaler_std"]

        agent = make_agent(config)
        weights = []
        i = 0
        while f"q_w{i}" in data:
            weights.append((data[f"q_w{i}"], data[f"q_b{i}"]))
            i += 1
        agent.q_net.set_weights(weights)
        agent.sync_target()
        agent.epsilon = float(data["epsilon"][0])
        agent.learn_steps = int(data["learn_steps"][0])

        rates = [float(r) for r in data["episode_service_rates"]]

    return TrainedMobiRescue(
        agent=agent,
        predictor=predictor,
        config=config,
        episodes_run=len(rates),
        episode_service_rates=rates,
    )

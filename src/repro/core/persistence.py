"""Saving and loading trained MobiRescue models and training checkpoints.

A disaster-response system trains ahead of time (on previous disasters) and
deploys under pressure; the trained artifacts — the SVM request predictor
and the DQN policy — must survive process boundaries *and* process deaths.
Everything goes through :mod:`repro.core.artifacts`:

* ``save_trained`` / ``load_trained`` pack the deployable models into a
  single ``.npz`` archive, written atomically at exactly the requested
  path.  The archive format is versioned with migration hooks, so older
  archives keep loading.
* ``save_checkpoint`` / ``load_checkpoint`` persist *resumable training
  state* — agent weights, Adam accumulators, target net, replay buffer,
  RNG bit-generator state, epsilon schedule and episode counters — as a
  manifest-verified checkpoint directory.  A checkpoint is only visible
  once fully committed; torn or bit-flipped checkpoints raise typed
  errors and can be quarantined so recovery falls back to the previous
  valid one.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pathlib
import shutil
import zipfile
from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.artifacts import (
    CorruptArtifactError,
    VersionedFormat,
    atomic_savez,
    fsync_dir,
    verify_artifact_dir,
    write_manifest,
)
from repro.core.config import MobiRescueConfig
from repro.core.predictor import RequestPredictor
from repro.core.rl_dispatcher import make_agent
from repro.core.training import TrainedMobiRescue
from repro.data.charlotte import CharlotteScenario
from repro.ml.dqn import DQNAgent, restore_generator

logger = logging.getLogger("repro.core.persistence")

#: v1: single-archive trained models (Q-net weights only).
#: v2: adds the target network and the behaviour policy's RNG state, so a
#: reloaded model continues *online* training (Section IV-C4) identically.
FORMAT_VERSION = 2
TRAINED_FORMAT = VersionedFormat("mobirescue-trained", FORMAT_VERSION)

CHECKPOINT_VERSION = 1
CHECKPOINT_FORMAT = VersionedFormat("mobirescue-checkpoint", CHECKPOINT_VERSION)
CHECKPOINT_PREFIX = "ckpt-"
CHECKPOINT_STATE = "state.npz"
QUARANTINE_DIRNAME = "quarantine"


def _config_to_json(config: MobiRescueConfig) -> str:
    d = {
        k: (list(v) if isinstance(v, tuple) else v)
        for k, v in config.__dict__.items()
    }
    return json.dumps(d)


def _config_from_json(payload: str) -> MobiRescueConfig:
    d = json.loads(payload)
    # Forward compatibility: an archive written by a newer repro may carry
    # config knobs this version does not know.  Dropping them (loudly)
    # beats refusing to load a deployable model in the field.
    known = {f.name for f in dataclasses.fields(MobiRescueConfig)}
    unknown = sorted(set(d) - known)
    if unknown:
        logger.warning(
            "dropping unknown config keys from a newer archive: %s",
            ", ".join(unknown),
        )
        d = {k: v for k, v in d.items() if k in known}
    for key in ("hidden_sizes",):
        if key in d:
            d[key] = tuple(d[key])
    return MobiRescueConfig(**d)


# -- predictor packing (shared by archives and checkpoints) -------------------


def _pack_predictor(predictor: RequestPredictor) -> dict[str, np.ndarray]:
    svm = predictor.svm
    if not svm.is_fitted:
        raise ValueError("cannot save an unfitted system")
    scaler = predictor.scaler
    return {
        "svm_alpha": svm._alpha,
        "svm_b": np.array([svm._b]),
        "svm_sv_x": svm._sv_x,
        "svm_sv_y": svm._sv_y,
        "svm_params": np.array(
            [svm.kernel_name, str(svm.gamma), str(svm.degree), str(svm.c)]
        ),
        "scaler_mean": scaler.mean_,
        "scaler_std": scaler.std_,
    }


def _restore_predictor(
    data: Mapping[str, np.ndarray], scenario: CharlotteScenario
) -> RequestPredictor:
    kernel, gamma, degree, c = data["svm_params"]
    predictor = RequestPredictor(
        scenario,
        kernel=str(kernel),
        c=float(c),
        gamma=float(gamma),
    )
    predictor.svm.gamma = float(gamma)
    predictor.svm.degree = int(degree)
    predictor.svm._alpha = np.asarray(data["svm_alpha"])
    predictor.svm._b = float(data["svm_b"][0])
    predictor.svm._sv_x = np.asarray(data["svm_sv_x"])
    predictor.svm._sv_y = np.asarray(data["svm_sv_y"])
    predictor.scaler.mean_ = np.asarray(data["scaler_mean"])
    predictor.scaler.std_ = np.asarray(data["scaler_std"])
    return predictor


def _load_npz(path: str | pathlib.Path) -> dict[str, np.ndarray]:
    """Load an ``.npz`` into a plain dict, typed-erroring on corruption."""
    try:
        with np.load(path, allow_pickle=False) as data:
            return {key: data[key] for key in data.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, ValueError, OSError, EOFError, KeyError) as exc:
        raise CorruptArtifactError(f"unreadable archive {path}: {exc}") from exc


# -- trained-model archives ----------------------------------------------------


@TRAINED_FORMAT.migration(1)
def _trained_v1_to_v2(arrays: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """v1 archives lack the target net and RNG: re-derive both the way the
    v1 loader did (target synced from the Q-net, RNG seeded from config)."""
    arrays = dict(arrays)
    i = 0
    while f"q_w{i}" in arrays:
        arrays[f"target_w{i}"] = arrays[f"q_w{i}"]
        arrays[f"target_b{i}"] = arrays[f"q_b{i}"]
        i += 1
    seed = json.loads(str(arrays["config_json"][0])).get("seed", 0)
    rng_state = np.random.default_rng(seed).bit_generator.state
    arrays["rng_json"] = np.array([json.dumps(rng_state)])
    return arrays


def save_trained(trained: TrainedMobiRescue, path: str | pathlib.Path) -> None:
    """Serialize a trained system to a ``.npz`` archive, atomically.

    The archive lands at exactly ``path`` (numpy's silent ``.npz`` suffix
    appending is bypassed), and a crash mid-save leaves any previous
    archive at ``path`` intact.
    """
    arrays: dict[str, np.ndarray] = {
        "version": np.array([FORMAT_VERSION]),
        "config_json": np.array([_config_to_json(trained.config)]),
        "episode_service_rates": np.array(trained.episode_service_rates),
        **_pack_predictor(trained.predictor),
        # -- DQN --
        "epsilon": np.array([trained.agent.epsilon]),
        "learn_steps": np.array([trained.agent.learn_steps]),
        "rng_json": np.array(
            [json.dumps(trained.agent.rng.bit_generator.state)]
        ),
    }
    for i, (w, b) in enumerate(trained.agent.q_net.get_weights()):
        arrays[f"q_w{i}"] = w
        arrays[f"q_b{i}"] = b
    for i, (w, b) in enumerate(trained.agent.target_net.get_weights()):
        arrays[f"target_w{i}"] = w
        arrays[f"target_b{i}"] = b
    atomic_savez(path, **arrays)


def load_trained(
    path: str | pathlib.Path, scenario: CharlotteScenario
) -> TrainedMobiRescue:
    """Load a trained system, re-anchoring its predictor to ``scenario``.

    The scenario supplies node tables and the weather/flood feeds; the
    learned decision surfaces (SVM, Q-network) come from the archive.
    Raises :class:`repro.core.artifacts.CorruptArtifactError` on a torn or
    bit-flipped archive and :class:`ArtifactVersionError` on a version
    with no migration path.
    """
    data = _load_npz(path)
    if "version" not in data:
        raise CorruptArtifactError(f"{path} has no format version marker")
    version = int(data["version"][0])
    data = TRAINED_FORMAT.upgrade(data, version)
    config = _config_from_json(str(data["config_json"][0]))

    predictor = _restore_predictor(data, scenario)

    agent = make_agent(config)
    weights = []
    i = 0
    while f"q_w{i}" in data:
        weights.append((data[f"q_w{i}"], data[f"q_b{i}"]))
        i += 1
    agent.q_net.set_weights(weights)
    weights = []
    i = 0
    while f"target_w{i}" in data:
        weights.append((data[f"target_w{i}"], data[f"target_b{i}"]))
        i += 1
    agent.target_net.set_weights(weights)
    agent.rng = restore_generator(str(data["rng_json"][0]))
    agent.epsilon = float(data["epsilon"][0])
    agent.learn_steps = int(data["learn_steps"][0])

    rates = [float(r) for r in data["episode_service_rates"]]

    return TrainedMobiRescue(
        agent=agent,
        predictor=predictor,
        config=config,
        episodes_run=len(rates),
        episode_service_rates=rates,
    )


# -- training checkpoints ------------------------------------------------------


@dataclass
class TrainingCheckpoint:
    """One committed snapshot of resumable training state."""

    episodes_done: int
    service_rates: list[float]
    config: MobiRescueConfig
    agent_state: dict[str, np.ndarray]
    predictor_arrays: dict[str, np.ndarray]


def checkpoint_from_training(
    agent: DQNAgent,
    predictor: RequestPredictor,
    config: MobiRescueConfig,
    episodes_done: int,
    service_rates: list[float],
) -> TrainingCheckpoint:
    """Snapshot live training state into a checkpoint value."""
    return TrainingCheckpoint(
        episodes_done=int(episodes_done),
        service_rates=list(service_rates),
        config=config,
        agent_state=agent.get_state(),
        predictor_arrays=_pack_predictor(predictor),
    )


def restore_predictor(
    checkpoint: TrainingCheckpoint, scenario: CharlotteScenario
) -> RequestPredictor:
    """Rebuild the fitted SVM predictor from a checkpoint, anchored to
    ``scenario``."""
    return _restore_predictor(checkpoint.predictor_arrays, scenario)


def checkpoint_path(root: str | pathlib.Path, episodes_done: int) -> pathlib.Path:
    return pathlib.Path(root) / f"{CHECKPOINT_PREFIX}{episodes_done:06d}"


def list_checkpoints(root: str | pathlib.Path) -> list[pathlib.Path]:
    """Committed-or-not checkpoint directories under ``root``, oldest first
    (quarantined and in-flight temporaries are excluded)."""
    root = pathlib.Path(root)
    if not root.is_dir():
        return []
    return sorted(
        p
        for p in root.iterdir()
        if p.is_dir() and p.name.startswith(CHECKPOINT_PREFIX)
    )


def save_checkpoint(
    root: str | pathlib.Path, checkpoint: TrainingCheckpoint
) -> pathlib.Path:
    """Commit a checkpoint under ``root`` atomically.

    The state archive and its integrity manifest are staged in a hidden
    sibling directory which is then renamed into place, so a crash at any
    point leaves either no checkpoint or a complete, verifiable one.
    """
    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    final = checkpoint_path(root, checkpoint.episodes_done)
    staging = root / f".tmp-{final.name}-{os.getpid()}"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        arrays: dict[str, np.ndarray] = {
            "version": np.array([CHECKPOINT_VERSION]),
            "config_json": np.array([_config_to_json(checkpoint.config)]),
            "episodes_done": np.array([checkpoint.episodes_done], dtype=np.int64),
            "service_rates": np.array(checkpoint.service_rates, dtype=float),
            **_pack_predictor_prefixed(checkpoint.predictor_arrays),
        }
        for key, value in checkpoint.agent_state.items():
            arrays[f"agent.{key}"] = value
        atomic_savez(staging / CHECKPOINT_STATE, **arrays)
        write_manifest(
            staging,
            CHECKPOINT_VERSION,
            meta={
                "episodes_done": checkpoint.episodes_done,
                "service_rates": len(checkpoint.service_rates),
            },
        )
        if final.exists():
            shutil.rmtree(final)
        os.replace(staging, final)
        fsync_dir(root)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    logger.info(
        "checkpoint %s committed (episodes_done=%d)", final, checkpoint.episodes_done
    )
    return final


def _pack_predictor_prefixed(
    predictor_arrays: dict[str, np.ndarray],
) -> dict[str, np.ndarray]:
    return {f"predictor.{k}": v for k, v in predictor_arrays.items()}


def load_checkpoint(path: str | pathlib.Path) -> TrainingCheckpoint:
    """Verify and load one checkpoint directory.

    Raises :class:`MissingManifestError` for an uncommitted directory,
    :class:`CorruptArtifactError` for truncated/bit-flipped state and
    :class:`ArtifactVersionError` for an unmigratable version.
    """
    path = pathlib.Path(path)
    verify_artifact_dir(path)
    arrays = _load_npz(path / CHECKPOINT_STATE)
    if "version" not in arrays:
        raise CorruptArtifactError(f"{path} has no format version marker")
    arrays = CHECKPOINT_FORMAT.upgrade(arrays, int(arrays["version"][0]))
    prefix = "predictor."
    predictor_arrays = {
        k[len(prefix):]: v for k, v in arrays.items() if k.startswith(prefix)
    }
    agent_state = {
        k[len("agent."):]: v for k, v in arrays.items() if k.startswith("agent.")
    }
    return TrainingCheckpoint(
        episodes_done=int(arrays["episodes_done"][0]),
        service_rates=[float(r) for r in arrays["service_rates"]],
        config=_config_from_json(str(arrays["config_json"][0])),
        agent_state=agent_state,
        predictor_arrays=predictor_arrays,
    )


def quarantine_checkpoint(path: str | pathlib.Path, reason: str) -> pathlib.Path:
    """Move a damaged checkpoint aside so recovery never retries it.

    Quarantined checkpoints are kept (not deleted) for post-incident
    forensics; the quarantine directory is ignored by discovery.
    """
    path = pathlib.Path(path)
    qdir = path.parent / QUARANTINE_DIRNAME
    qdir.mkdir(exist_ok=True)
    dest = qdir / path.name
    n = 1
    while dest.exists():
        dest = qdir / f"{path.name}.{n}"
        n += 1
    shutil.move(str(path), str(dest))
    logger.warning("quarantined checkpoint %s -> %s (%s)", path, dest, reason)
    return dest


def find_latest_valid_checkpoint(
    root: str | pathlib.Path,
    quarantine: bool = True,
    on_incident: Callable[[str, str], None] | None = None,
) -> tuple[TrainingCheckpoint, pathlib.Path] | None:
    """Newest checkpoint that passes integrity verification, or ``None``.

    Damaged checkpoints encountered on the way are quarantined (unless
    ``quarantine=False``) and reported through ``on_incident(kind, message)``
    — recovery then falls back to the next-older candidate.
    """
    from repro.core.artifacts import ArtifactError

    for path in reversed(list_checkpoints(root)):
        try:
            return load_checkpoint(path), path
        except ArtifactError as exc:
            message = f"checkpoint {path.name} rejected: {exc}"
            logger.warning("%s", message)
            if on_incident is not None:
                on_incident("corrupt-checkpoint", message)
            if quarantine:
                quarantine_checkpoint(path, str(exc))
    return None


def prune_checkpoints(root: str | pathlib.Path, keep: int = 3) -> list[pathlib.Path]:
    """Delete all but the newest ``keep`` checkpoints; returns the removed
    paths.  At least two are always kept so recovery can fall back past a
    checkpoint that later turns out to be damaged."""
    if keep < 2:
        raise ValueError("keep at least two checkpoints (fallback depth)")
    checkpoints = list_checkpoints(root)
    removed = checkpoints[:-keep] if len(checkpoints) > keep else []
    for path in removed:
        shutil.rmtree(path)
    return removed

"""SVM prediction of the distribution of potential rescue requests.

Implements Section IV-B: a person's disaster-related factor vector
``h = (precipitation, wind speed, altitude)`` is classified into "should be
rescued" / "should not be rescued" (Eq. 1); summing positive decisions per
road segment yields the predicted distribution ``ñ_e`` (Eq. 2).

Training data comes from the previous disaster's trace exactly as the paper
builds it (Section III-B2 + V-B): hospital deliveries are detected from the
trace (>= 2 h dwell), deliveries whose previous staying position lies in a
flood zone are ground-truth rescues (positives, featurized at that position
and time), and persons who were never rescued provide negatives at sampled
storm-window positions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.charlotte import CharlotteScenario
from repro.hospitals.delivery import detect_deliveries, label_rescued
from repro.mobility.cleaning import clean_trace
from repro.mobility.generator import TraceBundle
from repro.mobility.mapmatch import MatchedTrajectories, map_match
from repro.ml.metrics import ClassificationCounts, confusion_counts
from repro.ml.scaler import StandardScaler
from repro.ml.svm import SVC


@dataclass(frozen=True)
class TrainingSet:
    """Featurized rescue-decision training data."""

    x: np.ndarray  # (N, 3) factor vectors
    y: np.ndarray  # (N,) labels in {0, 1}

    def __post_init__(self) -> None:
        if self.x.ndim != 2 or self.x.shape[1] != 3:
            raise ValueError("x must be (N, 3) factor vectors")
        if self.y.shape != (self.x.shape[0],):
            raise ValueError("y must align with x")

    @property
    def num_positive(self) -> int:
        return int(self.y.sum())


def build_training_set(
    scenario: CharlotteScenario,
    bundle: TraceBundle,
    matched: MatchedTrajectories | None = None,
    negatives_per_positive: int = 2,
    seed: int = 0,
) -> TrainingSet:
    """Build the rescue-decision training set from a disaster trace.

    Positives: detected hospital deliveries whose previous staying position
    was flooded, featurized at that position and time (the paper's ground
    truth).  Negatives: never-rescued persons at positions sampled across
    the storm window.
    """
    if negatives_per_positive < 1:
        raise ValueError("negatives_per_positive must be >= 1")
    rng = np.random.default_rng(seed)
    part = scenario.partition
    if matched is None:
        clean, _ = clean_trace(bundle.trace, part.width_m, part.height_m)
        matched = map_match(clean, scenario.network)
        deliveries = detect_deliveries(clean, scenario.network, scenario.hospitals)
    else:
        clean, _ = clean_trace(bundle.trace, part.width_m, part.height_m)
        deliveries = detect_deliveries(clean, scenario.network, scenario.hospitals)

    weather = scenario.weather
    pos_x: list[np.ndarray] = []
    pos_times: list[float] = []
    rescued_pids: set[int] = set()
    for ev, rescued in label_rescued(deliveries, scenario.flood):
        if not rescued or ev.prev_xy is None:
            continue
        rescued_pids.add(ev.person_id)
        pos_x.append(weather.factor_vector(ev.prev_xy[0], ev.prev_xy[1], ev.prev_time_s))
        pos_times.append(ev.prev_time_s)
    if not pos_x:
        raise ValueError("no ground-truth rescues found in the training trace")

    n_neg = negatives_per_positive * len(pos_x)
    # Negatives are sampled at the *same times* the positives occurred
    # (with jitter): otherwise most negatives land in calm weather and the
    # classifier learns "rain means rescue" instead of who, under the same
    # rain, is actually in danger.
    sample_times = rng.choice(np.array(pos_times), size=12, replace=True)
    sample_times = np.clip(
        sample_times + rng.uniform(-2.0, 2.0, size=12) * 3_600.0,
        0.0,
        scenario.timeline.duration_s,
    )
    neg_candidates: list[tuple[int, float]] = []  # (node, t)
    for t in sample_times:
        for pid, node in matched.nodes_at_time(float(t)).items():
            if pid not in rescued_pids:
                neg_candidates.append((node, float(t)))
    if not neg_candidates:
        raise ValueError("no negative examples available")
    pick = rng.choice(len(neg_candidates), size=min(n_neg, len(neg_candidates)), replace=False)
    net = scenario.network
    neg_xy = np.array(
        [net.landmark(neg_candidates[i][0]).xy for i in pick]
    )
    neg_t = [neg_candidates[i][1] for i in pick]
    neg_x = np.array(
        [weather.factor_vector(xy[0], xy[1], t) for xy, t in zip(neg_xy, neg_t)]
    )

    x = np.vstack([np.array(pos_x), neg_x])
    y = np.concatenate([np.ones(len(pos_x), dtype=int), np.zeros(len(neg_x), dtype=int)])
    order = rng.permutation(len(y))
    return TrainingSet(x=x[order], y=y[order])


class RequestPredictor:
    """Scaler + SVM pipeline over disaster-related factor vectors."""

    def __init__(
        self,
        scenario: CharlotteScenario,
        kernel: str = "rbf",
        c: float = 2.0,
        gamma: float = 0.5,
        seed: int = 0,
        flood_gated: bool = True,
    ) -> None:
        #: MobiRescue also receives the NWS satellite flood imaging (it
        #: builds the operable network G̃ from it), so positive rescue
        #: decisions are gated on the flood mask: nobody on dry ground needs
        #: flood rescue.  The SVM discriminates *within* flooded areas.
        self.flood_gated = flood_gated
        #: Flood-forecast lookahead for the gate, seconds.
        self.flood_forecast_horizon_s = 12.0 * 3_600.0
        self.scenario = scenario
        self.scaler = StandardScaler()
        self.svm = SVC(c=c, kernel=kernel, gamma=gamma, seed=seed)
        net = scenario.network
        node_ids = net.landmark_ids()
        self._node_index = {n: i for i, n in enumerate(node_ids)}
        self._node_xy = np.array([net.landmark(n).xy for n in node_ids])
        self._node_segment = np.array(
            [net.nearest_segment(*net.landmark(n).xy) for n in node_ids]
        )

    @property
    def is_fitted(self) -> bool:
        return self.svm.is_fitted

    def fit(self, training: TrainingSet) -> "RequestPredictor":
        x = self.scaler.fit_transform(training.x)
        self.svm.fit(x, training.y)
        return self

    def clone_for(self, scenario: CharlotteScenario) -> "RequestPredictor":
        """Same fitted model, deployed against another scenario.

        The paper trains on Hurricane Michael and deploys on Florence; the
        learned decision surface over factor vectors transfers, while the
        node tables and weather feed come from the deployment scenario.
        """
        other = RequestPredictor(
            scenario, kernel=self.svm.kernel_name, flood_gated=self.flood_gated
        )
        other.scaler = self.scaler
        other.svm = self.svm
        return other

    # -- inference -----------------------------------------------------------

    def predict_labels(self, factors: np.ndarray) -> np.ndarray:
        """Eq. 1 over raw factor vectors: 1 = should be rescued."""
        return self.svm.predict(self.scaler.transform(np.atleast_2d(factors)))

    def evaluate(self, test: TrainingSet) -> ClassificationCounts:
        return confusion_counts(test.y, self.predict_labels(test.x))

    def predict_node_labels(self, nodes: list[int], t_s: float) -> np.ndarray:
        """Rescue decisions for persons standing at the given landmarks.

        An id outside the scenario's landmark table raises ``ValueError``
        (not a bare ``KeyError``): it means the position feed and the road
        network disagree — exactly the corruption the service ingest guard
        quarantines upstream (``unknown_person``/``unknown_node`` codes).
        """
        if not nodes:
            return np.zeros(0, dtype=int)
        try:
            idx = np.array([self._node_index[n] for n in nodes])
        except KeyError as exc:
            raise ValueError(
                f"unknown landmark id {exc.args[0]!r} in position feed"
            ) from exc
        factors = self.scenario.weather.factor_vectors(self._node_xy[idx], t_s)
        labels = self.predict_labels(factors)
        if self.flood_gated:
            # Gate on current flood imaging OR the short-horizon forecast:
            # rivers are forecast hours ahead, and a person whose position
            # floods this afternoon is a potential rescue request now.
            flood = self.scenario.flood
            xy = self._node_xy[idx]
            flooded = flood.is_flooded_many(xy, t_s) | flood.is_flooded_many(
                xy, t_s + self.flood_forecast_horizon_s
            )
            labels = labels & flooded.astype(int)
        return labels

    def predict_request_distribution(
        self, person_nodes: dict[int, int], t_s: float
    ) -> dict[int, int]:
        """Eq. 2: predicted number of potential requests per road segment.

        ``person_nodes`` maps person id -> current landmark (from the
        real-time cellphone feed).  Persons at the same landmark share a
        factor vector, so the whole population reduces to one feature
        matrix over occupied landmarks: counting, classification and the
        segment aggregation of Eq. 2 are all vectorized.
        """
        if not person_nodes:
            return {}
        occupied = np.fromiter(
            person_nodes.values(), dtype=np.int64, count=len(person_nodes)
        )
        uniq, counts = np.unique(occupied, return_counts=True)
        nodes = [int(n) for n in uniq]
        labels = np.asarray(self.predict_node_labels(nodes, t_s))
        idx = np.array([self._node_index[n] for n in nodes], dtype=np.int64)
        segs = self._node_segment[idx]
        pos = labels == 1
        dist: dict[int, int] = {}
        for seg, n in zip(segs[pos], counts[pos]):
            dist[int(seg)] = dist.get(int(seg), 0) + int(n)
        return dist

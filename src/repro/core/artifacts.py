"""Durable artifact I/O: atomic writes, integrity manifests, versioning.

A disaster-response system is exactly the kind of software that gets
killed mid-write — power loss, OOM, an operator pulling the plug to
redeploy.  Every artifact the repro persists (trained models, training
checkpoints, sweep cells) goes through this layer so that a crash leaves
either the old state or the new state on disk, never a torn file:

* **Atomic writes** — payloads are written to a temporary sibling, flushed
  and fsynced, then :func:`os.replace`-d over the destination, and the
  containing directory is fsynced so the rename itself is durable.
* **Integrity manifests** — a directory-level ``manifest.json`` records
  the SHA-256 and byte size of every payload file.  The manifest is
  written last, so its presence marks a *committed* artifact; verification
  detects truncation and bit flips.
* **Typed errors** — corruption surfaces as :class:`CorruptArtifactError`
  / :class:`MissingManifestError` / :class:`ArtifactVersionError` (all
  :class:`ArtifactError`), so supervisors can distinguish "this checkpoint
  is damaged, fall back" from programming errors.
* **Versioned formats** — :class:`VersionedFormat` carries an on-disk
  version number and a chain of migration hooks, so older archives keep
  loading as the format evolves.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import logging
import os
import pathlib
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Mapping

import numpy as np

logger = logging.getLogger("repro.core.artifacts")

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro-artifact"

#: Monotonic suffix so concurrent writers in one process never collide.
_TMP_COUNTER = itertools.count()


class ArtifactError(Exception):
    """Base class for durable-artifact failures."""


class MissingManifestError(ArtifactError):
    """The artifact directory has no (readable) manifest — an uncommitted
    or partially written artifact."""


class CorruptArtifactError(ArtifactError):
    """The payload does not match its manifest (truncation, bit flip) or
    cannot be parsed at all."""


class ArtifactVersionError(ArtifactError, ValueError):
    """The archive's format version cannot be migrated to the current one.

    Also a :class:`ValueError` for callers of the pre-durability API,
    which raised ``ValueError`` on unsupported versions.
    """


# -- atomic writes -----------------------------------------------------------


def _tmp_sibling(path: pathlib.Path) -> pathlib.Path:
    return path.parent / f".{path.name}.tmp-{os.getpid()}-{next(_TMP_COUNTER)}"


def fsync_dir(directory: str | pathlib.Path) -> None:
    """fsync a directory so a just-performed rename survives power loss."""
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_file(path: str | pathlib.Path) -> Iterator[pathlib.Path]:
    """Yield a temporary sibling path; on success, fsync + rename it over
    ``path``.  On error the temporary is removed and ``path`` untouched."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _tmp_sibling(path)
    try:
        yield tmp
        fd = os.open(str(tmp), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: str | pathlib.Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp file + fsync + rename)."""
    with atomic_file(path) as tmp:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())


def atomic_write_json(path: str | pathlib.Path, payload: Any) -> None:
    """Serialize ``payload`` as JSON and write it atomically."""
    atomic_write_bytes(path, json.dumps(payload, indent=2, sort_keys=True).encode())


def atomic_savez(path: str | pathlib.Path, **arrays: np.ndarray) -> None:
    """``np.savez`` with atomic replacement and exact-path semantics.

    ``np.savez(str_path)`` silently appends ``.npz`` when the name lacks
    the suffix, so a caller asking for ``model.bin`` gets ``model.bin.npz``
    — and a crash mid-write leaves a torn archive.  Writing through an
    open file handle sidesteps the suffix rewrite, and the atomic-file
    protocol guarantees the archive at ``path`` is always complete.
    """
    with atomic_file(path) as tmp:
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())


# -- integrity manifests ------------------------------------------------------


def sha256_file(path: str | pathlib.Path, chunk_size: int = 1 << 20) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def sha256_json(payload: Any) -> str:
    """Digest of a JSON-able payload under a canonical encoding."""
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def write_manifest(
    directory: str | pathlib.Path,
    version: int,
    files: Iterable[str] | None = None,
    meta: Mapping[str, Any] | None = None,
) -> pathlib.Path:
    """Commit ``directory`` as an artifact: hash its payload files into an
    atomically written ``manifest.json``.

    ``files`` defaults to every regular file in the directory except the
    manifest itself.  Writing the manifest is the commit point — readers
    treat a directory without one as never-completed.
    """
    directory = pathlib.Path(directory)
    if files is None:
        names = sorted(
            p.name
            for p in directory.iterdir()
            if p.is_file() and p.name != MANIFEST_NAME
        )
    else:
        names = sorted(files)
    entries = {}
    for name in names:
        payload = directory / name
        entries[name] = {
            "sha256": sha256_file(payload),
            "bytes": payload.stat().st_size,
        }
    manifest = {
        "format": MANIFEST_FORMAT,
        "version": int(version),
        "files": entries,
        "meta": dict(meta or {}),
    }
    path = directory / MANIFEST_NAME
    atomic_write_json(path, manifest)
    return path


def read_manifest(directory: str | pathlib.Path) -> dict:
    """Parse an artifact directory's manifest (no payload verification)."""
    path = pathlib.Path(directory) / MANIFEST_NAME
    if not path.exists():
        raise MissingManifestError(f"no manifest at {path}")
    try:
        manifest = json.loads(path.read_text())
    except (ValueError, OSError) as exc:
        raise CorruptArtifactError(f"unreadable manifest at {path}: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise CorruptArtifactError(f"{path} is not a {MANIFEST_FORMAT} manifest")
    if not isinstance(manifest.get("files"), dict):
        raise CorruptArtifactError(f"manifest at {path} has no file table")
    return manifest


def verify_artifact_dir(directory: str | pathlib.Path) -> dict:
    """Check every payload file against the manifest; return the manifest.

    Raises :class:`MissingManifestError` when the directory was never
    committed and :class:`CorruptArtifactError` on a missing, truncated or
    bit-flipped payload.
    """
    directory = pathlib.Path(directory)
    manifest = read_manifest(directory)
    for name, entry in manifest["files"].items():
        payload = directory / name
        if not payload.is_file():
            raise CorruptArtifactError(f"missing payload file {payload}")
        size = payload.stat().st_size
        if size != entry["bytes"]:
            raise CorruptArtifactError(
                f"{payload}: size {size} != manifest {entry['bytes']} (truncated?)"
            )
        digest = sha256_file(payload)
        if digest != entry["sha256"]:
            raise CorruptArtifactError(
                f"{payload}: SHA-256 mismatch (expected {entry['sha256'][:12]}..., "
                f"got {digest[:12]}...)"
            )
    return manifest


# -- versioned formats ---------------------------------------------------------


class VersionedFormat:
    """An on-disk format version plus a chain of migration hooks.

    Each hook migrates a payload one step (``from_version`` to
    ``from_version + 1``); :meth:`upgrade` applies the chain until the
    payload reaches the current version.  Payloads are treated as opaque
    dicts, so formats built on npz arrays and formats built on JSON share
    the machinery.
    """

    def __init__(self, name: str, current_version: int) -> None:
        if current_version < 1:
            raise ValueError("format versions start at 1")
        self.name = name
        self.current_version = int(current_version)
        self._migrations: dict[int, Callable[[dict], dict]] = {}

    def migration(self, from_version: int) -> Callable:
        """Decorator registering a one-step migration hook."""

        def register(fn: Callable[[dict], dict]) -> Callable[[dict], dict]:
            if from_version in self._migrations:
                raise ValueError(
                    f"{self.name}: duplicate migration from v{from_version}"
                )
            self._migrations[from_version] = fn
            return fn

        return register

    def upgrade(self, payload: dict, version: int) -> dict:
        """Migrate ``payload`` from ``version`` to the current version."""
        version = int(version)
        if version == self.current_version:
            return payload
        if version > self.current_version:
            raise ArtifactVersionError(
                f"{self.name}: archive version {version} is newer than the "
                f"supported v{self.current_version}"
            )
        while version < self.current_version:
            hook = self._migrations.get(version)
            if hook is None:
                raise ArtifactVersionError(
                    f"{self.name}: no migration path from v{version}"
                )
            logger.info("%s: migrating v%d -> v%d", self.name, version, version + 1)
            payload = hook(payload)
            version += 1
        return payload

"""The MobiRescue RL dispatcher (paper Section IV-C).

Every dispatching period:

1. the SVM predictor turns the real-time population feed into the predicted
   distribution of potential rescue requests ``ñ_e`` (stage 2 of Fig. 7);
2. called-in pending requests are added on top — they are certain demand;
3. each team's shared DQN scores its candidate destination segments and
   either claims one (decrementing the remaining demand so later teams
   spread out) or returns to the depot (``x_mk = 0``).

The reward of Eq. 5 is decomposed per team: ``alpha`` times the requests
the team actually picked up since its last decision, minus ``beta`` times
the driving delay of the chosen leg (hours), minus ``gamma`` when the team
is serving.  Transitions complete at the team's *next* decision, giving a
standard TD(0) chain per team through the shared replay buffer — and when
``online_training`` is on, the model keeps learning during deployment
exactly as Section IV-C4 prescribes.
"""

from __future__ import annotations

import logging
from collections import defaultdict
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.config import MobiRescueConfig
from repro.core.predictor import RequestPredictor
from repro.core.state import build_context
from repro.data.charlotte import CharlotteScenario
from repro.dispatch.base import (
    DispatchObservation,
    Dispatcher,
    TeamCommand,
    TeamView,
    command_depot,
    command_segment,
)
from repro.ml.dqn import DQNAgent, DQNConfig
from repro.roadnet.matrix import travel_time_oracle

logger = logging.getLogger("repro.core.rl_dispatcher")


@dataclass
class _OpenTransition:
    state: np.ndarray
    action: int
    travel_time_s: float
    serving: bool
    pickups_before: int


def make_agent(config: MobiRescueConfig) -> DQNAgent:
    """Fresh DQN agent sized for the MobiRescue state/action encoding."""
    return DQNAgent(
        DQNConfig(
            state_dim=config.state_dim,
            num_actions=config.num_actions,
            hidden_sizes=config.hidden_sizes,
            learning_rate=config.learning_rate,
            gamma=config.discount,
            # Exploration must survive several training episodes (a few
            # thousand learn steps), not die within the first one.
            epsilon_decay=0.9993,
            seed=config.seed,
        )
    )


class MobiRescueDispatcher(Dispatcher):
    """SVM-predicted demand + shared-DQN team dispatching."""

    name = "MobiRescue"

    def __init__(
        self,
        scenario: CharlotteScenario,
        predictor: RequestPredictor,
        positions_fn: Callable[[float], dict[int, int]],
        agent: DQNAgent,
        config: MobiRescueConfig | None = None,
        training: bool = False,
    ) -> None:
        if not predictor.is_fitted:
            raise ValueError("predictor must be fitted before dispatching")
        self.scenario = scenario
        self.predictor = predictor
        self.positions_fn = positions_fn
        self.agent = agent
        self.config = config or MobiRescueConfig()
        self.training = training
        self.computation_delay_s = self.config.computation_delay_s
        self._open: dict[int, _OpenTransition] = {}
        #: ñ_e of the last cycle, for the Fig 15/16 prediction experiments.
        self.last_prediction: dict[int, int] = {}
        self._anchor_cache: tuple[frozenset[int], dict[int, int]] | None = None
        #: Cycles where the prediction stage failed and the dispatcher
        #: degraded to reactive (pending-only) dispatching.
        self.prediction_failures = 0
        #: Optional observer called with ``(detail, t_s)`` whenever the
        #: prediction stage degrades; the online dispatch service hooks
        #: this so sensing failures show up in the incident log instead of
        #: only in process logs.
        self.incident_sink: Callable[[str, float], None] | None = None

    def _operable_anchor(self, segment_id: int, obs: DispatchObservation) -> int:
        """Nearest operable segment to a (possibly submerged) segment."""
        if segment_id not in obs.closed:
            return segment_id
        if self._anchor_cache is None or self._anchor_cache[0] is not obs.closed:
            self._anchor_cache = (obs.closed, {})
        cache = self._anchor_cache[1]
        if segment_id not in cache:
            mx, my = obs.network.segment_midpoint(segment_id)
            candidates = obs.network.nearest_segments(mx, my, 64)
            cache[segment_id] = next(
                (s for s in candidates if s not in obs.closed), segment_id
            )
        return cache[segment_id]

    # -- dispatching -------------------------------------------------------

    def dispatch(self, obs: DispatchObservation) -> dict[int, TeamCommand]:
        cfg = self.config
        oracle = travel_time_oracle(obs.network)
        t = obs.t_s
        flood_level = self.scenario.timeline.flood_level(t)

        # Degraded sensing must not take the dispatch center down: if the
        # position feed or the predictor fails (dead GPS backends, a
        # diverged model), fall back to reactive dispatching on called-in
        # requests only — stage A still works without stage-2 predictions.
        try:
            raw_predicted = self.predictor.predict_request_distribution(
                self.positions_fn(t), t
            )
        except Exception as exc:  # repro: allow-broad-except -- sanctioned
            # degradation point (PR 1): any sensing failure — dead GPS
            # backend, diverged predictor — downgrades to reactive
            # dispatch instead of taking the dispatch center down.
            self.prediction_failures += 1
            detail = f"prediction stage failed ({type(exc).__name__}: {exc})"
            logger.warning(
                "t=%.0f %s; degrading to pending-only dispatch", t, detail
            )
            if self.incident_sink is not None:
                self.incident_sink(detail, t)
            raw_predicted = {}
        self.last_prediction = dict(raw_predicted)
        predicted: dict[int, float] = defaultdict(float)
        for seg, n in raw_predicted.items():
            # Predicted demand on a submerged segment is served from the
            # flood edge: shift it to the nearest operable segment, the same
            # remapping actual requests undergo.
            predicted[self._operable_anchor(seg, obs)] += float(n)
        pending: dict[int, float] = {seg: float(n) for seg, n in obs.pending.items()}

        commands: dict[int, TeamCommand] = {}

        # ---- Stage A: reactive matching of called-in requests. ----
        # Certain demand is dispatched by min-cost matching over *operable*
        # travel times — MobiRescue is the only method with the satellite
        # flood feed, so its cost estimates are right where the baselines'
        # full-network estimates are wrong.  Teams already en route to a
        # pending-backed target keep their legs (and their claim).
        committed_pending: list[TeamView] = []
        pool: list[TeamView] = []
        for team in sorted(obs.assignable_teams(), key=lambda tv: tv.team_id):
            target = team.target_segment
            if (
                team.state == "to_segment"
                and target is not None
                and target not in obs.closed
                and pending.get(target, 0.0) > 0
            ):
                committed_pending.append(team)
            else:
                pool.append(team)
        for team in committed_pending:
            target = team.target_segment
            pending[target] = max(
                0.0, pending[target] - float(max(1, team.capacity_left))
            )

        matched: dict[int, int] = self._match_pending(pending, pool, obs)
        for team_id, seg in matched.items():
            commands[team_id] = command_segment(seg)
            pending[seg] = max(0.0, pending[seg] - 5.0)

        # ---- Stage B: RL positioning over predicted demand. ----
        # The DQN decides, per remaining team, whether to cruise toward a
        # predicted-demand segment or return to the depot — the lever behind
        # both proactive pickups (Fig 9) and the adaptive fleet size
        # (Fig 14).  Teams already on a predicted leg that still carries
        # demand keep it.
        deciding: list[TeamView] = []
        for team in pool:
            if team.team_id in matched:
                continue
            target = team.target_segment
            if (
                team.state == "to_segment"
                and target is not None
                and target not in obs.closed
                and predicted.get(target, 0.0) > 0
            ):
                predicted[target] = max(
                    0.0, predicted[target] - float(max(1, team.capacity_left))
                )
                continue
            deciding.append(team)

        empty_pending: dict[int, float] = {}
        for team in deciding:
            ctx = build_context(
                team, empty_pending, dict(predicted), oracle, obs.closed, flood_level, cfg
            )
            greedy = not self.training
            action = self.agent.act(ctx.state, ctx.valid_actions, greedy=greedy)
            self._close_transition(team.team_id, team.total_pickups, ctx.state)

            if action < len(ctx.candidate_segments):
                seg = ctx.candidate_segments[action]
                commands[team.team_id] = command_segment(seg)
                predicted[seg] = max(
                    0.0, predicted[seg] - float(max(1, team.capacity_left))
                )
                travel = ctx.travel_times[action]
                serving = True
            else:
                commands[team.team_id] = command_depot()
                travel = 0.0
                serving = False
            self._open[team.team_id] = _OpenTransition(
                state=ctx.state,
                action=action,
                travel_time_s=travel,
                serving=serving,
                pickups_before=team.total_pickups,
            )

        if self.training or self.config.online_training:
            for _ in range(cfg.learn_steps_per_cycle):
                self.agent.learn()
        return commands

    def _match_pending(
        self,
        pending: dict[int, float],
        pool: list[TeamView],
        obs: DispatchObservation,
    ) -> dict[int, int]:
        """Min-cost matching of teams to pending-request slots on the
        operable network.  Returns team_id -> segment."""
        from repro.dispatch.assignment import expand_demand_slots, solve_assignment
        from repro.perf.routing_cache import default_router

        live = {s: v for s, v in pending.items() if v > 0 and s not in obs.closed}
        if not live or not pool:
            return {}
        router = default_router(obs.network)
        slots = expand_demand_slots(live, capacity=5, max_slots=len(pool))
        cost = np.zeros((len(pool), len(slots)))
        col_costs: dict[int, dict[int, float]] = {}
        for seg_id in sorted(set(slots)):
            seg = obs.network.segment(seg_id)
            to_u = router.time_to(seg.u, closed=obs.closed)
            col_costs[seg_id] = {
                tv.team_id: to_u.get(tv.node, 1e7) + seg.free_flow_time_s
                for tv in pool
            }
        for i, tv in enumerate(pool):
            for j, seg_id in enumerate(slots):
                cost[i, j] = col_costs[seg_id][tv.team_id]
        matched: dict[int, int] = {}
        for r, c in solve_assignment(cost):
            if cost[r, c] >= 1e7:
                continue  # unreachable through the flood
            matched[pool[r].team_id] = slots[c]
        return matched

    # -- learning ----------------------------------------------------------

    def _reward(self, tr: _OpenTransition, pickups_now: int) -> float:
        cfg = self.config
        served = pickups_now - tr.pickups_before
        return (
            cfg.alpha * served
            - cfg.beta * tr.travel_time_s / 3_600.0
            - cfg.gamma * (1.0 if tr.serving else 0.0)
        )

    def _close_transition(
        self, team_id: int, pickups_now: int, next_state: np.ndarray
    ) -> None:
        tr = self._open.pop(team_id, None)
        if tr is None or not (self.training or self.config.online_training):
            return
        self.agent.remember(
            tr.state, tr.action, self._reward(tr, pickups_now), next_state, done=False
        )

    def finish_episode(self, final_pickups: dict[int, int]) -> None:
        """Flush open transitions at episode end (terminal states)."""
        for team_id, tr in list(self._open.items()):
            pickups = final_pickups.get(team_id, tr.pickups_before)
            terminal = np.zeros_like(tr.state)
            self.agent.remember(
                tr.state, tr.action, self._reward(tr, pickups), terminal, done=True
            )
        self._open.clear()

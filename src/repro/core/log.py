"""Structured logging for the ``repro`` package.

Every module logs through the stdlib under the ``repro.*`` namespace
(``logging.getLogger("repro.sim.engine")`` etc.).  As a library, repro
stays silent by default: a :class:`logging.NullHandler` is attached to the
``repro`` root logger so nothing reaches stderr unless the application
opts in.

The CLI opts in with ``--verbose`` / ``-v``, which calls
:func:`configure`; programmatic users can do the same or attach their own
handlers to the ``repro`` logger.

Degradation and incident events (dispatcher fallbacks, dropped commands,
breakdowns, reroutes) are emitted at INFO/WARNING level by the simulation
engine and the fault injector, so a verbose robustness run narrates what
the fault layer is doing.
"""

from __future__ import annotations

import logging

ROOT_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

# Library default: silent unless the application configures handlers.
logging.getLogger(ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("sim.engine")`` and ``get_logger("repro.sim.engine")``
    return the same logger; with no argument, the package root.
    """
    if not name:
        return logging.getLogger(ROOT_NAME)
    if name == ROOT_NAME or name.startswith(ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def configure(verbose: bool = False, level: int | None = None) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger (idempotent).

    ``verbose`` selects DEBUG, otherwise INFO; an explicit ``level``
    overrides both.  Returns the configured root logger.
    """
    root = logging.getLogger(ROOT_NAME)
    resolved = level if level is not None else (logging.DEBUG if verbose else logging.INFO)
    root.setLevel(resolved)
    for handler in root.handlers:
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            handler.setLevel(resolved)
            return root
    handler = logging.StreamHandler()
    handler.setLevel(resolved)
    handler.setFormatter(logging.Formatter(_FORMAT))
    root.addHandler(handler)
    return root

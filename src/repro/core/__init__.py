"""MobiRescue — the paper's primary contribution.

The three-stage pipeline of Fig. 7:

1. human-mobility information derivation (in :mod:`repro.mobility`);
2. SVM prediction of the distribution of potential rescue requests
   (:mod:`repro.core.predictor`, Eqs. 1-2);
3. RL-based rescue-team dispatching (:mod:`repro.core.rl_dispatcher`,
   Eqs. 3-5), trained offline on a previous disaster and continually
   online (:mod:`repro.core.training`).

:class:`repro.core.system.MobiRescueSystem` bundles the stages behind one
facade.
"""

from repro.core.artifacts import (
    ArtifactError,
    ArtifactVersionError,
    CorruptArtifactError,
    MissingManifestError,
)
from repro.core.config import MobiRescueConfig
from repro.core.log import configure as configure_logging
from repro.core.log import get_logger
from repro.core.predictor import RequestPredictor, TrainingSet, build_training_set
from repro.core.positions import (
    DegradedPositionFeed,
    HistoricalFallbackFeed,
    PopulationFeed,
)
from repro.core.rl_dispatcher import MobiRescueDispatcher
from repro.core.training import resume_training, train_mobirescue
from repro.core.runner import RetryPolicy, Supervisor, supervised_training
from repro.core.system import MobiRescueSystem
from repro.core.persistence import load_trained, save_trained

__all__ = [
    "ArtifactError",
    "ArtifactVersionError",
    "CorruptArtifactError",
    "DegradedPositionFeed",
    "HistoricalFallbackFeed",
    "MissingManifestError",
    "MobiRescueConfig",
    "MobiRescueDispatcher",
    "MobiRescueSystem",
    "PopulationFeed",
    "RequestPredictor",
    "RetryPolicy",
    "Supervisor",
    "TrainingSet",
    "build_training_set",
    "configure_logging",
    "get_logger",
    "load_trained",
    "resume_training",
    "save_trained",
    "supervised_training",
    "train_mobirescue",
]

"""MobiRescueSystem — the full pipeline behind one facade (Fig. 7).

Typical use::

    from repro.data import build_florence_dataset, build_michael_dataset
    from repro.core import MobiRescueSystem

    train_scen, train_bundle = build_michael_dataset(population_size=1_500)
    deploy_scen, deploy_bundle = build_florence_dataset(population_size=1_500)

    system = MobiRescueSystem.train(train_scen, train_bundle)
    dispatcher = system.deploy(deploy_scen, deploy_bundle)
    # hand `dispatcher` to repro.sim.RescueSimulator

The system owns the trained SVM predictor and DQN agent; ``deploy`` wires
them to a deployment storm's real-time position feed and returns a
simulator-ready dispatcher.
"""

from __future__ import annotations

from repro.core.config import MobiRescueConfig
from repro.core.positions import HistoricalFallbackFeed, PopulationFeed
from repro.core.rl_dispatcher import MobiRescueDispatcher
from repro.core.training import TrainedMobiRescue, train_mobirescue
from repro.data.charlotte import CharlotteScenario
from repro.mobility.cleaning import clean_trace
from repro.mobility.generator import TraceBundle
from repro.mobility.mapmatch import map_match


class MobiRescueSystem:
    """Trained MobiRescue models, ready to deploy on a disaster."""

    def __init__(self, trained: TrainedMobiRescue) -> None:
        self.trained = trained

    @classmethod
    def train(
        cls,
        scenario: CharlotteScenario,
        bundle: TraceBundle,
        config: MobiRescueConfig | None = None,
        episodes: int = 6,
        num_teams: int = 40,
    ) -> "MobiRescueSystem":
        """Train SVM + RL on a historical disaster (paper: Michael)."""
        return cls(
            train_mobirescue(
                scenario, bundle, config=config, episodes=episodes, num_teams=num_teams
            )
        )

    @property
    def config(self) -> MobiRescueConfig:
        return self.trained.config

    def deploy(
        self,
        scenario: CharlotteScenario,
        bundle: TraceBundle,
        online_training: bool | None = None,
        gps_fallback: bool = False,
    ) -> MobiRescueDispatcher:
        """Wire the trained models to a deployment storm.

        Runs the stage-1 pipeline (cleaning + map matching) on the
        deployment trace to obtain the real-time position feed, re-targets
        the predictor at the deployment scenario, and returns a dispatcher
        for :class:`repro.sim.RescueSimulator`.

        ``gps_fallback`` enables the paper's Section IV-C5 extension: stale
        devices are placed at their historical hour-of-day position instead
        of their last fix.
        """
        clean, _ = clean_trace(
            bundle.trace, scenario.partition.width_m, scenario.partition.height_m
        )
        matched = map_match(clean, scenario.network)
        if gps_fallback:
            feed = HistoricalFallbackFeed(
                matched,
                history_start_s=0.0,
                history_end_s=scenario.timeline.storm_start_s,
            )
        else:
            feed = PopulationFeed(matched)
        predictor = self.trained.predictor.clone_for(scenario)
        cfg = self.config
        if online_training is not None and online_training != cfg.online_training:
            from dataclasses import replace

            cfg = replace(cfg, online_training=online_training)
        return MobiRescueDispatcher(
            scenario, predictor, feed, self.trained.agent, cfg, training=False
        )

"""MobiRescue configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MobiRescueConfig:
    """Knobs of the MobiRescue system (paper defaults where given)."""

    # -- SVM request predictor (Section IV-B) --
    svm_kernel: str = "rbf"
    svm_c: float = 8.0
    svm_gamma: float = 0.5
    #: Negative training examples sampled per positive.  Ground-truth
    #: rescues are rare, and the paper trains on all persons; a strongly
    #: unbalanced set keeps the decision surface calibrated to that rarity
    #: (a balanced set makes the SVM flag a third of the city).
    negatives_per_positive: int = 4

    # -- RL dispatcher (Section IV-C) --
    #: Candidate destination segments scored per team each cycle.
    num_candidates: int = 8
    #: Reward weights of Eq. 5: served requests (alpha), driving delay
    #: (beta, per hour of driving), serving-team cost (gamma).  Serving must
    #: stay individually worthwhile at realistic request volumes, so the
    #: delay/fleet costs are small against the pickup reward.
    alpha: float = 2.0
    beta: float = 0.3
    gamma: float = 0.03
    #: Called-in pending requests are certain demand; predicted potential
    #: requests are not.  Pending counts get this weight in the demand map.
    pending_weight: float = 3.0
    hidden_sizes: tuple[int, ...] = (64, 64)
    learning_rate: float = 1e-3
    discount: float = 0.9
    #: Gradient steps per dispatch cycle while training.
    learn_steps_per_cycle: int = 4
    #: Online continual training during deployment (Section IV-C4).
    online_training: bool = True

    #: Inference wall-clock of the trained model (paper: < 0.5 s).
    computation_delay_s: float = 0.4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_candidates < 1:
            raise ValueError("need at least one candidate segment")
        if min(self.alpha, self.beta, self.gamma) < 0:
            raise ValueError("reward weights must be non-negative")
        if not (0 < self.discount <= 1):
            raise ValueError("discount must be in (0, 1]")

    @property
    def state_dim(self) -> int:
        """Per-team state: 3 features per candidate (pending, predicted,
        travel time) + 3 team features."""
        return 3 * self.num_candidates + 3

    @property
    def num_actions(self) -> int:
        """One action per candidate plus the depot action (x_mk = 0)."""
        return self.num_candidates + 1

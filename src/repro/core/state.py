"""RL state/action encoding for the MobiRescue dispatcher.

The paper's raw state (Eq. 3) is the predicted request count of *every*
road segment plus every team's position — thousands of dimensions.  As is
standard for fleet dispatching with a shared DNN policy (and as Pensieve
[24]-style systems do), we factor the joint action (Eq. 4) into per-team
decisions over a short list of *candidate* destination segments, scored by
a shared Q-network:

* candidates: the top-K segments by proximity-weighted demand, recomputed
  per team, with demand decremented as earlier teams claim it — this is
  what couples the per-team decisions into a joint action;
* per-team state: for each candidate, (called-in pending demand, predicted
  potential demand, travel time) — pending and predicted are separate
  features because called-in requests are certain pickups while SVM
  predictions are speculative, and the Q-function must be able to value
  them differently — plus (capacity left, flood level, total demand);
* actions: candidate index 0..K-1, or K = return to depot (``x_mk = 0``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MobiRescueConfig
from repro.dispatch.base import TeamView
from repro.roadnet.matrix import TravelTimeOracle

#: Feature scales: demand saturates at this many waiting people, travel
#: time at this many seconds.
DEMAND_SCALE = 10.0
TIME_SCALE = 1_800.0

FEATURES_PER_CANDIDATE = 3
TEAM_FEATURES = 3


@dataclass(frozen=True)
class TeamDecisionContext:
    """Everything the policy sees for one team's decision."""

    state: np.ndarray
    candidate_segments: tuple[int, ...]
    valid_actions: np.ndarray  # mask over num_actions (candidates + depot)
    travel_times: tuple[float, ...]


def select_candidates(
    team: TeamView,
    pending: dict[int, float],
    predicted: dict[int, float],
    oracle: TravelTimeOracle,
    closed: frozenset[int],
    k: int,
    pending_weight: float,
) -> tuple[list[int], np.ndarray]:
    """Top-k operable segments by proximity-weighted demand.

    Returns (segments, travel_times); may be shorter than k when little
    demand exists.
    """
    segs = sorted(
        s
        for s in set(pending) | set(predicted)
        if s not in closed and (pending.get(s, 0) + predicted.get(s, 0)) > 0
    )
    if not segs:
        return [], np.zeros(0)
    times = oracle.node_to_segments_s(team.node, segs)
    weight = np.array(
        [pending_weight * pending.get(s, 0.0) + predicted.get(s, 0.0) for s in segs]
    )
    score = weight / (1.0 + times / 600.0)
    # Called-in requests must always be *considered*, even when distant
    # speculative clusters outscore them: reserve up to half the slots for
    # the nearest pending segments, fill the rest by score.
    chosen: list[int] = []
    live_pending = [i for i, s in enumerate(segs) if pending.get(s, 0.0) > 0]
    live_pending.sort(key=lambda i: times[i])
    for i in live_pending[: max(1, k // 2)]:
        chosen.append(i)
    for i in np.argsort(-score):
        if len(chosen) >= k:
            break
        if int(i) not in chosen:
            chosen.append(int(i))
    idx = np.array(chosen[:k])
    return [segs[int(i)] for i in idx], times[idx]


def build_context(
    team: TeamView,
    pending: dict[int, float],
    predicted: dict[int, float],
    oracle: TravelTimeOracle,
    closed: frozenset[int],
    flood_level: float,
    config: MobiRescueConfig,
) -> TeamDecisionContext:
    """Encode one team's decision state (Eq. 3 restricted to the team)."""
    k = config.num_candidates
    cands, times = select_candidates(
        team, pending, predicted, oracle, closed, k, config.pending_weight
    )
    state = np.zeros(config.state_dim)
    valid = np.zeros(config.num_actions, dtype=bool)
    valid[k] = True  # depot is always allowed
    f = FEATURES_PER_CANDIDATE
    for i, (seg, tt) in enumerate(zip(cands, times)):
        state[f * i] = min(pending.get(seg, 0.0), DEMAND_SCALE) / DEMAND_SCALE
        state[f * i + 1] = min(predicted.get(seg, 0.0), DEMAND_SCALE) / DEMAND_SCALE
        state[f * i + 2] = min(tt, 2 * TIME_SCALE) / TIME_SCALE
        valid[i] = True
    total = sum(pending.values()) + sum(predicted.values())
    state[f * k] = team.capacity_left / 5.0
    state[f * k + 1] = float(np.clip(flood_level, 0.0, 1.0))
    state[f * k + 2] = min(total, 10 * DEMAND_SCALE) / (10 * DEMAND_SCALE)
    return TeamDecisionContext(
        state=state,
        candidate_segments=tuple(cands),
        valid_actions=valid,
        travel_times=tuple(float(t) for t in times),
    )
